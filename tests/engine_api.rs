//! The engine/plan serving surface: legacy-builder equivalence on the
//! paper's running example, concurrent preparation/execution, prepare-time
//! error reporting, and `explain` coverage.

mod common;

use common::*;
use ksjq::datagen::paper_flights;
use ksjq::prelude::*;

fn flights_engine() -> Engine {
    let engine = Engine::new();
    let pf = paper_flights(false);
    engine.register("outbound", pf.outbound).unwrap();
    engine.register("inbound", pf.inbound).unwrap();
    engine
}

/// Acceptance gate: on the paper's Tables 1–3 example at k = 7 (final
/// skyline of 4 pairs), every algorithm returns the identical answer
/// through `Engine::prepare(plan).execute()` as through the legacy
/// borrowed builder.
#[test]
fn engine_equals_legacy_builder_on_paper_example() {
    let engine = flights_engine();
    let pf = paper_flights(false);
    for algorithm in [
        Algorithm::Naive,
        Algorithm::Grouping,
        Algorithm::DominatorBased,
    ] {
        let legacy = KsjqQuery::builder(&pf.outbound, &pf.inbound)
            .k(7)
            .algorithm(algorithm)
            .build()
            .unwrap()
            .execute()
            .unwrap();
        let plan = QueryPlan::new("outbound", "inbound")
            .goal(Goal::Exact(7))
            .algorithm(algorithm);
        let engine_out = engine.prepare(&plan).unwrap().execute().unwrap();
        assert_eq!(engine_out.pairs, legacy.pairs, "{algorithm}");
        assert_eq!(engine_out.len(), 4, "{algorithm}"); // Table 3
    }
}

/// The new surface has zero public lifetime parameters: a prepared query
/// is a plain `Send + Sync + 'static` value that can outlive everything
/// that built it.
#[test]
fn new_surface_is_owned_send_sync() {
    fn assert_owned<T: Send + Sync + 'static>() {}
    assert_owned::<Engine>();
    assert_owned::<Catalog>();
    assert_owned::<RelationHandle>();
    assert_owned::<QueryPlan>();
    assert_owned::<PreparedQuery>();
    assert_owned::<Explain>();

    // And dynamically: the prepared query works after engine + catalog
    // are gone.
    let prepared = flights_engine()
        .prepare(&QueryPlan::new("outbound", "inbound").k(7))
        .unwrap();
    assert_eq!(prepared.execute().unwrap().len(), 4);
}

/// One engine, many threads: the same and different plans prepared and
/// executed concurrently must all equal their single-threaded baselines,
/// for all three algorithms.
#[test]
fn concurrent_preparation_and_execution() {
    let engine = Engine::new();
    let r1 = random_grouped(11, 120, 1, 3, 6, 8);
    let r2 = random_grouped(12, 120, 1, 3, 6, 8);
    engine.register("r1", r1).unwrap();
    engine.register("r2", r2).unwrap();

    let algorithms = [
        Algorithm::Naive,
        Algorithm::Grouping,
        Algorithm::DominatorBased,
    ];
    // Different plans: one per valid k (d1 = d2 = 4, a = 1 ⇒ k ∈ [5, 7]).
    let plans: Vec<QueryPlan> = (5..=7)
        .map(|k| {
            QueryPlan::new("r1", "r2")
                .aggregate(AggFunc::Sum)
                .goal(Goal::Exact(k))
        })
        .collect();

    // Single-threaded baselines, algorithm-independent by the equivalence
    // suites; computed with each algorithm anyway for a strict check.
    let baselines: Vec<Vec<_>> = plans
        .iter()
        .map(|plan| {
            algorithms
                .iter()
                .map(|&algo| {
                    engine
                        .prepare(&plan.clone().algorithm(algo))
                        .unwrap()
                        .execute()
                        .unwrap()
                        .pairs
                })
                .collect()
        })
        .collect();

    // 9 threads (≥ 4): every (plan, algorithm) pair concurrently, with
    // thread 0 and thread 1 racing on the *same* plan as well.
    std::thread::scope(|s| {
        for (pi, plan) in plans.iter().enumerate() {
            for (ai, &algo) in algorithms.iter().enumerate() {
                let engine = engine.clone();
                let expected = &baselines[pi][ai];
                let plan = plan.clone().algorithm(algo);
                s.spawn(move || {
                    let prepared = engine.prepare(&plan).unwrap();
                    for _ in 0..3 {
                        assert_eq!(&prepared.execute().unwrap().pairs, expected, "{algo}");
                    }
                });
            }
        }
    });
}

/// A prepared query shared by reference across threads (prepare once,
/// execute everywhere) — the serving pattern the engine exists for.
#[test]
fn shared_prepared_query_across_threads() {
    let engine = flights_engine();
    let prepared = engine
        .prepare(&QueryPlan::new("outbound", "inbound").k(7))
        .unwrap();
    let baseline = prepared.execute().unwrap().pairs;
    std::thread::scope(|s| {
        for _ in 0..4 {
            let prepared = &prepared;
            let baseline = &baseline;
            s.spawn(move || {
                assert_eq!(&prepared.execute().unwrap().pairs, baseline);
            });
        }
    });
}

#[test]
fn unknown_relation_surfaces_at_prepare() {
    let engine = flights_engine();
    let err = engine
        .prepare(&QueryPlan::new("outbound", "no-such-relation"))
        .unwrap_err();
    assert!(
        matches!(err, CoreError::UnknownRelation { ref name } if name == "no-such-relation"),
        "{err:?}"
    );
    assert!(err.to_string().contains("no-such-relation"));
}

#[test]
fn invalid_k_goal_surfaces_at_prepare() {
    let engine = flights_engine();
    // d1 = d2 = 4 ⇒ valid k ∈ [5, 8].
    for bad_k in [0, 4, 9] {
        let err = engine
            .prepare(&QueryPlan::new("outbound", "inbound").goal(Goal::Exact(bad_k)))
            .unwrap_err();
        assert!(
            matches!(err, CoreError::InvalidK { k, min: 5, max: 8 } if k == bad_k),
            "k={bad_k}: {err:?}"
        );
    }
    // Invalid find-k delta too.
    let err = engine
        .prepare(
            &QueryPlan::new("outbound", "inbound").goal(Goal::AtLeast(0, FindKStrategy::Binary)),
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::InvalidDelta), "{err:?}");
}

#[test]
fn aggregate_arity_mismatch_surfaces_at_prepare() {
    let engine = flights_engine();
    // The flight relations have no aggregate slots; passing a func is an
    // arity mismatch the *prepare* step must reject (never execute).
    let err = engine
        .prepare(&QueryPlan::new("outbound", "inbound").aggregate(AggFunc::Sum))
        .unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::Join(ksjq::join::JoinError::AggArityMismatch { .. })
        ),
        "{err:?}"
    );
}

#[test]
fn duplicate_registration_rejected() {
    let engine = flights_engine();
    let pf = paper_flights(false);
    let err = engine.register("outbound", pf.outbound).unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::Relation(ksjq::relation::Error::DuplicateRelation(ref n)) if n == "outbound"
        ),
        "{err:?}"
    );
}

/// `explain()` covers the join kind, arities, k-range, derived k′/k″
/// thresholds, algorithm and kdom subroutine.
#[test]
fn explain_reports_the_full_plan() {
    let engine = flights_engine();
    let prepared = engine
        .prepare(
            &QueryPlan::new("outbound", "inbound")
                .goal(Goal::Exact(7))
                .algorithm(Algorithm::DominatorBased)
                .kdom(KdomAlgo::Osa),
        )
        .unwrap();
    let explain = prepared.explain();

    // Structured facts.
    assert_eq!(explain.join, JoinSpec::Equality);
    assert_eq!(
        (explain.params.d1, explain.params.d2, explain.params.a),
        (4, 4, 0)
    );
    assert_eq!((explain.k_min, explain.k_max), (5, 8));
    assert_eq!(explain.params.k, 7);
    assert_eq!(explain.params.k1_prime, 3); // k − l2 = 7 − 4
    assert_eq!(explain.params.k1_pp, 3); // k′ − a
    assert_eq!(explain.algorithm, Algorithm::DominatorBased);
    assert_eq!(explain.kdom, KdomAlgo::Osa);

    // Rendered forms.
    let text = explain.to_string();
    for needle in [
        "equality join",
        "d1 = 4",
        "d2 = 4",
        "valid k in [5, 8]",
        "k'1 = 3",
        "k''1 = 3",
        "dominator-based",
        "osa",
        "\"outbound\"",
        "\"inbound\"",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    let compact = explain.compact();
    assert!(!compact.contains('\n'));
    assert!(compact.contains("k=7") && compact.contains("kdom=osa"));
}

/// Find-k goals resolve during prepare and agree with the legacy
/// build_with_* path.
#[test]
fn find_k_goals_match_legacy_builder() {
    let engine = flights_engine();
    let pf = paper_flights(false);
    let (legacy_q, legacy_report) = KsjqQuery::builder(&pf.outbound, &pf.inbound)
        .build_with_at_least(2, FindKStrategy::Binary)
        .unwrap();
    let prepared = engine
        .prepare(
            &QueryPlan::new("outbound", "inbound").goal(Goal::AtLeast(2, FindKStrategy::Binary)),
        )
        .unwrap();
    assert_eq!(prepared.k(), legacy_report.k);
    assert_eq!(
        prepared.find_k_report().unwrap().satisfied,
        legacy_report.satisfied
    );
    assert_eq!(
        prepared.execute().unwrap().pairs,
        legacy_q.execute().unwrap().pairs
    );
}
