//! Deterministic merge of per-shard results.

/// Merge sorted pair lists into one sorted list.
///
/// Every algorithm in the engine emits its skyline sorted by
/// `(left, right)` tuple id, and remapping a shard's local ids through
/// its (strictly monotone) id map keeps each list sorted — so this merge
/// reproduces exactly the sequence a single node would emit. Shard count
/// is small, so a linear scan for the minimum head beats a heap.
pub fn merge_sorted(lists: Vec<Vec<(u32, u32)>>) -> Vec<(u32, u32)> {
    let total = lists.iter().map(Vec::len).sum();
    let mut pos = vec![0usize; lists.len()];
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(total);
    while out.len() < total {
        let mut best: Option<(usize, (u32, u32))> = None;
        for (i, list) in lists.iter().enumerate() {
            if let Some(&pair) = list.get(pos[i]) {
                if best.is_none() || pair < best.expect("just checked").1 {
                    best = Some((i, pair));
                }
            }
        }
        let (i, pair) = best.expect("fewer merged than total implies a non-exhausted list");
        pos[i] += 1;
        out.push(pair);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_interleaved_lists() {
        let merged = merge_sorted(vec![
            vec![(0, 2), (4, 4)],
            vec![],
            vec![(2, 0), (5, 5)],
            vec![(4, 3)],
        ]);
        assert_eq!(merged, vec![(0, 2), (2, 0), (4, 3), (4, 4), (5, 5)]);
    }

    #[test]
    fn equals_sort_of_concatenation() {
        // The property the router relies on, phrased directly.
        let lists = vec![
            (0..50u32).map(|i| (i * 3, i)).collect::<Vec<_>>(),
            (0..50u32).map(|i| (i * 3 + 1, 99 - i)).collect(),
            (0..20u32).map(|i| (i * 7 + 2, i)).collect(),
        ];
        let mut expected: Vec<(u32, u32)> = lists.iter().flatten().copied().collect();
        expected.sort_unstable();
        assert_eq!(merge_sorted(lists), expected);
    }

    #[test]
    fn degenerate_shapes() {
        assert_eq!(merge_sorted(vec![]), vec![]);
        assert_eq!(merge_sorted(vec![vec![], vec![]]), vec![]);
        assert_eq!(merge_sorted(vec![vec![(1, 1)]]), vec![(1, 1)]);
    }
}
