//! Figure-by-figure reproduction harness.
//!
//! One subcommand per table/figure of the paper's evaluation (Sec. 7);
//! `all` runs everything. `--scale <f>` shrinks the dataset size `n`
//! (default 0.33 — comparisons and shapes are preserved, wall-clock times
//! shrink roughly quadratically); `--full` runs the paper's exact sizes.
//! `--algo` restricts which KSJQ algorithms run, `--kdom` picks the
//! single-relation k-dominant subroutine, and `--goal` overrides the
//! per-figure exact-k goal of the synthetic sweeps (all accept the names
//! their `Display`/`FromStr` impls round-trip, e.g. `--goal atleast:10`).
//! Each configuration prints the prepared plan's `explain` line before
//! its timing rows, so the tables say exactly what they measured.
//!
//! The sweeps can also run over the wire: `--serve ADDR` turns the
//! harness into a `ksjq-server` daemon preloaded with the demo catalog,
//! and `--remote ADDR` makes every sweep `LOAD` its relations into such
//! a server and `QUERY` them through a socket instead of in-process.
//!
//! The extra `kernel` subcommand (not part of `all`) runs the
//! verification-kernel ablation — the pre-split materialise-then-compare
//! reference against the row-major split-side kernel against the columnar
//! lane-blocked kernel — plus a dominator-generation thread-scaling sweep
//! and a fig3b-style scalability sweep; `--json PATH` writes the
//! measurements in the committed `BENCH_kernel.json` baseline format.
//! The `delta` subcommand (also outside `all`) measures incremental
//! maintenance (`maintain_append`) against a full recompute for append
//! deltas of 1/16/256 rows on an anti-correlated workload; `--json PATH`
//! writes the committed `BENCH_delta.json` baseline.
//!
//! ```sh
//! cargo run --release -p ksjq-bench --bin harness -- all --scale 0.33
//! cargo run --release -p ksjq-bench --bin harness -- fig1a --full
//! cargo run --release -p ksjq-bench --bin harness -- fig4 --algo grouping,naive --kdom osa
//! cargo run --release -p ksjq-bench --bin harness -- --serve 127.0.0.1:7878   # terminal 1
//! cargo run --release -p ksjq-bench --bin harness -- fig1a --remote 127.0.0.1:7878
//! ```

use ksjq_bench::*;
use ksjq_core::{
    ksjq_grouping, maintain_append, Algorithm, Config, Engine, Goal, KdomAlgo, MaintainStats,
    QueryPlan,
};
use ksjq_datagen::{relation_to_annotated_csv, DataType, DatasetSpec, FlightNetworkSpec};
use ksjq_join::{JoinContext, JoinSpec};
use ksjq_relation::{TupleId, VersionedRelation};
use ksjq_server::{
    register_demo_catalog, KsjqClient, PlanSpec, Server, ServerConfig, SyntheticSpec,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

struct Opts {
    figure: String,
    scale: f64,
    /// Which KSJQ algorithms to run (default: G, D, N).
    algos: Vec<Algorithm>,
    /// Execution config (carries the `--kdom` choice).
    cfg: Config,
    /// Overrides the per-figure exact-k goal of the KSJQ sweeps.
    goal: Option<Goal>,
    /// Run the sweeps against this remote server instead of in-process.
    remote: Option<String>,
    /// Serve the demo catalog on this address instead of running figures.
    serve: Option<String>,
    /// Write the `kernel`/`delta` subcommand's measurements to this path
    /// as JSON (the committed `BENCH_kernel.json` / `BENCH_delta.json`
    /// baseline formats).
    json: Option<String>,
}

/// Parsed options, readable from every figure function.
static OPTS: OnceLock<Opts> = OnceLock::new();

fn opts() -> &'static Opts {
    OPTS.get().expect("set at startup")
}

fn parse_args() -> Opts {
    let mut figure = String::from("all");
    let mut scale = 0.33f64;
    let mut algos = GDN.to_vec();
    let mut cfg = Config::default();
    let mut goal = None;
    let mut remote = None;
    let mut serve = None;
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--full" => scale = 1.0,
            "--algo" => {
                let list = args.next().unwrap_or_else(|| die("--algo needs a name"));
                algos = list
                    .split(',')
                    .map(|s| s.trim().parse::<Algorithm>().unwrap_or_else(|e| die(&e)))
                    .collect();
            }
            "--kdom" => {
                let name = args.next().unwrap_or_else(|| die("--kdom needs a name"));
                cfg.kdom = name.parse::<KdomAlgo>().unwrap_or_else(|e| die(&e));
            }
            "--goal" => {
                let spec = args.next().unwrap_or_else(|| die("--goal needs a goal"));
                goal = Some(spec.parse::<Goal>().unwrap_or_else(|e| die(&e)));
            }
            "--remote" => {
                remote = Some(
                    args.next()
                        .unwrap_or_else(|| die("--remote needs host:port")),
                );
            }
            "--serve" => {
                serve = Some(
                    args.next()
                        .unwrap_or_else(|| die("--serve needs host:port")),
                );
            }
            "--json" => {
                json = Some(args.next().unwrap_or_else(|| die("--json needs a path")));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: harness [FIGURE] [--scale F | --full] [--algo A[,A…]] [--kdom K]\n\
                     \x20       [--goal G] [--remote HOST:PORT] [--serve HOST:PORT]\n\
                     \x20       [--json PATH]\n\
                     figures: fig1a fig1b fig2a fig2b fig3a fig3b fig4 fig5a fig5b\n\
                     \x20        fig6a fig6b fig7 fig8a fig8b fig9a fig9b fig10 fig11 all\n\
                     \x20        kernel (verification-kernel ablation; --json writes the\n\
                     \x20        BENCH_kernel.json baseline)\n\
                     \x20        delta (incremental maintenance vs recompute; --json writes\n\
                     \x20        the BENCH_delta.json baseline)\n\
                     algos:   naive grouping dominator-based (comma-separated)\n\
                     kdom:    naive osa tsa tsa-presort\n\
                     goal:    exact:K | skyline | atleast:D[:S] | atmost:D[:S]\n\
                     \x20        (overrides the synthetic sweeps' per-figure exact k)\n\
                     --serve  run as a ksjq-server daemon with the demo catalog\n\
                     --remote run the sweeps over the wire against such a daemon"
                );
                std::process::exit(0);
            }
            f if !f.starts_with('-') => figure = f.to_string(),
            other => die(&format!("unknown flag {other}")),
        }
    }
    Opts {
        figure,
        scale,
        algos,
        cfg,
        goal,
        remote,
        serve,
        json,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("harness: {msg}");
    std::process::exit(2)
}

fn main() {
    let opts = OPTS.get_or_init(parse_args);
    if opts.json.is_some() && opts.figure != "kernel" && opts.figure != "delta" {
        // Fail fast instead of silently never writing the file.
        die("--json is only supported by the `kernel` and `delta` subcommands");
    }
    if let Some(addr) = &opts.serve {
        serve_demo_catalog(addr);
    }
    let t = Instant::now();
    let all = opts.figure == "all";
    let mut ran = false;
    macro_rules! fig {
        ($name:literal, $f:ident) => {
            if all || opts.figure == $name {
                $f(opts.scale);
                ran = true;
            }
        };
    }
    fig!("fig1a", fig1a);
    fig!("fig1b", fig1b);
    fig!("fig2a", fig2a);
    fig!("fig2b", fig2b);
    fig!("fig3a", fig3a);
    fig!("fig3b", fig3b);
    fig!("fig4", fig4);
    fig!("fig5a", fig5a);
    fig!("fig5b", fig5b);
    fig!("fig6a", fig6a);
    fig!("fig6b", fig6b);
    fig!("fig7", fig7);
    fig!("fig8a", fig8a);
    fig!("fig8b", fig8b);
    fig!("fig9a", fig9a);
    fig!("fig9b", fig9b);
    fig!("fig10", fig10);
    fig!("fig11", fig11);
    // Not part of `all`: the materialized reference sweep is deliberately
    // the slow pre-split kernel, and the delta sweep measures maintenance,
    // not the paper's figures.
    if opts.figure == "kernel" {
        kernel_figure(opts.scale);
        ran = true;
    }
    if opts.figure == "delta" {
        delta_figure(opts.scale);
        ran = true;
    }
    if !ran {
        die(&format!("unknown figure '{}' (try --help)", opts.figure));
    }
    eprintln!("\nharness finished in {:.1}s", t.elapsed().as_secs_f64());
}

fn banner(id: &str, what: &str, params: &str) {
    println!("\n=== {id}: {what} ===");
    println!("    {params}");
}

// ------------------------------------------------------------- serving

/// `--serve`: become a `ksjq-server` daemon preloaded with the demo
/// catalog (paper Tables 1–2 plus the synthetic flight network), ready
/// for a `--remote` harness — or any protocol client — to talk to.
fn serve_demo_catalog(addr: &str) -> ! {
    let o = opts();
    let engine = Engine::with_config(o.cfg);
    register_demo_catalog(&engine).expect("fresh engine accepts the demo catalog");
    let config = ServerConfig {
        addr: addr.to_owned(),
        ..ServerConfig::default()
    };
    let server = match Server::bind(engine, &config) {
        Ok(server) => server,
        Err(e) => die(&format!("cannot bind {addr}: {e}")),
    };
    let bound = server.local_addr().expect("bound listener");
    println!(
        "harness serving on {bound} ({} workers, cache {} entries); \
         catalog: inbound, net_inbound, net_outbound, outbound",
        config.workers, config.cache_entries
    );
    match server.run() {
        Ok(()) => std::process::exit(0),
        Err(e) => die(&format!("server failed: {e}")),
    }
}

/// `--remote`: a connected client, or die with context.
fn remote_client(addr: &str) -> KsjqClient {
    KsjqClient::connect(addr)
        .unwrap_or_else(|e| die(&format!("cannot reach remote server {addr}: {e}")))
}

/// Unique remote relation names across sweep configurations (the remote
/// catalog rejects duplicates, and each config's data differs).
fn remote_names() -> (String, String) {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    (format!("h{pid}_r1_{id}"), format!("h{pid}_r2_{id}"))
}

/// LOAD one sweep configuration's pair of relations into the remote
/// server, returning their names there.
fn remote_load(client: &mut KsjqClient, params: &PaperParams) -> (String, String) {
    let (r1, r2) = remote_names();
    let spec = |seed| SyntheticSpec {
        data_type: params.data_type,
        n: params.n,
        d: params.d,
        a: params.a,
        g: params.g,
        seed,
    };
    client
        .load_synthetic(&r1, spec(params.seed))
        .unwrap_or_else(|e| die(&format!("remote LOAD failed: {e}")));
    client
        .load_synthetic(&r2, spec(params.seed + 1000))
        .unwrap_or_else(|e| die(&format!("remote LOAD failed: {e}")));
    (r1, r2)
}

fn remote_ksjq_sweep(addr: &str, configs: &[(String, PaperParams)]) {
    let o = opts();
    let mut client = remote_client(addr);
    println!("    over the wire via {addr}");
    for (label, params) in configs {
        let (r1, r2) = remote_load(&mut client, params);
        let goal = o.goal.unwrap_or(Goal::Exact(params.k));
        for &algo in &o.algos {
            let plan = PlanSpec::new(&r1, &r2)
                .aggs(&params.funcs())
                .goal(goal)
                .algorithm(algo)
                .kdom(o.cfg.kdom);
            let t = Instant::now();
            match client.query(&plan) {
                Ok(rows) => println!(
                    "    {label:<14} [{}] k={} rows={} server={}µs round-trip={:.1}ms{}",
                    label_of(algo),
                    rows.k,
                    rows.pairs.len(),
                    rows.micros,
                    t.elapsed().as_secs_f64() * 1e3,
                    if rows.cached { " (cached)" } else { "" },
                ),
                Err(e) => println!("    {label:<14} [{}] ERR {e}", label_of(algo)),
            }
        }
    }
}

fn remote_find_k_sweep(addr: &str, configs: &[(String, PaperParams, usize)]) {
    let o = opts();
    let mut client = remote_client(addr);
    println!("    over the wire via {addr}");
    for (label, params, delta) in configs {
        let (r1, r2) = remote_load(&mut client, params);
        for strategy in ["binary", "range", "naive"] {
            let goal: Goal = format!("atleast:{delta}:{strategy}")
                .parse()
                .expect("valid");
            let plan = PlanSpec::new(&r1, &r2)
                .aggs(&params.funcs())
                .goal(goal)
                .kdom(o.cfg.kdom);
            let t = Instant::now();
            match client.query(&plan) {
                Ok(rows) => println!(
                    "    {label:<14} [{}] chose k={} rows={} server={}µs round-trip={:.1}ms",
                    &strategy[..1].to_ascii_uppercase(),
                    rows.k,
                    rows.pairs.len(),
                    rows.micros,
                    t.elapsed().as_secs_f64() * 1e3,
                ),
                Err(e) => println!("    {label:<14} [{strategy}] ERR {e}"),
            }
        }
    }
}

/// Register one config's relations with a fresh engine and prepare its
/// plan — the sweep drivers below all run through this path so the tables
/// measure exactly what a serving engine would execute.
fn prepare_config(params: &PaperParams, goal: Goal) -> ksjq_core::PreparedQuery {
    let (r1, r2) = params.relations();
    let engine = Engine::with_config(opts().cfg);
    engine.register("r1", r1).expect("fresh catalog");
    engine.register("r2", r2).expect("fresh catalog");
    let plan = QueryPlan::new("r1", "r2")
        .aggregates(&params.funcs())
        .goal(goal);
    engine
        .prepare(&plan)
        .expect("paper params always produce a valid plan")
}

/// The part of a prepared plan that is invariant across the algorithms or
/// strategies a sweep runs over it: relations, join kind, arities,
/// k-range and kdom subroutine (a compact-explain line minus the
/// per-row algorithm, which the table rows name themselves).
fn shape_of(e: &ksjq_core::Explain) -> String {
    let p = &e.params;
    format!(
        "{:?} ⋈ {:?} [{}] d1={} d2={} a={} k∈[{},{}] kdom={}",
        e.left_name, e.right_name, e.join, p.d1, p.d2, p.a, e.k_min, e.k_max, e.kdom
    )
}

fn algo_labels(algos: &[Algorithm]) -> String {
    algos
        .iter()
        .map(|&a| label_of(a))
        .collect::<Vec<_>>()
        .join(",")
}

fn run_ksjq_sweep(configs: &[(String, PaperParams)]) {
    let o = opts();
    if let Some(addr) = &o.remote {
        remote_ksjq_sweep(addr, configs);
        return;
    }
    print_header("config");
    for (label, params) in configs {
        let prepared = prepare_config(params, o.goal.unwrap_or(Goal::Exact(params.k)));
        let e = prepared.explain();
        let p = e.params;
        println!(
            "    [{}] k={} k'={}/{} k''={}/{} over {}",
            algo_labels(&o.algos),
            p.k,
            p.k1_prime,
            p.k2_prime,
            p.k1_pp,
            p.k2_pp,
            shape_of(&e)
        );
        for run in run_algorithms(prepared.context(), prepared.k(), &o.cfg, &o.algos) {
            print_run(label, &run);
        }
    }
}

// ---------------------------------------------------------------- KSJQ, aggregate

fn fig1a(scale: f64) {
    banner(
        "Fig 1a",
        "effect of k (aggregate)",
        &format!("d=7 a=2 n=3300*{scale} g=10"),
    );
    let base = PaperParams::default().scaled(scale);
    let configs: Vec<_> = (8..=11)
        .map(|k| (format!("k={k}"), PaperParams { k, ..base }))
        .collect();
    run_ksjq_sweep(&configs);
}

fn fig1b(scale: f64) {
    banner(
        "Fig 1b",
        "effect of k (aggregate)",
        &format!("d=6 a=1 n=3300*{scale} g=10"),
    );
    let base = PaperParams {
        d: 6,
        a: 1,
        ..PaperParams::default()
    }
    .scaled(scale);
    let configs: Vec<_> = (7..=10)
        .map(|k| (format!("k={k}"), PaperParams { k, ..base }))
        .collect();
    run_ksjq_sweep(&configs);
}

fn fig2a(scale: f64) {
    banner(
        "Fig 2a",
        "effect of a",
        &format!("d=7 k=11 n=3300*{scale} g=10"),
    );
    let base = PaperParams::default().scaled(scale);
    let configs: Vec<_> = (0..=3)
        .map(|a| (format!("a={a}"), PaperParams { a, ..base }))
        .collect();
    run_ksjq_sweep(&configs);
}

fn fig2b(scale: f64) {
    banner(
        "Fig 2b",
        "dimensionality medley",
        &format!("n=3300*{scale} g=10"),
    );
    let base = PaperParams::default().scaled(scale);
    let configs: Vec<_> = [(5, 7, 1), (5, 7, 2), (6, 7, 1), (6, 7, 2), (6, 8, 2)]
        .into_iter()
        .map(|(d, k, a)| (format!("d{d},k{k},a{a}"), PaperParams { d, k, a, ..base }))
        .collect();
    run_ksjq_sweep(&configs);
}

fn fig3a(scale: f64) {
    banner(
        "Fig 3a",
        "effect of join groups g (aggregate)",
        &format!("d=7 a=2 k=11 n=3300*{scale}"),
    );
    let base = PaperParams::default().scaled(scale);
    let configs: Vec<_> = [1usize, 2, 5, 10, 25, 50, 100]
        .into_iter()
        .map(|g| (format!("g={g}"), PaperParams { g, ..base }))
        .collect();
    run_ksjq_sweep(&configs);
}

fn fig3b(scale: f64) {
    banner(
        "Fig 3b",
        "effect of dataset size n (aggregate)",
        &format!("d=7 a=2 k=11 g=10, n scaled by {scale}"),
    );
    let base = PaperParams::default();
    let mut sizes = vec![100usize, 330, 1000, 3300];
    if scale >= 1.0 {
        sizes.extend([10_000, 33_000]);
    }
    let configs: Vec<_> = sizes
        .into_iter()
        .map(|n| {
            let n = ((n as f64 * scale).round() as usize).max(10);
            (format!("n={n}"), PaperParams { n, ..base })
        })
        .collect();
    run_ksjq_sweep(&configs);
}

fn fig4(scale: f64) {
    banner(
        "Fig 4",
        "data distribution (aggregate)",
        &format!("d=7 a=2 k=11 n=3300*{scale} g=10"),
    );
    let base = PaperParams::default().scaled(scale);
    let configs: Vec<_> = [
        ("independent", DataType::Independent),
        ("correlated", DataType::Correlated),
        ("anti-corr", DataType::AntiCorrelated),
    ]
    .into_iter()
    .map(|(name, data_type)| (name.to_string(), PaperParams { data_type, ..base }))
    .collect();
    run_ksjq_sweep(&configs);
}

// ---------------------------------------------------------------- KSJQ, no aggregation

fn fig5a(scale: f64) {
    banner(
        "Fig 5a",
        "effect of k (no aggregation)",
        &format!("d=5 a=0 n=3300*{scale} g=10"),
    );
    let base = PaperParams {
        d: 5,
        a: 0,
        ..PaperParams::default()
    }
    .scaled(scale);
    let configs: Vec<_> = (6..=9)
        .map(|k| (format!("k={k}"), PaperParams { k, ..base }))
        .collect();
    run_ksjq_sweep(&configs);
}

fn fig5b(scale: f64) {
    banner(
        "Fig 5b",
        "effect of d (no aggregation)",
        &format!("a=0 n=3300*{scale} g=10"),
    );
    let base = PaperParams {
        a: 0,
        ..PaperParams::default()
    }
    .scaled(scale);
    let configs: Vec<_> = [(4, 7), (5, 7), (6, 7), (6, 11), (7, 11), (10, 11)]
        .into_iter()
        .map(|(d, k)| (format!("d{d},k{k}"), PaperParams { d, k, ..base }))
        .collect();
    run_ksjq_sweep(&configs);
}

fn fig6a(scale: f64) {
    banner(
        "Fig 6a",
        "effect of g (no aggregation)",
        &format!("d=4 k=7 n=3300*{scale}"),
    );
    let base = PaperParams {
        d: 4,
        a: 0,
        k: 7,
        ..PaperParams::default()
    }
    .scaled(scale);
    let configs: Vec<_> = [1usize, 2, 5, 10, 25, 50, 100]
        .into_iter()
        .map(|g| (format!("g={g}"), PaperParams { g, ..base }))
        .collect();
    run_ksjq_sweep(&configs);
}

fn fig6b(scale: f64) {
    banner(
        "Fig 6b",
        "effect of n (no aggregation)",
        &format!("d=4 k=7 g=10, n scaled by {scale}"),
    );
    let base = PaperParams {
        d: 4,
        a: 0,
        k: 7,
        ..PaperParams::default()
    };
    let mut sizes = vec![100usize, 330, 1000, 3300];
    if scale >= 1.0 {
        sizes.extend([10_000, 33_000]);
    }
    let configs: Vec<_> = sizes
        .into_iter()
        .map(|n| {
            let n = ((n as f64 * scale).round() as usize).max(10);
            (format!("n={n}"), PaperParams { n, ..base })
        })
        .collect();
    run_ksjq_sweep(&configs);
}

fn fig7(scale: f64) {
    banner(
        "Fig 7",
        "data distribution (no aggregation)",
        &format!("d=5 a=0 k=7 n=3300*{scale} g=10"),
    );
    let base = PaperParams {
        d: 5,
        a: 0,
        k: 7,
        ..PaperParams::default()
    }
    .scaled(scale);
    let configs: Vec<_> = [
        ("independent", DataType::Independent),
        ("correlated", DataType::Correlated),
        ("anti-corr", DataType::AntiCorrelated),
    ]
    .into_iter()
    .map(|(name, data_type)| (name.to_string(), PaperParams { data_type, ..base }))
    .collect();
    run_ksjq_sweep(&configs);
}

// ---------------------------------------------------------------- find-k

fn scaled_delta(delta: usize, scale: f64) -> usize {
    // The joined relation shrinks quadratically with n, so δ scales with
    // scale² to keep the same relative selectivity.
    ((delta as f64 * scale * scale).round() as usize).max(1)
}

fn run_find_k_sweep(configs: &[(String, PaperParams, usize)]) {
    let o = opts();
    if let Some(addr) = &o.remote {
        remote_find_k_sweep(addr, configs);
        return;
    }
    print_find_k_header("config");
    for (label, params, delta) in configs {
        // Prepare at the maximum k just to bind and validate the join; the
        // find-k strategies then probe the whole k-range themselves.
        let prepared = prepare_config(params, Goal::SkylineJoin);
        println!(
            "    [find-k B,R,N] δ={delta} over {}",
            shape_of(&prepared.explain())
        );
        for run in run_find_k(prepared.context(), *delta, &o.cfg) {
            print_find_k_run(label, &run);
        }
    }
}

fn fig8a(scale: f64) {
    banner(
        "Fig 8a",
        "find-k: effect of δ",
        &format!(
            "d=5 a=0 n=3300*{scale} g=10, δ scaled by {:.3}",
            scale * scale
        ),
    );
    let base = PaperParams {
        d: 5,
        a: 0,
        ..PaperParams::default()
    }
    .scaled(scale);
    let configs: Vec<_> = [10usize, 100, 1_000, 10_000, 100_000]
        .into_iter()
        .map(|delta| {
            let sd = scaled_delta(delta, scale);
            (format!("δ={delta}"), base, sd)
        })
        .collect();
    run_find_k_sweep(&configs);
}

fn fig8b(scale: f64) {
    banner(
        "Fig 8b",
        "find-k: effect of d",
        &format!("δ=10000*{:.3} a=0 n=3300*{scale} g=10", scale * scale),
    );
    let base = PaperParams {
        a: 0,
        ..PaperParams::default()
    }
    .scaled(scale);
    let delta = scaled_delta(10_000, scale);
    let configs: Vec<_> = [3usize, 4, 5, 7, 10]
        .into_iter()
        .map(|d| (format!("d={d}"), PaperParams { d, ..base }, delta))
        .collect();
    run_find_k_sweep(&configs);
}

fn fig9a(scale: f64) {
    banner(
        "Fig 9a",
        "find-k: effect of g",
        &format!("d=5 a=0 δ=10000*{:.3} n=3300*{scale}", scale * scale),
    );
    let base = PaperParams {
        d: 5,
        a: 0,
        ..PaperParams::default()
    }
    .scaled(scale);
    let delta = scaled_delta(10_000, scale);
    let configs: Vec<_> = [1usize, 2, 5, 10, 25, 50, 100]
        .into_iter()
        .map(|g| (format!("g={g}"), PaperParams { g, ..base }, delta))
        .collect();
    run_find_k_sweep(&configs);
}

fn fig9b(scale: f64) {
    banner(
        "Fig 9b",
        "find-k: effect of n",
        &format!("d=5 a=0 δ=1000*{:.3} g=10", scale * scale),
    );
    let base = PaperParams {
        d: 5,
        a: 0,
        ..PaperParams::default()
    };
    let delta = scaled_delta(1_000, scale);
    let mut sizes = vec![100usize, 330, 1000, 3300];
    if scale >= 1.0 {
        sizes.extend([10_000, 33_000]);
    }
    let configs: Vec<_> = sizes
        .into_iter()
        .map(|n| {
            let n = ((n as f64 * scale).round() as usize).max(10);
            (format!("n={n}"), PaperParams { n, ..base }, delta)
        })
        .collect();
    run_find_k_sweep(&configs);
}

fn fig10(scale: f64) {
    banner(
        "Fig 10",
        "find-k: data distribution",
        &format!("d=5 a=0 δ=10000*{:.3} n=3300*{scale} g=10", scale * scale),
    );
    let base = PaperParams {
        d: 5,
        a: 0,
        ..PaperParams::default()
    }
    .scaled(scale);
    let delta = scaled_delta(10_000, scale);
    let configs: Vec<_> = [
        ("independent", DataType::Independent),
        ("correlated", DataType::Correlated),
        ("anti-corr", DataType::AntiCorrelated),
    ]
    .into_iter()
    .map(|(name, data_type)| (name.to_string(), PaperParams { data_type, ..base }, delta))
    .collect();
    run_find_k_sweep(&configs);
}

// ------------------------------------------------- verification kernel

/// One recorded grouping run of the kernel figure's scalability sweep.
struct ScalabilityRow {
    n: usize,
    run: AlgoRun,
}

/// `kernel`: the verification-kernel ablation. Measures the pre-split
/// materialise-then-compare reference against the split-side kernel on an
/// anti-correlated workload (`n = 33000·scale`, the paper's Table 7 shape
/// with the hostile distribution), then sweeps the fig3b scalability sizes
/// with the grouping algorithm so wall-clock and the `ExecStats` kernel
/// counters land in one place. `--json PATH` writes the whole measurement
/// as the `BENCH_kernel.json` baseline.
fn kernel_figure(scale: f64) {
    let o = opts();
    let n = ((33_000f64 * scale).round() as usize).max(50);
    banner(
        "Kernel",
        "split-side vs materialized verification",
        &format!("anti-correlated d=7 a=2 k=11 g=10 n={n}"),
    );
    let params = PaperParams {
        n,
        data_type: DataType::AntiCorrelated,
        ..PaperParams::default()
    };
    // The materialized reference costs O(n²) per candidate; a stride
    // sample keeps the comparison tractable at the paper's sizes while
    // measuring both kernels on the identical candidates.
    const CANDIDATE_CAP: usize = 512;
    let cmp = compare_verification_kernels_sampled(&params, &o.cfg, Some(CANDIDATE_CAP));
    if cmp.measured < cmp.candidates {
        println!(
            "    measuring a deterministic sample of {} of {} candidates",
            cmp.measured, cmp.candidates
        );
    }
    println!(
        "    {:>14} {:>14} {:>16} {:>10} {:>9}",
        "kernel", "dom tests", "attr cmps", "wall(ms)", "survive"
    );
    for (name, cost) in [
        ("materialized", cmp.materialized),
        ("split-side", cmp.split),
        ("columnar", cmp.columnar),
    ] {
        println!(
            "    {:>14} {:>14} {:>16} {:>10} {:>9}",
            name,
            cost.dom_tests,
            cost.attr_cmps,
            ms(cost.wall),
            cost.survivors
        );
    }
    println!(
        "    split vs materialized: {:.2}x fewer attribute comparisons, {:.2}x \
         wall-clock; columnar vs split: {:.2}x wall-clock \
         ({} measured candidates, {} joined pairs)",
        cmp.attr_cmp_ratio(),
        cmp.speedup(),
        cmp.columnar_speedup(),
        cmp.measured,
        cmp.joined_pairs
    );

    // Dominator-generation scaling: the O(n²) phase 2 of the
    // dominator-based algorithm, sharded like classification.
    println!("\n    dominator generation (same workload), by thread count:");
    let domgen = measure_domgen_scaling(&params, &o.cfg, &[1, 2, 4]);
    let base = domgen[0].wall;
    for run in &domgen {
        println!(
            "    {:>10} threads {:>10} ms  {:.2}x  ({} set members)",
            run.threads,
            ms(run.wall),
            base.as_secs_f64() / run.wall.as_secs_f64().max(1e-9),
            run.members
        );
    }

    // fig3b-style scalability, grouping algorithm (the split kernel's
    // production consumer), with the kernel counters per size.
    println!("\n    scalability (grouping, independent, d=7 a=2 k=11 g=10):");
    print_header("config");
    let mut sizes = vec![100usize, 330, 1000, 3300];
    if scale >= 1.0 {
        sizes.extend([10_000, 33_000]);
    }
    let mut rows = Vec::new();
    for base_n in sizes {
        let sn = ((base_n as f64 * scale).round() as usize).max(10);
        let sweep = PaperParams {
            n: sn,
            ..PaperParams::default()
        };
        let prepared = prepare_config(&sweep, Goal::Exact(sweep.k));
        for run in run_algorithms(prepared.context(), sweep.k, &o.cfg, &[Algorithm::Grouping]) {
            print_run(&format!("n={sn}"), &run);
            rows.push(ScalabilityRow { n: sn, run });
        }
    }

    if let Some(path) = &o.json {
        let json = kernel_json(scale, &cmp, &domgen, &rows);
        std::fs::write(path, json).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("\n    wrote {path}");
    }
}

/// Serialise the kernel figure's measurements as the `BENCH_kernel.json`
/// baseline (hand-rolled: the workspace is dependency-free by design).
fn kernel_json(
    scale: f64,
    cmp: &KernelComparison,
    domgen: &[DomgenRun],
    rows: &[ScalabilityRow],
) -> String {
    fn cost(c: &KernelCost) -> String {
        format!(
            "{{\"dom_tests\": {}, \"attr_cmps\": {}, \"wall_ms\": {}, \"survivors\": {}}}",
            c.dom_tests,
            c.attr_cmps,
            ms(c.wall),
            c.survivors
        )
    }
    let p = &cmp.params;
    let workload = format!(
        "{{\"n\": {}, \"d\": {}, \"a\": {}, \"g\": {}, \"k\": {}, \"data_type\": \"{}\", \
         \"seed\": {}, \"joined_pairs\": {}, \"candidates\": {}, \"candidates_measured\": {}}}",
        p.n,
        p.d,
        p.a,
        p.g,
        p.k,
        p.data_type,
        p.seed,
        cmp.joined_pairs,
        cmp.candidates,
        cmp.measured
    );
    let scalability: Vec<String> = rows
        .iter()
        .map(|row| {
            let ph = row.run.output.stats.phases;
            let c = row.run.output.stats.counts;
            format!(
                "    {{\"n\": {}, \"algo\": \"{}\", \"grouping_ms\": {}, \"join_ms\": {}, \
                 \"domgen_ms\": {}, \"remaining_ms\": {}, \"total_ms\": {}, \"skyline\": {}, \
                 \"dom_tests\": {}, \"attr_cmps\": {}, \"targets_pruned\": {}}}",
                row.n,
                row.run.label,
                ms(ph.grouping),
                ms(ph.join),
                ms(ph.dominator_gen),
                ms(ph.remaining),
                ms(row.run.total),
                row.run.output.len(),
                c.dom_tests,
                c.attr_cmps,
                c.targets_pruned
            )
        })
        .collect();
    let base = domgen.first().map(|r| r.wall).unwrap_or_default();
    let domgen_rows: Vec<String> = domgen
        .iter()
        .map(|run| {
            format!(
                "    {{\"threads\": {}, \"wall_ms\": {}, \"speedup\": {:.3}, \"members\": {}}}",
                run.threads,
                ms(run.wall),
                base.as_secs_f64() / run.wall.as_secs_f64().max(1e-9),
                run.members
            )
        })
        .collect();
    format!(
        "{{\n  \"schema_version\": 2,\n  \"bench\": \"kernel\",\n  \"scale\": {scale},\n  \
         \"host_cpus\": {},\n  \
         \"kernel\": {{\n    \"workload\": {workload},\n    \"materialized\": {},\n    \
         \"split_side\": {},\n    \"columnar\": {},\n    \"attr_cmp_ratio\": {:.3},\n    \
         \"speedup\": {:.3},\n    \"columnar_speedup\": {:.3}\n  }},\n  \
         \"domgen_scaling\": [\n{}\n  ],\n  \
         \"fig3_scalability\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
        cost(&cmp.materialized),
        cost(&cmp.split),
        cost(&cmp.columnar),
        cmp.attr_cmp_ratio(),
        cmp.speedup(),
        cmp.columnar_speedup(),
        domgen_rows.join(",\n"),
        scalability.join(",\n")
    )
}

// ------------------------------------------------- incremental maintenance

/// One measured delta size of the `delta` subcommand.
struct DeltaRow {
    rows: usize,
    maintain: Duration,
    recompute: Duration,
    stats: MaintainStats,
    skyline: usize,
}

impl DeltaRow {
    fn speedup(&self) -> f64 {
        self.recompute.as_secs_f64() / self.maintain.as_secs_f64().max(1e-9)
    }
}

/// `delta`: incremental maintenance vs full recompute. Appends of
/// 1/16/256 anti-correlated rows to the left relation (`n = 33000·scale`,
/// the kernel figure's hostile workload), each maintained from the same
/// cached epoch-0 result via `maintain_append` and cross-checked for pair
/// equality against a from-scratch `ksjq_grouping` recompute over the
/// appended snapshot. `--json PATH` writes the whole measurement as the
/// `BENCH_delta.json` baseline.
fn delta_figure(scale: f64) {
    let o = opts();
    let n = ((33_000f64 * scale).round() as usize).max(50);
    banner(
        "Delta",
        "incremental maintenance vs full recompute",
        &format!("anti-correlated d=7 a=2 k=11 g=10 n={n}, appends to the left relation"),
    );
    let params = PaperParams {
        n,
        data_type: DataType::AntiCorrelated,
        ..PaperParams::default()
    };
    let (r1, r2) = params.relations();
    let funcs = params.funcs();
    let left = VersionedRelation::from_relation(Arc::new(r1)).expect("datagen keys are groups");
    let right = Arc::new(r2);
    let cx0 = JoinContext::from_arcs(
        left.snapshot().clone(),
        right.clone(),
        JoinSpec::Equality,
        &funcs,
    )
    .expect("paper params always produce a valid context");
    let t = Instant::now();
    let cached = ksjq_grouping(&cx0, params.k, &o.cfg).expect("valid workload");
    let base_wall = t.elapsed();
    println!(
        "    epoch-0 recompute: {} ms, |skyline| = {}",
        ms(base_wall),
        cached.len()
    );

    // The delta pool reuses the generator with a fresh seed, so appended
    // rows follow the same anti-correlated distribution as the base data.
    let pool = DatasetSpec {
        n: 256,
        agg_attrs: params.a,
        local_attrs: params.d - params.a,
        groups: params.g,
        data_type: params.data_type,
        seed: params.seed + 7777,
    }
    .generate();
    let pool_rows: Vec<(u64, Vec<f64>)> = (0..pool.n())
        .map(|i| {
            let t = TupleId(i as u32);
            (pool.group_id(t).expect("group keys"), pool.raw_row(t))
        })
        .collect();

    println!(
        "    {:>6} {:>13} {:>14} {:>9} {:>11} {:>10} {:>8} {:>9}",
        "Δrows",
        "maintain(ms)",
        "recompute(ms)",
        "speedup",
        "candidates",
        "rechecked",
        "evicted",
        "|skyline|"
    );
    let mut measured = Vec::new();
    for delta in [1usize, 16, 256] {
        let keys: Vec<u64> = pool_rows[..delta].iter().map(|(k, _)| *k).collect();
        let rows: Vec<Vec<f64>> = pool_rows[..delta].iter().map(|(_, r)| r.clone()).collect();
        let appended = left
            .append(&keys, &rows)
            .expect("pool rows match the schema");
        let cx = JoinContext::from_arcs(
            appended.snapshot().clone(),
            right.clone(),
            JoinSpec::Equality,
            &funcs,
        )
        .expect("appended snapshot keeps the base shape");
        // Best of three: single-row maintenance completes in microseconds,
        // so one timer read would mostly measure scheduler noise.
        let mut maintain = Duration::MAX;
        let mut out = None;
        for _ in 0..3 {
            let t = Instant::now();
            let run = maintain_append(&cx, params.k, &cached, left.n(), right.n())
                .expect("equality join, k in range");
            maintain = maintain.min(t.elapsed());
            out = Some(run);
        }
        let (maintained, mstats) = out.expect("three timed runs");
        let t = Instant::now();
        let fresh = ksjq_grouping(&cx, params.k, &o.cfg).expect("valid workload");
        let recompute = t.elapsed();
        assert_eq!(
            maintained.pairs, fresh.pairs,
            "maintenance diverged from recompute at Δ={delta}"
        );
        let row = DeltaRow {
            rows: delta,
            maintain,
            recompute,
            stats: mstats,
            skyline: maintained.len(),
        };
        println!(
            "    {:>6} {:>13} {:>14} {:>8.1}x {:>11} {:>10} {:>8} {:>9}",
            row.rows,
            ms(row.maintain),
            ms(row.recompute),
            row.speedup(),
            row.stats.candidates_checked,
            row.stats.cached_rechecked,
            row.stats.cached_evicted,
            row.skyline
        );
        measured.push(row);
    }

    if let Some(path) = &o.json {
        let json = delta_json(scale, &params, base_wall, cached.len(), &measured);
        std::fs::write(path, json).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("\n    wrote {path}");
    }
}

/// Serialise the delta figure's measurements as the `BENCH_delta.json`
/// baseline (hand-rolled: the workspace is dependency-free by design).
fn delta_json(
    scale: f64,
    params: &PaperParams,
    base_wall: Duration,
    base_skyline: usize,
    rows: &[DeltaRow],
) -> String {
    // Sub-millisecond maintenance needs more precision than `ms()` keeps.
    fn ms4(d: Duration) -> String {
        format!("{:.4}", d.as_secs_f64() * 1e3)
    }
    let workload = format!(
        "{{\"n\": {}, \"d\": {}, \"a\": {}, \"g\": {}, \"k\": {}, \"data_type\": \"{}\", \
         \"seed\": {}, \"base_recompute_ms\": {}, \"base_skyline\": {}}}",
        params.n,
        params.d,
        params.a,
        params.g,
        params.k,
        params.data_type,
        params.seed,
        ms(base_wall),
        base_skyline
    );
    let delta_rows: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "    {{\"rows\": {}, \"maintain_ms\": {}, \"recompute_ms\": {}, \
                 \"speedup\": {:.3}, \"candidates_checked\": {}, \"cached_rechecked\": {}, \
                 \"cached_evicted\": {}, \"inserted\": {}, \"dom_tests\": {}, \
                 \"attr_cmps\": {}, \"skyline\": {}}}",
                row.rows,
                ms4(row.maintain),
                ms4(row.recompute),
                row.speedup(),
                row.stats.candidates_checked,
                row.stats.cached_rechecked,
                row.stats.cached_evicted,
                row.stats.inserted,
                row.stats.counters.dom_tests,
                row.stats.counters.attr_cmps,
                row.skyline
            )
        })
        .collect();
    format!(
        "{{\n  \"schema_version\": 1,\n  \"bench\": \"delta\",\n  \"scale\": {scale},\n  \
         \"host_cpus\": {},\n  \"workload\": {workload},\n  \
         \"deltas\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
        delta_rows.join(",\n")
    )
}

// ---------------------------------------------------------------- real data

fn fig11(_scale: f64) {
    banner(
        "Fig 11",
        "flight network (synthetic stand-in for the MakeMyTrip data)",
        "192 x 155 flights, 13 hubs, cost+time aggregated, k in {6,7,8}",
    );
    let o = opts();
    let net = FlightNetworkSpec::default().generate();
    if let Some(addr) = &o.remote {
        // Ship the network as inline CSV — exercising the other LOAD path.
        let mut client = remote_client(addr);
        println!("    over the wire via {addr} (LOAD … INLINE)");
        let (r1, r2) = remote_names();
        let out_csv =
            relation_to_annotated_csv(&net.outbound, "hub", Some(&net.hubs)).expect("keyed");
        let in_csv =
            relation_to_annotated_csv(&net.inbound, "hub", Some(&net.hubs)).expect("keyed");
        client
            .load_csv(&r1, &out_csv)
            .unwrap_or_else(|e| die(&format!("remote LOAD failed: {e}")));
        client
            .load_csv(&r2, &in_csv)
            .unwrap_or_else(|e| die(&format!("remote LOAD failed: {e}")));
        let aggs = [ksjq_join::AggFunc::Sum, ksjq_join::AggFunc::Sum];
        for k in [6usize, 7, 8] {
            for &algo in &o.algos {
                let plan = PlanSpec::new(&r1, &r2)
                    .aggs(&aggs)
                    .k(k)
                    .algorithm(algo)
                    .kdom(o.cfg.kdom);
                let t = Instant::now();
                match client.query(&plan) {
                    Ok(rows) => println!(
                        "    k={k} [{}] rows={} server={}µs round-trip={:.1}ms{}",
                        label_of(algo),
                        rows.pairs.len(),
                        rows.micros,
                        t.elapsed().as_secs_f64() * 1e3,
                        if rows.cached { " (cached)" } else { "" },
                    ),
                    Err(e) => println!("    k={k} [{}] ERR {e}", label_of(algo)),
                }
            }
        }
        return;
    }
    let engine = Engine::with_config(o.cfg);
    engine
        .register("outbound", net.outbound)
        .expect("fresh catalog");
    engine
        .register("inbound", net.inbound)
        .expect("fresh catalog");
    let plan = QueryPlan::new("outbound", "inbound")
        .aggregates(&[ksjq_join::AggFunc::Sum, ksjq_join::AggFunc::Sum]);
    print_header("config");
    for k in [6usize, 7, 8] {
        let prepared = engine
            .prepare(&plan.clone().goal(Goal::Exact(k)))
            .expect("k in range");
        let e = prepared.explain();
        let p = e.params;
        if k == 6 {
            println!(
                "    joined itineraries: {}",
                prepared.context().count_pairs()
            );
        }
        println!(
            "    [{}] k={} k'={}/{} k''={}/{} over {}",
            algo_labels(&o.algos),
            p.k,
            p.k1_prime,
            p.k2_prime,
            p.k1_pp,
            p.k2_pp,
            shape_of(&e)
        );
        for run in run_algorithms(prepared.context(), k, &o.cfg, &o.algos) {
            print_run(&format!("k={k}"), &run);
        }
    }
}
