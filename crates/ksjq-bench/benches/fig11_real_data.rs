//! Fig. 11: the flight-network experiment (synthetic stand-in for the
//! paper's MakeMyTrip scrape): 192 × 155 flights over 13 hubs, cost and
//! flying time aggregated, k ∈ {6, 7, 8}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksjq_core::{ksjq_dominator_based, ksjq_grouping, ksjq_naive, Config};
use ksjq_datagen::FlightNetworkSpec;
use ksjq_join::{AggFunc, JoinContext, JoinSpec};

fn bench_flights(c: &mut Criterion) {
    let net = FlightNetworkSpec::default().generate();
    let cx = JoinContext::new(
        &net.outbound,
        &net.inbound,
        JoinSpec::Equality,
        &[AggFunc::Sum, AggFunc::Sum],
    )
    .unwrap();
    let cfg = Config::default();
    let mut group = c.benchmark_group("fig11_flight_network");
    for k in [6usize, 7, 8] {
        group.bench_with_input(BenchmarkId::new("G", k), &k, |b, &k| {
            b.iter(|| ksjq_grouping(&cx, k, &cfg).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("D", k), &k, |b, &k| {
            b.iter(|| ksjq_dominator_based(&cx, k, &cfg).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("N", k), &k, |b, &k| {
            b.iter(|| ksjq_naive(&cx, k, &cfg).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flights);
criterion_main!(benches);
