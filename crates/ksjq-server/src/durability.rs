//! Crash-safe catalogs: a write-ahead log of committed mutations plus a
//! startup snapshot, replayed on restart.
//!
//! The durable unit is one **wire request line** — every catalog
//! mutation the server applies (`LOAD`, `STAGE`, `COMMIT`, `ABORT`,
//! `APPEND`, `DELETE`) already round-trips through
//! [`Request`](crate::protocol::Request), so replay is simply re-running
//! the recorded lines through the same handlers that applied them the
//! first time. That is what makes recovery *byte-identical*: there is no
//! second, subtly different apply path to keep in sync.
//!
//! On disk a data directory holds two files:
//!
//! * `snapshot.ksjq` — a compacted base state: one `LOAD` record per
//!   relation, all stamped with the *seal* sequence number (the highest
//!   log sequence the snapshot includes). Written atomically
//!   (tmp + fsync + rename), so a reader either sees the old snapshot or
//!   the new one, never a torn one.
//! * `wal.ksjq` — records appended after the snapshot, fsynced before
//!   the client's `OK` is released. Recovery skips any record whose
//!   sequence is ≤ the snapshot's seal, so a crash between "snapshot
//!   renamed" and "log truncated" never double-applies.
//!
//! Each record is length-prefixed and checksummed:
//!
//! ```text
//! magic u32 | seq u64 | epoch u64 | len u32 | crc32 u32 | payload
//! ```
//!
//! (little-endian; `crc32` is CRC-32/IEEE over the payload). A torn or
//! bit-flipped tail — the crash case — fails the magic, length or
//! checksum test; [`read_records`] stops at the first invalid record and
//! reports how many bytes were valid, and recovery truncates the file
//! there. Every *prefix* of a log therefore replays to a valid committed
//! state (proptested in `tests/durability_prop.rs`): a mutation is either
//! fully durable or it never happened. Staged-but-uncommitted data is
//! deliberately volatile — recovery replays `STAGE` records (a later
//! `COMMIT` in the log may need them) and then clears whatever is still
//! staged, which is exactly the `ABORT` the coordinating router would
//! issue.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Record header marker ("KSJQ" little-endian).
const MAGIC: u32 = 0x514a_534b;

/// Header bytes before the payload: magic + seq + epoch + len + crc.
const HEADER_BYTES: usize = 4 + 8 + 8 + 4 + 4;

/// Hard cap on one record's payload, far above any real request line but
/// small enough that a corrupt length field cannot trigger a huge
/// allocation before the checksum gets a chance to reject it.
const MAX_PAYLOAD_BYTES: usize = 256 * 1024 * 1024;

/// CRC-32/IEEE (the zlib polynomial), table-driven; the table is built
/// at compile time so the hot path is one lookup per byte.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32/IEEE of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotone sequence number (1-based across the log's lifetime;
    /// compaction does not reset it).
    pub seq: u64,
    /// The server's `catalog_epoch` *after* this mutation applied —
    /// recovery restores the counter from the last replayed record.
    pub epoch: u64,
    /// The mutation as a wire request line (UTF-8).
    pub payload: Vec<u8>,
}

/// Serialise one record.
pub fn encode_record(seq: u64, epoch: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decode records from `bytes`, stopping at the first invalid one (bad
/// magic, impossible length, short tail, or checksum mismatch — all the
/// shapes a torn or bit-flipped crash tail takes). Returns the records
/// and the number of bytes the valid prefix spans, which is where a
/// recovering server truncates the file.
pub fn read_records(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= HEADER_BYTES {
        let at = |o: usize, n: usize| &bytes[pos + o..pos + o + n];
        let magic = u32::from_le_bytes(at(0, 4).try_into().expect("4 bytes"));
        if magic != MAGIC {
            break;
        }
        let seq = u64::from_le_bytes(at(4, 8).try_into().expect("8 bytes"));
        let epoch = u64::from_le_bytes(at(12, 8).try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(at(20, 4).try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(at(24, 4).try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD_BYTES || bytes.len() - pos - HEADER_BYTES < len {
            break;
        }
        let payload = &bytes[pos + HEADER_BYTES..pos + HEADER_BYTES + len];
        if crc32(payload) != crc {
            break;
        }
        records.push(WalRecord {
            seq,
            epoch,
            payload: payload.to_vec(),
        });
        pos += HEADER_BYTES + len;
    }
    (records, pos)
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.ksjq")
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.ksjq")
}

fn read_file(path: &Path) -> io::Result<Vec<u8>> {
    match File::open(path) {
        Ok(mut f) => {
            let mut bytes = Vec::new();
            f.read_to_end(&mut bytes)?;
            Ok(bytes)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

/// Flush directory metadata so a just-created or just-renamed file
/// survives a crash of the whole machine, not only of the process.
/// Best-effort off Linux (directories cannot always be `sync`ed).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Everything recovery learned from a data directory.
#[derive(Debug)]
pub struct Recovery {
    /// Mutations to replay, snapshot first then post-seal log records,
    /// in commit order.
    pub records: Vec<WalRecord>,
    /// Highest sequence seen (0 for a fresh directory); the reopened log
    /// continues from here.
    pub last_seq: u64,
    /// The `catalog_epoch` of the last record (0 for a fresh directory);
    /// the server restores its counter to this after replay.
    pub last_epoch: u64,
}

/// Read a data directory back: the snapshot's records, then every log
/// record past the snapshot's seal. The log's torn/corrupt tail (if any)
/// is truncated off on disk so the next append starts at a clean
/// boundary. Creates the directory if it does not exist.
pub fn recover(dir: &Path) -> io::Result<Recovery> {
    std::fs::create_dir_all(dir)?;
    let (snapshot, _) = read_records(&read_file(&snapshot_path(dir))?);
    let seal = snapshot.iter().map(|r| r.seq).max().unwrap_or(0);
    let wal_bytes = read_file(&wal_path(dir))?;
    let (wal, valid) = read_records(&wal_bytes);
    if valid < wal_bytes.len() {
        // Torn or corrupt tail from a crash mid-append: drop it.
        let f = OpenOptions::new().write(true).open(wal_path(dir))?;
        f.set_len(valid as u64)?;
        f.sync_all()?;
    }
    let mut records = snapshot;
    records.extend(wal.into_iter().filter(|r| r.seq > seal));
    let last_seq = records.iter().map(|r| r.seq).max().unwrap_or(0);
    let last_epoch = records.last().map(|r| r.epoch).unwrap_or(0);
    Ok(Recovery {
        records,
        last_seq,
        last_epoch,
    })
}

/// An open write-ahead log. Every [`append`](Wal::append) is written and
/// fsynced before it returns, so once the caller releases its `OK` the
/// mutation survives `kill -9`.
#[derive(Debug)]
pub struct Wal {
    file: File,
    next_seq: u64,
}

impl Wal {
    /// Append one mutation at `epoch`; durable when this returns.
    pub fn append(&mut self, epoch: u64, payload: &[u8]) -> io::Result<u64> {
        let seq = self.next_seq;
        self.file.write_all(&encode_record(seq, epoch, payload))?;
        self.file.sync_data()?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// The sequence the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

/// Write a fresh snapshot (`lines`, all sealed at `seq`/`epoch`)
/// atomically, empty the log, and return it reopened for appending.
///
/// Crash-safe at every step: until the `rename` lands the old snapshot
/// is intact and the log still holds the records being compacted; after
/// it, the seal makes any not-yet-truncated log records no-ops.
pub fn compact(dir: &Path, lines: &[String], seq: u64, epoch: u64) -> io::Result<Wal> {
    let tmp = dir.join("snapshot.tmp");
    {
        let mut f = File::create(&tmp)?;
        for line in lines {
            f.write_all(&encode_record(seq, epoch, line.as_bytes()))?;
        }
        f.sync_all()?;
    }
    std::fs::rename(&tmp, snapshot_path(dir))?;
    sync_dir(dir);
    let file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(wal_path(dir))?;
    file.sync_all()?;
    sync_dir(dir);
    Ok(Wal {
        file,
        next_seq: seq + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ksjq-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn records_roundtrip() {
        let payloads = ["LOAD a INLINE k,v;x,1", "APPEND a ROWS y,2", ""];
        let mut bytes = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(i as u64 + 1, i as u64, p.as_bytes()));
        }
        let (records, valid) = read_records(&bytes);
        assert_eq!(valid, bytes.len());
        assert_eq!(records.len(), payloads.len());
        for (r, p) in records.iter().zip(payloads) {
            assert_eq!(r.payload, p.as_bytes());
        }
        assert_eq!(records[2].seq, 3);
    }

    #[test]
    fn torn_tail_stops_cleanly() {
        let mut bytes = encode_record(1, 1, b"LOAD a INLINE k,v;x,1");
        let whole = bytes.len();
        bytes.extend_from_slice(&encode_record(2, 2, b"APPEND a ROWS y,2"));
        // Every truncation point mid-second-record keeps exactly the
        // first record.
        for cut in whole..bytes.len() {
            let (records, valid) = read_records(&bytes[..cut]);
            assert_eq!(records.len(), 1, "cut={cut}");
            assert_eq!(valid, whole);
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let bytes = encode_record(1, 1, b"LOAD a INLINE k,v;x,1");
        for i in 0..bytes.len() {
            for bit in [0u8, 3, 7] {
                let mut evil = bytes.clone();
                evil[i] ^= 1 << bit;
                let (records, _) = read_records(&evil);
                // The record is either rejected outright or (for flips in
                // the seq/epoch fields, which the checksum does not
                // cover) still parses with an altered stamp — but the
                // payload itself can never silently change.
                if let Some(r) = records.first() {
                    assert_eq!(r.payload, b"LOAD a INLINE k,v;x,1", "byte {i} bit {bit}");
                }
            }
        }
        // A payload flip specifically must kill the record.
        let mut evil = bytes.clone();
        let last = evil.len() - 1;
        evil[last] ^= 0x10;
        assert_eq!(read_records(&evil).0.len(), 0);
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let dir = tmpdir("fresh");
        let r = recover(&dir.join("sub")).unwrap();
        assert!(r.records.is_empty());
        assert_eq!((r.last_seq, r.last_epoch), (0, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_seals_out_replayed_log_records() {
        let dir = tmpdir("seal");
        // A log with two mutations, no snapshot yet.
        let mut wal = compact(&dir, &[], 0, 0).unwrap();
        wal.append(1, b"LOAD a INLINE k,v;x,1").unwrap();
        wal.append(2, b"APPEND a ROWS y,2").unwrap();
        let r = recover(&dir).unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!((r.last_seq, r.last_epoch), (2, 2));
        // Compact to one snapshot line sealed at seq 2; simulate a crash
        // *before* the log truncate by re-writing the old records.
        let snap = vec!["LOAD a INLINE k,v;x,1;y,2".to_owned()];
        drop(compact(&dir, &snap, r.last_seq, r.last_epoch).unwrap());
        let mut stale = OpenOptions::new()
            .write(true)
            .open(dir.join("wal.ksjq"))
            .unwrap();
        stale
            .write_all(&encode_record(1, 1, b"LOAD a INLINE k,v;x,1"))
            .unwrap();
        stale
            .write_all(&encode_record(2, 2, b"APPEND a ROWS y,2"))
            .unwrap();
        drop(stale);
        // Recovery sees the snapshot only: both stale records are ≤ seal.
        let r2 = recover(&dir).unwrap();
        assert_eq!(r2.records.len(), 1);
        assert_eq!(r2.records[0].payload, snap[0].as_bytes());
        assert_eq!((r2.last_seq, r2.last_epoch), (2, 2));
        // And a post-compaction append lands past the seal.
        let mut wal = compact(&dir, &snap, r2.last_seq, r2.last_epoch).unwrap();
        assert_eq!(wal.append(3, b"APPEND a ROWS z,3").unwrap(), 3);
        let r3 = recover(&dir).unwrap();
        assert_eq!(r3.records.len(), 2);
        assert_eq!((r3.last_seq, r3.last_epoch), (3, 3));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
