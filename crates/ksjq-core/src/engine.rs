//! The serving engine: a shared catalog plus plan preparation/execution.
//!
//! This is the concurrent entry point to KSJQ. Register relations once,
//! then prepare and execute owned [`QueryPlan`]s against them from as many
//! threads as you like:
//!
//! ```
//! use ksjq_core::{Algorithm, Engine, Goal, QueryPlan};
//! use ksjq_datagen::paper_flights;
//!
//! let engine = Engine::new();
//! let pf = paper_flights(false);
//! engine.register("outbound", pf.outbound).unwrap();
//! engine.register("inbound", pf.inbound).unwrap();
//!
//! let plan = QueryPlan::new("outbound", "inbound")
//!     .goal(Goal::Exact(7))
//!     .algorithm(Algorithm::Grouping);
//! let prepared = engine.prepare(&plan).unwrap();
//! println!("{}", prepared.explain());
//! assert_eq!(prepared.execute().unwrap().len(), 4); // Table 3's skyline
//! ```
//!
//! The layering mirrors a classic query stack:
//!
//! * [`Catalog`] (in `ksjq-relation`) — named data, held as
//!   `Arc<Relation>`; registration is the only place data enters.
//! * [`QueryPlan`] (in [`plan`](crate::plan)) — the owned logical query.
//! * [`Engine::prepare`] — name resolution + *all* validation (join
//!   compatibility, `k` range, find-k goal resolution), producing a
//!   [`PreparedQuery`] that owns `Arc`s to its inputs.
//! * [`PreparedQuery::execute`] — runs the chosen algorithm;
//!   [`PreparedQuery::explain`] says what would run.
//!
//! `Engine` is `Clone + Send + Sync`; clones share the catalog. A
//! `PreparedQuery` is itself `Send + Sync` and can be executed repeatedly
//! and concurrently (execution takes `&self`).

use crate::config::Config;
use crate::error::{CoreError, CoreResult};
use crate::explain::Explain;
use crate::find_k::{find_k_at_least, find_k_at_most, FindKReport};
use crate::output::KsjqOutput;
use crate::params::{k_max, k_min, validate_k, KsjqParams};
use crate::plan::{Goal, QueryPlan, RelationRef};
use crate::query::{dispatch, Algorithm};
use ksjq_join::JoinContext;
use ksjq_relation::{Catalog, Relation, RelationHandle};
use std::sync::Arc;

/// A shareable KSJQ serving engine: catalog + default execution config.
///
/// Cheap to clone; clones share the same catalog. See the [module
/// docs](self) for the full picture.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    catalog: Catalog,
    config: Config,
}

impl Engine {
    /// An engine with an empty catalog and default [`Config`].
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine whose prepared queries default to `config` (plans can
    /// still override per query via [`QueryPlan::config`]).
    pub fn with_config(config: Config) -> Self {
        Engine {
            catalog: Catalog::new(),
            config,
        }
    }

    /// An engine serving an existing (possibly shared) catalog.
    pub fn over(catalog: Catalog) -> Self {
        Engine {
            catalog,
            config: Config::default(),
        }
    }

    /// The engine's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The engine's default execution config.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Register `relation` under `name`. Fails on duplicate or invalid
    /// names — naming is validated here, eagerly, not at query time.
    pub fn register(
        &self,
        name: impl Into<String>,
        relation: Relation,
    ) -> CoreResult<RelationHandle> {
        Ok(self.catalog.register(name, relation)?)
    }

    /// Register an already-shared relation under `name` (no copy).
    pub fn register_arc(
        &self,
        name: impl Into<String>,
        relation: Arc<Relation>,
    ) -> CoreResult<RelationHandle> {
        Ok(self.catalog.register_arc(name, relation)?)
    }

    /// Look up a registered relation.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownRelation`] if `name` is not registered.
    pub fn relation(&self, name: &str) -> CoreResult<RelationHandle> {
        self.catalog
            .get(name)
            .ok_or_else(|| CoreError::UnknownRelation {
                name: name.to_owned(),
            })
    }

    fn resolve(&self, rel: &RelationRef) -> CoreResult<RelationHandle> {
        match rel {
            RelationRef::Name(name) => self.relation(name),
            RelationRef::Handle(handle) => Ok(handle.clone()),
        }
    }

    /// Resolve, validate and bind `plan`, returning an executable
    /// [`PreparedQuery`].
    ///
    /// Everything that can fail, fails here — not at execute time:
    ///
    /// * [`CoreError::UnknownRelation`] — a name the catalog doesn't know;
    /// * join-compatibility errors (aggregate arity/preference mismatch,
    ///   key-kind mismatch) propagated as [`CoreError::Join`];
    /// * [`CoreError::InvalidK`] — a [`Goal::Exact`] `k` outside
    ///   `max{d1, d2} < k ≤ d1 + d2 − a`, or an empty range;
    /// * find-k errors for [`Goal::AtLeast`] / [`Goal::AtMost`] (these
    ///   goals run the paper's Algorithms 4–6 during prepare and pin the
    ///   resulting `k` into the prepared query, with the search's
    ///   [`FindKReport`] attached).
    pub fn prepare(&self, plan: &QueryPlan) -> CoreResult<PreparedQuery> {
        let left = self.resolve(&plan.left)?;
        let right = self.resolve(&plan.right)?;
        let mut config = plan.config.unwrap_or(self.config);
        if let Some(kdom) = plan.kdom {
            config.kdom = kdom;
        }
        let cx = JoinContext::from_arcs(
            left.relation().clone(),
            right.relation().clone(),
            plan.spec,
            &plan.funcs,
        )?;
        let (k, find_k) = match plan.goal {
            Goal::Exact(k) => (k, None),
            Goal::SkylineJoin => (k_max(&cx), None),
            Goal::AtLeast(delta, strategy) => {
                let report = find_k_at_least(&cx, delta, strategy, &config)?;
                (report.k, Some(report))
            }
            Goal::AtMost(delta, strategy) => {
                let report = find_k_at_most(&cx, delta, strategy, &config)?;
                (report.k, Some(report))
            }
        };
        let params = validate_k(&cx, k)?;
        Ok(PreparedQuery {
            left,
            right,
            k_min: k_min(&cx),
            k_max: k_max(&cx),
            cx,
            params,
            goal: plan.goal,
            algorithm: plan.algorithm,
            config,
            find_k,
        })
    }

    /// Convenience: [`prepare`](Self::prepare) + execute in one call.
    pub fn execute(&self, plan: &QueryPlan) -> CoreResult<KsjqOutput> {
        self.prepare(plan)?.execute()
    }
}

/// A plan bound to data and fully validated, ready to execute — the
/// product of [`Engine::prepare`].
///
/// Owns `Arc`s to its relations (no lifetimes), so it is `Send + Sync`,
/// can outlive the engine and catalog that produced it, and can be
/// executed repeatedly and from several threads at once.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    left: RelationHandle,
    right: RelationHandle,
    cx: JoinContext<'static>,
    params: KsjqParams,
    k_min: usize,
    k_max: usize,
    goal: Goal,
    algorithm: Algorithm,
    config: Config,
    find_k: Option<FindKReport>,
}

impl PreparedQuery {
    /// Execute with the plan's algorithm.
    pub fn execute(&self) -> CoreResult<KsjqOutput> {
        dispatch(&self.cx, self.params.k, self.algorithm, &self.config)
    }

    /// Execute with an explicitly chosen algorithm (ignoring the plan's
    /// choice) — convenient for comparisons.
    pub fn execute_with(&self, algorithm: Algorithm) -> CoreResult<KsjqOutput> {
        dispatch(&self.cx, self.params.k, algorithm, &self.config)
    }

    /// Execute with the plan's algorithm under a cooperative cancellation
    /// deadline (tightened against any deadline already in the config —
    /// the earlier instant wins). Returns
    /// [`CoreError::DeadlineExceeded`](crate::CoreError) once the
    /// deadline passes; the prepared query stays valid and can be
    /// re-executed.
    pub fn execute_within(&self, deadline: Option<std::time::Instant>) -> CoreResult<KsjqOutput> {
        let config = self.config.deadline_capped(deadline);
        dispatch(&self.cx, self.params.k, self.algorithm, &config)
    }

    /// A human-readable summary of what [`execute`](Self::execute) will
    /// run: relations, join kind, arities, k-range, derived thresholds,
    /// algorithm and kdom subroutine.
    pub fn explain(&self) -> Explain {
        Explain {
            left_name: self.left.name().to_owned(),
            right_name: self.right.name().to_owned(),
            left_n: self.left.n(),
            right_n: self.right.n(),
            join: self.cx.spec(),
            funcs: self.cx.funcs().iter().map(|f| f.to_string()).collect(),
            goal: self.goal,
            k_min: self.k_min,
            k_max: self.k_max,
            params: self.params,
            algorithm: self.algorithm,
            kdom: self.config.kdom,
            threads: self.config.threads,
        }
    }

    /// The bound join context.
    pub fn context(&self) -> &JoinContext<'static> {
        &self.cx
    }

    /// The query's `k` (for find-k goals: the `k` the search chose).
    pub fn k(&self) -> usize {
        self.params.k
    }

    /// Every derived parameter of the bound query.
    pub fn params(&self) -> &KsjqParams {
        &self.params
    }

    /// The goal the plan was prepared with.
    pub fn goal(&self) -> Goal {
        self.goal
    }

    /// The algorithm [`execute`](Self::execute) will run.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The effective execution config (plan override or engine default).
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The left relation handle.
    pub fn left(&self) -> &RelationHandle {
        &self.left
    }

    /// The right relation handle.
    pub fn right(&self) -> &RelationHandle {
        &self.right
    }

    /// For [`Goal::AtLeast`] / [`Goal::AtMost`] plans: the find-k search
    /// report produced during prepare.
    pub fn find_k_report(&self) -> Option<&FindKReport> {
        self.find_k.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_k::FindKStrategy;
    use ksjq_datagen::paper_flights;

    fn flights_engine() -> Engine {
        let engine = Engine::new();
        let pf = paper_flights(false);
        engine.register("outbound", pf.outbound).unwrap();
        engine.register("inbound", pf.inbound).unwrap();
        engine
    }

    #[test]
    fn engine_is_clone_send_sync() {
        fn assert_clone_send_sync<T: Clone + Send + Sync>() {}
        assert_clone_send_sync::<Engine>();
        assert_clone_send_sync::<PreparedQuery>();
    }

    #[test]
    fn prepare_execute_paper_example() {
        let engine = flights_engine();
        let plan = QueryPlan::new("outbound", "inbound").k(7);
        let prepared = engine.prepare(&plan).unwrap();
        assert_eq!(prepared.k(), 7);
        assert_eq!((prepared.k_min, prepared.k_max), (5, 8));
        let out = prepared.execute().unwrap();
        assert_eq!(out.len(), 4);
        // Re-execution and engine-level convenience agree.
        assert_eq!(prepared.execute().unwrap().pairs, out.pairs);
        assert_eq!(engine.execute(&plan).unwrap().pairs, out.pairs);
    }

    #[test]
    fn default_goal_is_skyline_join() {
        let engine = flights_engine();
        let prepared = engine
            .prepare(&QueryPlan::new("outbound", "inbound"))
            .unwrap();
        assert_eq!(prepared.k(), 8); // d1 + d2 = 4 + 4
        assert_eq!(prepared.goal(), Goal::SkylineJoin);
    }

    #[test]
    fn unknown_relation_fails_at_prepare() {
        let engine = flights_engine();
        let err = engine
            .prepare(&QueryPlan::new("outbound", "nope"))
            .unwrap_err();
        assert!(
            matches!(err, CoreError::UnknownRelation { ref name } if name == "nope"),
            "{err}"
        );
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn handles_bypass_the_catalog() {
        let engine = flights_engine();
        let other = Engine::new(); // empty catalog
        let out_h = engine.relation("outbound").unwrap();
        let in_h = engine.relation("inbound").unwrap();
        let plan = QueryPlan::new(&out_h, &in_h).k(7);
        // Prepared against an engine that has *no* registered relations.
        assert_eq!(other.prepare(&plan).unwrap().execute().unwrap().len(), 4);
    }

    #[test]
    fn find_k_goal_resolves_at_prepare() {
        let engine = flights_engine();
        let plan =
            QueryPlan::new("outbound", "inbound").goal(Goal::AtLeast(1, FindKStrategy::Binary));
        let prepared = engine.prepare(&plan).unwrap();
        let report = prepared.find_k_report().unwrap();
        assert!(report.satisfied);
        assert_eq!(report.k, prepared.k());
        assert!(!prepared.execute().unwrap().is_empty());
    }

    #[test]
    fn kdom_override_composes_with_engine_config() {
        let pf = paper_flights(false);
        let engine = Engine::with_config(Config::with_threads(3));
        engine.register("outbound", pf.outbound).unwrap();
        engine.register("inbound", pf.inbound).unwrap();
        let prepared = engine
            .prepare(&QueryPlan::new("outbound", "inbound").kdom(crate::KdomAlgo::Osa))
            .unwrap();
        // The subroutine override must not clobber the engine's threads.
        assert_eq!(prepared.config().kdom, crate::KdomAlgo::Osa);
        assert_eq!(prepared.config().threads, 3);
        // A full config override still wins wholesale.
        let prepared = engine
            .prepare(&QueryPlan::new("outbound", "inbound").config(Config::default()))
            .unwrap();
        assert_eq!(prepared.config().threads, 1);
    }

    #[test]
    fn expired_deadline_cancels_and_query_stays_usable() {
        use std::time::{Duration, Instant};
        let engine = flights_engine();
        let prepared = engine
            .prepare(&QueryPlan::new("outbound", "inbound").k(7))
            .unwrap();
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(
            prepared.execute_within(Some(past)).unwrap_err(),
            CoreError::DeadlineExceeded
        );
        // A generous deadline gives the usual answer, and the prepared
        // query is unharmed by the earlier cancellation.
        let far = Instant::now() + Duration::from_secs(60);
        assert_eq!(prepared.execute_within(Some(far)).unwrap().len(), 4);
        assert_eq!(prepared.execute().unwrap().len(), 4);
    }

    #[test]
    fn prepared_query_outlives_engine_and_catalog() {
        let prepared = {
            let engine = flights_engine();
            engine
                .prepare(&QueryPlan::new("outbound", "inbound").k(7))
                .unwrap()
            // engine (and its catalog) dropped here
        };
        assert_eq!(prepared.execute().unwrap().len(), 4);
    }
}
