//! Microbenchmarks of the hot kernels: the dominance counting loop (full,
//! partial and blocked forms), the verification kernels (materialized vs
//! split-side), the single-relation k-dominant skyline algorithms, and the
//! classification routine — plus the ablation DESIGN.md calls out
//! (one-sided target verification vs a paper-literal full-join scan for
//! the "may be" set).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksjq_bench::{prepare_candidates, run_columnar, run_materialized, run_split, PaperParams};
use ksjq_core::{
    classify, classify_parallel, ksjq_grouping, ksjq_naive, precompute_target_sets, validate_k,
    Config,
};
use ksjq_datagen::{DataType, DatasetSpec};
use ksjq_relation::{
    dom_counts, dom_counts_block, dom_counts_block_columnar, dom_counts_partial,
    dom_counts_partial_block_columnar, k_dominates,
};
use ksjq_skyline::{k_dominant_skyline, KdomAlgo};

fn bench_dominance_kernel(c: &mut Criterion) {
    let spec = DatasetSpec {
        n: 1000,
        agg_attrs: 0,
        local_attrs: 12,
        groups: 1,
        data_type: DataType::Independent,
        seed: 3,
    };
    let rel = spec.generate();
    let mut group = c.benchmark_group("kernel_dominance");
    group.bench_function("dom_counts_12d", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..999u32 {
                acc += dom_counts(rel.row_at(i as usize), rel.row_at(i as usize + 1)).le;
            }
            acc
        })
    });
    for k in [7usize, 11] {
        group.bench_with_input(BenchmarkId::new("k_dominates_12d", k), &k, |b, &k| {
            b.iter(|| {
                let mut acc = 0usize;
                for i in 0..999u32 {
                    acc +=
                        k_dominates(rel.row_at(i as usize), rel.row_at(i as usize + 1), k) as usize;
                }
                acc
            })
        });
    }
    // Split-side primitives: indexed-segment counting and the blocked
    // candidate-vs-relation sweep.
    let attrs: Vec<usize> = (0..6).collect();
    group.bench_function("dom_counts_partial_6of12", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..999u32 {
                acc += dom_counts_partial(
                    rel.row_at(i as usize),
                    &attrs,
                    &rel.row_at(i as usize + 1)[..6],
                )
                .le;
            }
            acc
        })
    });
    group.bench_function("dom_counts_block_1000x12", |b| {
        let probe = rel.row_at(0).to_vec();
        let mut out = Vec::with_capacity(rel.n());
        b.iter(|| {
            out.clear();
            dom_counts_block(rel.values(), &probe, &mut out);
            out.iter().map(|c| c.le).sum::<u32>()
        })
    });
    // Columnar counterparts: the attribute-major lane-blocked sweeps the
    // production target-set scan and verifier are built on.
    group.bench_function("dom_counts_block_columnar_1000x12", |b| {
        let probe = rel.row_at(0).to_vec();
        let mut out = Vec::with_capacity(rel.n());
        b.iter(|| {
            out.clear();
            dom_counts_block_columnar(rel.columns(), rel.n(), &probe, &mut out);
            out.iter().map(|c| c.le).sum::<u32>()
        })
    });
    group.bench_function("dom_counts_partial_columnar_1000x6of12", |b| {
        let probe: Vec<f64> = attrs.iter().map(|&a| rel.row_at(0)[a]).collect();
        let mut out = Vec::with_capacity(rel.n());
        b.iter(|| {
            out.clear();
            dom_counts_partial_block_columnar(rel.columns(), rel.n(), &attrs, &probe, &mut out);
            out.iter().map(|c| c.le).sum::<u32>()
        })
    });
    group.finish();
}

/// The tentpole comparison: verifying one workload's candidates with the
/// pre-split materialise-then-compare reference vs the split-side kernel.
/// Dataset generation, classification and candidate materialisation are
/// shared setup hoisted out of the timed loops — each sample measures one
/// verification sweep and nothing else.
fn bench_verification_kernels(c: &mut Criterion) {
    let params = PaperParams {
        n: 330,
        data_type: DataType::AntiCorrelated,
        ..Default::default()
    };
    let cfg = Config::default();
    let (r1, r2) = params.relations();
    let cx = params.context(&r1, &r2);
    let cands = prepare_candidates(&cx, params.k, &cfg);
    let mut group = c.benchmark_group("kernel_verification");
    group.sample_size(10);
    group.bench_function("materialized_330", |b| {
        b.iter(|| run_materialized(&cx, params.k, &cands).attr_cmps)
    });
    group.bench_function("split_side_330", |b| {
        b.iter(|| run_split(&cx, params.k, &cands).attr_cmps)
    });
    group.bench_function("columnar_330", |b| {
        b.iter(|| run_columnar(&cx, params.k, &cands).attr_cmps)
    });
    group.finish();
}

/// The dominator-generation phase (dominator-based algorithm phase 2):
/// serial vs sharded target-set precomputation over both sides.
fn bench_parallel_domgen(c: &mut Criterion) {
    let params = PaperParams {
        n: 800,
        data_type: DataType::AntiCorrelated,
        ..Default::default()
    };
    let (r1, r2) = params.relations();
    let cx = params.context(&r1, &r2);
    let p = validate_k(&cx, params.k).unwrap();
    let cls = classify(&cx, &p, KdomAlgo::Tsa);
    let mut group = c.benchmark_group("kernel_domgen");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("precompute_target_sets", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let lt = precompute_target_sets(cx.left(), &cls.left, p.k1_pp, threads);
                    let rt = precompute_target_sets(cx.right(), &cls.right, p.k2_pp, threads);
                    lt.len() + rt.len()
                })
            },
        );
    }
    group.finish();
}

fn bench_kdom_algorithms(c: &mut Criterion) {
    let spec = DatasetSpec {
        n: 800,
        agg_attrs: 0,
        local_attrs: 6,
        groups: 1,
        data_type: DataType::Independent,
        seed: 9,
    };
    let rel = spec.generate();
    let all: Vec<u32> = (0..rel.n() as u32).collect();
    let mut group = c.benchmark_group("kernel_kdom_single_relation");
    group.sample_size(10);
    for (name, algo) in [
        ("naive", KdomAlgo::Naive),
        ("osa", KdomAlgo::Osa),
        ("tsa", KdomAlgo::Tsa),
        ("tsa_presort", KdomAlgo::TsaPresort),
    ] {
        group.bench_function(BenchmarkId::new(name, 5), |b| {
            b.iter(|| k_dominant_skyline(&rel, &all, 5, algo).len())
        });
    }
    group.finish();
}

fn bench_classification(c: &mut Criterion) {
    let params = PaperParams {
        n: 800,
        ..Default::default()
    };
    let (r1, r2) = params.relations();
    let cx = params.context(&r1, &r2);
    let p = validate_k(&cx, params.k).unwrap();
    let mut group = c.benchmark_group("kernel_classification");
    group.sample_size(10);
    for (name, algo) in [("tsa", KdomAlgo::Tsa), ("osa", KdomAlgo::Osa)] {
        group.bench_function(name, |b| b.iter(|| classify(&cx, &p, algo).tallies(0)));
    }
    group.bench_function("tsa_4_threads", |b| {
        b.iter(|| classify_parallel(&cx, &p, KdomAlgo::Tsa, 4).tallies(0))
    });
    group.finish();
}

/// Ablation: the paper's Algorithm 2 checks `SN1 ⋈ SN2` candidates
/// against the whole joined relation; our implementation filters through
/// the left leg's target set first (identical answers — the target filter
/// is a *necessary* condition on dominators). This measures what that
/// refinement buys by comparing the full grouping run against the naive
/// full-join scan it avoids.
fn bench_ablation_target_filter(c: &mut Criterion) {
    let params = PaperParams {
        n: 330,
        d: 5,
        a: 0,
        k: 7,
        ..Default::default()
    };
    let (r1, r2) = params.relations();
    let cx = params.context(&r1, &r2);
    let cfg = Config::default();
    let mut group = c.benchmark_group("ablation_maybe_check");
    group.sample_size(10);
    group.bench_function("grouping_with_target_filter", |b| {
        b.iter(|| ksjq_grouping(&cx, params.k, &cfg).unwrap().len())
    });
    group.bench_function("paper_literal_full_join_scan", |b| {
        b.iter(|| ksjq_naive(&cx, params.k, &cfg).unwrap().len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dominance_kernel,
    bench_verification_kernels,
    bench_parallel_domgen,
    bench_kdom_algorithms,
    bench_classification,
    bench_ablation_target_filter
);
criterion_main!(benches);
