//! Derived KSJQ parameters and validation.

use crate::error::{CoreError, CoreResult};
use ksjq_join::JoinContext;

/// All derived quantities of one KSJQ instance.
///
/// Notation follows the paper: `d_i` attributes per base relation of which
/// `a` are aggregated and `l_i = d_i − a` local; the joined relation has
/// `l1 + l2 + a` skyline attributes; classification thresholds are
/// `k′1 = k − l2` and `k′2 = k − l1` (the Sec. 5.6 form — at `a = 0` it
/// equals Sec. 5.4's `k − d_other`); target sets filter on
/// `k″i = k′i − a` *local* better-or-equal positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KsjqParams {
    /// The query's `k`.
    pub k: usize,
    /// `d1`.
    pub d1: usize,
    /// `d2`.
    pub d2: usize,
    /// Aggregate slots `a`.
    pub a: usize,
    /// `l1 = d1 − a`.
    pub l1: usize,
    /// `l2 = d2 − a`.
    pub l2: usize,
    /// Joined arity `l1 + l2 + a`.
    pub d_joined: usize,
    /// Classification threshold of the left relation, `k′1 = k − l2`.
    pub k1_prime: usize,
    /// Classification threshold of the right relation, `k′2 = k − l1`.
    pub k2_prime: usize,
    /// Target-set threshold of the left relation, `k″1 = k − l2 − a`.
    pub k1_pp: usize,
    /// Target-set threshold of the right relation, `k″2 = k − l1 − a`.
    pub k2_pp: usize,
}

/// Smallest admissible `k` for a join: `max{d1, d2} + 1`.
pub fn k_min(cx: &JoinContext<'_>) -> usize {
    cx.d1().max(cx.d2()) + 1
}

/// Largest admissible `k` for a join: the joined arity `d1 + d2 − a`.
pub fn k_max(cx: &JoinContext<'_>) -> usize {
    cx.d_joined()
}

/// Validate `k` against the paper's range `max{d1,d2} < k ≤ d1 + d2 − a`
/// and derive all dependent parameters.
pub fn validate_k(cx: &JoinContext<'_>, k: usize) -> CoreResult<KsjqParams> {
    let (min, max) = (k_min(cx), k_max(cx));
    if k < min || k > max {
        return Err(CoreError::InvalidK { k, min, max });
    }
    let (d1, d2, a) = (cx.d1(), cx.d2(), cx.a());
    let (l1, l2) = (cx.l1(), cx.l2());
    Ok(KsjqParams {
        k,
        d1,
        d2,
        a,
        l1,
        l2,
        d_joined: cx.d_joined(),
        k1_prime: k - l2,
        k2_prime: k - l1,
        k1_pp: k - l2 - a,
        k2_pp: k - l1 - a,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksjq_join::{AggFunc, JoinSpec};
    use ksjq_relation::{Relation, Schema};

    fn rel(a: usize, l: usize) -> Relation {
        let mut b = Relation::builder(Schema::uniform_agg(a, l).unwrap());
        b.add_grouped(0, &vec![0.0; a + l]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn plain_ksjq_range() {
        // d1 = d2 = 4, no aggregates: 5 <= k <= 8 (k = 8 is the ordinary
        // skyline join).
        let (r1, r2) = (rel(0, 4), rel(0, 4));
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        assert!(validate_k(&cx, 4).is_err());
        assert!(validate_k(&cx, 9).is_err());
        let p = validate_k(&cx, 7).unwrap();
        assert_eq!(p.k1_prime, 3); // k − d2 = k − l2 at a = 0
        assert_eq!(p.k2_prime, 3);
        assert_eq!(p.k1_pp, 3);
        assert_eq!(p.d_joined, 8);
    }

    #[test]
    fn aggregate_range_and_thresholds() {
        // Paper's Sec. 5.6 example: d = 4, a = 1, l = 3, k = 6.
        let (r1, r2) = (rel(1, 3), rel(1, 3));
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum]).unwrap();
        let p = validate_k(&cx, 6).unwrap();
        assert_eq!(p.k1_pp, 2); // k″1 = 6 − 1 − 3
        assert_eq!(p.k1_prime, 3); // k′1 = k″1 + a
        assert_eq!(p.d_joined, 7);
        assert_eq!(k_min(&cx), 5);
        assert_eq!(k_max(&cx), 7);
    }

    #[test]
    fn thresholds_stay_in_bounds() {
        // For every valid k: 1 <= k″i <= li and k″i + a = k′i <= di.
        for (a, l1, l2) in [(0usize, 4usize, 4usize), (1, 3, 3), (2, 5, 5), (2, 3, 4)] {
            let (r1, r2) = (rel(a, l1), rel(a, l2));
            let funcs = vec![AggFunc::Sum; a];
            let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &funcs).unwrap();
            for k in k_min(&cx)..=k_max(&cx) {
                let p = validate_k(&cx, k).unwrap();
                assert!(p.k1_pp >= 1 && p.k1_pp <= l1, "a={a} l1={l1} k={k}: {p:?}");
                assert!(p.k2_pp >= 1 && p.k2_pp <= l2, "a={a} l2={l2} k={k}: {p:?}");
                assert!(p.k1_prime <= p.d1);
                assert!(p.k2_prime <= p.d2);
            }
        }
    }

    #[test]
    fn zero_locals_means_empty_range() {
        // With l1 = 0 every admissible k exceeds the joined arity.
        let (r1, r2) = (rel(2, 0), rel(2, 3));
        let cx =
            JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum, AggFunc::Sum]).unwrap();
        assert!(k_min(&cx) > k_max(&cx));
        assert!(validate_k(&cx, k_max(&cx)).is_err());
    }
}
