//! Metamorphic tests for live catalogs: under a random append/delete
//! schedule, the incrementally maintained k-dominant skyline must be
//! byte-identical to a from-scratch recompute at **every** epoch — in
//! process (`VersionedRelation` + `maintain_append`), over the wire
//! against one server, and through a sharded router cluster.

use ksjq::core::maintain_append;
use ksjq::prelude::*;
use ksjq::server::{ClientError, RunningServer};
use ksjq_relation::VersionedRelation;
use ksjq_router::{DialPolicy, RunningRouter};
use proptest::prelude::*;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

const GROUPS: u64 = 4;

// Schedule steps are `(op, key, rows)` tuples the shim's strategies can
// produce: `op % 2` picks the side, `op < 2` appends the rows (keys
// derived from `key`), `op >= 2` deletes join key `key`.

fn to_columns(rows: &[(u64, Vec<u32>)]) -> (Vec<u64>, Vec<Vec<f64>>) {
    (
        rows.iter().map(|(g, _)| *g).collect(),
        rows.iter()
            .map(|(_, r)| r.iter().map(|&v| f64::from(v)).collect())
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// In-process acceptance property: for random relations, a random
    /// append/delete schedule and every admissible k, maintenance and
    /// recompute agree on the exact pair sequence at every epoch.
    #[test]
    fn maintained_equals_recompute_at_every_epoch(
        init_l in prop::collection::vec(
            (0u64..GROUPS, prop::collection::vec(0u32..6, 3)), 2..=14),
        init_r in prop::collection::vec(
            (0u64..GROUPS, prop::collection::vec(0u32..6, 3)), 2..=14),
        schedule in prop::collection::vec(
            (0u8..4, 0u64..GROUPS, prop::collection::vec(prop::collection::vec(0u32..6, 3), 1..=3)),
            1..=5),
        k_off in 0usize..3,
    ) {
        let d = 3;
        let k = d + 1 + k_off; // the paper's range (d, 2d] for this shape
        let recompute = |vl: &VersionedRelation, vr: &VersionedRelation| {
            let cx = JoinContext::from_arcs(
                vl.snapshot().clone(),
                vr.snapshot().clone(),
                JoinSpec::Equality,
                &[],
            )
            .unwrap();
            ksjq_grouping(&cx, k, &Config::default()).unwrap()
        };

        let (keys, rows) = to_columns(&init_l);
        let mut vl = VersionedRelation::new(Schema::uniform(d).unwrap())
            .unwrap()
            .append(&keys, &rows)
            .unwrap();
        let (keys, rows) = to_columns(&init_r);
        let mut vr = VersionedRelation::new(Schema::uniform(d).unwrap())
            .unwrap()
            .append(&keys, &rows)
            .unwrap();
        let mut cached = recompute(&vl, &vr);

        for (op, key, rows) in schedule {
            if op < 2 {
                // Append: maintain the cached result across the delta.
                let (old_ln, old_rn) = (vl.n(), vr.n());
                let keys: Vec<u64> = rows
                    .iter()
                    .enumerate()
                    .map(|(i, _)| (key + i as u64) % GROUPS)
                    .collect();
                let rows: Vec<Vec<f64>> = rows
                    .iter()
                    .map(|r| r.iter().map(|&v| f64::from(v)).collect())
                    .collect();
                if op == 0 {
                    vl = vl.append(&keys, &rows).unwrap();
                } else {
                    vr = vr.append(&keys, &rows).unwrap();
                }
                let cx = JoinContext::from_arcs(
                    vl.snapshot().clone(),
                    vr.snapshot().clone(),
                    JoinSpec::Equality,
                    &[],
                )
                .unwrap();
                let (maintained, stats) =
                    maintain_append(&cx, k, &cached, old_ln, old_rn).unwrap();
                let fresh = recompute(&vl, &vr);
                prop_assert_eq!(
                    &maintained.pairs, &fresh.pairs,
                    "epoch ({}, {}) k={} stats={:?}", vl.epoch(), vr.epoch(), k, stats
                );
                cached = maintained;
            } else {
                // Delete: ids shift, so the maintainer does not apply —
                // recompute becomes the new cached baseline.
                if op == 2 {
                    vl = vl.delete_key(key).unwrap().0;
                } else {
                    vr = vr.delete_key(key).unwrap().0;
                }
                cached = recompute(&vl, &vr);
            }
        }
    }
}

// ------------------------------------------------------------- the wire

fn render_csv(rows: &[(u64, Vec<u32>)]) -> String {
    let mut csv = String::from("city,c0,c1\n");
    for (g, row) in rows {
        write!(csv, "g{g}").unwrap();
        for v in row {
            write!(csv, ",{v}").unwrap();
        }
        csv.push('\n');
    }
    csv
}

fn render_delta(key: u64, rows: &[Vec<u32>]) -> String {
    let mut csv = String::new();
    for (i, row) in rows.iter().enumerate() {
        write!(csv, "g{}", (key + i as u64) % GROUPS).unwrap();
        for v in row {
            write!(csv, ",{v}").unwrap();
        }
        csv.push('\n');
    }
    csv
}

fn backend() -> RunningServer {
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_entries: 16,
        ..ServerConfig::default()
    };
    Server::start(Engine::new(), &config).unwrap()
}

fn cluster(n_shards: usize) -> (Vec<RunningServer>, RunningRouter) {
    let backends: Vec<RunningServer> = (0..n_shards).map(|_| backend()).collect();
    let topology = Topology::new(
        backends
            .iter()
            .map(|b| vec![b.addr().to_string()])
            .collect(),
    )
    .unwrap();
    let config = RouterConfig {
        addr: "127.0.0.1:0".into(),
        cache_entries: 16,
        policy: DialPolicy {
            options: ksjq::server::ConnectOptions::all(Duration::from_secs(10)),
            attempts: 2,
            backoff: Duration::from_millis(5),
            seed: 42,
        },
        ..RouterConfig::default()
    };
    let router = ksjq::router::Router::start(topology, &config).unwrap();
    (backends, router)
}

/// Query `plan`, treating a server-side rejection as a comparable
/// outcome (all parties must reject the same plans the same way).
fn run_wire(client: &mut KsjqClient, plan: &PlanSpec) -> Result<Vec<(u32, u32)>, ()> {
    match client.query(plan) {
        Ok(rows) => Ok(rows.pairs),
        Err(ClientError::Server { .. }) => Err(()),
        Err(e) => panic!("transport failure: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Over-the-wire acceptance property: one plain server (incremental
    /// maintenance path) and a 2-shard router cluster (two-phase
    /// partitioned deltas) both track an in-process recompute oracle at
    /// every epoch of a random schedule.
    #[test]
    fn wire_and_cluster_track_recompute_at_every_epoch(
        init_l in prop::collection::vec(
            (0u64..GROUPS, prop::collection::vec(0u32..7, 2)), 1..=10),
        init_r in prop::collection::vec(
            (0u64..GROUPS, prop::collection::vec(0u32..7, 2)), 1..=10),
        schedule in prop::collection::vec(
            (0u8..4, 0u64..GROUPS, prop::collection::vec(prop::collection::vec(0u32..7, 2), 1..=2)),
            1..=4),
        k_off in 0usize..2,
    ) {
        let k = 3 + k_off; // d_joined = 4, valid range (2, 4]
        let plan = PlanSpec::new("l", "r").k(k);

        // Mutable ground truth the oracle recomputes from each epoch.
        let mut state_l = init_l.clone();
        let mut state_r = init_r.clone();
        let oracle = |sl: &[(u64, Vec<u32>)], sr: &[(u64, Vec<u32>)]| {
            let engine = Engine::new();
            engine.catalog().register_csv("l", &render_csv(sl)).unwrap();
            engine.catalog().register_csv("r", &render_csv(sr)).unwrap();
            engine
                .execute(&QueryPlan::new("l", "r").k(k))
                .map(|out| out.pairs.iter().map(|&(u, v)| (u.0, v.0)).collect::<Vec<_>>())
                .map_err(|_| ())
        };

        let single = backend();
        let mut sc = KsjqClient::connect(single.addr()).unwrap();
        let (shards, router) = cluster(2);
        let mut rc = KsjqClient::connect(router.addr()).unwrap();
        for c in [&mut sc, &mut rc] {
            c.load_csv("l", &render_csv(&state_l)).unwrap();
            c.load_csv("r", &render_csv(&state_r)).unwrap();
        }

        for (epoch, (op, key, rows)) in schedule.into_iter().enumerate() {
            let name = if op % 2 == 0 { "l" } else { "r" };
            let state = if op % 2 == 0 { &mut state_l } else { &mut state_r };
            if op < 2 {
                let delta = render_delta(key, &rows);
                for (i, row) in rows.iter().enumerate() {
                    state.push(((key + i as u64) % GROUPS, row.clone()));
                }
                sc.append_rows(name, &delta).unwrap();
                rc.append_rows(name, &delta).unwrap();
            } else {
                state.retain(|(g, _)| *g != key);
                sc.delete_keys(name, &[format!("g{key}")]).unwrap();
                rc.delete_keys(name, &[format!("g{key}")]).unwrap();
            }
            let want = oracle(&state_l, &state_r);
            prop_assert_eq!(&run_wire(&mut sc, &plan), &want, "single node, epoch {}", epoch);
            prop_assert_eq!(&run_wire(&mut rc, &plan), &want, "cluster, epoch {}", epoch);
        }

        sc.close().unwrap();
        rc.close().unwrap();
        single.stop().unwrap();
        drop(router);
        for s in shards {
            s.stop().unwrap();
        }
    }
}

/// The maintainer refuses joins it cannot maintain (anything but an
/// equality join) rather than returning a wrong answer.
#[test]
fn non_equality_joins_are_not_maintained() {
    use ksjq::core::can_maintain;
    let mut b = Relation::builder(Schema::uniform(2).unwrap());
    b.add_keyed(1.0, &[1.0, 2.0]).unwrap();
    let rel = Arc::new(b.build().unwrap());
    let cx = JoinContext::from_arcs(rel.clone(), rel.clone(), JoinSpec::Theta(ThetaOp::Lt), &[])
        .unwrap();
    assert!(!can_maintain(&cx));
    let empty = KsjqOutput {
        pairs: vec![],
        stats: Default::default(),
    };
    assert!(maintain_append(&cx, 3, &empty, 1, 1).is_err());
}
