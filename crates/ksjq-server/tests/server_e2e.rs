//! End-to-end tests over live sockets: wire results must be byte-identical
//! to in-process `Engine::execute`, 64 concurrent mixed sessions must not
//! panic an 8-worker server, and no protocol input — junk, truncation,
//! oversized frames, binary garbage — may take the server down.

use ksjq_core::{Algorithm, Engine, Goal, QueryPlan};
use ksjq_datagen::{paper_flights, relation_to_csv, DataType, DatasetSpec};
use ksjq_server::{KsjqClient, PlanSpec, Server, ServerConfig, SyntheticSpec, MAX_LINE_BYTES};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};

fn ephemeral() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 8,
        cache_entries: 64,
        ..ServerConfig::default()
    }
}

/// The paper's Tables 1–2 as CSV text (city key + four Min attributes).
fn paper_csvs() -> (String, String) {
    let pf = paper_flights(false);
    (
        relation_to_csv(&pf.outbound, "city", Some(&pf.cities)).unwrap(),
        relation_to_csv(&pf.inbound, "city", Some(&pf.cities)).unwrap(),
    )
}

#[test]
fn paper_example_over_the_wire_matches_in_process() {
    let (out_csv, in_csv) = paper_csvs();

    // In-process reference through the identical CSV ingestion path.
    let local = Engine::new();
    local.catalog().register_csv("outbound", &out_csv).unwrap();
    local.catalog().register_csv("inbound", &in_csv).unwrap();
    let reference = local
        .execute(&QueryPlan::new("outbound", "inbound").k(7))
        .unwrap();

    let server = Server::start(Engine::new(), &ephemeral()).unwrap();
    let mut client = KsjqClient::connect(server.addr()).unwrap();
    client.load_csv("outbound", &out_csv).unwrap();
    client.load_csv("inbound", &in_csv).unwrap();
    client
        .prepare("q1", &PlanSpec::new("outbound", "inbound").k(7))
        .unwrap();

    let explain = client.explain("q1").unwrap();
    assert!(explain.contains("k=7"), "{explain}");
    assert!(explain.contains("outbound"), "{explain}");

    let rows = client.execute("q1").unwrap();
    assert!(!rows.cached);
    let expected: Vec<(u32, u32)> = reference.pairs.iter().map(|&(l, r)| (l.0, r.0)).collect();
    assert_eq!(rows.pairs, expected, "wire result differs from in-process");
    // Table 3's final skyline, as flight numbers.
    let flights: Vec<(u32, u32)> = rows.pairs.iter().map(|&(l, r)| (11 + l, 21 + r)).collect();
    assert_eq!(flights, vec![(11, 23), (13, 21), (15, 25), (16, 26)]);

    // The identical EXECUTE again: served from cache, same rows.
    let again = client.execute("q1").unwrap();
    assert!(
        again.cached,
        "second identical EXECUTE should hit the cache"
    );
    assert_eq!(again.pairs, rows.pairs);
    // …and the one-shot QUERY spelling of the same plan shares the entry.
    let one_shot = client
        .query(&PlanSpec::new("outbound", "inbound").k(7))
        .unwrap();
    assert!(
        one_shot.cached,
        "QUERY should hit the PREPARE'd plan's entry"
    );
    assert_eq!(one_shot.pairs, rows.pairs);

    let stats = client.stats().unwrap();
    assert!(stats.cache_hits >= 2, "{stats:?}");
    assert_eq!(stats.relations, 2);
    assert_eq!(stats.sessions, 1);
    assert_eq!(stats.workers, 8);
    assert_eq!(stats.errors, 0);
    // The verification kernel's work counters travel over the wire; the
    // in-process reference run tells us exactly what the one non-cached
    // EXECUTE must have reported.
    let expected_counts = reference.stats.counts;
    assert!(expected_counts.dom_tests > 0, "{expected_counts:?}");
    assert_eq!(stats.dom_tests, expected_counts.dom_tests, "{stats:?}");
    assert_eq!(stats.attr_cmps, expected_counts.attr_cmps, "{stats:?}");
    // Grouping plans never run dominator generation, so the cumulative
    // timing must still be zero…
    assert_eq!(stats.domgen_us, 0, "{stats:?}");
    // Cache hits never re-run the kernel: counters are unchanged after
    // another cached EXECUTE.
    assert!(client.execute("q1").unwrap().cached);
    let after = client.stats().unwrap();
    assert_eq!(after.dom_tests, stats.dom_tests);
    assert_eq!(after.attr_cmps, stats.attr_cmps);
    assert_eq!(after.domgen_us, 0);

    // …and a dominator-based plan over a relation big enough that its
    // O(n²) dominator-generation phase cannot round to 0 µs must move it.
    let spec = |seed| SyntheticSpec {
        data_type: DataType::AntiCorrelated,
        n: 1500,
        d: 7,
        a: 0,
        g: 5,
        seed,
    };
    client.load_synthetic("dg1", spec(7)).unwrap();
    client.load_synthetic("dg2", spec(1007)).unwrap();
    let plan = PlanSpec::new("dg1", "dg2")
        .k(11)
        .algorithm(Algorithm::DominatorBased);
    assert!(!client.query(&plan).unwrap().cached);
    let domgen = client.stats().unwrap();
    assert!(domgen.domgen_us > 0, "{domgen:?}");
    // Cache hit: the cumulative domgen timing must not move.
    assert!(client.query(&plan).unwrap().cached);
    assert_eq!(client.stats().unwrap().domgen_us, domgen.domgen_us);

    client.close().unwrap();
    server.stop().unwrap();
}

#[test]
fn every_goal_and_algorithm_agree_over_the_wire() {
    let (out_csv, in_csv) = paper_csvs();
    let local = Engine::new();
    local.catalog().register_csv("outbound", &out_csv).unwrap();
    local.catalog().register_csv("inbound", &in_csv).unwrap();

    let server = Server::start(Engine::new(), &ephemeral()).unwrap();
    let mut client = KsjqClient::connect(server.addr()).unwrap();
    client.load_csv("outbound", &out_csv).unwrap();
    client.load_csv("inbound", &in_csv).unwrap();

    let goals: Vec<Goal> = vec![
        Goal::SkylineJoin,
        Goal::Exact(6),
        Goal::Exact(7),
        "atleast:2".parse().unwrap(),
        "atmost:4:range".parse().unwrap(),
    ];
    for goal in goals {
        for algorithm in [
            Algorithm::Grouping,
            Algorithm::Naive,
            Algorithm::DominatorBased,
        ] {
            let expected = local
                .execute(
                    &QueryPlan::new("outbound", "inbound")
                        .goal(goal)
                        .algorithm(algorithm),
                )
                .unwrap();
            let rows = client
                .query(
                    &PlanSpec::new("outbound", "inbound")
                        .goal(goal)
                        .algorithm(algorithm),
                )
                .unwrap();
            let expected: Vec<(u32, u32)> =
                expected.pairs.iter().map(|&(l, r)| (l.0, r.0)).collect();
            assert_eq!(rows.pairs, expected, "goal {goal}, algorithm {algorithm}");
        }
    }
    client.close().unwrap();
    server.stop().unwrap();
}

#[test]
fn sixty_four_concurrent_mixed_sessions_on_eight_workers() {
    let engine = Engine::new();
    let pf = paper_flights(false);
    engine.register("outbound", pf.outbound).unwrap();
    engine.register("inbound", pf.inbound).unwrap();
    let expected: Vec<(u32, u32)> = engine
        .execute(&QueryPlan::new("outbound", "inbound").k(7))
        .unwrap()
        .pairs
        .iter()
        .map(|&(l, r)| (l.0, r.0))
        .collect();

    let server = Server::start(engine, &ephemeral()).unwrap();
    let addr = server.addr();

    // A shared session other connections EXECUTE by name.
    let mut setup = KsjqClient::connect(addr).unwrap();
    setup
        .prepare("shared", &PlanSpec::new("outbound", "inbound").k(7))
        .unwrap();
    setup.close().unwrap();

    std::thread::scope(|scope| {
        for i in 0..64usize {
            let expected = expected.clone();
            scope.spawn(move || {
                let mut client = KsjqClient::connect(addr).unwrap();
                let rows = match i % 3 {
                    0 => client
                        .query(&PlanSpec::new("outbound", "inbound").k(7))
                        .unwrap(),
                    1 => {
                        let id = format!("q{i}");
                        client
                            .prepare(&id, &PlanSpec::new("outbound", "inbound").k(7))
                            .unwrap();
                        let explain = client.explain(&id).unwrap();
                        assert!(explain.contains("k=7"), "{explain}");
                        client.execute(&id).unwrap()
                    }
                    _ => {
                        client.stats().unwrap();
                        client.execute("shared").unwrap()
                    }
                };
                assert_eq!(rows.pairs, expected, "connection {i}");
                client.close().unwrap();
            });
        }
    });

    let mut client = KsjqClient::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.connections >= 65, "{stats:?}");
    assert!(
        stats.cache_hits > 0,
        "repeat executions must hit: {stats:?}"
    );
    assert_eq!(stats.errors, 0, "{stats:?}");
    client.close().unwrap();
    server.stop().unwrap();
}

#[test]
fn annotated_schemas_survive_the_wire() {
    // The flight network has aggregate slots and Max attributes; loaded
    // via annotated CSV, the wire results must still match in-process
    // execution (a bare-name header would silently flip Max to Min).
    use ksjq_datagen::{relation_to_annotated_csv, FlightNetworkSpec};
    let net = FlightNetworkSpec {
        outbound: 40,
        inbound: 30,
        hubs: 5,
        seed: 11,
    }
    .generate();
    let aggs = [ksjq_join::AggFunc::Sum, ksjq_join::AggFunc::Sum];
    let local = Engine::new();
    local.register("out", net.outbound.clone()).unwrap();
    local.register("in", net.inbound.clone()).unwrap();
    let expected: Vec<(u32, u32)> = local
        .execute(&QueryPlan::new("out", "in").aggregates(&aggs).k(6))
        .unwrap()
        .pairs
        .iter()
        .map(|&(l, r)| (l.0, r.0))
        .collect();

    let server = Server::start(Engine::new(), &ephemeral()).unwrap();
    let mut client = KsjqClient::connect(server.addr()).unwrap();
    for (name, rel) in [("out", &net.outbound), ("in", &net.inbound)] {
        let csv = relation_to_annotated_csv(rel, "hub", Some(&net.hubs)).unwrap();
        client.load_csv(name, &csv).unwrap();
    }
    let rows = client
        .query(&PlanSpec::new("out", "in").aggs(&aggs).k(6))
        .unwrap();
    assert_eq!(rows.pairs, expected);
    client.close().unwrap();
    server.stop().unwrap();
}

#[test]
fn synthetic_and_inline_relations_share_one_key_domain() {
    // A synthetic relation's group keys are the decimal strings of its
    // generator ids, encoded through the same catalog dictionary as CSV
    // keys: joining against unrelated string keys matches nothing
    // (rather than colliding with them numerically), while joining
    // against a CSV that uses those decimal strings matches correctly.
    let server = Server::start(Engine::new(), &ephemeral()).unwrap();
    let mut client = KsjqClient::connect(server.addr()).unwrap();
    client
        .load_synthetic(
            "synth",
            SyntheticSpec {
                data_type: DataType::Independent,
                n: 30,
                d: 2,
                a: 0,
                g: 3,
                seed: 1,
            },
        )
        .unwrap();
    client
        .load_csv("cities", "city,cost,dur\nC,1,1\nD,2,2\n")
        .unwrap();
    let disjoint = client.query(&PlanSpec::new("synth", "cities")).unwrap();
    assert!(
        disjoint.pairs.is_empty(),
        "disjoint key domains must not join: {disjoint:?}"
    );
    client
        .load_csv("numeric", "key,cost,dur\n0,1,1\n1,2,2\n2,3,3\n")
        .unwrap();
    let joined = client.query(&PlanSpec::new("synth", "numeric")).unwrap();
    assert!(
        !joined.pairs.is_empty(),
        "matching decimal keys must join against synthetic groups"
    );
    client.close().unwrap();
    server.stop().unwrap();
}

#[test]
fn cache_invalidation_is_per_relation() {
    let (out_csv, in_csv) = paper_csvs();
    let server = Server::start(Engine::new(), &ephemeral()).unwrap();
    let mut client = KsjqClient::connect(server.addr()).unwrap();
    client.load_csv("outbound", &out_csv).unwrap();
    client.load_csv("inbound", &in_csv).unwrap();
    let plan = PlanSpec::new("outbound", "inbound").k(7);
    assert!(!client.query(&plan).unwrap().cached);
    assert!(client.query(&plan).unwrap().cached);
    // Registering an *unrelated* relation leaves the entry alone: the
    // cached plan references neither "third" nor anything it shadows.
    client.load_csv("third", "city,cost\nC,1\n").unwrap();
    assert!(
        client.query(&plan).unwrap().cached,
        "unrelated LOAD must not evict the cached plan"
    );
    // Re-registering a relation the plan references must evict it —
    // the new rows change the answer.
    client
        .load_csv("inbound", "city,cost,dur,fee,pop\nC,1,1,1,1\n")
        .unwrap();
    let recomputed = client.query(&plan).unwrap();
    assert!(!recomputed.cached, "stale entry served after re-LOAD");
    client.close().unwrap();
    server.stop().unwrap();
}

// ---------------------------------------------------------- live catalog

/// The acceptance path for live catalogs: an `APPEND` upgrades cached
/// entries through the incremental maintainer (no eviction), the
/// upgraded result is byte-identical to a fresh recompute, and `DELETE`
/// falls back to invalidation.
#[test]
fn append_maintains_cached_results_without_eviction() {
    let (out_csv, in_csv) = paper_csvs();
    let server = Server::start(Engine::new(), &ephemeral()).unwrap();
    let mut client = KsjqClient::connect(server.addr()).unwrap();
    client.load_csv("outbound", &out_csv).unwrap();
    client.load_csv("inbound", &in_csv).unwrap();
    let plan = PlanSpec::new("outbound", "inbound").k(7);
    assert!(!client.query(&plan).unwrap().cached);
    let before = client.stats().unwrap();
    assert_eq!(before.delta_rows, 0);
    assert_eq!(before.delta_maintained, 0);

    // Append a strongly dominant outbound row on a city that joins: the
    // answer must change, so a surviving stale entry would be caught.
    let city = out_csv.lines().nth(1).unwrap().split(',').next().unwrap();
    let row = format!("{city},1,1,1,1");
    client.append_rows("outbound", &row).unwrap();

    let after = client.stats().unwrap();
    assert_eq!(after.catalog_epoch, before.catalog_epoch + 1);
    assert_eq!(after.delta_rows, 1);
    assert!(after.delta_maintained > 0, "{after:?}");
    assert_eq!(
        after.cache_evictions, before.cache_evictions,
        "the entry must be upgraded in place, not evicted"
    );

    // The upgraded entry serves from cache and matches a recompute of
    // the appended relation byte for byte.
    let upgraded = client.query(&plan).unwrap();
    assert!(upgraded.cached, "upgraded entry should still be a hit");
    let oracle = Engine::new();
    oracle
        .catalog()
        .register_csv("outbound", &format!("{}{row}\n", out_csv))
        .unwrap();
    oracle.catalog().register_csv("inbound", &in_csv).unwrap();
    let reference = oracle
        .execute(&QueryPlan::new("outbound", "inbound").k(7))
        .unwrap();
    let expected: Vec<(u32, u32)> = reference.pairs.iter().map(|&(l, r)| (l.0, r.0)).collect();
    assert_eq!(upgraded.pairs, expected, "maintained ≠ recompute");

    // Staged spelling: STAGE parks the delta (catalog unchanged) until
    // COMMIT applies it through the same maintenance path.
    client.append_stage("outbound", &row).unwrap();
    assert_eq!(
        client.stats().unwrap().delta_rows,
        1,
        "STAGE must not apply"
    );
    client.commit("outbound").unwrap();
    let staged = client.stats().unwrap();
    assert_eq!(staged.delta_rows, 2);
    assert_eq!(staged.catalog_epoch, after.catalog_epoch + 1);

    // DELETE is not maintained incrementally: row ids shift, so the
    // entry is dropped and the next query recomputes.
    client.delete_keys("outbound", &[city.to_string()]).unwrap();
    let recomputed = client.query(&plan).unwrap();
    assert!(!recomputed.cached, "DELETE must invalidate, not upgrade");
    let survivors: String = out_csv
        .lines()
        .enumerate()
        .filter(|&(i, l)| i == 0 || !l.starts_with(&format!("{city},")))
        .map(|(_, l)| format!("{l}\n"))
        .collect();
    let oracle = Engine::new();
    oracle
        .catalog()
        .register_csv("outbound", &survivors)
        .unwrap();
    oracle.catalog().register_csv("inbound", &in_csv).unwrap();
    let reference = oracle
        .execute(&QueryPlan::new("outbound", "inbound").k(7))
        .unwrap();
    let expected: Vec<(u32, u32)> = reference.pairs.iter().map(|&(l, r)| (l.0, r.0)).collect();
    assert_eq!(recomputed.pairs, expected, "post-DELETE ≠ recompute");

    client.close().unwrap();
    server.stop().unwrap();
}

// ----------------------------------------------------------- metamorphic

/// Unique relation names across proptest cases sharing one server.
static CASE: AtomicU64 = AtomicU64::new(0);

mod metamorphic {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// For random relations, specs and k: EXECUTE over a live socket
        /// returns byte-identical pairs to direct `Engine::execute`.
        /// (Sizes stay small: the naive reference is O(N²) on the joined
        /// relation and this runs unoptimised.)
        #[test]
        fn wire_execute_equals_in_process_execute(
            n in 10usize..48,
            d in 2usize..5,
            a in 0usize..3,
            g in 1usize..6,
            seed in 0u64..1000,
            k_index in 0usize..8,
            algo_index in 0usize..3,
            distribution in 0usize..3,
        ) {
            let a = a.min(d - 1);
            let data_type = match distribution {
                0 => DataType::Independent,
                1 => DataType::Correlated,
                _ => DataType::AntiCorrelated,
            };
            let algorithm = match algo_index {
                0 => Algorithm::Grouping,
                1 => Algorithm::DominatorBased,
                _ => Algorithm::Naive,
            };
            let aggs = vec![ksjq_join::AggFunc::Sum; a];

            // In-process reference over the identical generator spec.
            let spec1 = DatasetSpec {
                n, agg_attrs: a, local_attrs: d - a, groups: g, data_type, seed,
            };
            let spec2 = DatasetSpec { seed: seed + 1000, ..spec1 };
            let local = Engine::new();
            local.register("r1", spec1.generate()).unwrap();
            local.register("r2", spec2.generate()).unwrap();
            let bounds = local
                .prepare(&QueryPlan::new("r1", "r2").aggregates(&aggs))
                .unwrap();
            let (k_min, k_max) = (bounds.explain().k_min, bounds.explain().k_max);
            let k = k_min + k_index % (k_max - k_min + 1);
            let expected = local
                .execute(
                    &QueryPlan::new("r1", "r2")
                        .aggregates(&aggs)
                        .k(k)
                        .algorithm(algorithm),
                )
                .unwrap();
            let expected: Vec<(u32, u32)> =
                expected.pairs.iter().map(|&(l, r)| (l.0, r.0)).collect();

            // The same spec shipped over the wire.
            let case = CASE.fetch_add(1, Ordering::Relaxed);
            let (r1, r2) = (format!("r1_{case}"), format!("r2_{case}"));
            let server = server();
            let mut client = KsjqClient::connect(server.0).unwrap();
            let wire_spec = |seed| SyntheticSpec { data_type, n, d, a, g, seed };
            client.load_synthetic(&r1, wire_spec(seed)).unwrap();
            client.load_synthetic(&r2, wire_spec(seed + 1000)).unwrap();
            let rows = client
                .query(&PlanSpec::new(&r1, &r2).aggs(&aggs).k(k).algorithm(algorithm))
                .unwrap();
            prop_assert_eq!(
                rows.pairs, expected,
                "n={} d={} a={} g={} seed={} k={} {} {}",
                n, d, a, g, seed, k, algorithm, data_type
            );
            prop_assert_eq!(rows.k, k);
            client.close().unwrap();
        }
    }

    /// One server shared by all metamorphic cases (started lazily).
    fn server() -> &'static (std::net::SocketAddr,) {
        use std::sync::OnceLock;
        static SERVER: OnceLock<(std::net::SocketAddr,)> = OnceLock::new();
        SERVER.get_or_init(|| {
            let running = Server::start(Engine::new(), &ephemeral()).unwrap();
            let addr = running.addr();
            // Leak the server: it lives for the whole test binary.
            std::mem::forget(running);
            (addr,)
        })
    }
}

// ------------------------------------------------------------------ fuzz

#[test]
fn junk_commands_never_kill_the_session() {
    let server = Server::start(Engine::new(), &ephemeral()).unwrap();
    let mut client = KsjqClient::connect(server.addr()).unwrap();
    for junk in [
        "FROBNICATE the flights",
        "LOAD",
        "LOAD x TELEPATHY a,b",
        "LOAD x SYNTHETIC ind n=0 d=0",
        "LOAD x SYNTHETIC ind n=999999999999 d=99",
        "PREPARE",
        "PREPARE q nope JOIN alsonope",
        "EXECUTE never-prepared",
        "EXPLAIN never-prepared",
        "QUERY a JOIN b K 7",
        "QUERY a JOIN b GOAL upside-down",
        "STATS please",
        "",
        "   ",
        "\u{1f4a3}",
    ] {
        let response = client.raw(junk).unwrap();
        assert!(
            response.starts_with("ERR "),
            "{junk:?} should produce ERR, got {response:?}"
        );
    }
    // CSV containing the wire row separator is rejected client-side
    // before it can be silently re-framed into different rows.
    assert!(matches!(
        client.load_csv("bad", "city,cost\nA,1;B,2\n"),
        Err(ksjq_server::ClientError::Protocol(_))
    ));
    // The session (and server) still work fine afterwards.
    client.load_csv("t", "city,cost\nC,1\nD,2\n").unwrap();
    assert!(client.stats().unwrap().errors >= 15);
    client.close().unwrap();
    server.stop().unwrap();
}

#[test]
fn oversized_lines_are_answered_and_drained() {
    let server = Server::start(Engine::new(), &ephemeral()).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Two megabytes of 'x' — double the frame cap — then a newline.
    let chunk = vec![b'x'; 64 * 1024];
    for _ in 0..(2 * MAX_LINE_BYTES / chunk.len()) {
        stream.write_all(&chunk).unwrap();
    }
    stream.write_all(b"\n").unwrap();
    stream.write_all(b"STATS\n").unwrap();
    stream.flush().unwrap();
    let mut reader = std::io::BufReader::new(stream);
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    assert!(line.starts_with("ERR "), "{line:?}");
    assert!(line.contains("exceeds"), "{line:?}");
    // The connection resynchronised: the next command works.
    line.clear();
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    assert!(line.starts_with("STATS "), "{line:?}");
    server.stop().unwrap();
}

#[test]
fn truncated_frames_and_binary_garbage_never_panic_the_server() {
    let server = Server::start(Engine::new(), &ephemeral()).unwrap();
    let addr = server.addr();

    // A frame cut off mid-command, then a hard disconnect.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"PREPARE q1 outbound JO").unwrap();
    drop(stream);

    // Binary garbage, including invalid UTF-8, with embedded newlines.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(&[0xff, 0xfe, 0x00, b'\n', 0x80, 0x81, b'\n'])
        .unwrap();
    let mut byte = [0u8; 1];
    // The server answers each garbage "line" with an ERR frame.
    stream.read_exact(&mut byte).unwrap();
    assert_eq!(byte[0], b'E');
    drop(stream);

    // Half a line with the socket left hanging open, then dropped.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"STAT").unwrap();
    stream.flush().unwrap();
    drop(stream);

    // After all of that, a well-formed session works.
    let mut client = KsjqClient::connect(addr).unwrap();
    client.load_csv("t", "city,cost\nC,1\n").unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.relations, 1);
    client.close().unwrap();
    server.stop().unwrap();
}

#[test]
fn graceful_shutdown_stops_accepting() {
    let server = Server::start(Engine::new(), &ephemeral()).unwrap();
    let addr = server.addr();
    let mut client = KsjqClient::connect(addr).unwrap();
    client.stats().unwrap();
    client.close().unwrap();
    server.stop().unwrap();
    // The listener is gone: new sessions cannot be served.
    match KsjqClient::connect(addr) {
        Err(_) => {}
        Ok(mut client) => assert!(client.raw("STATS").is_err()),
    }
}
