//! Shared helpers for the integration tests.
#![allow(dead_code)] // each test binary uses a different subset

use ksjq::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small random relation with equality-join groups and integer-ish
/// values (many ties, stressing strictness handling).
pub fn random_grouped(
    seed: u64,
    n: usize,
    a: usize,
    l: usize,
    groups: u64,
    value_range: u64,
) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = a + l;
    let mut b = Relation::builder(Schema::uniform_agg(a, l).unwrap());
    for _ in 0..n {
        let g = rng.gen_range(0..groups);
        let row: Vec<f64> = (0..d)
            .map(|_| rng.gen_range(0..value_range) as f64)
            .collect();
        b.add_grouped(g, &row).unwrap();
    }
    b.build().unwrap()
}

/// A small random relation with numeric theta-join keys.
pub fn random_keyed(seed: u64, n: usize, d: usize, value_range: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Relation::builder(Schema::uniform(d).unwrap());
    for _ in 0..n {
        let key = rng.gen_range(0..100) as f64 / 10.0;
        let row: Vec<f64> = (0..d)
            .map(|_| rng.gen_range(0..value_range) as f64)
            .collect();
        b.add_keyed(key, &row).unwrap();
    }
    b.build().unwrap()
}

/// A small random keyless relation (Cartesian products).
pub fn random_keyless(seed: u64, n: usize, d: usize, value_range: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Relation::builder(Schema::uniform(d).unwrap());
    for _ in 0..n {
        let row: Vec<f64> = (0..d)
            .map(|_| rng.gen_range(0..value_range) as f64)
            .collect();
        b.add(&row).unwrap();
    }
    b.build().unwrap()
}

/// Run all three KSJQ algorithms and assert they agree; returns the
/// common answer.
pub fn assert_all_algorithms_agree(
    cx: &JoinContext<'_>,
    k: usize,
    cfg: &Config,
    label: &str,
) -> KsjqOutput {
    let n = ksjq_naive(cx, k, cfg).unwrap_or_else(|e| panic!("{label}: naive failed: {e}"));
    let g = ksjq_grouping(cx, k, cfg).unwrap_or_else(|e| panic!("{label}: grouping failed: {e}"));
    let d = ksjq_dominator_based(cx, k, cfg)
        .unwrap_or_else(|e| panic!("{label}: dominator failed: {e}"));
    assert_eq!(n.pairs, g.pairs, "{label}: naive vs grouping");
    assert_eq!(n.pairs, d.pairs, "{label}: naive vs dominator-based");
    n
}
