//! Synthetic data distributions (Börzsönyi et al. / `randdataset`).

use ksjq_relation::{Relation, Result, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::str::FromStr;

/// The three classic skyline benchmark distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataType {
    /// Every attribute uniform on `[0, 1)`, independently. The paper's
    /// default (`T = Independent` in Table 7).
    #[default]
    Independent,
    /// Attributes clustered around the diagonal: tuples good in one
    /// attribute tend to be good in all — small skylines, fast queries.
    Correlated,
    /// Attributes spread along a hyperplane of constant sum: tuples good in
    /// one attribute tend to be bad in others — the skyline-hostile case.
    AntiCorrelated,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Independent => write!(f, "independent"),
            DataType::Correlated => write!(f, "correlated"),
            DataType::AntiCorrelated => write!(f, "anti-correlated"),
        }
    }
}

impl FromStr for DataType {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "independent" | "ind" | "i" => Ok(DataType::Independent),
            "correlated" | "corr" | "c" => Ok(DataType::Correlated),
            "anti-correlated" | "anticorrelated" | "anti" | "a" => Ok(DataType::AntiCorrelated),
            other => Err(format!("unknown data type '{other}'")),
        }
    }
}

/// Specification of one synthetic base relation.
///
/// Mirrors the knobs of the paper's Table 7: `n` tuples of
/// `d = agg_attrs + local_attrs` attributes, assigned uniformly to
/// `groups` join groups, drawn from `data_type`, deterministically from
/// `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Number of tuples (`n`).
    pub n: usize,
    /// Number of aggregated attributes (`a`), occupying slots `0..a`.
    pub agg_attrs: usize,
    /// Number of local attributes (`l = d − a`).
    pub local_attrs: usize,
    /// Number of join groups (`g`); keys are `0..g`.
    pub groups: usize,
    /// Data distribution (`T`).
    pub data_type: DataType,
    /// RNG seed; equal specs generate identical relations.
    pub seed: u64,
}

impl DatasetSpec {
    /// A spec with the paper's default shape for one base relation
    /// (Table 7: n = 3300, d = 7, a = 2, g = 10, independent).
    pub fn paper_default(seed: u64) -> Self {
        DatasetSpec {
            n: 3300,
            agg_attrs: 2,
            local_attrs: 5,
            groups: 10,
            data_type: DataType::Independent,
            seed,
        }
    }

    /// Total attribute count (`d = a + l`).
    pub fn d(&self) -> usize {
        self.agg_attrs + self.local_attrs
    }

    fn schema(&self) -> Result<Schema> {
        Schema::uniform_agg(self.agg_attrs, self.local_attrs)
    }

    fn fill_row(&self, rng: &mut StdRng, row: &mut [f64]) {
        match self.data_type {
            DataType::Independent => {
                for v in row.iter_mut() {
                    *v = rng.gen::<f64>();
                }
            }
            DataType::Correlated => {
                let base = peaked01(rng);
                for v in row.iter_mut() {
                    *v = clamp01(base + (rng.gen::<f64>() - 0.5) * 0.25);
                }
            }
            DataType::AntiCorrelated => {
                // Spread the tuple along the hyperplane of constant sum
                // `d * base`: good in one attribute ⇒ bad in another. The
                // plane position must stay tight around 0.5 so the in-plane
                // deviations dominate the covariance; its width shrinks
                // with 1/sqrt(d) because the deviation covariance does too
                // (cross-attribute covariance = Var(base) - 1/(12d), which
                // this width keeps at -1/(16d) < 0 for every d).
                let d = row.len();
                let base = 0.5 + (peaked01(rng) - 0.5) / (d as f64).sqrt();
                let mut devs = vec![0.0f64; d];
                let mut mean = 0.0;
                for dev in devs.iter_mut() {
                    *dev = rng.gen::<f64>();
                    mean += *dev;
                }
                mean /= d as f64;
                for (v, dev) in row.iter_mut().zip(devs.iter()) {
                    *v = clamp01(base + (dev - mean));
                }
            }
        }
    }

    /// Generate the relation with equality-join group keys.
    pub fn generate(&self) -> Relation {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let d = self.d();
        let mut row = vec![0.0f64; d];
        let mut b = Relation::builder(self.schema().expect("valid spec")).with_capacity(self.n);
        for _ in 0..self.n {
            let g = if self.groups <= 1 {
                0
            } else {
                rng.gen_range(0..self.groups)
            } as u64;
            self.fill_row(&mut rng, &mut row);
            b.add_grouped(g, &row)
                .expect("generated row matches schema");
        }
        b.build().expect("generated relation is valid")
    }

    /// Generate the relation with a numeric theta-join key, uniform on
    /// `[0, 1)` (used by the non-equality join experiments, Sec. 6.6).
    pub fn generate_theta(&self) -> Relation {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let d = self.d();
        let mut row = vec![0.0f64; d];
        let mut b = Relation::builder(self.schema().expect("valid spec")).with_capacity(self.n);
        for _ in 0..self.n {
            let key = rng.gen::<f64>();
            self.fill_row(&mut rng, &mut row);
            b.add_keyed(key, &row)
                .expect("generated row matches schema");
        }
        b.build().expect("generated relation is valid")
    }
}

/// A peaked value on `[0, 1)` (Irwin–Hall mean of four uniforms; roughly
/// normal around 0.5 with σ ≈ 0.14).
fn peaked01(rng: &mut StdRng) -> f64 {
    (rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>()) / 4.0
}

#[inline]
fn clamp01(v: f64) -> f64 {
    v.clamp(0.0, 1.0 - f64::EPSILON)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(data_type: DataType) -> DatasetSpec {
        DatasetSpec {
            n: 500,
            agg_attrs: 1,
            local_attrs: 3,
            groups: 5,
            data_type,
            seed: 7,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = spec(DataType::Independent).generate();
        let b = spec(DataType::Independent).generate();
        assert_eq!(a, b);
        let c = DatasetSpec {
            seed: 8,
            ..spec(DataType::Independent)
        }
        .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn shape_matches_spec() {
        for t in [
            DataType::Independent,
            DataType::Correlated,
            DataType::AntiCorrelated,
        ] {
            let r = spec(t).generate();
            assert_eq!(r.n(), 500);
            assert_eq!(r.d(), 4);
            assert_eq!(r.schema().agg_count(), 1);
            let gi = r.group_index().unwrap();
            assert!(gi.group_count() <= 5);
            // With 500 tuples over 5 groups, all groups appear w.h.p.
            assert_eq!(gi.group_count(), 5);
        }
    }

    #[test]
    fn values_in_unit_interval() {
        for t in [
            DataType::Independent,
            DataType::Correlated,
            DataType::AntiCorrelated,
        ] {
            let r = spec(t).generate();
            for (_, row) in r.rows() {
                for &v in row {
                    assert!((0.0..1.0).contains(&v), "{t}: {v} out of range");
                }
            }
        }
    }

    /// Pearson correlation of the first two attributes.
    fn corr2(r: &Relation) -> f64 {
        let n = r.n() as f64;
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for (_, row) in r.rows() {
            let (x, y) = (row[0], row[1]);
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
        let cov = sxy / n - (sx / n) * (sy / n);
        let vx = sxx / n - (sx / n) * (sx / n);
        let vy = syy / n - (sy / n) * (sy / n);
        cov / (vx * vy).sqrt()
    }

    #[test]
    fn correlation_signs() {
        let ind = corr2(&spec(DataType::Independent).generate());
        let cor = corr2(&spec(DataType::Correlated).generate());
        let anti = corr2(&spec(DataType::AntiCorrelated).generate());
        assert!(ind.abs() < 0.15, "independent: {ind}");
        assert!(cor > 0.5, "correlated: {cor}");
        assert!(anti < -0.1, "anti-correlated: {anti}");
    }

    #[test]
    fn anti_correlation_holds_in_high_dimensions() {
        // The base width scales with 1/sqrt(d), keeping the covariance at
        // -1/(16d) for every d; the pairwise correlation therefore decays
        // like -0.75/d. Assert at half the theoretical value, with n large
        // enough that the estimate's noise (~1/sqrt(n)) stays well below.
        for d in [12usize, 16, 24] {
            let s = DatasetSpec {
                n: 4000,
                local_attrs: d - 1,
                ..spec(DataType::AntiCorrelated)
            };
            let anti = corr2(&s.generate());
            assert!(anti < -0.375 / d as f64, "d={d}: {anti}");
        }
    }

    #[test]
    fn theta_variant_has_numeric_keys() {
        let r = spec(DataType::Independent).generate_theta();
        assert!(r.numeric_order().is_some());
        assert!(r.group_index().is_none());
        assert_eq!(r.n(), 500);
    }

    #[test]
    fn single_group_means_one_key() {
        let s = DatasetSpec {
            groups: 1,
            ..spec(DataType::Independent)
        };
        let r = s.generate();
        assert_eq!(r.group_index().unwrap().group_count(), 1);
    }

    #[test]
    fn paper_default_shape() {
        let s = DatasetSpec::paper_default(1);
        assert_eq!(s.d(), 7);
        assert_eq!(s.n, 3300);
        assert_eq!(s.groups, 10);
    }

    #[test]
    fn data_type_parsing() {
        assert_eq!("ind".parse::<DataType>().unwrap(), DataType::Independent);
        assert_eq!("CORR".parse::<DataType>().unwrap(), DataType::Correlated);
        assert_eq!(
            "anti".parse::<DataType>().unwrap(),
            DataType::AntiCorrelated
        );
        assert!("bogus".parse::<DataType>().is_err());
    }
}
