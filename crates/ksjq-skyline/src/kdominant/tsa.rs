//! Two-Scan Algorithm (TSA) for k-dominant skylines.
//!
//! Scan 1 builds a candidate superset with a window: an incoming tuple
//! evicts candidates it k-dominates and is itself discarded when a current
//! candidate k-dominates it. Because k-dominance is not transitive, a
//! surviving candidate may still be k-dominated by a tuple that was evicted
//! earlier — scan 2 therefore re-verifies every candidate against the whole
//! input. Scan 1 never produces false negatives (a discarded tuple was
//! k-dominated by an *actual input tuple*, which suffices for exclusion),
//! so candidates ⊇ answer and scan 2 is exact.
//!
//! [`StreamingTsa`] exposes the same logic push-style so the naïve KSJQ
//! algorithm can run it over a join enumeration without materialising the
//! joined relation (at the paper's n = 33 000 the join holds ≈ 1.1 × 10⁸
//! tuples).

use crate::RowAccess;
use ksjq_relation::k_dominates;

/// Compute the k-dominant skyline of `members` with two scans.
///
/// Returns surviving ids in the order they appear in `members`.
pub fn kdom_tsa<R: RowAccess>(rows: &R, members: &[u32], k: usize) -> Vec<u32> {
    // ---- Scan 1: candidate window -------------------------------------
    let mut candidates: Vec<u32> = Vec::new();
    for &p in members {
        let prow = rows.row(p);
        let mut p_dominated = false;
        let mut i = 0;
        while i < candidates.len() {
            let crow = rows.row(candidates[i]);
            if !p_dominated && k_dominates(crow, prow, k) {
                p_dominated = true;
            }
            if k_dominates(prow, crow, k) {
                candidates.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if !p_dominated {
            candidates.push(p);
        }
    }

    // ---- Scan 2: verify candidates against the full input -------------
    let mut result: Vec<u32> = Vec::with_capacity(candidates.len());
    'cand: for &c in &candidates {
        let crow = rows.row(c);
        for &q in members {
            if q != c && k_dominates(rows.row(q), crow, k) {
                continue 'cand;
            }
        }
        result.push(c);
    }
    // Restore input order (scan-1 evictions shuffle the window).
    let pos: std::collections::HashMap<u32, usize> =
        members.iter().enumerate().map(|(i, &m)| (m, i)).collect();
    result.sort_by_key(|m| pos[m]);
    result
}

/// Push-style two-scan k-dominant skyline over a restartable stream.
///
/// Usage protocol:
///
/// 1. call [`offer`](StreamingTsa::offer) for every tuple (scan 1),
/// 2. call [`begin_verify`](StreamingTsa::begin_verify),
/// 3. call [`verify`](StreamingTsa::verify) for every tuple again, in the
///    same order (scan 2),
/// 4. call [`finish`](StreamingTsa::finish) to obtain the surviving tuples.
///
/// Tuples are identified by the `u64` sequence number assigned by `offer`
/// (0-based offer order), which `verify` re-derives by counting — hence the
/// same-order requirement. Each candidate's attribute vector is copied into
/// the window; eliminated tuples occupy no memory.
#[derive(Debug)]
pub struct StreamingTsa {
    d: usize,
    k: usize,
    /// Candidate sequence numbers (scan 1) / surviving flags (scan 2).
    seqs: Vec<u64>,
    /// Row data of candidates, parallel to `seqs`, row-major.
    data: Vec<f64>,
    /// Scan-2 liveness flags, parallel to `seqs`.
    alive: Vec<bool>,
    offered: u64,
    verified: u64,
    verifying: bool,
}

impl StreamingTsa {
    /// A new streaming run over `d`-attribute tuples with parameter `k`.
    pub fn new(d: usize, k: usize) -> Self {
        assert!(d > 0, "StreamingTsa requires d > 0");
        StreamingTsa {
            d,
            k,
            seqs: Vec::new(),
            data: Vec::new(),
            alive: Vec::new(),
            offered: 0,
            verified: 0,
            verifying: false,
        }
    }

    #[inline]
    fn cand_row(&self, i: usize) -> &[f64] {
        &self.data[i * self.d..(i + 1) * self.d]
    }

    fn remove_candidate(&mut self, i: usize) {
        let last = self.seqs.len() - 1;
        self.seqs.swap_remove(i);
        if i != last {
            let (dst, src) = (i * self.d, last * self.d);
            self.data.copy_within(src..src + self.d, dst);
        }
        self.data.truncate(last * self.d);
    }

    /// Scan 1: offer the next tuple. Returns the sequence number assigned.
    pub fn offer(&mut self, row: &[f64]) -> u64 {
        assert!(!self.verifying, "offer called after begin_verify");
        debug_assert_eq!(row.len(), self.d);
        let seq = self.offered;
        self.offered += 1;

        let mut dominated = false;
        let mut i = 0;
        while i < self.seqs.len() {
            let crow = self.cand_row(i);
            if !dominated && k_dominates(crow, row, self.k) {
                dominated = true;
            }
            if k_dominates(row, crow, self.k) {
                self.remove_candidate(i);
            } else {
                i += 1;
            }
        }
        if !dominated {
            self.seqs.push(seq);
            self.data.extend_from_slice(row);
        }
        seq
    }

    /// Number of candidates currently held.
    pub fn candidate_count(&self) -> usize {
        self.seqs.len()
    }

    /// Transition from scan 1 to scan 2.
    pub fn begin_verify(&mut self) {
        assert!(!self.verifying, "begin_verify called twice");
        self.verifying = true;
        self.alive = vec![true; self.seqs.len()];
    }

    /// Scan 2: verify candidates against the next tuple of the re-run
    /// stream (must arrive in the same order as in scan 1).
    pub fn verify(&mut self, row: &[f64]) {
        assert!(self.verifying, "verify called before begin_verify");
        debug_assert_eq!(row.len(), self.d);
        let seq = self.verified;
        self.verified += 1;
        for i in 0..self.seqs.len() {
            if self.alive[i] && self.seqs[i] != seq && k_dominates(row, self.cand_row(i), self.k) {
                self.alive[i] = false;
            }
        }
    }

    /// Complete the run: surviving `(sequence number, attribute vector)`
    /// pairs in offer order.
    ///
    /// # Panics
    ///
    /// Panics when scan 2 saw a different number of tuples than scan 1 —
    /// that means the stream was not restarted faithfully and the result
    /// would be unsound.
    pub fn finish(self) -> Vec<(u64, Vec<f64>)> {
        assert!(self.verifying, "finish called before begin_verify");
        assert_eq!(
            self.offered, self.verified,
            "scan 2 saw {} tuples, scan 1 saw {}",
            self.verified, self.offered
        );
        let mut out: Vec<(u64, Vec<f64>)> = self
            .seqs
            .iter()
            .enumerate()
            .filter(|(i, _)| self.alive[*i])
            .map(|(i, &s)| (s, self.cand_row(i).to_vec()))
            .collect();
        out.sort_by_key(|(s, _)| *s);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdominant::naive::kdom_naive;
    use crate::MatrixView;

    fn ids(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    fn pseudorandom(n: usize, d: usize, modulus: u64, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n * d)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % modulus) as f64
            })
            .collect()
    }

    #[test]
    fn matches_naive_small() {
        let data = [
            1.0, 2.0, 3.0, //
            3.0, 1.0, 2.0, //
            2.0, 3.0, 1.0, //
            1.0, 1.0, 1.0, //
        ];
        let m = MatrixView::new(3, &data);
        for k in 1..=3 {
            assert_eq!(
                kdom_tsa(&m, &ids(4), k),
                kdom_naive(&m, &ids(4), k),
                "k={k}"
            );
        }
    }

    #[test]
    fn matches_naive_pseudorandom() {
        for seed in [1u64, 7, 42] {
            // Small modulus forces many ties, stressing the strictness rule.
            let data = pseudorandom(150, 5, 8, seed);
            let m = MatrixView::new(5, &data);
            let all = ids(150);
            for k in 1..=5 {
                assert_eq!(
                    kdom_tsa(&m, &all, k),
                    kdom_naive(&m, &all, k),
                    "seed={seed} k={k}"
                );
            }
        }
    }

    #[test]
    fn second_scan_catches_nontransitive_survivor() {
        // x is evicted from the window by y, then z arrives; z is
        // incomparable to the remaining window {y}, so scan 1 keeps z even
        // though the *evicted* x 3-dominates z. Scan 2 must kill z.
        let data = [
            5.0, 5.0, 5.0, 5.0, // x: 3-dominated by y, 3-dominates z
            4.0, 4.0, 4.0, 6.0, // y: the only true 3-dominant skyline tuple
            6.0, 6.0, 0.0, 5.0, // z: 3-dominated by x only
        ];
        let m = MatrixView::new(4, &data);
        let k = 3;
        assert_eq!(kdom_naive(&m, &ids(3), k), vec![1]);
        assert_eq!(kdom_tsa(&m, &ids(3), k), vec![1]);
        // Sanity: scan 1 alone would have kept z.
        let mut s = StreamingTsa::new(4, k);
        for i in 0..3u32 {
            s.offer(m.row(i));
        }
        assert_eq!(s.candidate_count(), 2);
    }

    #[test]
    fn streaming_matches_batch() {
        let d = 4;
        let data = pseudorandom(120, d, 16, 99);
        let m = MatrixView::new(d, &data);
        let all = ids(120);
        for k in 2..=4 {
            let batch = kdom_tsa(&m, &all, k);
            let mut s = StreamingTsa::new(d, k);
            for i in 0..120u32 {
                s.offer(m.row(i));
            }
            s.begin_verify();
            for i in 0..120u32 {
                s.verify(m.row(i));
            }
            let streamed: Vec<u32> = s.finish().into_iter().map(|(s, _)| s as u32).collect();
            assert_eq!(streamed, batch, "k={k}");
        }
    }

    #[test]
    fn streaming_returns_rows() {
        let mut s = StreamingTsa::new(2, 2);
        s.offer(&[1.0, 2.0]);
        s.offer(&[2.0, 1.0]);
        s.offer(&[3.0, 3.0]); // dominated by both
        s.begin_verify();
        for row in [[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]] {
            s.verify(&row);
        }
        let out = s.finish();
        assert_eq!(out, vec![(0, vec![1.0, 2.0]), (1, vec![2.0, 1.0])]);
    }

    #[test]
    #[should_panic(expected = "scan 2 saw")]
    fn mismatched_scans_panic() {
        let mut s = StreamingTsa::new(1, 1);
        s.offer(&[1.0]);
        s.begin_verify();
        s.finish();
    }

    #[test]
    fn empty_stream() {
        let mut s = StreamingTsa::new(3, 2);
        s.begin_verify();
        assert!(s.finish().is_empty());
    }
}
