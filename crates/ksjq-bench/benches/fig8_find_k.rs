//! Figs. 8–10: the find-k strategies (binary / range / naïve) under δ,
//! d, g, n and distribution sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksjq_bench::PaperParams;
use ksjq_core::{find_k_at_least, Config, FindKStrategy};
use ksjq_datagen::DataType;

const STRATS: [(&str, FindKStrategy); 3] = [
    ("B", FindKStrategy::Binary),
    ("R", FindKStrategy::Range),
    ("N", FindKStrategy::Naive),
];

fn bench_effect_of_delta(c: &mut Criterion) {
    let cfg = Config::default();
    let params = PaperParams {
        n: 400,
        d: 5,
        a: 0,
        ..Default::default()
    };
    let (r1, r2) = params.relations();
    let cx = params.context(&r1, &r2);
    let mut group = c.benchmark_group("fig8a_find_k_delta");
    group.sample_size(10);
    for delta in [1usize, 15, 150, 1500] {
        for (label, strat) in STRATS {
            group.bench_with_input(BenchmarkId::new(label, delta), &delta, |b, &delta| {
                b.iter(|| find_k_at_least(&cx, delta, strat, &cfg).unwrap().k)
            });
        }
    }
    group.finish();
}

fn bench_effect_of_d(c: &mut Criterion) {
    let cfg = Config::default();
    let mut group = c.benchmark_group("fig8b_find_k_dimensionality");
    group.sample_size(10);
    for d in [3usize, 4, 5, 7] {
        let params = PaperParams {
            n: 330,
            d,
            a: 0,
            ..Default::default()
        };
        let (r1, r2) = params.relations();
        let cx = params.context(&r1, &r2);
        for (label, strat) in STRATS {
            group.bench_with_input(BenchmarkId::new(label, d), &d, |b, _| {
                b.iter(|| find_k_at_least(&cx, 150, strat, &cfg).unwrap().k)
            });
        }
    }
    group.finish();
}

fn bench_effect_of_datatype(c: &mut Criterion) {
    let cfg = Config::default();
    let mut group = c.benchmark_group("fig10_find_k_datatype");
    group.sample_size(10);
    for (name, data_type) in [
        ("independent", DataType::Independent),
        ("correlated", DataType::Correlated),
        ("anticorrelated", DataType::AntiCorrelated),
    ] {
        let params = PaperParams {
            n: 330,
            d: 5,
            a: 0,
            data_type,
            ..Default::default()
        };
        let (r1, r2) = params.relations();
        let cx = params.context(&r1, &r2);
        for (label, strat) in STRATS {
            group.bench_function(BenchmarkId::new(label, name), |b| {
                b.iter(|| find_k_at_least(&cx, 150, strat, &cfg).unwrap().k)
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_effect_of_delta,
    bench_effect_of_d,
    bench_effect_of_datatype
);
criterion_main!(benches);
