//! Cross-algorithm equivalence: the naïve, grouping and dominator-based
//! algorithms must return the identical skyline on every workload shape —
//! join kinds × aggregation × data distributions × k values.

mod common;

use common::*;
use ksjq::prelude::*;

#[test]
fn equality_join_no_aggregates() {
    let cfg = Config::default();
    for seed in [1u64, 2, 3] {
        let r1 = random_grouped(seed, 90, 0, 4, 5, 10);
        let r2 = random_grouped(seed + 100, 90, 0, 4, 5, 10);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        for k in 5..=8 {
            assert_all_algorithms_agree(&cx, k, &cfg, &format!("seed={seed} k={k}"));
        }
    }
}

#[test]
fn equality_join_one_aggregate() {
    let cfg = Config::default();
    for seed in [7u64, 8] {
        let r1 = random_grouped(seed, 80, 1, 3, 4, 8);
        let r2 = random_grouped(seed + 50, 80, 1, 3, 4, 8);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum]).unwrap();
        for k in 5..=7 {
            assert_all_algorithms_agree(&cx, k, &cfg, &format!("agg seed={seed} k={k}"));
        }
    }
}

#[test]
fn equality_join_two_aggregates_exercises_theorem3_fix() {
    // a = 2: the SS⋈SS fast path is unsound (DESIGN.md §4.5) and the
    // algorithms must verify it. Tight value range maximises collisions.
    let cfg = Config::default();
    for seed in [11u64, 12, 13, 14] {
        let r1 = random_grouped(seed, 60, 2, 2, 3, 5);
        let r2 = random_grouped(seed + 31, 60, 2, 2, 3, 5);
        let cx =
            JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum, AggFunc::Sum]).unwrap();
        for k in 5..=6 {
            assert_all_algorithms_agree(&cx, k, &cfg, &format!("a2 seed={seed} k={k}"));
        }
    }
}

#[test]
fn weighted_sum_aggregate() {
    let cfg = Config::default();
    let r1 = random_grouped(21, 70, 1, 3, 4, 9);
    let r2 = random_grouped(22, 70, 1, 3, 4, 9);
    let w = AggFunc::WeightedSum {
        left: 1.0,
        right: 0.5,
    };
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[w]).unwrap();
    for k in 5..=7 {
        assert_all_algorithms_agree(&cx, k, &cfg, &format!("wsum k={k}"));
    }
}

#[test]
fn cartesian_product() {
    let cfg = Config::default();
    let r1 = random_keyless(31, 40, 3, 8);
    let r2 = random_keyless(32, 40, 3, 8);
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Cartesian, &[]).unwrap();
    for k in 4..=6 {
        let out = assert_all_algorithms_agree(&cx, k, &cfg, &format!("cartesian k={k}"));
        // Sec. 6.5: with one conceptual group there are no SN tuples and
        // hence no likely/maybe verification work in the grouping stats.
        let g = ksjq_grouping(&cx, k, &cfg).unwrap();
        assert_eq!(g.stats.counts.likely_pairs, 0);
        assert_eq!(g.stats.counts.maybe_pairs, 0);
        assert_eq!(g.len(), out.len());
    }
}

#[test]
fn all_kdom_subroutines_agree() {
    let r1 = random_grouped(41, 70, 0, 4, 4, 8);
    let r2 = random_grouped(42, 70, 0, 4, 4, 8);
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
    for kdom in [KdomAlgo::Naive, KdomAlgo::Osa, KdomAlgo::Tsa] {
        let cfg = Config {
            kdom,
            ..Default::default()
        };
        for k in 5..=7 {
            assert_all_algorithms_agree(&cx, k, &cfg, &format!("kdom={kdom:?} k={k}"));
        }
    }
}

#[test]
fn paper_defaults_shape_smoke() {
    // A scaled-down version of the paper's default workload (Table 7):
    // d = 7 with a = 2 aggregates, independent data.
    let spec1 = DatasetSpec {
        n: 220,
        agg_attrs: 2,
        local_attrs: 5,
        groups: 6,
        data_type: DataType::Independent,
        seed: 1,
    };
    let spec2 = DatasetSpec { seed: 2, ..spec1 };
    let (r1, r2) = (spec1.generate(), spec2.generate());
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum, AggFunc::Sum]).unwrap();
    let cfg = Config::default();
    for k in [9, 10, 11] {
        assert_all_algorithms_agree(&cx, k, &cfg, &format!("paperdefault k={k}"));
    }
}

#[test]
fn correlated_and_anticorrelated_distributions() {
    let cfg = Config::default();
    for data_type in [DataType::Correlated, DataType::AntiCorrelated] {
        let spec1 = DatasetSpec {
            n: 150,
            agg_attrs: 0,
            local_attrs: 4,
            groups: 4,
            data_type,
            seed: 5,
        };
        let spec2 = DatasetSpec { seed: 6, ..spec1 };
        let (r1, r2) = (spec1.generate(), spec2.generate());
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        for k in 5..=7 {
            assert_all_algorithms_agree(&cx, k, &cfg, &format!("{data_type} k={k}"));
        }
    }
}

#[test]
fn duplicate_heavy_input() {
    // Every tuple duplicated: skylines must retain both copies or drop
    // both, identically across algorithms.
    let base = random_grouped(51, 30, 0, 3, 3, 4);
    let mut b = Relation::builder(Schema::uniform(3).unwrap());
    for (t, row) in base.rows() {
        let g = base.group_id(t).unwrap();
        b.add_grouped(g, row).unwrap();
        b.add_grouped(g, row).unwrap();
    }
    let r1 = b.build().unwrap();
    let r2 = random_grouped(52, 40, 0, 3, 3, 4);
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
    let cfg = Config::default();
    for k in 4..=6 {
        assert_all_algorithms_agree(&cx, k, &cfg, &format!("dup k={k}"));
    }
}

#[test]
fn empty_and_singleton_relations() {
    let cfg = Config::default();
    let empty = Relation::builder(Schema::uniform(3).unwrap())
        .build()
        .unwrap();
    let single = {
        let mut b = Relation::builder(Schema::uniform(3).unwrap());
        b.add_grouped(0, &[1.0, 2.0, 3.0]).unwrap();
        b.build().unwrap()
    };
    // Empty ⋈ single: empty skyline everywhere. The empty relation has no
    // group keys at all, so bind it as Cartesian (no key requirement).
    let cx = JoinContext::new(&empty, &single, JoinSpec::Cartesian, &[]).unwrap();
    let out = assert_all_algorithms_agree(&cx, 4, &cfg, "empty-cartesian");
    assert!(out.is_empty());

    // Single ⋈ single (same group): exactly one skyline pair.
    let single2 = {
        let mut b = Relation::builder(Schema::uniform(3).unwrap());
        b.add_grouped(0, &[4.0, 5.0, 6.0]).unwrap();
        b.build().unwrap()
    };
    let cx = JoinContext::new(&single, &single2, JoinSpec::Equality, &[]).unwrap();
    let out = assert_all_algorithms_agree(&cx, 4, &cfg, "single-single");
    assert_eq!(out.len(), 1);
}

#[test]
fn k_extremes() {
    let r1 = random_grouped(61, 50, 0, 4, 4, 8);
    let r2 = random_grouped(62, 50, 0, 4, 4, 8);
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
    let cfg = Config::default();
    let (kmin, kmax) = k_range(&cx);
    assert_eq!((kmin, kmax), (5, 8));
    let at_min = assert_all_algorithms_agree(&cx, kmin, &cfg, "k=min");
    let at_max = assert_all_algorithms_agree(&cx, kmax, &cfg, "k=max");
    // Lemma 1: the skyline grows with k.
    assert!(at_min.len() <= at_max.len());
    for p in &at_min.pairs {
        assert!(at_max.pairs.contains(p), "Lemma 1 violated for {p:?}");
    }
}
