//! Algorithm 3: the dominator-based KSJQ algorithm.
//!
//! Same skeleton as the grouping algorithm, but *every* SS/SN tuple's
//! dominator/target set is computed up front (the "dominator generation"
//! phase), and candidates are verified against the **join of both legs'
//! sets** — `dom(u′) ⋈ dom(v′)` — instead of one leg's set joined with the
//! whole other relation. The verification is therefore cheaper per
//! candidate, at the cost of `O(n²)` set construction and storage; the
//! paper's experiments (and ours) show this trade rarely pays off, which
//! is the point of comparing the two.
//!
//! At `a = 0` the precomputed sets are exactly the paper's
//! `dominators(u) ∪ Augment(u)` (Algorithm 3, lines 6–13): a tuple with
//! `≥ k′` better-or-equal positions either k′-dominates `u` or ties it on
//! every one of them.

use crate::cancel::{check_deadline, Checkpoint};
use crate::classify::classify_parallel;
use crate::config::Config;
use crate::error::CoreResult;
use crate::grouping::{
    absorb_counters, collect_candidates, record_tallies, require_strict_aggs, CheckKind,
};
use crate::output::{finish, KsjqOutput};
use crate::params::validate_k;
use crate::stats::ExecStats;
use crate::target::precompute_target_sets;
use crate::verify::ColumnarCheck;
use ksjq_join::JoinContext;
use std::time::Instant;

/// Run the dominator-based KSJQ algorithm (paper Algorithm 3).
pub fn ksjq_dominator_based(
    cx: &JoinContext<'_>,
    k: usize,
    cfg: &Config,
) -> CoreResult<KsjqOutput> {
    let params = validate_k(cx, k)?;
    require_strict_aggs(cx)?;
    let mut stats = ExecStats::default();
    stats.counts.joined_pairs = cx.count_pairs();

    // Phase 1: classification ("grouping time").
    let t = Instant::now();
    let cls = classify_parallel(cx, &params, cfg.kdom, cfg.threads);
    record_tallies(&cls, &mut stats);
    stats.phases.grouping = t.elapsed();

    // Phase 2: dominator/target sets for every SS/SN tuple, both sides
    // ("dominator generation") — the `O(n²)` phase, sharded over
    // `cfg.threads` scoped workers with a deterministic merge (see
    // [`precompute_target_sets`]).
    check_deadline(cfg.deadline)?;
    let t = Instant::now();
    let ltargets = precompute_target_sets(cx.left(), &cls.left, params.k1_pp, cfg.threads);
    let rtargets = precompute_target_sets(cx.right(), &cls.right, params.k2_pp, cfg.threads);
    stats.phases.dominator_gen = t.elapsed();

    // Phase 3: candidate collection + joined rows ("join time").
    // SS⋈SS pairs are emitted directly only when Theorem 3 applies (a ≤ 1).
    let t = Instant::now();
    let verify_yes = params.a >= 2;
    let cands = collect_candidates(cx, &cls, verify_yes, &mut stats);
    stats.phases.join = t.elapsed();

    // Phase 4: two-sided verification ("remaining").
    let t = Instant::now();
    let mut chk = ColumnarCheck::new(cx, k);
    let mut cp = Checkpoint::new(cfg.deadline);
    let mut out = Vec::new();
    for (i, &(u, v)) in cands.pairs.iter().enumerate() {
        cp.tick()?;
        let dominated = match cands.kinds[i] {
            CheckKind::Emit => false,
            _ => chk.dominated_via_both(
                ltargets[u as usize]
                    .as_deref()
                    .expect("non-NN candidate leg"),
                rtargets[v as usize]
                    .as_deref()
                    .expect("non-NN candidate leg"),
                cands.row(i),
            ),
        };
        if !dominated {
            out.push((u, v));
        }
    }
    absorb_counters(&mut stats, chk.counters());
    stats.phases.remaining = t.elapsed();
    Ok(finish(out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::ksjq_grouping;
    use crate::naive::ksjq_naive;
    use ksjq_join::{AggFunc, JoinSpec};
    use ksjq_relation::{Relation, Schema, TupleId};

    fn rel(groups: &[u64], rows: &[Vec<f64>]) -> Relation {
        Relation::from_grouped_rows(Schema::uniform(rows[0].len()).unwrap(), groups, rows).unwrap()
    }

    #[test]
    fn matches_other_algorithms_on_random() {
        let mut state = 99u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let n = 60;
        let mk = |next: &mut dyn FnMut(u64) -> u64| {
            let g: Vec<u64> = (0..n).map(|_| next(5)).collect();
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..4).map(|_| next(9) as f64).collect())
                .collect();
            rel(&g, &rows)
        };
        let r1 = mk(&mut next);
        let r2 = mk(&mut next);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let cfg = Config::default();
        for k in 5..=8 {
            let a = ksjq_naive(&cx, k, &cfg).unwrap();
            let b = ksjq_grouping(&cx, k, &cfg).unwrap();
            let c = ksjq_dominator_based(&cx, k, &cfg).unwrap();
            assert_eq!(a.pairs, b.pairs, "k={k}");
            assert_eq!(a.pairs, c.pairs, "k={k}");
        }
    }

    #[test]
    fn dominator_gen_phase_is_populated() {
        let r1 = rel(
            &[0, 0, 1],
            &[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]],
        );
        let r2 = rel(&[0, 1], &[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let out = ksjq_dominator_based(&cx, 3, &Config::default()).unwrap();
        // The phase ran (non-zero measurable work may still round to 0 ns
        // on coarse clocks, so only assert the algorithm's correctness
        // accounting here).
        let c = out.stats.counts;
        assert_eq!(c.output, out.len());
    }

    /// Sharded dominator generation must not change anything observable:
    /// identical skyline, identical counter sums, for every thread count.
    #[test]
    fn parallel_domgen_matches_serial_including_counters() {
        let mut state = 1234u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let n = 120;
        let mk = |next: &mut dyn FnMut(u64) -> u64| {
            let g: Vec<u64> = (0..n).map(|_| next(6)).collect();
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..4).map(|_| next(9) as f64).collect())
                .collect();
            rel(&g, &rows)
        };
        let r1 = mk(&mut next);
        let r2 = mk(&mut next);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        for k in 5..=7 {
            let serial = ksjq_dominator_based(&cx, k, &Config::default()).unwrap();
            for threads in [2usize, 4, 16] {
                let parallel =
                    ksjq_dominator_based(&cx, k, &Config::with_threads(threads)).unwrap();
                assert_eq!(serial.pairs, parallel.pairs, "k={k} threads={threads}");
                assert_eq!(
                    serial.stats.counts.dom_tests, parallel.stats.counts.dom_tests,
                    "k={k} threads={threads}"
                );
                assert_eq!(
                    serial.stats.counts.attr_cmps, parallel.stats.counts.attr_cmps,
                    "k={k} threads={threads}"
                );
                assert_eq!(
                    serial.stats.counts.targets_pruned, parallel.stats.counts.targets_pruned,
                    "k={k} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn aggregate_join_matches_naive() {
        let schema = || Schema::uniform_agg(1, 2).unwrap();
        let mut state = 7u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mk = |next: &mut dyn FnMut(u64) -> u64| {
            let mut b = Relation::builder(schema());
            for _ in 0..50 {
                let g = next(4);
                let row = [next(9) as f64, next(9) as f64, next(9) as f64];
                b.add_grouped(g, &row).unwrap();
            }
            b.build().unwrap()
        };
        let r1 = mk(&mut next);
        let r2 = mk(&mut next);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum]).unwrap();
        let cfg = Config::default();
        for k in 4..=5 {
            let a = ksjq_naive(&cx, k, &cfg).unwrap();
            let c = ksjq_dominator_based(&cx, k, &cfg).unwrap();
            assert_eq!(a.pairs, c.pairs, "k={k}");
        }
    }

    #[test]
    fn paper_table6_aggregate_skyline() {
        use ksjq_datagen::paper_flights;
        let pf = paper_flights(true);
        let cx = JoinContext::new(
            &pf.outbound,
            &pf.inbound,
            JoinSpec::Equality,
            &[AggFunc::Sum],
        )
        .unwrap();
        let out = ksjq_dominator_based(&cx, 6, &Config::default()).unwrap();
        // Table 6 (k = 6, cost aggregated): same four winners as Table 3.
        let expected = vec![
            (TupleId(0), TupleId(2)),
            (TupleId(2), TupleId(0)),
            (TupleId(4), TupleId(4)),
            (TupleId(5), TupleId(5)),
        ];
        assert_eq!(out.pairs, expected);
    }
}
