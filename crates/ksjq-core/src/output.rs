//! Query results.

use crate::stats::ExecStats;
use ksjq_relation::TupleId;

/// The result of one KSJQ execution: the k-dominant skyline of the joined
/// relation, as `(left, right)` base-tuple pairs, plus execution stats.
#[derive(Debug, Clone, PartialEq)]
pub struct KsjqOutput {
    /// Skyline joined tuples, sorted by `(left, right)` tuple id — every
    /// algorithm produces the identical, deterministic sequence.
    pub pairs: Vec<(TupleId, TupleId)>,
    /// Timing breakdown and cardinality counters.
    pub stats: ExecStats,
}

impl KsjqOutput {
    /// Number of skyline tuples.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Is the skyline empty? (Legitimately possible: k-dominance admits
    /// mutual elimination.)
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Does the skyline contain the joined tuple `(left, right)`?
    pub fn contains(&self, left: u32, right: u32) -> bool {
        self.pairs
            .binary_search(&(TupleId(left), TupleId(right)))
            .is_ok()
    }
}

/// Sort-and-wrap helper used by the algorithm implementations.
pub(crate) fn finish(mut pairs: Vec<(u32, u32)>, mut stats: ExecStats) -> KsjqOutput {
    pairs.sort_unstable();
    stats.counts.output = pairs.len();
    KsjqOutput {
        pairs: pairs
            .into_iter()
            .map(|(u, v)| (TupleId(u), TupleId(v)))
            .collect(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_sorts_and_counts() {
        let out = finish(vec![(2, 1), (0, 3), (2, 0)], ExecStats::default());
        assert_eq!(
            out.pairs,
            vec![
                (TupleId(0), TupleId(3)),
                (TupleId(2), TupleId(0)),
                (TupleId(2), TupleId(1))
            ]
        );
        assert_eq!(out.stats.counts.output, 3);
        assert_eq!(out.len(), 3);
        assert!(!out.is_empty());
        assert!(out.contains(2, 0));
        assert!(!out.contains(1, 1));
    }

    #[test]
    fn empty_output() {
        let out = finish(vec![], ExecStats::default());
        assert!(out.is_empty());
        assert_eq!(out.len(), 0);
    }
}
