//! Target sets (paper Def. 5 + `Augment`, generalised soundly to
//! aggregates).
//!
//! For a candidate joined tuple `t′ = u′ ⋈ v′`, any dominating joined
//! tuple `t = u ⋈ v` must satisfy, by attribute counting,
//!
//! ```text
//! |{local i of R1 : u_i ≤ u′_i}| ≥ k″1    (and symmetrically for v)
//! ```
//!
//! because the right leg can contribute at most `l2` local positions and
//! `a` aggregate positions to the `≥ k` better-or-equal requirement. The
//! **target set** `τ(u′)` is the set of tuples passing this filter.
//!
//! At `a = 0` this is exactly the paper's machinery: for `u′ ∈ SS`, a
//! tuple with `≥ k′1` better-or-equal positions and any strictly-better
//! position would k′1-dominate `u′` (contradiction), so τ reduces to the
//! paper's *equal-shares* `Augment` set; for `u′ ∈ SN` it is precisely
//! `dominators(u′) ∪ Augment(u′)` of Algorithm 3. With aggregates the
//! paper's equal-shares set is **incomplete** — the other leg can repair an
//! aggregate position, so a dominator's leg may share no values at all —
//! which is why this generalisation filters on `≤` over local attributes
//! only (see DESIGN.md §4.5 and `tests/aggregate_semantics.rs`).
//!
//! Verification consumers receive target sets **ordered by ascending
//! attribute sum** (the SFS presorting idea of Chomicki et al., ICDE 2003,
//! also used by `ksjq-skyline`'s [`sfs`](ksjq_skyline::sfs) module): the
//! sum of normalised attributes is a monotone score, so legs of actual
//! dominators cluster at the front and the split-side kernel's `any`-scan
//! exits early. Membership is unchanged — only the iteration order.

use crate::classify::Category;
use ksjq_relation::{dom_counts_partial_block_columnar_into, Relation};

/// Number of positions (restricted to `locals`) where `x ≤ x_prime`,
/// with early abandonment once `m` is unreachable.
#[inline]
fn local_le_at_least(x: &[f64], x_prime: &[f64], locals: &[usize], m: usize) -> bool {
    let l = locals.len();
    if m > l {
        return false;
    }
    let mut le = 0usize;
    for (i, &attr) in locals.iter().enumerate() {
        le += (x[attr] <= x_prime[attr]) as usize;
        if le + (l - i - 1) < m {
            return false;
        }
    }
    le >= m
}

/// Compute the target set `τ(x′) = {x : |{local i : x_i ≤ x′_i}| ≥ k_pp}`.
///
/// Always contains `x′` itself (`k_pp ≤ l` for every valid `k`). Returned
/// ids are ascending; callers that scan the set for dominators should
/// reorder it with [`order_by_attr_sum`].
///
/// The scan runs through the columnar kernel
/// [`dom_counts_partial_block_columnar_into`] over the relation's
/// attribute-major storage: each *selected* local attribute sweeps one
/// contiguous column, so the filter is stride-1 even when aggregates
/// interleave the locals (`a > 0`) — the case the previous row-major
/// blocked fast path could not take. [`target_set_rowmajor`] keeps the
/// scalar per-row loop as the oracle; their equality is property-tested.
pub fn target_set(rel: &Relation, locals: &[usize], x_prime: u32, k_pp: usize) -> Vec<u32> {
    target_set_with(rel, locals, x_prime, k_pp, &mut TargetScratch::default())
}

/// Reusable buffers for [`target_set_with`]: the gathered probe segment
/// and the columnar sweep's `≤`/`<` lane counts. One scratch per thread
/// removes all per-probe heap traffic from the `O(n²)` dominator-
/// generation sweep (each buffer is `O(n)` and reused across probes).
#[derive(Debug, Default)]
pub struct TargetScratch {
    probe: Vec<f64>,
    le: Vec<u32>,
    lt: Vec<u32>,
}

/// [`target_set`] with caller-owned scratch — the form the hot loops
/// ([`TargetCache`], [`precompute_target_sets`]) use.
pub fn target_set_with(
    rel: &Relation,
    locals: &[usize],
    x_prime: u32,
    k_pp: usize,
    scratch: &mut TargetScratch,
) -> Vec<u32> {
    let n = rel.n();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    if locals.is_empty() {
        // No local attributes: the filter is vacuous at k_pp = 0 and
        // unsatisfiable otherwise — mirrors the scalar oracle exactly.
        if k_pp == 0 {
            out.extend(0..n as u32);
        }
        return out;
    }
    let prow = rel.row_at(x_prime as usize);
    scratch.probe.clear();
    scratch.probe.extend(locals.iter().map(|&attr| prow[attr]));
    dom_counts_partial_block_columnar_into(
        rel.columns(),
        n,
        locals,
        &scratch.probe,
        &mut scratch.le,
        &mut scratch.lt,
    );
    for (t, &le) in scratch.le.iter().enumerate() {
        if le as usize >= k_pp {
            out.push(t as u32);
        }
    }
    out
}

/// [`target_set_with`] against an **external** probe: the candidate's
/// local values are supplied directly (in `locals` order) instead of
/// read from a row of `rel`. This is the distributed verification
/// primitive — a router ships a candidate's joined values to a shard
/// that does not hold the candidate, and the shard filters its own left
/// relation against them. By the same attribute counting as
/// [`target_set`], any joined tuple of this shard that k-dominates the
/// candidate has its left leg in the returned set, so scanning it (via
/// `ColumnarCheck::dominated_via_left`) is a complete local dominance
/// test.
pub fn target_set_for_values(
    rel: &Relation,
    locals: &[usize],
    probe: &[f64],
    k_pp: usize,
    scratch: &mut TargetScratch,
) -> Vec<u32> {
    debug_assert_eq!(probe.len(), locals.len());
    let n = rel.n();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    if locals.is_empty() {
        if k_pp == 0 {
            out.extend(0..n as u32);
        }
        return out;
    }
    scratch.probe.clear();
    scratch.probe.extend_from_slice(probe);
    dom_counts_partial_block_columnar_into(
        rel.columns(),
        n,
        locals,
        &scratch.probe,
        &mut scratch.le,
        &mut scratch.lt,
    );
    for (t, &le) in scratch.le.iter().enumerate() {
        if le as usize >= k_pp {
            out.push(t as u32);
        }
    }
    out
}

/// The scalar row-major reference for [`target_set`]: one early-abandoning
/// pass per tuple over the interleaved rows. Kept as the oracle the
/// property suite (and the kernel ablation benches) compare the columnar
/// path against; membership and order are identical.
pub fn target_set_rowmajor(
    rel: &Relation,
    locals: &[usize],
    x_prime: u32,
    k_pp: usize,
) -> Vec<u32> {
    let prow = rel.row_at(x_prime as usize);
    let mut out = Vec::new();
    for t in 0..rel.n() as u32 {
        if local_le_at_least(rel.row_at(t as usize), prow, locals, k_pp) {
            out.push(t);
        }
    }
    out
}

/// Build the dominator/target set of every non-`NN` tuple — the
/// dominator-based algorithm's "dominator generation" phase — sharding the
/// `O(n²)` sweep over `threads` scoped workers.
///
/// Each tuple's set is computed independently over immutable relation
/// data and written into its own slot, and the per-cache scores are
/// computed once up front, so the result is **byte-identical for every
/// thread count** (the property suite pins this); only wall-clock changes.
/// Sets come back ordered by ascending attribute sum, ready for the
/// verifier's early-exit scans.
pub fn precompute_target_sets(
    rel: &Relation,
    cats: &[Category],
    k_pp: usize,
    threads: usize,
) -> Vec<Option<Vec<u32>>> {
    let locals: Vec<usize> = rel.schema().local_indices().collect();
    // SFS-style ordering: scanning each set sum-ascending lets the
    // verifier hit a dominator (and exit) early.
    let scores = attr_sums(rel);
    let n = cats.len();
    let one = |t: usize, scratch: &mut TargetScratch| -> Option<Vec<u32>> {
        match cats[t] {
            Category::NN => None,
            _ => {
                let mut set = target_set_with(rel, &locals, t as u32, k_pp, scratch);
                order_by_attr_sum(&mut set, &scores);
                Some(set)
            }
        }
    };
    let threads = threads.min(n).max(1);
    if threads == 1 {
        let mut scratch = TargetScratch::default();
        return (0..n).map(|t| one(t, &mut scratch)).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut sets = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            let one = &one;
            handles.push(scope.spawn(move || {
                let mut scratch = TargetScratch::default();
                (lo..hi).map(|t| one(t, &mut scratch)).collect::<Vec<_>>()
            }));
        }
        // Deterministic merge: workers cover ascending disjoint id ranges
        // and are drained in spawn order.
        for h in handles {
            sets.extend(h.join().expect("dominator-generation worker panicked"));
        }
    });
    sets
}

/// The attribute sums of every tuple — the SFS presort score. NaN-free
/// relations yield NaN-free scores; ordering uses [`f64::total_cmp`]
/// regardless, so hostile inputs cannot panic the sort.
pub fn attr_sums(rel: &Relation) -> Vec<f64> {
    rel.rows().map(|(_, row)| row.iter().sum()).collect()
}

/// Order `ids` so likely dominators come first: ascending score, ties
/// broken by ascending id (deterministic).
pub fn order_by_attr_sum(ids: &mut [u32], scores: &[f64]) {
    ids.sort_unstable_by(|&a, &b| {
        scores[a as usize]
            .total_cmp(&scores[b as usize])
            .then(a.cmp(&b))
    });
}

/// Lazily computed, memoised target sets for one relation, pre-ordered by
/// attribute sum for early-exit scans.
///
/// The grouping algorithm touches targets of only the tuples that actually
/// appear in "likely"/"may be" candidate pairs, so computing them on
/// demand avoids the dominator-based algorithm's up-front cost (the paper's
/// trade-off between Algorithms 2 and 3).
#[derive(Debug)]
pub struct TargetCache<'a> {
    rel: &'a Relation,
    locals: Vec<usize>,
    k_pp: usize,
    /// Attribute-sum scores, computed once per cache (`O(n·d)` — noise
    /// against the scans the ordering then accelerates).
    scores: Vec<f64>,
    sets: Vec<Option<Vec<u32>>>,
    scratch: TargetScratch,
}

impl<'a> TargetCache<'a> {
    /// A cache over `rel`'s local attributes with threshold `k_pp`.
    pub fn new(rel: &'a Relation, k_pp: usize) -> Self {
        TargetCache {
            rel,
            locals: rel.schema().local_indices().collect(),
            k_pp,
            scores: attr_sums(rel),
            sets: vec![None; rel.n()],
            scratch: TargetScratch::default(),
        }
    }

    /// The target set of `x_prime` ordered by ascending attribute sum,
    /// computing (and memoising) it on first access.
    pub fn get(&mut self, x_prime: u32) -> &[u32] {
        let slot = &mut self.sets[x_prime as usize];
        if slot.is_none() {
            let mut set = target_set_with(
                self.rel,
                &self.locals,
                x_prime,
                self.k_pp,
                &mut self.scratch,
            );
            order_by_attr_sum(&mut set, &self.scores);
            *slot = Some(set);
        }
        slot.as_deref().expect("just filled")
    }

    /// How many target sets were actually computed (for stats/tests).
    pub fn computed(&self) -> usize {
        self.sets.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksjq_relation::Schema;

    fn rel(rows: &[Vec<f64>]) -> Relation {
        let mut b = Relation::builder(Schema::uniform(rows[0].len()).unwrap());
        for r in rows {
            b.add(r).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn contains_self_and_dominators_and_shares() {
        let r = rel(&[
            vec![5.0, 5.0, 5.0], // 0: the probe
            vec![4.0, 4.0, 9.0], // 1: ≤ in two positions
            vec![5.0, 5.0, 9.0], // 2: equal in two positions
            vec![9.0, 9.0, 9.0], // 3: ≤ in none
            vec![1.0, 9.0, 9.0], // 4: ≤ in one position
        ]);
        let locals: Vec<usize> = r.schema().local_indices().collect();
        assert_eq!(target_set(&r, &locals, 0, 2), vec![0, 1, 2]);
        assert_eq!(target_set(&r, &locals, 0, 1), vec![0, 1, 2, 4]);
        assert_eq!(target_set(&r, &locals, 0, 3), vec![0]);
    }

    #[test]
    fn respects_local_subset() {
        // Attribute 0 is aggregated: only attributes 1, 2 count.
        let schema = Schema::builder()
            .agg("c", ksjq_relation::Preference::Min, 0)
            .local("x", ksjq_relation::Preference::Min)
            .local("y", ksjq_relation::Preference::Min)
            .build()
            .unwrap();
        let mut b = Relation::builder(schema);
        b.add_grouped(0, &[100.0, 5.0, 5.0]).unwrap(); // probe
        b.add_grouped(0, &[0.0, 9.0, 9.0]).unwrap(); // great agg, bad locals
        b.add_grouped(0, &[999.0, 5.0, 9.0]).unwrap(); // one local ≤
        let r = b.build().unwrap();
        let locals: Vec<usize> = r.schema().local_indices().collect();
        assert_eq!(locals, vec![1, 2]);
        assert_eq!(target_set(&r, &locals, 0, 1), vec![0, 2]);
    }

    /// The columnar scan and the scalar row-major oracle must select
    /// identical members — including with aggregates interleaving the
    /// locals, the case the old row-major blocked fast path skipped.
    #[test]
    fn columnar_matches_rowmajor_with_interleaved_locals() {
        let schema = Schema::builder()
            .local("x", ksjq_relation::Preference::Min)
            .agg("c", ksjq_relation::Preference::Min, 0)
            .local("y", ksjq_relation::Preference::Min)
            .agg("d", ksjq_relation::Preference::Min, 1)
            .local("z", ksjq_relation::Preference::Min)
            .build()
            .unwrap();
        let mut state = 9090u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut b = Relation::builder(schema);
        for _ in 0..90 {
            let row: Vec<f64> = (0..5).map(|_| next(7) as f64).collect();
            b.add_grouped(next(3), &row).unwrap();
        }
        let r = b.build().unwrap();
        let locals: Vec<usize> = r.schema().local_indices().collect();
        assert_eq!(locals, vec![0, 2, 4], "interleaving precondition");
        for probe in [0u32, 40, 89] {
            for k_pp in 1..=3 {
                assert_eq!(
                    target_set(&r, &locals, probe, k_pp),
                    target_set_rowmajor(&r, &locals, probe, k_pp),
                    "probe {probe} k_pp {k_pp}"
                );
            }
        }
    }

    /// Parallel dominator generation must be byte-identical to serial for
    /// every thread count.
    #[test]
    fn precompute_target_sets_thread_invariant() {
        let rows: Vec<Vec<f64>> = (0..97)
            .map(|i| {
                vec![
                    ((i * 31 + 7) % 13) as f64,
                    ((i * 17 + 3) % 11) as f64,
                    ((i * 7 + 5) % 9) as f64,
                ]
            })
            .collect();
        let r = rel(&rows);
        // Alternate categories so both None and Some slots appear.
        let cats: Vec<Category> = (0..97)
            .map(|i| match i % 3 {
                0 => Category::SS,
                1 => Category::SN,
                _ => Category::NN,
            })
            .collect();
        let serial = precompute_target_sets(&r, &cats, 2, 1);
        assert!(serial[2].is_none() && serial[0].is_some());
        for threads in [2usize, 3, 7, 200] {
            let parallel = precompute_target_sets(&r, &cats, 2, threads);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    /// The blocked fast path (contiguous locals) and the indexed slow path
    /// must select identical members.
    #[test]
    fn block_fast_path_matches_slow_path() {
        let mut state = 5150u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|_| (0..4).map(|_| next(9) as f64).collect())
            .collect();
        let r = rel(&rows);
        let locals: Vec<usize> = r.schema().local_indices().collect();
        assert_eq!(locals, vec![0, 1, 2, 3], "fast-path precondition");
        for probe in [0u32, 17, 119] {
            for k_pp in 1..=4 {
                let fast = target_set(&r, &locals, probe, k_pp);
                // Slow-path oracle.
                let slow: Vec<u32> = (0..r.n() as u32)
                    .filter(|&t| {
                        local_le_at_least(
                            r.row_at(t as usize),
                            r.row_at(probe as usize),
                            &locals,
                            k_pp,
                        )
                    })
                    .collect();
                assert_eq!(fast, slow, "probe {probe} k_pp {k_pp}");
            }
        }
    }

    /// Supplying a resident row's local values externally must select
    /// exactly what [`target_set`] selects for that row.
    #[test]
    fn values_variant_matches_resident_probe() {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                vec![
                    ((i * 13 + 5) % 17) as f64,
                    ((i * 29 + 11) % 19) as f64,
                    ((i * 3 + 1) % 7) as f64,
                ]
            })
            .collect();
        let r = rel(&rows);
        let locals: Vec<usize> = r.schema().local_indices().collect();
        let mut scratch = TargetScratch::default();
        for probe in [0u32, 23, 59] {
            let prow: Vec<f64> = locals
                .iter()
                .map(|&a| r.row_at(probe as usize)[a])
                .collect();
            for k_pp in 0..=3 {
                assert_eq!(
                    target_set_for_values(&r, &locals, &prow, k_pp, &mut scratch),
                    target_set(&r, &locals, probe, k_pp),
                    "probe {probe} k_pp {k_pp}"
                );
            }
        }
        // Foreign values (no resident row equals them) still filter by
        // the same counting rule, against the row-major oracle.
        let foreign = vec![3.5, 10.5, 2.5];
        for k_pp in 0..=3 {
            let got = target_set_for_values(&r, &locals, &foreign, k_pp, &mut scratch);
            let want: Vec<u32> = (0..r.n() as u32)
                .filter(|&t| {
                    let row = r.row_at(t as usize);
                    let le = locals
                        .iter()
                        .enumerate()
                        .filter(|&(i, &a)| row[a] <= foreign[i])
                        .count();
                    le >= k_pp
                })
                .collect();
            assert_eq!(got, want, "k_pp {k_pp}");
        }
    }

    #[test]
    fn cache_memoises() {
        let r = rel(&[vec![1.0], vec![2.0], vec![3.0]]);
        let mut cache = TargetCache::new(&r, 1);
        assert_eq!(cache.computed(), 0);
        assert_eq!(cache.get(1), &[0, 1]);
        assert_eq!(cache.get(1), &[0, 1]);
        assert_eq!(cache.computed(), 1);
        assert_eq!(cache.get(0), &[0]);
        assert_eq!(cache.computed(), 2);
    }

    #[test]
    fn cache_orders_by_attribute_sum() {
        // Probe 3 = (5,5); targets include the heavier (6,5) and the
        // lighter (1,1): the cache must yield them sum-ascending, not
        // id-ascending.
        let r = rel(&[
            vec![6.0, 5.0], // id 0, sum 11
            vec![1.0, 1.0], // id 1, sum 2
            vec![5.0, 5.0], // id 2, sum 10 (ties the probe's values)
            vec![5.0, 5.0], // id 3, sum 10: the probe
        ]);
        let mut cache = TargetCache::new(&r, 1);
        assert_eq!(cache.get(3), &[1, 2, 3, 0]);
    }

    #[test]
    fn ordering_is_total_on_hostile_scores() {
        // total_cmp tolerates NaN scores without panicking (MatrixView-fed
        // paths can smuggle NaN past the Relation builder's checks).
        let mut ids = vec![0u32, 1, 2, 3];
        let scores = vec![f64::NAN, 1.0, f64::NAN, 0.0];
        order_by_attr_sum(&mut ids, &scores);
        assert_eq!(&ids[..2], &[3, 1], "finite scores sort first");
        assert_eq!(&ids[2..], &[0, 2], "NaN ties break by id");
    }
}
