//! Execution configuration shared by all KSJQ algorithms.

use ksjq_skyline::KdomAlgo;

/// Tuning knobs for query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Which single-relation k-dominant skyline algorithm classification
    /// and the naïve path use. Defaults to the Two-Scan Algorithm.
    pub kdom: KdomAlgo,
    /// The naïve algorithm materialises the join when
    /// `|R1 ⋈ R2| · d_joined` does not exceed this many `f64` values
    /// (default 4 × 10⁷ ≈ 320 MB); beyond it, it streams with the two-scan
    /// skyline and cannot attribute a separate join time.
    pub materialize_limit: usize,
    /// Worker threads for the parallel extension (1 = serial, the paper's
    /// setting; >1 parallelises classification and candidate verification).
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            kdom: KdomAlgo::Tsa,
            materialize_limit: 40_000_000,
            threads: 1,
        }
    }
}

impl Config {
    /// A config using `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        Config {
            threads: threads.max(1),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial_tsa() {
        let c = Config::default();
        assert_eq!(c.kdom, KdomAlgo::Tsa);
        assert_eq!(c.threads, 1);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(Config::with_threads(0).threads, 1);
        assert_eq!(Config::with_threads(8).threads, 8);
    }
}
