//! Aggregate-KSJQ semantics, including the soundness corrections of
//! DESIGN.md §4.5.

mod common;

use common::*;
use ksjq::core::{classify, validate_k, Category};
use ksjq::prelude::*;

fn agg_schema(a: usize, l: usize) -> Schema {
    Schema::uniform_agg(a, l).unwrap()
}

fn rel_from(a: usize, l: usize, groups: &[u64], rows: &[Vec<f64>]) -> Relation {
    let mut b = Relation::builder(agg_schema(a, l));
    for (g, row) in groups.iter().zip(rows) {
        b.add_grouped(*g, row).unwrap();
    }
    b.build().unwrap()
}

/// The DESIGN.md §4.5 counterexample to the paper's equal-values Augment:
/// with a = 1, the dominator of an `SS1 ⋈ SN2` candidate has a left leg
/// that shares *no* attribute values with `u′` — the paper's `A1 ⋈ R2`
/// check set would miss it and wrongly emit the candidate.
#[test]
fn paper_augment_misses_aggregate_dominator() {
    // Layout per relation: agg g0, local s0 (d = 2, a = 1, l = 1).
    // k = 3 ⇒ k′ = 2, k″ = 1.
    let r1 = rel_from(
        1,
        1,
        &[0, 1],
        &[
            vec![5.0, 5.0],   // u′ = (agg 5, loc 5), group X — SS1
            vec![100.0, 5.0], // u  = (agg 100, loc 5), group Y — SN1
        ],
    );
    let r2 = rel_from(
        1,
        1,
        &[0, 1],
        &[
            vec![200.0, 9.0], // v′ = (agg 200, loc 9), group X — SN2
            vec![0.0, 0.0],   // v  = (agg 0, loc 0), group Y — SS2
        ],
    );
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum]).unwrap();
    let k = 3;
    let p = validate_k(&cx, k).unwrap();
    let cls = classify(&cx, &p, KdomAlgo::Naive);
    assert_eq!(cls.left, vec![Category::SS, Category::SN]);
    assert_eq!(cls.right, vec![Category::SN, Category::SS]);

    // u ⋈ v = (loc 5, loc 0, sum 100) dominates u′ ⋈ v′ = (5, 9, 205)…
    assert!(ksjq::relation::k_dominates(
        &cx.joined_row(1, 1),
        &cx.joined_row(0, 0),
        k
    ));
    // …yet u = (100, 5) shares no position with u′ = (5, 5)?  It shares
    // the local 5 — but not k′ = 2 positions, which is what the paper's
    // Augment requires:
    assert_eq!(
        ksjq::relation::dominance::equal_count(cx.left().row_at(1), cx.left().row_at(0)),
        1
    );
    // And u does not k′-dominate u′ either (so it is not in the paper's
    // dominator set):
    assert!(!ksjq::relation::k_dominates(
        cx.left().row_at(1),
        cx.left().row_at(0),
        p.k1_prime
    ));

    // All three implementations must nevertheless exclude (u′, v′).
    let out = assert_all_algorithms_agree(&cx, k, &Config::default(), "augment-counterexample");
    assert!(!out.contains(0, 0));
    assert!(out.contains(1, 1));
}

/// Max aggregation can erase the strict-preference witness of Theorem 4,
/// so the optimized algorithms refuse it; the naïve algorithm handles it
/// and demonstrates the would-be wrong answer.
#[test]
fn max_aggregate_breaks_theorem_4() {
    // d = 2 per relation (agg slot 0 + one local), k = 3.
    // Group 0 of R1: u = (agg 1, loc 5) dominates u′ = (agg 2, loc 5)
    // under k′ = 2 ⇒ u′ ∈ NN1 ⇒ the optimized algorithms would prune
    // every (u′, ·) pair. But with agg = max and v′ = (agg 10, loc 3):
    // max(1,10) = max(2,10) = 10, so u ⋈ v′ does NOT dominate u′ ⋈ v′.
    let r1 = rel_from(1, 1, &[0, 0], &[vec![1.0, 5.0], vec![2.0, 5.0]]);
    let r2 = rel_from(1, 1, &[0], &[vec![10.0, 3.0]]);
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Max]).unwrap();
    let k = 3;

    // u′ really is NN under the classification…
    let p = validate_k(&cx, k).unwrap();
    let cls = classify(&cx, &p, KdomAlgo::Naive);
    assert_eq!(cls.left[1], Category::NN);
    // …but its joined tuple is NOT dominated (identical rows):
    assert_eq!(cx.joined_row(0, 0), cx.joined_row(1, 0));
    let naive = ksjq_naive(&cx, k, &Config::default()).unwrap();
    assert!(
        naive.contains(1, 0),
        "naive keeps the tuple Th. 4 would wrongly prune"
    );

    // The optimized algorithms refuse the non-strict aggregate outright.
    assert_eq!(
        ksjq_grouping(&cx, k, &Config::default()).unwrap_err(),
        CoreError::NonStrictAggregate
    );
    assert_eq!(
        ksjq_dominator_based(&cx, k, &Config::default()).unwrap_err(),
        CoreError::NonStrictAggregate
    );
}

/// Summing costs across legs: the end-to-end semantics of Problem 2 on a
/// small hand-checked instance.
#[test]
fn aggregate_sum_semantics_hand_checked() {
    // One join group. R1 = {(cost 10, q 1), (cost 1, q 9)},
    // R2 = {(cost 10, q 1), (cost 1, q 9)}; k = 3 of (q1, q2, total cost).
    let r1 = rel_from(1, 1, &[0, 0], &[vec![10.0, 1.0], vec![1.0, 9.0]]);
    let r2 = rel_from(1, 1, &[0, 0], &[vec![10.0, 1.0], vec![1.0, 9.0]]);
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum]).unwrap();
    // Joined tuples (q1, q2, total): (0,0)=(1,1,20) (0,1)=(1,9,11)
    // (1,0)=(9,1,11) (1,1)=(9,9,2).
    let out = assert_all_algorithms_agree(&cx, 3, &Config::default(), "sum-hand");
    // 3-dominance: (0,0) vs (1,1): le((1,1,20),(9,9,2)) = 2 — no kill;
    // (0,1) vs (0,0): le((1,9,11),(1,1,20)) = 2 — no kill; in fact every
    // pair differs in at least two attributes in each direction ⇒ nothing
    // is 3-dominated and all four survive.
    assert_eq!(out.len(), 4);

    // At k = 3 with δ = 1, find-k picks k = 3 (the minimum).
    let report = find_k_at_least(&cx, 1, FindKStrategy::Binary, &Config::default()).unwrap();
    assert_eq!(report.k, 3);
    assert!(report.satisfied);
}

/// Aggregates over Max-preference attributes round-trip through raw
/// space: summing two ratings prefers the larger total.
#[test]
fn aggregate_on_max_preference_attribute() {
    let schema = || {
        Schema::builder()
            .agg("rating", Preference::Max, 0)
            .local("cost", Preference::Min)
            .build()
            .unwrap()
    };
    let mk = |rows: &[[f64; 2]]| {
        let mut b = Relation::builder(schema());
        for r in rows {
            b.add_grouped(0, r).unwrap();
        }
        b.build().unwrap()
    };
    // (rating, cost)
    let r1 = mk(&[[9.0, 5.0], [1.0, 5.0]]);
    let r2 = mk(&[[8.0, 5.0]]);
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum]).unwrap();
    let out = assert_all_algorithms_agree(&cx, 3, &Config::default(), "max-pref-agg");
    // (0,0) has total rating 17, (1,0) has 9, equal costs ⇒ (0,0)
    // 3-dominates (1,0).
    assert_eq!(out.pairs, vec![(TupleId(0), TupleId(0))]);
}

/// With a ≥ 2 the find-k lower bound must not rely on Theorem 3 — the
/// strategies still agree.
#[test]
fn find_k_with_two_aggregates() {
    let r1 = random_grouped(71, 50, 2, 2, 3, 5);
    let r2 = random_grouped(72, 50, 2, 2, 3, 5);
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum, AggFunc::Sum]).unwrap();
    let cfg = Config::default();
    for delta in [1usize, 10, 100] {
        let a = find_k_at_least(&cx, delta, FindKStrategy::Naive, &cfg).unwrap();
        let b = find_k_at_least(&cx, delta, FindKStrategy::Range, &cfg).unwrap();
        let c = find_k_at_least(&cx, delta, FindKStrategy::Binary, &cfg).unwrap();
        assert_eq!(a.k, b.k, "delta={delta}");
        assert_eq!(a.k, c.k, "delta={delta}");
    }
}
