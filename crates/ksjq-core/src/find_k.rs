//! Problems 3 and 4: choosing `k` from a desired skyline cardinality δ
//! (paper Algorithms 4, 5 and 6).
//!
//! All strategies rely on Lemma 1: the k-dominant skyline grows
//! monotonically with `k`, so "|skyline(k)| ≥ δ" is an upward-closed
//! predicate over `k` and the smallest satisfying `k` is well defined.
//!
//! The range-based and binary-search strategies avoid full skyline
//! computations with the classification bounds
//!
//! * `Δ_lb = |SS1 ⋈ SS2|` — every "yes" pair is a skyline tuple
//!   (Theorem 3; only sound for `a ≤ 1`, see DESIGN.md §4.5, so for
//!   `a ≥ 2` the lower bound degrades to 0);
//! * `Δ_ub = |yes| + |likely| + |may be|` — every skyline tuple survives
//!   NN-pruning (Theorem 4, always sound).

use crate::cancel::check_deadline;
use crate::classify::{classify_parallel, pair_counts};
use crate::config::Config;
use crate::error::{CoreError, CoreResult};
use crate::grouping::ksjq_grouping;
use crate::params::{k_max, k_min, validate_k};
use crate::stats::PhaseTimes;
use ksjq_join::JoinContext;
use std::time::Instant;

/// Which find-k algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FindKStrategy {
    /// Algorithm 4: increment `k`, computing the full skyline each time.
    Naive,
    /// Algorithm 5: increment `k`, using the Δ bounds to skip full
    /// computations where possible.
    Range,
    /// Algorithm 6: binary search over `k` with the Δ bounds. The paper's
    /// recommendation and the default.
    #[default]
    Binary,
}

impl std::fmt::Display for FindKStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FindKStrategy::Naive => write!(f, "naive"),
            FindKStrategy::Range => write!(f, "range"),
            FindKStrategy::Binary => write!(f, "binary"),
        }
    }
}

impl std::str::FromStr for FindKStrategy {
    type Err = String;

    /// Parse a strategy name. Round-trips with [`Display`](std::fmt::Display)
    /// (`"naive"`, `"range"`, `"binary"`); also accepts the paper's
    /// one-letter labels N/R/B.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "naive" | "n" => Ok(FindKStrategy::Naive),
            "range" | "r" => Ok(FindKStrategy::Range),
            "binary" | "b" => Ok(FindKStrategy::Binary),
            _ => Err(format!(
                "unknown find-k strategy {s:?} (expected naive, range or binary)"
            )),
        }
    }
}

/// Outcome of a find-k run.
#[derive(Debug, Clone, PartialEq)]
pub struct FindKReport {
    /// The chosen `k`.
    pub k: usize,
    /// Whether the δ condition is actually met at `k` (`false` only in the
    /// paper's fallback case where even the extreme `k` misses δ).
    pub satisfied: bool,
    /// `|skyline(k)|` when the run computed it (the bound-only fast paths
    /// may decide without ever materialising a skyline).
    pub skyline_size: Option<usize>,
    /// Number of full skyline computations performed.
    pub full_computations: usize,
    /// Number of classification/bound evaluations performed.
    pub bound_computations: usize,
    /// Aggregate phase times across all evaluations (grouping/join/
    /// remaining, matching the paper's find-k figures).
    pub phases: PhaseTimes,
}

struct Prober<'b, 'a> {
    cx: &'b JoinContext<'a>,
    cfg: &'b Config,
    delta: usize,
    report_phases: PhaseTimes,
    full: usize,
    bounds: usize,
}

enum Probe {
    /// `|skyline(k)| ≥ δ`, with the size if it was fully computed.
    AtLeast(Option<usize>),
    /// `|skyline(k)| < δ`.
    Below,
}

impl Prober<'_, '_> {
    fn full_size(&mut self, k: usize) -> CoreResult<usize> {
        let out = ksjq_grouping(self.cx, k, self.cfg)?;
        self.full += 1;
        self.report_phases.grouping += out.stats.phases.grouping;
        self.report_phases.join += out.stats.phases.join;
        self.report_phases.remaining += out.stats.phases.remaining;
        Ok(out.len())
    }

    /// Decide "≥ δ?" using bounds first, falling back to a full run.
    fn probe(&mut self, k: usize) -> CoreResult<Probe> {
        check_deadline(self.cfg.deadline)?;
        let params = validate_k(self.cx, k).expect("k in range");
        let t = Instant::now();
        let cls = classify_parallel(self.cx, &params, self.cfg.kdom, self.cfg.threads);
        let (yes, likely, maybe) = pair_counts(self.cx, &cls);
        self.report_phases.grouping += t.elapsed();
        self.bounds += 1;

        // Δ_lb is only a valid lower bound when Theorem 3 holds (a ≤ 1).
        let lb = if params.a <= 1 { yes } else { 0 };
        let ub = yes + likely + maybe;
        if lb >= self.delta {
            return Ok(Probe::AtLeast(None));
        }
        if ub < self.delta {
            return Ok(Probe::Below);
        }
        let size = self.full_size(k)?;
        Ok(if size >= self.delta {
            Probe::AtLeast(Some(size))
        } else {
            Probe::Below
        })
    }

    /// Decide with a full computation only (Algorithm 4).
    fn probe_full(&mut self, k: usize) -> CoreResult<Probe> {
        check_deadline(self.cfg.deadline)?;
        let size = self.full_size(k)?;
        Ok(if size >= self.delta {
            Probe::AtLeast(Some(size))
        } else {
            Probe::Below
        })
    }
}

/// Problem 3: the smallest `k` whose k-dominant skyline join has at least
/// `delta` tuples; returns the largest admissible `k` (unsatisfied) when
/// no `k` reaches δ, mirroring Algorithm 4's fallback.
pub fn find_k_at_least(
    cx: &JoinContext<'_>,
    delta: usize,
    strategy: FindKStrategy,
    cfg: &Config,
) -> CoreResult<FindKReport> {
    if delta == 0 {
        return Err(CoreError::InvalidDelta);
    }
    let (lo, hi) = (k_min(cx), k_max(cx));
    if lo > hi {
        return Err(CoreError::EmptyKRange { min: lo, max: hi });
    }
    let mut p = Prober {
        cx,
        cfg,
        delta,
        report_phases: PhaseTimes::default(),
        full: 0,
        bounds: 0,
    };

    let (k, satisfied, size) = match strategy {
        FindKStrategy::Naive => linear_scan(&mut p, lo, hi, true)?,
        FindKStrategy::Range => linear_scan(&mut p, lo, hi, false)?,
        FindKStrategy::Binary => binary_scan(&mut p, lo, hi)?,
    };

    Ok(FindKReport {
        k,
        satisfied,
        skyline_size: size,
        full_computations: p.full,
        bound_computations: p.bounds,
        phases: p.report_phases,
    })
}

fn linear_scan(
    p: &mut Prober<'_, '_>,
    lo: usize,
    hi: usize,
    full_only: bool,
) -> CoreResult<(usize, bool, Option<usize>)> {
    for k in lo..=hi {
        let probe = if full_only {
            p.probe_full(k)?
        } else {
            p.probe(k)?
        };
        if let Probe::AtLeast(size) = probe {
            return Ok((k, true, size));
        }
    }
    Ok((hi, false, None))
}

fn binary_scan(
    p: &mut Prober<'_, '_>,
    lo: usize,
    hi: usize,
) -> CoreResult<(usize, bool, Option<usize>)> {
    let (mut lo, mut hi) = (lo, hi);
    let mut best: Option<(usize, Option<usize>)> = None;
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        match p.probe(mid)? {
            Probe::AtLeast(size) => {
                best = Some((mid, size));
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
            Probe::Below => lo = mid + 1,
        }
    }
    Ok(match best {
        Some((k, size)) => (k, true, size),
        None => (k_max_of(p), false, None),
    })
}

fn k_max_of(p: &Prober<'_, '_>) -> usize {
    k_max(p.cx)
}

/// Problem 4: the largest `k` whose skyline has **at most** `delta`
/// tuples. Derived from Problem 3 per the paper's discussion:
/// if `k*` is the Problem-3 answer, the Problem-4 answer is `k* − 1`,
/// except when `|skyline(k*)| = δ` exactly (then `k*`), when `k*` is the
/// minimum admissible `k` (then `k*`, trivially), or when no `k` reaches
/// δ (then the maximum `k` qualifies).
pub fn find_k_at_most(
    cx: &JoinContext<'_>,
    delta: usize,
    strategy: FindKStrategy,
    cfg: &Config,
) -> CoreResult<FindKReport> {
    let mut report = find_k_at_least(cx, delta, strategy, cfg)?;
    let lo = k_min(cx);
    if !report.satisfied {
        // Every k has |skyline| < δ ⇒ the largest k qualifies for "at most".
        report.k = k_max(cx);
        report.satisfied = true;
        report.skyline_size = None;
        return Ok(report);
    }
    // |skyline(k*)| may equal δ exactly; compute it if unknown.
    let size = match report.skyline_size {
        Some(s) => s,
        None => {
            let out = ksjq_grouping(cx, report.k, cfg)?;
            report.full_computations += 1;
            out.len()
        }
    };
    if size == delta {
        report.skyline_size = Some(size);
        return Ok(report);
    }
    // size > δ at k*: step down if possible.
    if report.k > lo {
        report.k -= 1;
        report.skyline_size = None;
    } else {
        // Corner case: even the minimum k overshoots δ; the paper returns
        // the minimum (no k truly satisfies "at most δ").
        report.satisfied = false;
        report.skyline_size = Some(size);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksjq_join::JoinSpec;
    use ksjq_relation::{Relation, Schema};

    fn random_cx(seed: u64, n: usize, d: usize, g: u64) -> (Relation, Relation) {
        let mut state = seed;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mk = |next: &mut dyn FnMut(u64) -> u64| {
            let groups: Vec<u64> = (0..n).map(|_| next(g)).collect();
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..d).map(|_| next(50) as f64).collect())
                .collect();
            Relation::from_grouped_rows(Schema::uniform(d).unwrap(), &groups, &rows).unwrap()
        };
        (mk(&mut next), mk(&mut next))
    }

    #[test]
    fn strategies_agree() {
        let (r1, r2) = random_cx(5, 80, 4, 4);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let cfg = Config::default();
        for delta in [1usize, 5, 20, 100, 100_000] {
            let a = find_k_at_least(&cx, delta, FindKStrategy::Naive, &cfg).unwrap();
            let b = find_k_at_least(&cx, delta, FindKStrategy::Range, &cfg).unwrap();
            let c = find_k_at_least(&cx, delta, FindKStrategy::Binary, &cfg).unwrap();
            assert_eq!(a.k, b.k, "delta={delta}");
            assert_eq!(a.k, c.k, "delta={delta}");
            assert_eq!(a.satisfied, c.satisfied, "delta={delta}");
        }
    }

    #[test]
    fn found_k_is_minimal() {
        let (r1, r2) = random_cx(11, 60, 4, 3);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let cfg = Config::default();
        let delta = 10;
        let rep = find_k_at_least(&cx, delta, FindKStrategy::Binary, &cfg).unwrap();
        if rep.satisfied {
            let at_k = ksjq_grouping(&cx, rep.k, &cfg).unwrap().len();
            assert!(at_k >= delta, "k={} size={at_k}", rep.k);
            if rep.k > k_min(&cx) {
                let below = ksjq_grouping(&cx, rep.k - 1, &cfg).unwrap().len();
                assert!(below < delta, "k−1={} size={below}", rep.k - 1);
            }
        }
    }

    #[test]
    fn unsatisfiable_delta_returns_max_k() {
        let (r1, r2) = random_cx(3, 30, 4, 3);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let cfg = Config::default();
        let rep = find_k_at_least(&cx, 1_000_000, FindKStrategy::Binary, &cfg).unwrap();
        assert_eq!(rep.k, k_max(&cx));
        assert!(!rep.satisfied);
    }

    #[test]
    fn at_most_relates_to_at_least() {
        let (r1, r2) = random_cx(21, 70, 4, 4);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let cfg = Config::default();
        for delta in [1usize, 8, 50] {
            let most = find_k_at_most(&cx, delta, FindKStrategy::Binary, &cfg).unwrap();
            if most.satisfied {
                let size = ksjq_grouping(&cx, most.k, &cfg).unwrap().len();
                assert!(size <= delta, "delta={delta} k={} size={size}", most.k);
                if most.k < k_max(&cx) {
                    let above = ksjq_grouping(&cx, most.k + 1, &cfg).unwrap().len();
                    assert!(
                        above > delta,
                        "delta={delta} k+1={} size={above}",
                        most.k + 1
                    );
                }
            }
        }
    }

    #[test]
    fn zero_delta_rejected() {
        let (r1, r2) = random_cx(1, 10, 3, 2);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        assert_eq!(
            find_k_at_least(&cx, 0, FindKStrategy::Naive, &Config::default()).unwrap_err(),
            CoreError::InvalidDelta
        );
    }

    #[test]
    fn expired_deadline_cancels_every_strategy() {
        use std::time::{Duration, Instant};
        let (r1, r2) = random_cx(5, 40, 4, 3);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let cfg = Config {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Config::default()
        };
        for strategy in [
            FindKStrategy::Naive,
            FindKStrategy::Range,
            FindKStrategy::Binary,
        ] {
            assert_eq!(
                find_k_at_least(&cx, 3, strategy, &cfg).unwrap_err(),
                CoreError::DeadlineExceeded,
                "{strategy}"
            );
        }
    }

    #[test]
    fn binary_uses_fewer_full_computations() {
        let (r1, r2) = random_cx(31, 100, 5, 4);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let cfg = Config::default();
        let naive = find_k_at_least(&cx, 50, FindKStrategy::Naive, &cfg).unwrap();
        let binary = find_k_at_least(&cx, 50, FindKStrategy::Binary, &cfg).unwrap();
        assert!(
            binary.full_computations <= naive.full_computations,
            "binary {} vs naive {}",
            binary.full_computations,
            naive.full_computations
        );
    }
}
