//! Cluster shape and key placement.
//!
//! A cluster is `N` shards × `M` replicas: every relation loaded through
//! the router is split into `N` slices by join-key hash, and each slice
//! lives on *every* replica of its shard. Placement must agree between
//! the two relations of a join, and it does by construction: the shard of
//! a row is a pure function of its join-key *string*, so all rows of one
//! join group — from both relations — land on the same shard, and every
//! joined tuple exists on exactly one shard.

/// The FNV-1a 64-bit hash of a string — stable across platforms and
/// processes (placement is part of the on-the-wire contract between a
/// router and its shards, so a seeded or randomized hasher would do).
pub fn fnv1a64(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Which of `n_shards` shards owns join key `key`.
pub fn shard_of(key: &str, n_shards: usize) -> usize {
    debug_assert!(n_shards > 0);
    (fnv1a64(key) % n_shards as u64) as usize
}

/// The cluster layout: `shards[i]` is the replica address list of shard
/// `i`. Shard order is identity — the same `--shard` flags in a
/// different order describe a *different* cluster (keys hash to shard
/// indices).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    shards: Vec<Vec<String>>,
}

impl Topology {
    /// Build a topology; every shard needs at least one replica.
    pub fn new(shards: Vec<Vec<String>>) -> Result<Topology, String> {
        if shards.is_empty() {
            return Err("a cluster needs at least one shard".into());
        }
        for (i, replicas) in shards.iter().enumerate() {
            if replicas.is_empty() {
                return Err(format!("shard {i} has no replica addresses"));
            }
        }
        Ok(Topology { shards })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Replica addresses of shard `shard`.
    pub fn replicas(&self, shard: usize) -> &[String] {
        &self.shards[shard]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_the_reference_function() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64("a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn placement_is_stable_and_in_range() {
        for n in 1..=5 {
            for key in ["JAI", "DEL", "BOM", "", "42"] {
                let s = shard_of(key, n);
                assert!(s < n);
                assert_eq!(s, shard_of(key, n), "must be deterministic");
            }
        }
        // One shard takes everything.
        assert_eq!(shard_of("anything", 1), 0);
    }

    #[test]
    fn topology_rejects_degenerate_shapes() {
        assert!(Topology::new(vec![]).is_err());
        assert!(Topology::new(vec![vec!["a:1".into()], vec![]]).is_err());
        let t = Topology::new(vec![vec!["a:1".into(), "a:2".into()], vec!["b:1".into()]]).unwrap();
        assert_eq!(t.n_shards(), 2);
        assert_eq!(t.replicas(0).len(), 2);
    }
}
