//! An LRU result cache keyed by normalised plan fingerprint.
//!
//! `EXECUTE`/`QUERY` results are immutable once computed (relations are
//! immutable after registration and every algorithm is deterministic), so
//! the server can answer a repeated plan from memory. The cache is
//! invalidated wholesale whenever the catalog changes — a new relation may
//! shadow nothing today, but a deregister/re-register cycle under the same
//! name must never serve stale rows.
//!
//! Recency is tracked with a monotone tick per entry; eviction scans for
//! the minimum. That is O(capacity) per insert-when-full, which for the
//! intended capacities (tens to a few thousand entries of whole query
//! results) is noise next to the skyline computation a miss costs.

use ksjq_core::KsjqOutput;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss/eviction counters, readable without the cache lock.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheCounters {
    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions so far (capacity pressure only — invalidation clears are
    /// not evictions).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct Entry {
    value: Arc<KsjqOutput>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Entry>,
    tick: u64,
}

/// A thread-safe LRU cache from plan fingerprint to query result.
///
/// Capacity 0 disables caching (every lookup misses, inserts are
/// dropped) — useful for benchmarking the uncached path.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    counters: CacheCounters,
}

impl ResultCache {
    /// A cache holding at most `capacity` results.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            capacity,
            counters: CacheCounters::default(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<KsjqOutput>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert `value` under `key`, evicting the least-recently-used entry
    /// if the cache is full.
    pub fn insert(&self, key: String, value: Arc<KsjqOutput>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Drop every entry (catalog-change invalidation).
    pub fn clear(&self) {
        self.lock().map.clear();
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The hit/miss/eviction counters.
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(n: usize) -> Arc<KsjqOutput> {
        // Distinguishable dummy results: n pairs (i, i).
        Arc::new(KsjqOutput {
            pairs: (0..n as u32)
                .map(|i| (ksjq_relation::TupleId(i), ksjq_relation::TupleId(i)))
                .collect(),
            stats: Default::default(),
        })
    }

    #[test]
    fn hit_miss_counting() {
        let c = ResultCache::new(4);
        assert!(c.get("a").is_none());
        c.insert("a".into(), out(1));
        assert_eq!(c.get("a").unwrap().len(), 1);
        assert_eq!(c.counters().hits(), 1);
        assert_eq!(c.counters().misses(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = ResultCache::new(2);
        c.insert("a".into(), out(1));
        c.insert("b".into(), out(2));
        // Touch "a" so "b" is the LRU.
        assert!(c.get("a").is_some());
        c.insert("c".into(), out(3));
        assert_eq!(c.counters().evictions(), 1);
        assert!(c.get("b").is_none(), "LRU entry evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_same_key_does_not_evict() {
        let c = ResultCache::new(2);
        c.insert("a".into(), out(1));
        c.insert("b".into(), out(2));
        c.insert("a".into(), out(3)); // overwrite, still 2 entries
        assert_eq!(c.counters().evictions(), 0);
        assert_eq!(c.get("a").unwrap().len(), 3);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn clear_is_not_an_eviction() {
        let c = ResultCache::new(2);
        c.insert("a".into(), out(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.counters().evictions(), 0);
        assert!(c.get("a").is_none());
    }

    #[test]
    fn zero_capacity_disables() {
        let c = ResultCache::new(0);
        c.insert("a".into(), out(1));
        assert!(c.get("a").is_none());
        assert!(c.is_empty());
    }
}
