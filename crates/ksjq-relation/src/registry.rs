//! Named relation registry: the data layer of the serving engine.
//!
//! A [`Catalog`] maps names to relations held as `Arc<Relation>`, so a
//! relation is loaded and validated **once** and then shared — by many
//! queries, across threads, for as long as anyone holds a handle. This is
//! the registry half of the engine/plan split: `ksjq-core`'s `Engine`
//! wraps a catalog and resolves plan-level relation names against it.
//!
//! The catalog itself is cheaply cloneable and thread-safe: clones share
//! the same underlying map (an `Arc<RwLock<…>>`), so registering a
//! relation through one clone makes it visible to all of them.

use crate::catalog::StringDictionary;
use crate::csv::CsvTable;
use crate::error::{Error, Result};
use crate::preference::Preference;
use crate::relation::Relation;
use crate::schema::{Schema, SchemaBuilder};
use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A registered relation: its catalog name plus shared ownership of the
/// data. Handles are cheap to clone and keep the relation alive even if it
/// is later deregistered from the catalog.
#[derive(Debug, Clone)]
pub struct RelationHandle {
    name: Arc<str>,
    relation: Arc<Relation>,
}

impl RelationHandle {
    /// The name the relation was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation itself.
    pub fn relation(&self) -> &Arc<Relation> {
        &self.relation
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        self.relation.schema()
    }

    /// Number of tuples.
    pub fn n(&self) -> usize {
        self.relation.n()
    }
}

/// A thread-safe, name-keyed registry of relations.
///
/// # Example
///
/// ```
/// use ksjq_relation::{Catalog, Relation, Schema};
///
/// let catalog = Catalog::new();
/// let mut b = Relation::builder(Schema::uniform(2).unwrap());
/// b.add_grouped(1, &[1.0, 2.0]).unwrap();
/// let handle = catalog.register("offers", b.build().unwrap()).unwrap();
/// assert_eq!(handle.name(), "offers");
/// assert_eq!(catalog.get("offers").unwrap().n(), 1);
/// assert!(catalog.get("missing").is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    inner: Arc<RwLock<HashMap<String, RelationHandle>>>,
    /// String join keys of every [`register_csv`](Self::register_csv)-loaded
    /// relation, encoded through one shared dictionary so equal keys get
    /// equal group ids across relations — a requirement for joining them.
    dict: Arc<RwLock<StringDictionary>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    fn read(&self) -> RwLockReadGuard<'_, HashMap<String, RelationHandle>> {
        // A poisoned lock means a panic elsewhere; the map itself is
        // always in a consistent state (plain inserts/removes), so
        // recover rather than propagate the poison.
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, HashMap<String, RelationHandle>> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Register `relation` under `name`, taking ownership.
    ///
    /// Schema and data invariants are enforced eagerly by construction
    /// ([`Relation::builder`](Relation::builder) rejects empty schemas,
    /// non-finite values and mixed join-key kinds), so everything a
    /// registration still has to validate is the naming:
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidRelationName`] — empty or all-whitespace name.
    /// * [`Error::DuplicateRelation`] — the name is already taken; pick a
    ///   new name or [`deregister`](Self::deregister) first.
    pub fn register(&self, name: impl Into<String>, relation: Relation) -> Result<RelationHandle> {
        self.register_arc(name, Arc::new(relation))
    }

    /// Register an already-shared relation under `name` (no copy). Same
    /// validation as [`register`](Self::register).
    pub fn register_arc(
        &self,
        name: impl Into<String>,
        relation: Arc<Relation>,
    ) -> Result<RelationHandle> {
        let name = name.into();
        if name.trim().is_empty() {
            return Err(Error::InvalidRelationName(name));
        }
        let mut map = self.write();
        if map.contains_key(&name) {
            return Err(Error::DuplicateRelation(name));
        }
        let handle = RelationHandle {
            name: Arc::from(name.as_str()),
            relation,
        };
        map.insert(name, handle.clone());
        Ok(handle)
    }

    /// Parse `text` as CSV and register the result under `name` in one
    /// step — the ingestion path of the serving layer's `LOAD … INLINE`
    /// command, and a convenience for examples.
    ///
    /// Format (via [`CsvTable`]): a header row, then data rows. The
    /// **first column is the equality-join key**; its string values are
    /// encoded through a catalog-wide shared dictionary, so two relations
    /// loaded into the same catalog join correctly on equal keys. Every
    /// other column is one skyline attribute, `Min`-preferred by default.
    /// Header names may carry `:`-separated annotations:
    ///
    /// * `price:min` / `rating:max` — explicit preference;
    /// * `cost:agg0`, `time:min:agg1` — bind the attribute to an
    ///   aggregate slot (slots must be `0..a`, each used once).
    ///
    /// ```
    /// use ksjq_relation::Catalog;
    ///
    /// let catalog = Catalog::new();
    /// let h = catalog
    ///     .register_csv("offers", "city,cost,rating:max\nC,448,4.5\nD,456,3.2\n")
    ///     .unwrap();
    /// assert_eq!(h.n(), 2);
    /// assert_eq!(h.schema().d(), 2);
    /// ```
    ///
    /// # Errors
    ///
    /// [`Error::Csv`] for malformed text, a missing key/attribute column,
    /// an unknown header annotation or a non-numeric attribute cell;
    /// [`Error::InvalidAggSlot`] for bad slot sets; plus everything
    /// [`register`](Self::register) rejects.
    pub fn register_csv(&self, name: impl Into<String>, text: &str) -> Result<RelationHandle> {
        self.register(name, self.parse_csv(text)?)
    }

    /// Parse annotated CSV into a [`Relation`] **without** registering it
    /// — same grammar and shared key dictionary as
    /// [`register_csv`](Self::register_csv). This is the validation half
    /// of a two-phase catalog update: parse (and fail) first, publish
    /// atomically later with [`register`](Self::register). A header-only
    /// CSV parses to an empty relation.
    pub fn parse_csv(&self, text: &str) -> Result<Relation> {
        let table = CsvTable::parse(text)?;
        if table.header.len() < 2 {
            return Err(Error::Csv(
                "need a join-key column plus at least one attribute column".into(),
            ));
        }
        let schema = schema_from_header(&table.header[1..])?;
        let d = schema.d();
        let mut b = Relation::builder(schema).with_capacity(table.rows.len());
        let mut row = vec![0.0f64; d];
        {
            let mut dict = self.dict.write().unwrap_or_else(|e| e.into_inner());
            for r in 0..table.rows.len() {
                let gid = dict.encode(&table.rows[r][0]);
                for (j, v) in row.iter_mut().enumerate() {
                    *v = table.number(r, j + 1)?;
                }
                b.add_grouped(gid, &row)?;
            }
        }
        b.build()
    }

    /// Decode a group id assigned by [`register_csv`](Self::register_csv)
    /// back to its string join key.
    pub fn decode_key(&self, gid: u64) -> Option<String> {
        self.dict
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .decode(gid)
            .map(str::to_owned)
    }

    /// The group id [`register_csv`](Self::register_csv) assigned to a
    /// string join key, if it has been seen.
    pub fn key_id(&self, key: &str) -> Option<u64> {
        self.dict.read().unwrap_or_else(|e| e.into_inner()).get(key)
    }

    /// Encode `key` through the catalog's shared dictionary, assigning a
    /// fresh id on first sight — for callers building relations outside
    /// [`register_csv`](Self::register_csv) that must still join
    /// correctly against CSV-loaded ones (equal key strings ⇒ equal
    /// group ids).
    pub fn encode_key(&self, key: &str) -> u64 {
        self.dict
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .encode(key)
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Option<RelationHandle> {
        self.read().get(name).cloned()
    }

    /// Is `name` registered?
    pub fn contains(&self, name: &str) -> bool {
        self.read().contains_key(name)
    }

    /// Remove a relation from the catalog, returning its handle if it was
    /// registered. Existing handles (and queries prepared against them)
    /// keep working — they own the data via `Arc`.
    pub fn deregister(&self, name: &str) -> Option<RelationHandle> {
        self.write().remove(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read().keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }
}

/// Build a schema from annotated CSV header cells (everything after the
/// key column). See [`Catalog::register_csv`] for the annotation grammar.
fn schema_from_header(cells: &[String]) -> Result<Schema> {
    let mut b = SchemaBuilder::default();
    for cell in cells {
        let mut parts = cell.split(':');
        let name = parts.next().unwrap_or_default().trim();
        if name.is_empty() {
            return Err(Error::Csv(format!("empty attribute name in {cell:?}")));
        }
        let mut preference = Preference::Min;
        let mut slot = None;
        for ann in parts {
            match ann.trim().to_ascii_lowercase().as_str() {
                "min" => preference = Preference::Min,
                "max" => preference = Preference::Max,
                a if a.starts_with("agg") => {
                    slot = Some(a[3..].parse::<usize>().map_err(|_| {
                        Error::Csv(format!("bad aggregate slot in header {cell:?}"))
                    })?);
                }
                other => {
                    return Err(Error::Csv(format!(
                        "unknown header annotation {other:?} in {cell:?} \
                         (expected min, max or agg<slot>)"
                    )));
                }
            }
        }
        b = match slot {
            Some(s) => b.agg(name, preference, s),
            None => b.local(name, preference),
        };
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn rel(n: usize) -> Relation {
        let mut b = Relation::builder(Schema::uniform(2).unwrap());
        for i in 0..n {
            b.add_grouped(1, &[i as f64, 1.0]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let c = Catalog::new();
        let h = c.register("r1", rel(3)).unwrap();
        assert_eq!(h.name(), "r1");
        assert_eq!(h.n(), 3);
        assert_eq!(h.schema().d(), 2);
        assert_eq!(c.get("r1").unwrap().n(), 3);
        assert!(c.contains("r1"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_and_invalid_names_rejected() {
        let c = Catalog::new();
        c.register("r1", rel(1)).unwrap();
        assert!(matches!(
            c.register("r1", rel(2)),
            Err(Error::DuplicateRelation(n)) if n == "r1"
        ));
        assert!(matches!(
            c.register("", rel(1)),
            Err(Error::InvalidRelationName(_))
        ));
        assert!(matches!(
            c.register("   ", rel(1)),
            Err(Error::InvalidRelationName(_))
        ));
    }

    #[test]
    fn clones_share_the_registry() {
        let c = Catalog::new();
        let c2 = c.clone();
        c.register("r1", rel(1)).unwrap();
        assert!(c2.contains("r1"));
        c2.deregister("r1").unwrap();
        assert!(!c.contains("r1"));
        assert!(c.is_empty());
    }

    #[test]
    fn deregister_keeps_existing_handles_alive() {
        let c = Catalog::new();
        let h = c.register("r1", rel(5)).unwrap();
        c.deregister("r1");
        assert!(c.get("r1").is_none());
        assert_eq!(h.n(), 5); // handle still owns the data
    }

    #[test]
    fn names_are_sorted() {
        let c = Catalog::new();
        for name in ["zeta", "alpha", "mid"] {
            c.register(name, rel(1)).unwrap();
        }
        assert_eq!(c.names(), vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn register_csv_shares_one_key_dictionary() {
        let c = Catalog::new();
        let r1 = c
            .register_csv("out", "city,cost,dur\nC,448,3.2\nD,456,3.8\nC,468,4.2\n")
            .unwrap();
        let r2 = c
            .register_csv("in", "city,cost,dur\nD,348,2.2\nC,356,2.8\n")
            .unwrap();
        assert_eq!(r1.n(), 3);
        assert_eq!(r2.n(), 2);
        // "C" and "D" map to the same group ids in both relations.
        use crate::relation::TupleId;
        assert_eq!(
            r1.relation().group_id(TupleId(0)),
            r2.relation().group_id(TupleId(1))
        );
        assert_eq!(c.key_id("C"), r1.relation().group_id(TupleId(0)));
        assert_eq!(c.decode_key(c.key_id("D").unwrap()).as_deref(), Some("D"));
        // Values land normalised Min-first (all-Min here, so raw order).
        assert_eq!(r1.relation().raw_row(TupleId(0)), vec![448.0, 3.2]);
    }

    #[test]
    fn register_csv_header_annotations() {
        let c = Catalog::new();
        let h = c
            .register_csv("r", "hub,cost:min:agg0,time:agg1,rating:max\nA,10,2,4.5\n")
            .unwrap();
        let s = h.schema();
        assert_eq!(s.d(), 3);
        assert_eq!(s.agg_count(), 2);
        assert_eq!(s.agg_index(0), Some(0));
        assert_eq!(s.agg_index(1), Some(1));
        assert_eq!(s.attr(2).preference, Preference::Max);
        // Max attributes are negated at build time; raw_row restores them.
        use crate::relation::TupleId;
        assert_eq!(h.relation().raw_row(TupleId(0)), vec![10.0, 2.0, 4.5]);
    }

    #[test]
    fn register_csv_bad_schema_errors() {
        let c = Catalog::new();
        // Key column only — no attributes.
        assert!(matches!(
            c.register_csv("a", "city\nC\n"),
            Err(Error::Csv(_))
        ));
        // Unknown annotation.
        assert!(matches!(
            c.register_csv("b", "city,cost:biggest\nC,1\n"),
            Err(Error::Csv(_))
        ));
        // Malformed aggregate slot.
        assert!(matches!(
            c.register_csv("c", "city,cost:aggX\nC,1\n"),
            Err(Error::Csv(_))
        ));
        // Slot set with a gap.
        assert!(matches!(
            c.register_csv("d", "city,cost:agg1\nC,1\n"),
            Err(Error::InvalidAggSlot(_))
        ));
        // Non-numeric attribute cell.
        assert!(matches!(
            c.register_csv("e", "city,cost\nC,cheap\n"),
            Err(Error::Csv(_))
        ));
        // Ragged row.
        assert!(matches!(
            c.register_csv("f", "city,cost\nC\n"),
            Err(Error::Csv(_))
        ));
        // Nothing half-registered.
        assert!(c.is_empty());
        // Duplicate names still rejected through this path.
        c.register_csv("g", "city,cost\nC,1\n").unwrap();
        assert!(matches!(
            c.register_csv("g", "city,cost\nC,2\n"),
            Err(Error::DuplicateRelation(_))
        ));
    }

    #[test]
    fn catalog_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Catalog>();
        assert_send_sync::<RelationHandle>();
    }

    #[test]
    fn concurrent_registration() {
        let c = Catalog::new();
        std::thread::scope(|s| {
            for i in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    c.register(format!("r{i}"), rel(i + 1)).unwrap();
                });
            }
        });
        assert_eq!(c.len(), 4);
        assert_eq!(c.get("r2").unwrap().n(), 3);
    }
}
