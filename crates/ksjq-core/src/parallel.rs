//! Parallel candidate verification (the paper's future-work extension).
//!
//! The expensive phase of the grouping algorithm — verifying "likely" and
//! "may be" candidates against target-set joins — is embarrassingly
//! parallel: every candidate is checked independently against immutable
//! relations. `verify_parallel` shards the candidate list over
//! `threads` scoped workers, each with its own scratch state
//! and target cache, and concatenates survivors in candidate order so the
//! final output is identical to the serial path. Worker
//! [`CheckCounters`] are summed, so `ExecStats` reports the same kernel
//! work regardless of thread count.
//!
//! The classification phase shards the same way — see
//! [`crate::classify::classify_parallel`], which the algorithm drivers
//! call when `Config::threads > 1`. Candidate collection stays serial: it
//! is a small fraction of the runtime (see the figures' phase breakdown).

use crate::cancel::Checkpoint;
use crate::error::CoreResult;
use crate::grouping::{Candidates, CheckKind};
use crate::params::KsjqParams;
use crate::target::TargetCache;
use crate::verify::{CheckCounters, ColumnarCheck, ColumnarLayout};
use ksjq_join::JoinContext;
use std::sync::atomic::AtomicBool;
use std::time::Instant;

/// Verify all candidates with `threads` workers; returns the surviving
/// pairs in candidate order (identical to the serial verification) plus
/// the summed kernel counters.
///
/// With a `deadline`, every worker ticks a shared-flag
/// [`Checkpoint`]: the first to observe expiry cancels its siblings, and
/// the call returns [`CoreError::DeadlineExceeded`](crate::CoreError)
/// after all workers have unwound cleanly.
pub(crate) fn verify_parallel(
    cx: &JoinContext<'_>,
    k: usize,
    params: &KsjqParams,
    cands: &Candidates,
    threads: usize,
    deadline: Option<Instant>,
) -> CoreResult<(Vec<(u32, u32)>, CheckCounters)> {
    let n = cands.pairs.len();
    if n == 0 {
        return Ok((Vec::new(), CheckCounters::default()));
    }
    let threads = threads.min(n).max(1);
    let chunk = n.div_ceil(threads);
    // The permuted-column layout depends only on the join, not the
    // worker: gather it once and let every verifier borrow it.
    let layout = ColumnarLayout::new(cx);
    let cancelled = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            let layout = &layout;
            let cancelled = &cancelled;
            handles.push(scope.spawn(move || {
                let mut ltargets = TargetCache::new(cx.left(), params.k1_pp);
                let mut rtargets = TargetCache::new(cx.right(), params.k2_pp);
                let mut chk = ColumnarCheck::with_layout(cx, k, layout);
                let mut cp = Checkpoint::new(deadline);
                let mut out = Vec::new();
                for i in lo..hi {
                    cp.tick_shared(cancelled)?;
                    let (u, v) = cands.pairs[i];
                    let dominated = match cands.kinds[i] {
                        CheckKind::Emit => false,
                        CheckKind::LeftTarget => {
                            chk.dominated_via_left(ltargets.get(u), cands.row(i))
                        }
                        CheckKind::RightTarget => {
                            chk.dominated_via_right(rtargets.get(v), cands.row(i))
                        }
                    };
                    if !dominated {
                        out.push((u, v));
                    }
                }
                Ok((out, chk.counters()))
            }));
        }
        let mut pairs = Vec::new();
        let mut counters = CheckCounters::default();
        let mut expired = None;
        for h in handles {
            match h.join().expect("verification worker panicked") {
                Ok((out, c)) => {
                    pairs.extend(out);
                    counters.absorb(c);
                }
                Err(e) => expired = Some(e),
            }
        }
        match expired {
            Some(e) => Err(e),
            None => Ok((pairs, counters)),
        }
    })
}

#[cfg(test)]
mod tests {
    use crate::config::Config;
    use crate::grouping::ksjq_grouping;
    use ksjq_join::{JoinContext, JoinSpec};
    use ksjq_relation::{Relation, Schema};

    fn random_rel(seed: u64, n: usize) -> Relation {
        let mut state = seed;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut b = Relation::builder(Schema::uniform(4).unwrap());
        for _ in 0..n {
            let g = next(5);
            let row = [
                next(10) as f64,
                next(10) as f64,
                next(10) as f64,
                next(10) as f64,
            ];
            b.add_grouped(g, &row).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn parallel_matches_serial() {
        let r1 = random_rel(1, 150);
        let r2 = random_rel(2, 150);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        for k in 5..=8 {
            let serial = ksjq_grouping(&cx, k, &Config::default()).unwrap();
            for threads in [2usize, 3, 8] {
                let parallel = ksjq_grouping(&cx, k, &Config::with_threads(threads)).unwrap();
                assert_eq!(serial.pairs, parallel.pairs, "k={k} threads={threads}");
            }
        }
    }

    #[test]
    fn expired_deadline_cancels_parallel_verification() {
        use crate::error::CoreError;
        use ksjq_datagen::{DataType, DatasetSpec};
        use ksjq_join::AggFunc;
        use std::time::{Duration, Instant};
        // Anti-correlated data guarantees verification work (see the
        // targets_pruned regression test in crate::grouping).
        let spec = DatasetSpec {
            n: 200,
            agg_attrs: 2,
            local_attrs: 5,
            groups: 5,
            data_type: DataType::AntiCorrelated,
            seed: 11,
        };
        let r1 = spec.generate();
        let r2 = DatasetSpec { seed: 1011, ..spec }.generate();
        let cx =
            JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum, AggFunc::Sum]).unwrap();
        let cfg = Config {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Config::with_threads(3)
        };
        assert_eq!(
            ksjq_grouping(&cx, 11, &cfg).unwrap_err(),
            CoreError::DeadlineExceeded
        );
        // The same config with a generous deadline answers normally.
        let cfg = Config {
            deadline: Some(Instant::now() + Duration::from_secs(60)),
            ..Config::with_threads(3)
        };
        let relaxed = ksjq_grouping(&cx, 11, &cfg).unwrap();
        let serial = ksjq_grouping(&cx, 11, &Config::default()).unwrap();
        assert_eq!(relaxed.pairs, serial.pairs);
    }

    #[test]
    fn more_threads_than_candidates() {
        let r1 = random_rel(3, 8);
        let r2 = random_rel(4, 8);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let serial = ksjq_grouping(&cx, 5, &Config::default()).unwrap();
        let parallel = ksjq_grouping(&cx, 5, &Config::with_threads(64)).unwrap();
        assert_eq!(serial.pairs, parallel.pairs);
    }
}
