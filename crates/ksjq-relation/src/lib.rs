//! Relational substrate for K-dominant Skyline Join Queries (KSJQ).
//!
//! This crate provides the data model every other `ksjq-*` crate builds on:
//!
//! * [`Preference`] — per-attribute optimisation direction (`Min`/`Max`).
//! * [`dominance`] — the hot comparison kernel: `≤`/`<` counts, full
//!   (Pareto) dominance and *k*-dominance between tuples.
//! * [`Schema`] / [`AttrDef`] — attribute metadata, including which
//!   attributes participate in aggregation when two relations are joined.
//! * [`Relation`] — row-major `f64` tuple storage with an optional join-key
//!   column (dictionary-encoded group ids for equality joins, or a numeric
//!   key for theta joins) and a group index.
//! * [`StringDictionary`] — string → group-id encoding so callers can use
//!   human-readable join keys (city names, category labels, …).
//! * [`Catalog`] / [`RelationHandle`] — a thread-safe named registry
//!   holding relations as `Arc<Relation>`, the data layer the serving
//!   engine in `ksjq-core` resolves query plans against.
//! * [`csv`] — a minimal dependency-free CSV reader/writer used by the
//!   examples and the synthetic-flight tooling.
//!
//! All skyline code in the workspace assumes **lower is better**. Relations
//! normalise `Max` attributes at build time (by negating them) so that the
//! dominance kernel never needs to consult the schema; [`Relation::raw_value`]
//! converts back for presentation.

pub mod catalog;
pub mod csv;
pub mod dominance;
pub mod error;
pub mod preference;
pub mod registry;
pub mod relation;
pub mod schema;
pub mod versioned;

pub use catalog::StringDictionary;
pub use dominance::{
    accumulate_le_lt, dom_counts, dom_counts_block, dom_counts_block_columnar, dom_counts_partial,
    dom_counts_partial_block_columnar, dom_counts_partial_block_columnar_into, dominates,
    k_dominates, strictly_better_somewhere, DomCounts, LANES,
};
pub use error::{Error, Result};
pub use preference::Preference;
pub use registry::{Catalog, RelationHandle};
pub use relation::{GroupIndex, JoinKeys, Relation, RelationBuilder, TupleId};
pub use schema::{AttrDef, AttrRole, Schema, SchemaBuilder};
pub use versioned::{VersionedRelation, BLOCK_ROWS};
