//! Versioned relations: epoch-stamped, copy-on-write mutable catalogs.
//!
//! A [`VersionedRelation`] is an immutable *version* of a mutable logical
//! relation. [`append`](VersionedRelation::append) and
//! [`delete_key`](VersionedRelation::delete_key) never modify the receiver;
//! they produce a **new** version with the epoch bumped by one. Row storage
//! is chunked into fixed-capacity blocks whose payloads live behind `Arc`s,
//! so a derived version shares every block the delta did not touch
//! (copy-on-write at the block level — the same idea as MVCC page
//! versioning, applied to columnar row blocks):
//!
//! * `append` rewrites at most the trailing partial block and adds new
//!   blocks after it;
//! * `delete_key` rewrites only the blocks that actually contain the key.
//!
//! Each version carries a fully materialised [`Relation`] snapshot behind
//! an `Arc`, built once at version-creation time. Queries prepared against
//! a snapshot keep executing against *their* epoch no matter how many
//! versions are derived afterwards — epoch pinning is simply `Arc`
//! immutability, there is no locking in the read path.
//!
//! Blocks store **raw** (denormalised) attribute values plus the
//! dictionary-encoded group key of every row; snapshot materialisation
//! runs them through the ordinary [`RelationBuilder`](crate::RelationBuilder) so normalisation,
//! group indexing and the columnar mirror are byte-identical to a
//! from-scratch load of the same rows. `Max`-attribute normalisation is a
//! negation, which round-trips exactly in IEEE arithmetic, so a row's
//! normalised values are bit-stable across every version that contains it.

use crate::error::{Error, Result};
use crate::relation::{JoinKeys, Relation, TupleId};
use crate::schema::Schema;
use std::sync::Arc;

/// Rows per copy-on-write block. Appends rewrite at most this many
/// trailing rows; deletes rewrite only blocks containing the key.
pub const BLOCK_ROWS: usize = 1024;

/// One immutable storage block: `keys.len()` rows of `d` raw values each.
#[derive(Debug, Clone)]
struct Block {
    keys: Arc<Vec<u64>>,
    /// Raw row-major values, `keys.len() * d` of them.
    rows: Arc<Vec<f64>>,
}

impl Block {
    fn len(&self) -> usize {
        self.keys.len()
    }

    fn shares_storage(&self, other: &Block) -> bool {
        Arc::ptr_eq(&self.rows, &other.rows)
    }
}

/// An epoch-stamped immutable version of a mutable logical relation.
///
/// See the [module docs](self) for the versioning model. Cloning is cheap
/// (`Arc` clones of the blocks and the snapshot).
#[derive(Debug, Clone)]
pub struct VersionedRelation {
    schema: Schema,
    epoch: u64,
    blocks: Vec<Block>,
    snapshot: Arc<Relation>,
}

impl VersionedRelation {
    /// Version 0 of an empty logical relation.
    pub fn new(schema: Schema) -> Result<VersionedRelation> {
        let snapshot = Arc::new(Relation::builder(schema.clone()).build()?);
        Ok(VersionedRelation {
            schema,
            epoch: 0,
            blocks: Vec::new(),
            snapshot,
        })
    }

    /// Version 0 seeded from an existing relation, which becomes the
    /// snapshot as-is (no rebuild). The relation must use equality-join
    /// group keys — the only key kind with well-defined append/delete
    /// row semantics here.
    pub fn from_relation(rel: Arc<Relation>) -> Result<VersionedRelation> {
        if !rel.is_empty() && !matches!(rel.keys(), JoinKeys::Group(_)) {
            return Err(Error::Invalid(
                "versioned relations require equality-join (group) keys".into(),
            ));
        }
        let d = rel.d();
        let mut blocks = Vec::with_capacity(rel.n().div_ceil(BLOCK_ROWS.max(1)));
        let mut start = 0usize;
        while start < rel.n() {
            let end = (start + BLOCK_ROWS).min(rel.n());
            let mut keys = Vec::with_capacity(end - start);
            let mut rows = Vec::with_capacity((end - start) * d);
            for t in start..end {
                let t = TupleId(t as u32);
                keys.push(rel.group_id(t).expect("group-keyed relation"));
                rows.extend(rel.raw_row(t));
            }
            blocks.push(Block {
                keys: Arc::new(keys),
                rows: Arc::new(rows),
            });
            start = end;
        }
        Ok(VersionedRelation {
            schema: rel.schema().clone(),
            epoch: 0,
            blocks,
            snapshot: rel,
        })
    }

    /// This version's epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of rows in this version.
    pub fn n(&self) -> usize {
        self.snapshot.n()
    }

    /// The schema shared by every version.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The materialised snapshot of this version. In-flight queries hold
    /// their own clone of this `Arc`, pinning the epoch they prepared
    /// against.
    pub fn snapshot(&self) -> &Arc<Relation> {
        &self.snapshot
    }

    /// Derive the next version with `rows` (raw values, one group key
    /// each) appended after the existing rows. Existing row ids are
    /// preserved; the new rows take ids `n .. n + rows.len()`.
    pub fn append(&self, keys: &[u64], rows: &[Vec<f64>]) -> Result<VersionedRelation> {
        if keys.len() != rows.len() {
            return Err(Error::Invalid(format!(
                "{} keys but {} rows",
                keys.len(),
                rows.len()
            )));
        }
        let d = self.schema.d();
        for row in rows {
            if row.len() != d {
                return Err(Error::ArityMismatch {
                    expected: d,
                    got: row.len(),
                });
            }
        }
        let mut blocks = self.blocks.clone();
        let mut pending_keys: Vec<u64>;
        let mut pending_rows: Vec<f64>;
        // Reopen the trailing partial block (copy-on-write): its rows are
        // re-written into a fresh block together with the first appended
        // rows; every full block stays shared.
        match blocks.last() {
            Some(last) if last.len() < BLOCK_ROWS => {
                let last = blocks.pop().expect("just matched");
                pending_keys = (*last.keys).clone();
                pending_rows = (*last.rows).clone();
            }
            _ => {
                pending_keys = Vec::new();
                pending_rows = Vec::new();
            }
        }
        for (key, row) in keys.iter().zip(rows) {
            pending_keys.push(*key);
            pending_rows.extend_from_slice(row);
            if pending_keys.len() == BLOCK_ROWS {
                blocks.push(Block {
                    keys: Arc::new(std::mem::take(&mut pending_keys)),
                    rows: Arc::new(std::mem::take(&mut pending_rows)),
                });
            }
        }
        if !pending_keys.is_empty() {
            blocks.push(Block {
                keys: Arc::new(pending_keys),
                rows: Arc::new(pending_rows),
            });
        }
        self.derive(blocks)
    }

    /// Derive the next version with every row whose group key equals
    /// `key` removed (surviving rows keep their relative order). Returns
    /// the new version and how many rows were dropped; the epoch bumps
    /// even when nothing matched, so a delete is always observable.
    pub fn delete_key(&self, key: u64) -> Result<(VersionedRelation, usize)> {
        let d = self.schema.d();
        let mut removed = 0usize;
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let hits = block.keys.iter().filter(|&&k| k == key).count();
            if hits == 0 {
                blocks.push(block.clone());
                continue;
            }
            removed += hits;
            if hits == block.len() {
                continue; // the whole block vanishes
            }
            let mut keys = Vec::with_capacity(block.len() - hits);
            let mut rows = Vec::with_capacity((block.len() - hits) * d);
            for (i, &k) in block.keys.iter().enumerate() {
                if k != key {
                    keys.push(k);
                    rows.extend_from_slice(&block.rows[i * d..(i + 1) * d]);
                }
            }
            blocks.push(Block {
                keys: Arc::new(keys),
                rows: Arc::new(rows),
            });
        }
        if removed == 0 {
            // Nothing changed: share the snapshot too.
            return Ok((
                VersionedRelation {
                    schema: self.schema.clone(),
                    epoch: self.epoch + 1,
                    blocks,
                    snapshot: Arc::clone(&self.snapshot),
                },
                0,
            ));
        }
        Ok((self.derive(blocks)?, removed))
    }

    /// Materialise a new version from `blocks` at `self.epoch + 1`.
    fn derive(&self, blocks: Vec<Block>) -> Result<VersionedRelation> {
        let n: usize = blocks.iter().map(Block::len).sum();
        let mut b = Relation::builder(self.schema.clone()).with_capacity(n);
        let d = self.schema.d();
        for block in &blocks {
            for (i, &key) in block.keys.iter().enumerate() {
                b.add_grouped(key, &block.rows[i * d..(i + 1) * d])?;
            }
        }
        Ok(VersionedRelation {
            schema: self.schema.clone(),
            epoch: self.epoch + 1,
            blocks,
            snapshot: Arc::new(b.build()?),
        })
    }

    /// How many storage blocks this version holds.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// How many of this version's blocks share storage with `other` —
    /// the copy-on-write effectiveness metric the tests pin down.
    pub fn shared_blocks_with(&self, other: &VersionedRelation) -> usize {
        self.blocks
            .iter()
            .filter(|b| other.blocks.iter().any(|o| b.shares_storage(o)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::Preference;

    fn raw(i: usize) -> Vec<f64> {
        vec![i as f64, (i * 7 % 13) as f64, 100.0 - i as f64]
    }

    fn schema() -> Schema {
        Schema::builder()
            .local("x", Preference::Min)
            .local("y", Preference::Min)
            .local("z", Preference::Max)
            .build()
            .unwrap()
    }

    fn seed(n: usize) -> VersionedRelation {
        let keys: Vec<u64> = (0..n).map(|i| (i % 5) as u64).collect();
        let rows: Vec<Vec<f64>> = (0..n).map(raw).collect();
        let rel = Arc::new(Relation::from_grouped_rows(schema(), &keys, &rows).unwrap());
        VersionedRelation::from_relation(rel).unwrap()
    }

    #[test]
    fn append_bumps_epoch_and_preserves_prefix() {
        let v0 = seed(10);
        assert_eq!(v0.epoch(), 0);
        let v1 = v0.append(&[7], &[raw(10)]).unwrap();
        assert_eq!(v1.epoch(), 1);
        assert_eq!(v1.n(), 11);
        // Prefix rows are bit-identical (ids and normalised values).
        for t in 0..10u32 {
            assert_eq!(
                v0.snapshot().row_at(t as usize),
                v1.snapshot().row_at(t as usize),
                "row {t}"
            );
            assert_eq!(
                v0.snapshot().group_id(TupleId(t)),
                v1.snapshot().group_id(TupleId(t))
            );
        }
        assert_eq!(v1.snapshot().group_id(TupleId(10)), Some(7));
        // The appended snapshot equals a from-scratch build of the same rows.
        let keys: Vec<u64> = (0..10).map(|i| (i % 5) as u64).chain([7]).collect();
        let rows: Vec<Vec<f64>> = (0..11).map(raw).collect();
        let fresh = Relation::from_grouped_rows(schema(), &keys, &rows).unwrap();
        assert_eq!(**v1.snapshot(), fresh);
    }

    #[test]
    fn append_shares_full_blocks() {
        let v0 = seed(BLOCK_ROWS + 10); // one full block + one partial
        assert_eq!(v0.block_count(), 2);
        let v1 = v0.append(&[1], &[raw(99)]).unwrap();
        // The full block is shared; only the partial tail was rewritten.
        assert_eq!(v1.shared_blocks_with(&v0), 1);
        assert_eq!(v1.block_count(), 2);
    }

    #[test]
    fn append_fills_and_starts_blocks() {
        let v0 = seed(BLOCK_ROWS - 1);
        let delta_keys = vec![3u64; 2];
        let delta_rows: Vec<Vec<f64>> = (0..2).map(|i| raw(5000 + i)).collect();
        let v1 = v0.append(&delta_keys, &delta_rows).unwrap();
        assert_eq!(v1.n(), BLOCK_ROWS + 1);
        assert_eq!(v1.block_count(), 2);
        // No block of v0 survives: the single partial block was reopened.
        assert_eq!(v1.shared_blocks_with(&v0), 0);
    }

    #[test]
    fn delete_rewrites_only_touched_blocks() {
        // Put key 42 only in the second block.
        let mut keys: Vec<u64> = vec![1; BLOCK_ROWS];
        keys.extend([42, 2, 42]);
        let rows: Vec<Vec<f64>> = (0..keys.len()).map(raw).collect();
        let rel = Arc::new(Relation::from_grouped_rows(schema(), &keys, &rows).unwrap());
        let v0 = VersionedRelation::from_relation(rel).unwrap();
        let (v1, removed) = v0.delete_key(42).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(v1.epoch(), 1);
        assert_eq!(v1.n(), BLOCK_ROWS + 1);
        assert_eq!(v1.shared_blocks_with(&v0), 1, "block 0 untouched");
        // Survivors keep their relative order.
        assert_eq!(v1.snapshot().group_id(TupleId(BLOCK_ROWS as u32)), Some(2));
        // Deleting a missing key bumps the epoch but shares everything.
        let (v2, zero) = v1.delete_key(999).unwrap();
        assert_eq!(zero, 0);
        assert_eq!(v2.epoch(), 2);
        assert_eq!(v2.shared_blocks_with(&v1), v1.block_count());
        assert!(Arc::ptr_eq(v2.snapshot(), v1.snapshot()));
    }

    #[test]
    fn pinned_snapshot_unaffected_by_later_versions() {
        let v0 = seed(8);
        let pinned = Arc::clone(v0.snapshot());
        let v1 = v0.append(&[0], &[raw(50)]).unwrap();
        let (v2, _) = v1.delete_key(0).unwrap();
        assert_eq!(pinned.n(), 8, "epoch-0 snapshot still has 8 rows");
        assert_eq!(v2.epoch(), 2);
        assert!(v2.n() < v1.n());
        // The pinned snapshot's values are untouched.
        for t in 0..8u32 {
            assert_eq!(pinned.raw_row(TupleId(t)), raw(t as usize));
        }
    }

    #[test]
    fn empty_start_grows_like_a_load() {
        let v0 = VersionedRelation::new(schema()).unwrap();
        assert_eq!(v0.n(), 0);
        let v1 = v0.append(&[4, 4], &[raw(0), raw(1)]).unwrap();
        assert_eq!(v1.n(), 2);
        let fresh = Relation::from_grouped_rows(schema(), &[4, 4], &[raw(0), raw(1)]).unwrap();
        assert_eq!(**v1.snapshot(), fresh);
    }

    #[test]
    fn rejects_non_group_keys_and_bad_arity() {
        let mut b = Relation::builder(Schema::uniform(2).unwrap());
        b.add(&[1.0, 2.0]).unwrap();
        let rel = Arc::new(b.build().unwrap());
        assert!(VersionedRelation::from_relation(rel).is_err());
        let v0 = seed(3);
        assert!(v0.append(&[1], &[vec![1.0]]).is_err(), "arity mismatch");
        assert!(v0.append(&[1, 2], &[raw(0)]).is_err(), "key/row mismatch");
    }
}
