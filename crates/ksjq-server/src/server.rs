//! The TCP server: a readiness-polled connection front end over a fixed
//! worker pool sharing one [`Engine`].
//!
//! Connection handling and query execution are split. The front end is a
//! single thread running a `poll(2)` loop (std-only — no async runtime;
//! on Linux the real syscall via FFI, elsewhere a sleep-tick fallback)
//! over a non-blocking listener plus every live connection. It owns all
//! socket I/O: incremental frame reassembly ([`FrameBuffer`]), response
//! serialisation, and flow control. Complete requests are dispatched onto
//! `--workers` compute threads through an mpsc channel; finished results
//! come back on a completion channel and are written out by the front
//! end. Thousands of idle connections therefore cost a pollfd each, not a
//! thread each, while at most `workers` queries execute concurrently.
//!
//! All workers share:
//!
//! * the [`Engine`] — and through it the catalog — so `LOAD`ed relations
//!   are visible to every connection;
//! * a named [`PreparedQuery`] session map behind an `RwLock`, so one
//!   connection can `PREPARE` a query and another can `EXECUTE` it;
//! * the [`ResultCache`], keyed by normalised plan fingerprint with
//!   per-relation invalidation on catalog registration.
//!
//! Results travel back to v2 sessions as bounded `ROWS … part=i/m`
//! chunks. The front end formats the next chunk only after the previous
//! one has fully drained into the socket, so a slow reader holds at most
//! one serialised chunk of server memory however large the result (the
//! `peak_buf` gauge in `STATS` is the measured high-water mark). v1
//! sessions still get the whole result as one frame.
//!
//! Admission control:
//!
//! * `max_conns` — connections beyond the cap are answered `ERR busy`
//!   and closed at accept time (counted in `shed`);
//! * `max_inflight` — per-connection bound on parsed-but-unserved
//!   requests; past it the front end stops reading the socket, so a
//!   pipelining client is throttled by TCP backpressure and responses
//!   keep arriving in request order;
//! * `idle_timeout` / `stall_timeout` — a quiet connection with no
//!   partial frame is reaped after `idle_timeout`; one that stopped
//!   *mid-frame* (slow loris) after the shorter `stall_timeout`. Both
//!   deadlines run from the last byte received, not the last poll tick,
//!   and never fire while a response is being computed or streamed;
//! * `max_catalog_cells` — cumulative `n·d` budget across all `LOAD`ed
//!   relations, on top of the per-request `MAX_SYNTHETIC_CELLS` cap.
//!
//! Shutdown is graceful: [`ServerHandle::shutdown`] flips a flag and pokes
//! the listener awake; the poll loop drops the listener and live
//! connections, closes the job channel, and joins the workers.
//!
//! Nothing a peer sends can panic the server: requests parse into typed
//! [`Request`]s or an `ERR` frame, execution errors become `ERR` frames,
//! oversized lines are discarded as they arrive and answered with an
//! error, and worker panics are caught per-job.

use crate::cache::ResultCache;
use crate::durability::{self, Wal};
use crate::faults::{FaultAction, FaultPlan, FaultStream};
use crate::frame::{Frame, FrameBuffer};
use crate::protocol::{
    Cursor, ErrorCode, LoadSource, PlanSpec, ProtoResult, Request, Response, RowChunk, RowSet,
    ServerStats, MAX_LINE_BYTES, PROTOCOL_VERSION, ROWS_PER_CHUNK,
};
use ksjq_core::{CoreError, CoreResult, Engine, Goal, KsjqOutput, PreparedQuery};
use ksjq_relation::VersionedRelation;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Upper bound on `n · d` of one `LOAD … SYNTHETIC` request, so a single
/// wire command cannot make the server allocate arbitrarily much.
const MAX_SYNTHETIC_CELLS: usize = 50_000_000;

/// Upper bound on relations held in the `STAGE`d (parsed but uncommitted)
/// map, so an abandoning client cannot park unbounded memory there. Each
/// staged relation is further bounded by the request-line cap.
const MAX_STAGED: usize = 64;

/// Server knobs, matching the `ksjq-serverd` flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads (= maximum queries executing concurrently).
    pub workers: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
    /// Maximum concurrently open connections; excess connects are
    /// answered `ERR busy` and closed (`--max-conns`).
    pub max_conns: usize,
    /// Per-connection cap on parsed-but-unserved requests before the
    /// server stops reading that socket (`--max-inflight`).
    pub max_inflight: usize,
    /// Reap a connection idle between requests for this long
    /// (`--idle-timeout`).
    pub idle_timeout: Duration,
    /// Reap a connection stalled *mid-frame* for this long — the
    /// slow-loris deadline, deliberately shorter than `idle_timeout`.
    pub stall_timeout: Duration,
    /// Cumulative `n·d` cell budget across every relation in the
    /// catalog; a `LOAD` that would exceed it is rejected.
    pub max_catalog_cells: usize,
    /// Durable catalog directory (`--data-dir`). When set, every catalog
    /// mutation is WAL-logged (fsynced before its `OK`) and replayed on
    /// restart; when `None` the catalog is memory-only, as before.
    pub data_dir: Option<PathBuf>,
    /// Rotate the active WAL into a sealed segment once it exceeds this
    /// many bytes (`--wal-max-bytes`), folding sealed history into the
    /// snapshot whenever nothing is staged. `None` keeps the pre-rotation
    /// behaviour: one growing log, compacted only at startup.
    pub wal_max_bytes: Option<u64>,
    /// Server-wide ceiling on per-query execution time
    /// (`--query-timeout`); combined with any per-session `DEADLINE` by
    /// taking the tighter of the two. `None` means no server-side cap.
    pub query_timeout: Option<Duration>,
    /// Deterministic transport fault injection applied to accepted
    /// connections (`--faults` / `KSJQ_FAULTS`); `None` injects nothing.
    pub faults: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            cache_entries: 128,
            max_conns: 2048,
            max_inflight: 32,
            idle_timeout: Duration::from_secs(300),
            stall_timeout: Duration::from_secs(30),
            max_catalog_cells: 500_000_000,
            data_dir: None,
            wal_max_bytes: None,
            query_timeout: None,
            faults: None,
        }
    }
}

/// One named prepared query in the shared session map.
#[derive(Debug, Clone)]
struct Session {
    prepared: Arc<PreparedQuery>,
    fingerprint: String,
    /// Relation names the plan references (cache invalidation scope).
    relations: Vec<String>,
    /// The producing plan, cached alongside the result so an `APPEND`
    /// can upgrade the entry through the incremental maintainer.
    plan: PlanSpec,
}

impl Session {
    fn new(prepared: PreparedQuery, plan: &PlanSpec) -> Session {
        Session {
            prepared: Arc::new(prepared),
            fingerprint: plan.fingerprint(),
            relations: vec![plan.left.clone(), plan.right.clone()],
            plan: plan.clone(),
        }
    }
}

/// A parsed-but-unapplied `APPEND … STAGE` delta — the two-phase half of
/// a router's distributed append. Keys are already encoded through the
/// catalog's shared dictionary (append-only, so stage-time encoding
/// stays valid at `COMMIT`); rows are raw (denormalised) values.
#[derive(Debug)]
struct StagedDelta {
    keys: Vec<u64>,
    rows: Vec<Vec<f64>>,
}

/// State shared by the front end and every worker.
#[derive(Debug)]
struct Shared {
    engine: Engine,
    sessions: RwLock<HashMap<String, Session>>,
    cache: ResultCache,
    config: ServerConfig,
    /// Cumulative `n·d` over the catalog, maintained under this lock by
    /// `LOAD` (which is rare and already serialised by the catalog's own
    /// registration locking).
    catalog_cells: Mutex<usize>,
    /// Relations parsed by `STAGE` and awaiting `COMMIT`/`ABORT` — the
    /// held half of the router's two-phase catalog update. Keyed by the
    /// name the data will commit under.
    staged: Mutex<HashMap<String, ksjq_relation::Relation>>,
    /// Deltas parsed by `APPEND … STAGE` and awaiting `COMMIT`/`ABORT`,
    /// keyed by the relation they extend.
    staged_deltas: Mutex<HashMap<String, StagedDelta>>,
    /// Per-relation versioned chains behind the live bindings, so
    /// consecutive `APPEND`s share unchanged column blocks (COW).
    /// Entries are lazily (re)built whenever the chain's snapshot is no
    /// longer the bound relation (a `LOAD`/`COMMIT` replaced it).
    live: Mutex<HashMap<String, VersionedRelation>>,
    /// The write-ahead log behind `--data-dir`; `None` when the catalog
    /// is memory-only. Appended to *inside* the mutation handlers while
    /// they hold `catalog_cells`, so log order is apply order.
    wal: Mutex<Option<Wal>>,
    /// While set, every request except `STATS`/`HELLO`/`CLOSE` is
    /// answered `ERR recovering` — a replica refuses to serve reads
    /// until its catalog sync verified the primary's epoch.
    recovering: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    /// Verification-kernel work summed over every non-cached execution:
    /// joined-tuple dominance tests and attribute comparisons (see
    /// `ksjq_core::Counts`). Surfaced through `STATS` so kernel speedups
    /// are visible over the wire.
    dom_tests: AtomicU64,
    attr_cmps: AtomicU64,
    /// Cumulative dominator-generation wall-clock (µs) across non-cached
    /// executions — non-zero only for dominator-based plans, where it is
    /// the `O(n²)` phase the parallel sharding targets.
    domgen_us: AtomicU64,
    /// Bumped on every catalog registration; guards against caching a
    /// result computed against a catalog that changed mid-execution, and
    /// reported through `SYNC`/`STATS` so replicas can detect staleness.
    catalog_epoch: AtomicU64,
    /// Cached results upgraded in place by the incremental maintainer.
    delta_maintained: AtomicU64,
    /// Rows appended via `APPEND` since startup.
    delta_rows: AtomicU64,
    shed: AtomicU64,
    reaped: AtomicU64,
    /// High-water mark of any connection's pending outbound buffer.
    peak_buf: AtomicU64,
    /// Queries cancelled at their deadline (`DEADLINE` / `--query-timeout`).
    timeouts: AtomicU64,
    /// WAL records appended since startup (0 when memory-only).
    wal_records: AtomicU64,
    /// WAL rotations since startup: active-log seals driven by
    /// `--wal-max-bytes`.
    wal_segments: AtomicU64,
    /// Worker panics caught by the pool (each cost its request an
    /// `ERR internal`, never a worker thread).
    panics: AtomicU64,
    /// Seeded decision stream for the `panic=` execution fault; `None`
    /// when the configured fault plan has no panic rate.
    exec_faults: Mutex<Option<FaultStream>>,
    shutdown: AtomicBool,
}

/// Synthetic connection id keying the `panic=` execution-fault stream, so
/// its decisions decorrelate from every real connection's transport
/// stream under the same seed.
const EXEC_FAULT_CONN: u64 = u64::MAX;

/// A bound, not-yet-running KSJQ server. [`run`](Server::run) blocks;
/// [`start`](Server::start) is the spawn-in-background convenience.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Cloneable trigger for graceful shutdown.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Ask the server to stop: the poll loop drops the listener and all
    /// live connections, and workers exit once the job queue drains.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Poke the poll loop awake so it observes the flag. A wildcard
        // bind address (0.0.0.0 / ::) is not connectable on every
        // platform, so fall back to loopback on the same port.
        if TcpStream::connect(self.addr).is_err() && self.addr.ip().is_unspecified() {
            let loopback: std::net::IpAddr = if self.addr.is_ipv4() {
                std::net::Ipv4Addr::LOCALHOST.into()
            } else {
                std::net::Ipv6Addr::LOCALHOST.into()
            };
            let _ = TcpStream::connect((loopback, self.addr.port()));
        }
    }

    /// Gate (or re-open) the server behind `ERR recovering`: while set,
    /// every request except `STATS`/`HELLO`/`CLOSE` is refused, so a
    /// replica mid-sync can never serve a stale or half-copied catalog.
    pub fn set_recovering(&self, recovering: bool) {
        self.shared.recovering.store(recovering, Ordering::SeqCst);
    }

    /// Tell the server its catalog changed *out of band* — a replica
    /// resync writes relations straight through the shared [`Engine`],
    /// bypassing the wire handlers that normally keep the epoch, the
    /// result cache and the versioned chains in step. Call it after any
    /// such direct catalog surgery.
    pub fn catalog_updated(&self) {
        self.shared
            .live
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.shared.catalog_epoch.fetch_add(1, Ordering::SeqCst);
        self.shared.cache.clear();
    }
}

/// A server running on a background thread, for tests, examples and
/// harness `--serve` mode.
#[derive(Debug)]
pub struct RunningServer {
    handle: ServerHandle,
    thread: JoinHandle<io::Result<()>>,
}

impl RunningServer {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr
    }

    /// A shutdown trigger usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Shut down gracefully and wait for the poll loop and workers.
    pub fn stop(self) -> io::Result<()> {
        self.handle.shutdown();
        self.thread
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("server thread panicked")))
    }
}

impl Server {
    /// Bind to `config.addr` serving `engine`'s catalog.
    pub fn bind(engine: Engine, config: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        // Cells already in the catalog (preloaded before serving) count
        // against the budget.
        let preloaded: usize = {
            let catalog = engine.catalog();
            catalog
                .names()
                .iter()
                .filter_map(|name| catalog.get(name))
                .map(|h| h.n().saturating_mul(h.schema().d()))
                .sum()
        };
        let mut config = config.clone();
        config.workers = config.workers.max(1);
        config.max_conns = config.max_conns.max(1);
        config.max_inflight = config.max_inflight.max(1);
        let data_dir = config.data_dir.clone();
        let exec_faults = config
            .faults
            .filter(|plan| plan.panic_pm > 0)
            .map(|plan| plan.stream(EXEC_FAULT_CONN));
        let shared = Arc::new(Shared {
            engine,
            sessions: RwLock::new(HashMap::new()),
            cache: ResultCache::new(config.cache_entries),
            catalog_cells: Mutex::new(preloaded),
            staged: Mutex::new(HashMap::new()),
            staged_deltas: Mutex::new(HashMap::new()),
            live: Mutex::new(HashMap::new()),
            wal: Mutex::new(None),
            recovering: AtomicBool::new(false),
            config,
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            dom_tests: AtomicU64::new(0),
            attr_cmps: AtomicU64::new(0),
            domgen_us: AtomicU64::new(0),
            catalog_epoch: AtomicU64::new(0),
            delta_maintained: AtomicU64::new(0),
            delta_rows: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
            peak_buf: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            wal_records: AtomicU64::new(0),
            wal_segments: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            exec_faults: Mutex::new(exec_faults),
            shutdown: AtomicBool::new(false),
        });
        if let Some(dir) = data_dir {
            recover_catalog(&shared, &dir)?;
        }
        Ok(Server { listener, shared })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown trigger for this server.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            shared: self.shared.clone(),
            addr: self.local_addr()?,
        })
    }

    /// Bind and run on a background thread.
    pub fn start(engine: Engine, config: &ServerConfig) -> io::Result<RunningServer> {
        let server = Server::bind(engine, config)?;
        let handle = server.handle()?;
        let thread = thread::Builder::new()
            .name("ksjq-front".into())
            .spawn(move || server.run())?;
        Ok(RunningServer { handle, thread })
    }

    /// Serve until [`ServerHandle::shutdown`] is called. Blocks, running
    /// the poll loop on the calling thread.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (done_tx, done_rx) = mpsc::channel::<(u64, Outcome)>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers: Vec<JoinHandle<()>> = (0..self.shared.config.workers)
            .map(|i| {
                let shared = self.shared.clone();
                let job_rx = job_rx.clone();
                let done_tx = done_tx.clone();
                thread::Builder::new()
                    .name(format!("ksjq-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &job_rx, &done_tx))
                    .expect("spawning a worker thread")
            })
            .collect();
        drop(done_tx);
        let mut front = FrontEnd::new(&self.shared, job_tx);
        front.poll_loop(&self.listener, &done_rx);
        // Dropping the front end closes the job channel; workers drain
        // what is queued and exit.
        drop(front);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

// --------------------------------------------------------- worker pool

/// One dispatched request: which connection asked, speaking which
/// protocol version (pinned at dispatch, since the front end applies
/// `HELLO` switches strictly in request order).
#[derive(Debug)]
struct Job {
    conn: u64,
    version: u32,
    request: Request,
    /// Cooperative-cancellation deadline: the tighter of the session's
    /// `DEADLINE` and the server's `--query-timeout`, anchored at
    /// dispatch time.
    deadline: Option<Instant>,
}

/// What a worker hands back to the front end.
#[derive(Debug)]
enum Outcome {
    /// A complete single-frame response, ready to serialise.
    Frame(Response),
    /// A v2 result to be streamed as chunks by the front end.
    Result(RunOutput),
}

/// A computed (or cache-served) query result before serialisation.
#[derive(Debug, Clone)]
struct RunOutput {
    k: usize,
    micros: u64,
    cached: bool,
    /// Cache id when the result is cursor-addressable via `MORE`.
    result_id: Option<u64>,
    output: Arc<KsjqOutput>,
}

fn worker_loop(
    shared: &Shared,
    jobs: &Mutex<mpsc::Receiver<Job>>,
    done: &mpsc::Sender<(u64, Outcome)>,
) {
    loop {
        // Hold the lock only while receiving: the next idle worker picks
        // up the next job.
        let job = jobs.lock().unwrap_or_else(|e| e.into_inner()).recv();
        let Ok(job) = job else {
            return; // channel closed: shutdown
        };
        // A panic must cost one request, not silently shrink the pool.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_request(shared, job.version, job.request, job.deadline)
        }))
        .unwrap_or_else(|_| {
            shared.panics.fetch_add(1, Ordering::Relaxed);
            Outcome::Frame(Response::err(ErrorCode::Internal, "internal error"))
        });
        if done.send((job.conn, outcome)).is_err() {
            return; // front end gone: shutdown
        }
    }
}

// ----------------------------------------------------------- poll(2)

/// Minimal `poll(2)` binding. std already links libc, so the symbol is
/// available without any new dependency.
#[cfg(target_os = "linux")]
mod readiness {
    use std::os::fd::RawFd;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    /// `struct pollfd` (see `poll(2)`).
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int) -> i32;
    }

    /// Wait up to `timeout_ms` for readiness on `fds`.
    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) {
        // A negative return is EINTR or a transient error: treated as a
        // timeout tick (revents are zeroed by the kernel on entry only
        // when it writes them, so clear defensively).
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
        if rc < 0 {
            for fd in fds {
                fd.revents = 0;
            }
        }
    }
}

/// Portable fallback: a short sleep, then report every descriptor ready.
/// Non-blocking sockets make spurious readiness harmless (reads return
/// `WouldBlock`), at the cost of a coarse tick instead of true wakeups.
#[cfg(not(target_os = "linux"))]
mod readiness {
    use std::os::fd::RawFd;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) {
        std::thread::sleep(std::time::Duration::from_millis(
            (timeout_ms.max(0) as u64).min(5),
        ));
        for fd in fds {
            fd.revents = fd.events & (POLLIN | POLLOUT);
        }
    }
}

// ---------------------------------------------------------- front end

/// Ordered per-connection work: everything a received frame becomes.
/// Inline items (`Reply`, `Hello`, `Bye`) and dispatched requests live in
/// one queue so responses always leave in request order.
#[derive(Debug)]
enum Work {
    /// Run on the worker pool.
    Run(Request),
    /// Answer inline (parse errors, oversized-line errors).
    Reply(Response),
    /// Switch protocol version, then acknowledge.
    Hello(u32),
    /// Set (or with 0, clear) the session's per-request deadline, then
    /// acknowledge. Applied in queue order, so it governs exactly the
    /// requests that follow it.
    Deadline(u64),
    /// Acknowledge with `BYE` and close once flushed.
    Bye,
}

/// A result mid-stream to a v2 connection: the next chunk is formatted
/// only when the previous one has fully drained (the backpressure
/// invariant — one in-flight chunk per connection).
#[derive(Debug)]
struct StreamState {
    run: RunOutput,
    /// 0-based index of the next chunk to format.
    next: usize,
    parts: usize,
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    frames: FrameBuffer,
    work: VecDeque<Work>,
    /// A `Work::Run` is at the workers; nothing else is served until its
    /// outcome returns.
    inflight: bool,
    /// Negotiated protocol version (1 until `HELLO`).
    version: u32,
    out: Vec<u8>,
    out_pos: usize,
    streaming: Option<StreamState>,
    /// Last byte received — the reaping deadlines run from here.
    last_recv: Instant,
    /// Peer half-closed (EOF): serve what is queued, then drop.
    eof: bool,
    /// `BYE` queued: drop once flushed.
    closing: bool,
    /// Per-session query budget set by `DEADLINE <ms>` (`None` = unset).
    deadline_ms: Option<u64>,
    /// Seeded fault decisions for this connection (`--faults`).
    faults: Option<FaultStream>,
}

impl Conn {
    fn new(stream: TcpStream, faults: Option<FaultStream>) -> Conn {
        Conn {
            stream,
            frames: FrameBuffer::new(),
            work: VecDeque::new(),
            inflight: false,
            version: 1,
            out: Vec::new(),
            out_pos: 0,
            streaming: None,
            last_recv: Instant::now(),
            eof: false,
            closing: false,
            deadline_ms: None,
            faults,
        }
    }

    fn out_pending(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Append one serialised frame to the outbound buffer.
    fn enqueue_line(&mut self, line: &str, shared: &Shared) {
        self.out.extend_from_slice(line.as_bytes());
        self.out.push(b'\n');
        shared
            .peak_buf
            .fetch_max(self.out_pending() as u64, Ordering::Relaxed);
    }

    fn enqueue_response(&mut self, response: &Response, shared: &Shared) {
        if matches!(response, Response::Error { .. }) {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.enqueue_line(&response.to_string(), shared);
    }

    /// Flush as much outbound as the socket accepts. `Ok(true)` when
    /// fully drained, `Err` when the connection is dead.
    fn flush(&mut self) -> io::Result<bool> {
        // Chaos hook: a faulted connection may stall, truncate its
        // pending frame (torn write), corrupt a byte, or drop outright —
        // once per flush call, so healthy flushes stay one branch.
        if let Some(faults) = &mut self.faults {
            if self.out_pos < self.out.len() {
                match faults.on_write() {
                    FaultAction::Drop => return Err(io::ErrorKind::ConnectionReset.into()),
                    FaultAction::Partial => {
                        let cut = faults.cut_point(self.out.len() - self.out_pos);
                        let _ = self
                            .stream
                            .write(&self.out[self.out_pos..self.out_pos + cut]);
                        return Err(io::ErrorKind::ConnectionReset.into());
                    }
                    FaultAction::None => {}
                }
                faults.maybe_flip(&mut self.out[self.out_pos..]);
            }
        }
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Ok(true)
    }

    /// Is this connection doing anything (computing, streaming, queued
    /// work, or unflushed output)? Engaged connections are never reaped.
    fn engaged(&self) -> bool {
        self.inflight || self.streaming.is_some() || !self.work.is_empty() || self.out_pending() > 0
    }

    /// Should the poll loop watch this socket for readability? Not while
    /// the in-flight quota is filled (TCP backpressure throttles the
    /// pipelining peer) and not after EOF/`CLOSE`.
    fn wants_read(&self, max_inflight: usize) -> bool {
        !self.eof && !self.closing && self.work.len() < max_inflight
    }

    fn wants_write(&self) -> bool {
        self.out_pending() > 0 || (self.streaming.is_some() && self.out_pending() == 0)
    }
}

struct FrontEnd<'a> {
    shared: &'a Shared,
    job_tx: mpsc::Sender<Job>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

impl std::fmt::Debug for FrontEnd<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontEnd")
            .field("conns", &self.conns.len())
            .finish_non_exhaustive()
    }
}

impl<'a> FrontEnd<'a> {
    fn new(shared: &'a Shared, job_tx: mpsc::Sender<Job>) -> FrontEnd<'a> {
        FrontEnd {
            shared,
            job_tx,
            conns: HashMap::new(),
            next_token: 0,
        }
    }

    fn poll_loop(&mut self, listener: &TcpListener, done_rx: &mpsc::Receiver<(u64, Outcome)>) {
        use readiness::{PollFd, POLLERR, POLLHUP, POLLIN, POLLOUT};
        use std::os::fd::AsRawFd;
        let max_inflight = self.shared.config.max_inflight;
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            // Register: slot 0 is the listener, then one slot per conn.
            let mut fds = Vec::with_capacity(self.conns.len() + 1);
            fds.push(PollFd {
                fd: listener.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            let mut tokens = Vec::with_capacity(self.conns.len());
            let mut any_inflight = false;
            for (&token, conn) in &self.conns {
                let mut events = 0;
                if conn.wants_read(max_inflight) {
                    events |= POLLIN;
                }
                if conn.wants_write() {
                    events |= POLLOUT;
                }
                any_inflight |= conn.inflight;
                tokens.push(token);
                fds.push(PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
            }
            // Completions arrive on a channel the poll cannot watch, so
            // tighten the tick while any worker owes us an outcome.
            let timeout_ms = if any_inflight { 1 } else { 20 };
            readiness::wait(&mut fds, timeout_ms);
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if fds[0].revents & POLLIN != 0 {
                self.accept_all(listener);
            }
            let mut dead: Vec<u64> = Vec::new();
            for (slot, token) in tokens.iter().enumerate() {
                let revents = fds[slot + 1].revents;
                if revents == 0 {
                    continue;
                }
                let alive = self.service(*token, revents & (POLLIN | POLLERR | POLLHUP) != 0);
                if !alive {
                    dead.push(*token);
                }
            }
            for token in dead {
                self.conns.remove(&token);
            }
            // Apply finished work.
            while let Ok((token, outcome)) = done_rx.try_recv() {
                self.apply_outcome(token, outcome);
            }
            self.reap();
        }
    }

    fn accept_all(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if self.conns.len() >= self.shared.config.max_conns {
                        // Polite shed: tell the peer why before closing.
                        // The socket buffer of a fresh connection always
                        // has room for one short line.
                        let mut stream = stream;
                        let _ = stream.write_all(b"ERR busy\n");
                        self.shared.shed.fetch_add(1, Ordering::Relaxed);
                        self.shared.errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Lockstep one-line exchanges: Nagle only adds latency.
                    let _ = stream.set_nodelay(true);
                    self.shared.connections.fetch_add(1, Ordering::Relaxed);
                    self.next_token += 1;
                    let faults = self
                        .shared
                        .config
                        .faults
                        .filter(|plan| plan.is_active())
                        .map(|plan| plan.stream(self.next_token));
                    self.conns
                        .insert(self.next_token, Conn::new(stream, faults));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return, // transient accept error
            }
        }
    }

    /// Handle readiness on one connection. Returns false when it is dead.
    fn service(&mut self, token: u64, readable: bool) -> bool {
        if readable && !self.read_ready(token) {
            return false;
        }
        self.pump(token)
    }

    /// Drain the socket into the frame buffer and the frame buffer into
    /// the work queue. Returns false when the connection is dead.
    fn read_ready(&mut self, token: u64) -> bool {
        let max_inflight = self.shared.config.max_inflight;
        let mut buf = [0u8; 8192];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            if !conn.wants_read(max_inflight) {
                return true;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.eof = true;
                    return true; // serve what is queued, then drop
                }
                Ok(n) => {
                    if let Some(faults) = &mut conn.faults {
                        if faults.on_read() == FaultAction::Drop {
                            return false;
                        }
                        faults.maybe_flip(&mut buf[..n]);
                    }
                    conn.last_recv = Instant::now();
                    conn.frames.push(&buf[..n]);
                    self.drain_frames(token);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
    }

    /// Turn every complete frame into a work item.
    fn drain_frames(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while let Some(frame) = conn.frames.next_frame() {
            self.shared.requests.fetch_add(1, Ordering::Relaxed);
            let work = match frame {
                Frame::Oversized => Work::Reply(Response::err(
                    ErrorCode::Parse,
                    format!("line exceeds {MAX_LINE_BYTES} bytes"),
                )),
                Frame::Line(line) => match Request::parse(&line) {
                    Ok(Request::Hello { version }) => Work::Hello(version),
                    Ok(Request::Deadline { ms }) => Work::Deadline(ms),
                    Ok(Request::Close) => Work::Bye,
                    Ok(request) => Work::Run(request),
                    Err(message) => Work::Reply(Response::err(ErrorCode::Parse, message)),
                },
            };
            conn.work.push_back(work);
        }
    }

    /// Advance one connection as far as it can go: flush output, emit
    /// stream chunks, serve queued work in order. Returns false when the
    /// connection is finished or dead.
    fn pump(&mut self, token: u64) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            match conn.flush() {
                Err(_) => return false,
                Ok(false) => return true, // wait for POLLOUT
                Ok(true) => {}
            }
            // Previous chunk fully drained: format the next one. This is
            // the only place chunks are serialised, so a connection never
            // holds more than one in its outbound buffer.
            if let Some(streaming) = &mut conn.streaming {
                let chunk = chunk_response(&streaming.run, streaming.next, streaming.parts);
                streaming.next += 1;
                let finished = streaming.next >= streaming.parts;
                if finished {
                    conn.streaming = None;
                }
                conn.enqueue_response(&chunk, self.shared);
                continue;
            }
            if conn.inflight {
                return true; // a worker owes us the next response
            }
            let Some(work) = conn.work.pop_front() else {
                // Fully drained. A half-closed or CLOSEd peer is done.
                return !(conn.eof || conn.closing);
            };
            match work {
                Work::Reply(response) => conn.enqueue_response(&response, self.shared),
                Work::Hello(requested) => {
                    conn.version = requested.clamp(1, PROTOCOL_VERSION);
                    let version = conn.version;
                    conn.enqueue_response(&Response::Hello { version }, self.shared);
                }
                Work::Deadline(ms) => {
                    conn.deadline_ms = (ms > 0).then_some(ms);
                    let ack = if ms > 0 {
                        Response::Ok(format!("deadline {ms}ms"))
                    } else {
                        Response::Ok("deadline cleared".into())
                    };
                    conn.enqueue_response(&ack, self.shared);
                }
                Work::Bye => {
                    conn.closing = true;
                    conn.enqueue_response(&Response::Bye, self.shared);
                }
                Work::Run(Request::More { cursor }) => {
                    // Paging is a cache lookup — served inline, no worker
                    // round-trip.
                    let version = conn.version;
                    let response = more(self.shared, version, cursor);
                    conn.enqueue_response(&response, self.shared);
                }
                Work::Run(request) => {
                    // The job's deadline is the tighter of the session's
                    // DEADLINE and the server-wide --query-timeout,
                    // anchored when the request leaves the queue.
                    let budget = match (conn.deadline_ms, self.shared.config.query_timeout) {
                        (Some(ms), Some(cap)) => Some(Duration::from_millis(ms).min(cap)),
                        (Some(ms), None) => Some(Duration::from_millis(ms)),
                        (None, cap) => cap,
                    };
                    let job = Job {
                        conn: token,
                        version: conn.version,
                        request,
                        deadline: budget.map(|b| Instant::now() + b),
                    };
                    conn.inflight = true;
                    if self.job_tx.send(job).is_err() {
                        return false; // workers gone: shutting down
                    }
                    return true;
                }
            }
        }
    }

    /// A worker finished `token`'s dispatched request.
    fn apply_outcome(&mut self, token: u64, outcome: Outcome) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return; // connection died while computing
        };
        conn.inflight = false;
        match outcome {
            Outcome::Frame(response) => conn.enqueue_response(&response, self.shared),
            Outcome::Result(run) => {
                let parts = run.output.chunk_count(ROWS_PER_CHUNK);
                conn.streaming = Some(StreamState {
                    run,
                    next: 0,
                    parts,
                });
            }
        }
        if !self.pump(token) {
            self.conns.remove(&token);
        }
    }

    /// Close connections that went quiet: mid-frame stalls after
    /// `stall_timeout` (slow loris), idle ones after `idle_timeout`.
    /// Deadlines run from the last byte received — poll ticks do not
    /// renew them — and engaged connections are exempt.
    fn reap(&mut self) {
        let config = &self.shared.config;
        let now = Instant::now();
        let mut reaped = 0u64;
        self.conns.retain(|_, conn| {
            if conn.engaged() || conn.eof {
                return true;
            }
            let deadline = if conn.frames.has_partial() {
                config.stall_timeout
            } else {
                config.idle_timeout
            };
            let keep = now.duration_since(conn.last_recv) < deadline;
            if !keep {
                reaped += 1;
            }
            keep
        });
        if reaped > 0 {
            self.shared.reaped.fetch_add(reaped, Ordering::Relaxed);
        }
    }
}

/// Serialise chunk `index` of a result (0-based; `parts` total).
fn chunk_response(run: &RunOutput, index: usize, parts: usize) -> Response {
    let pairs = run
        .output
        .chunk(index, ROWS_PER_CHUNK)
        .unwrap_or(&[])
        .iter()
        .map(|&(l, r)| (l.0, r.0))
        .collect();
    let part = (index + 1) as u32;
    let parts = parts as u32;
    // Non-final frames of a cache-addressable result carry the cursor
    // where MORE can resume.
    let cursor = match run.result_id {
        Some(result) if part < parts => Some(Cursor {
            result,
            part: part + 1,
        }),
        _ => None,
    };
    Response::Chunk(RowChunk {
        k: run.k,
        micros: run.micros,
        cached: run.cached,
        total: run.output.len(),
        part,
        parts,
        cursor,
        pairs,
    })
}

// ------------------------------------------------------------- dispatch

fn handle_request(
    shared: &Shared,
    version: u32,
    request: Request,
    deadline: Option<Instant>,
) -> Outcome {
    // A recovering server (replica mid-sync) serves nothing that could
    // leak a stale or half-copied catalog.
    if shared.recovering.load(Ordering::SeqCst) {
        match request {
            Request::Stats | Request::Hello { .. } | Request::Close | Request::Deadline { .. } => {}
            _ => {
                return Outcome::Frame(Response::err(
                    ErrorCode::Recovering,
                    "catalog sync in progress",
                ))
            }
        }
    }
    // The canonical wire line of a catalog mutation doubles as its WAL
    // payload — formatted before the request is consumed.
    let wire = match &request {
        Request::Load { .. }
        | Request::Stage { .. }
        | Request::Commit { .. }
        | Request::Abort { .. }
        | Request::Append { .. }
        | Request::Delete { .. } => Some(request.to_string()),
        _ => None,
    };
    let wire = wire.as_deref();
    let is_mutation = wire.is_some();
    let outcome = match request {
        Request::Load { name, source } => Outcome::Frame(load(shared, &name, source, wire)),
        Request::Prepare { id, plan } => Outcome::Frame(prepare(shared, id, &plan)),
        Request::Execute { id } => match lookup(shared, &id) {
            Some(session) => run_outcome(shared, version, &session, deadline),
            None => Outcome::Frame(Response::err(
                ErrorCode::Invalid,
                format!("unknown query id {id:?}: PREPARE it first"),
            )),
        },
        Request::Query { plan } => match shared.engine.prepare(&plan.to_plan()) {
            Ok(prepared) => run_outcome(shared, version, &Session::new(prepared, &plan), deadline),
            Err(e) => Outcome::Frame(Response::err(ErrorCode::Invalid, e.to_string())),
        },
        Request::Explain { id } => Outcome::Frame(explain(shared, &id)),
        Request::Stats => Outcome::Frame(Response::Stats(stats(shared))),
        Request::Sync { name } => Outcome::Frame(sync(shared, name.as_deref())),
        Request::Stage { name, csv } => Outcome::Frame(stage(shared, &name, &csv, wire)),
        Request::Commit { name } => Outcome::Frame(commit(shared, &name, wire)),
        Request::Abort { name } => Outcome::Frame(abort(shared, &name, wire)),
        Request::StagedQuery => Outcome::Frame(staged_query(shared)),
        Request::Append { name, rows, staged } => {
            Outcome::Frame(append(shared, &name, &rows, staged, wire))
        }
        Request::Delete { name, keys } => Outcome::Frame(delete(shared, &name, &keys, wire)),
        Request::Fetch {
            left,
            right,
            aggs,
            pairs,
        } => Outcome::Frame(fetch(shared, &left, &right, &aggs, &pairs)),
        Request::Check {
            left,
            right,
            aggs,
            k,
            rows,
        } => Outcome::Frame(check(shared, &left, &right, &aggs, k, &rows)),
        // HELLO / MORE / CLOSE / DEADLINE are served by the front end,
        // never dispatched; answering them here keeps the match total.
        Request::Hello { version } => {
            let version = version.clamp(1, PROTOCOL_VERSION);
            Outcome::Frame(Response::Hello { version })
        }
        Request::More { cursor } => Outcome::Frame(more(shared, version, cursor)),
        Request::Deadline { ms } => Outcome::Frame(Response::Ok(format!("deadline {ms}ms"))),
        Request::Close => Outcome::Frame(Response::Bye),
    };
    // Rotation runs after the handler released every lock: `stage`
    // appends to the WAL while holding the staged map, so sealing from
    // inside a handler would invert the lock order.
    if is_mutation {
        maybe_rotate(shared);
    }
    outcome
}

/// `STAGED?`: every name with a pending staged relation or delta — the
/// probe a recovering router sends to decide whether an in-doubt
/// transaction's `COMMIT` still has anything to commit here. Taken under
/// the mutation lock so the answer is a consistent cut, never half of a
/// concurrent two-phase exchange.
fn staged_query(shared: &Shared) -> Response {
    let _cells = shared
        .catalog_cells
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let mut names: Vec<String> = shared
        .staged
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .keys()
        .cloned()
        .collect();
    names.extend(
        shared
            .staged_deltas
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned(),
    );
    names.sort_unstable();
    names.dedup();
    Response::Staged { names }
}

/// Seal the active WAL into a segment once it exceeds `--wal-max-bytes`;
/// when nothing is staged, immediately fold all sealed history into the
/// snapshot (live compaction) so segments never pile up on a quiescent
/// two-phase state. With a transaction mid-flight (something staged) the
/// seal still bounds the active log, but compaction waits: the snapshot
/// captures only *committed* state, and folding a logged `STAGE` away
/// before its `COMMIT` lands would break replay.
///
/// Rotation failures are logged and swallowed — the mutation that
/// triggered rotation is already durable in the (possibly oversized)
/// log, so skipping a rotation never loses data.
fn maybe_rotate(shared: &Shared) {
    let Some(limit) = shared.config.wal_max_bytes else {
        return;
    };
    // Lock order: catalog_cells → staged/staged_deltas → wal.
    let _cells = shared
        .catalog_cells
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let quiescent = shared
        .staged
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .is_empty()
        && shared
            .staged_deltas
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty();
    let mut guard = shared.wal.lock().unwrap_or_else(|e| e.into_inner());
    let Some(wal) = guard.as_mut() else {
        return;
    };
    if wal.active_bytes() <= limit {
        return;
    }
    match wal.seal() {
        Ok(true) => {
            shared.wal_segments.fetch_add(1, Ordering::Relaxed);
        }
        Ok(false) => return,
        Err(e) => {
            eprintln!("ksjq-server: WAL seal failed (rotation skipped): {e}");
            return;
        }
    }
    if !quiescent {
        return;
    }
    let Some(dir) = shared.config.data_dir.as_ref() else {
        return;
    };
    let lines = match snapshot_lines(shared) {
        Ok(lines) => lines,
        Err(e) => {
            eprintln!("ksjq-server: WAL compaction skipped (snapshot failed): {e}");
            return;
        }
    };
    let last_seq = wal.next_seq().saturating_sub(1);
    let epoch = shared.catalog_epoch.load(Ordering::SeqCst);
    match durability::compact(dir, &lines, last_seq, epoch) {
        Ok(fresh) => {
            *wal = fresh;
        }
        Err(e) => {
            // Sealed segments stay on disk; recovery still replays them.
            eprintln!("ksjq-server: WAL compaction failed (segments kept): {e}");
        }
    }
}

/// Serve one `MORE <cursor>` page out of the result cache.
fn more(shared: &Shared, version: u32, cursor: Cursor) -> Response {
    if shared.recovering.load(Ordering::SeqCst) {
        return Response::err(ErrorCode::Recovering, "catalog sync in progress");
    }
    if version < 2 {
        return Response::err(
            ErrorCode::Invalid,
            "MORE requires protocol v2 (send HELLO 2 first)",
        );
    }
    let Some(hit) = shared.cache.by_id(cursor.result) else {
        return Response::err(
            ErrorCode::Invalid,
            format!("unknown or expired cursor {cursor} (results age out of the cache)"),
        );
    };
    let parts = hit.output.chunk_count(ROWS_PER_CHUNK);
    let index = (cursor.part - 1) as usize;
    if index >= parts {
        return Response::err(
            ErrorCode::Invalid,
            format!("cursor {cursor} is past the end ({parts} parts)"),
        );
    }
    let run = RunOutput {
        k: hit.k,
        micros: 0,
        cached: true,
        result_id: Some(hit.id),
        output: hit.output,
    };
    chunk_response(&run, index, parts)
}

// ----------------------------------------------------- durable catalog

/// Rebuild the committed catalog from `dir` (snapshot + WAL replay),
/// then compact and leave the WAL open for the mutation handlers.
///
/// Replay re-runs each logged wire line through the *same* handler that
/// applied it originally (`shared.wal` is still `None`, so nothing is
/// re-logged), which is what makes the recovered catalog byte-identical
/// to the pre-crash committed state. Whatever is still staged after
/// replay was never committed — clearing it is exactly the `ABORT` the
/// coordinating router would have issued.
fn recover_catalog(shared: &Arc<Shared>, dir: &std::path::Path) -> io::Result<()> {
    let recovery = durability::recover(dir)?;
    for record in &recovery.records {
        let line = std::str::from_utf8(&record.payload)
            .map_err(|_| io::Error::other(format!("WAL record {} is not UTF-8", record.seq)))?;
        replay_mutation(shared, line)
            .map_err(|e| io::Error::other(format!("WAL record {} ({line:?}): {e}", record.seq)))?;
    }
    shared
        .staged
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
    shared
        .staged_deltas
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
    // Replay bumped the epoch per mutation from 0; restore the durable
    // counter (compaction collapses history, so it cannot be re-derived).
    shared
        .catalog_epoch
        .store(recovery.last_epoch, Ordering::SeqCst);
    let lines = snapshot_lines(shared)?;
    let wal = durability::compact(dir, &lines, recovery.last_seq, recovery.last_epoch)?;
    *shared.wal.lock().unwrap_or_else(|e| e.into_inner()) = Some(wal);
    Ok(())
}

/// Apply one logged wire line through the ordinary mutation handlers.
fn replay_mutation(shared: &Shared, line: &str) -> Result<(), String> {
    let response = match Request::parse(line)? {
        Request::Load { name, source } => load(shared, &name, source, None),
        Request::Stage { name, csv } => stage(shared, &name, &csv, None),
        Request::Commit { name } => commit(shared, &name, None),
        Request::Abort { name } => abort(shared, &name, None),
        Request::Append { name, rows, staged } => append(shared, &name, &rows, staged, None),
        Request::Delete { name, keys } => delete(shared, &name, &keys, None),
        other => return Err(format!("non-mutation request in WAL: {other}")),
    };
    match response {
        Response::Error { code, message } => Err(format!("replay failed ({code}): {message}")),
        _ => Ok(()),
    }
}

/// Export the committed catalog as one canonical `LOAD … INLINE` wire
/// line per relation (sorted by name, keys decoded through the shared
/// dictionary) — the snapshot format *is* the replay format.
fn snapshot_lines(shared: &Shared) -> io::Result<Vec<String>> {
    let catalog = shared.engine.catalog();
    let mut names = catalog.names();
    names.sort();
    let mut lines = Vec::with_capacity(names.len());
    for name in names {
        let Some(handle) = catalog.get(&name) else {
            continue;
        };
        let csv = ksjq_datagen::relation_to_annotated_csv_with(handle.relation(), "key", |gid| {
            catalog.decode_key(gid)
        })
        .map_err(|e| io::Error::other(format!("cannot snapshot {name:?}: {e}")))?;
        lines.push(
            Request::Load {
                name,
                source: LoadSource::Inline { csv },
            }
            .to_string(),
        );
    }
    Ok(lines)
}

/// Make one applied mutation durable. Called by the mutation handlers at
/// their success point, *while still holding* the `catalog_cells` lock,
/// so WAL order is exactly apply order. `wire` is `None` during replay
/// (and for callers without a durable line); the record is fsynced
/// before this returns, so the caller's `OK` implies durability.
///
/// A log failure after the in-memory apply is reported as `ERR internal`
/// — the mutation is visible but not durable, and the message says so;
/// the client must treat the state as uncertain (like a lost `OK`).
fn log_mutation(shared: &Shared, wire: Option<&str>) -> Result<(), Box<Response>> {
    let Some(line) = wire else {
        return Ok(());
    };
    let mut wal = shared.wal.lock().unwrap_or_else(|e| e.into_inner());
    let Some(wal) = wal.as_mut() else {
        return Ok(());
    };
    let epoch = shared.catalog_epoch.load(Ordering::SeqCst);
    match wal.append(epoch, line.as_bytes()) {
        Ok(_) => {
            shared.wal_records.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        Err(e) => Err(Box::new(Response::err(
            ErrorCode::Internal,
            format!("mutation applied but not durable (WAL append failed: {e})"),
        ))),
    }
}

fn load(shared: &Shared, name: &str, source: LoadSource, wire: Option<&str>) -> Response {
    // The cells budget is checked-and-updated under one lock so two
    // concurrent LOADs cannot both squeeze under it. LOAD is rare; the
    // serialisation is invisible next to CSV parsing or generation.
    let mut cells = shared
        .catalog_cells
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let replaced = shared
        .engine
        .catalog()
        .get(name)
        .map(|h| h.n().saturating_mul(h.schema().d()))
        .unwrap_or(0);
    let catalog = shared.engine.catalog();
    let registered = match source {
        // LOAD is an upsert: a name collision means rebind. The old
        // relation is only dropped once the replacement parsed, so a
        // malformed re-LOAD leaves the previous binding untouched.
        LoadSource::Inline { csv } => match catalog.register_csv(name, &csv) {
            Err(ksjq_relation::Error::DuplicateRelation(_)) => {
                let _ = catalog.deregister(name);
                catalog.register_csv(name, &csv).map_err(|e| e.to_string())
            }
            other => other.map_err(|e| e.to_string()),
        },
        LoadSource::Synthetic(spec) => {
            if spec.n.saturating_mul(spec.d) > MAX_SYNTHETIC_CELLS {
                return Response::err(
                    ErrorCode::Invalid,
                    format!("synthetic relation too large: n·d must stay ≤ {MAX_SYNTHETIC_CELLS}"),
                );
            }
            reencode_keys(catalog, spec.dataset_spec().generate()).and_then(|rel| {
                // Generation already succeeded, so the old binding can
                // go before the new one lands (concurrent LOADs are
                // serialised by the cells lock above).
                let _ = catalog.deregister(name);
                shared.engine.register(name, rel).map_err(|e| e.to_string())
            })
        }
    };
    match registered {
        Ok(handle) => {
            let added = handle.n().saturating_mul(handle.schema().d());
            let budget = shared.config.max_catalog_cells;
            let after = cells.saturating_sub(replaced).saturating_add(added);
            if after > budget {
                // Over budget: take the relation back out. If this LOAD
                // replaced an old relation under the same name, that old
                // relation is gone too — the error says so.
                let _ = shared.engine.catalog().deregister(name);
                *cells = cells.saturating_sub(replaced);
                shared.catalog_epoch.fetch_add(1, Ordering::SeqCst);
                shared.cache.invalidate_relation(name);
                return Response::err(
                    ErrorCode::Invalid,
                    format!(
                        "catalog cell budget exceeded: {after} > {budget} (relation {name:?} not kept)"
                    ),
                );
            }
            *cells = after;
            // Catalog changed under this name: only results whose plans
            // reference it can be stale, so only those are evicted. The
            // versioned chain (if any) is derived from the old binding
            // and rebuilds lazily on the next APPEND.
            drop_live(shared, name);
            shared.catalog_epoch.fetch_add(1, Ordering::SeqCst);
            shared.cache.invalidate_relation(name);
            if let Err(e) = log_mutation(shared, wire) {
                return *e;
            }
            Response::Ok(format!(
                "loaded {name} n={} d={}",
                handle.n(),
                handle.schema().d()
            ))
        }
        Err(message) => Response::err(ErrorCode::Parse, message),
    }
}

/// Re-encode a generated relation's numeric group ids through the
/// catalog's shared key dictionary (as their decimal strings), so every
/// relation the server loads — synthetic or `INLINE` CSV — lives in one
/// group-id domain. Without this, a synthetic relation's generator ids
/// and a CSV relation's dictionary ids could collide numerically and an
/// equality join across them would match unrelated keys by coincidence;
/// with it, such a join correctly matches only equal key *strings*.
/// Re-numbering is a bijection on each relation's keys, so join results
/// against in-process execution are unchanged.
fn reencode_keys(
    catalog: &ksjq_relation::Catalog,
    rel: ksjq_relation::Relation,
) -> ProtoResult<ksjq_relation::Relation> {
    // Memoise per distinct gid (the group count, not the tuple count):
    // one dictionary-lock round and one string allocation per *group*,
    // not per tuple — relations can carry millions of tuples over a
    // handful of groups.
    let mut encoded: HashMap<u64, u64> = HashMap::new();
    let mut b = ksjq_relation::Relation::builder(rel.schema().clone()).with_capacity(rel.n());
    for (t, _) in rel.rows() {
        let gid = rel
            .group_id(t)
            .ok_or("synthetic relations always carry group keys")?;
        let key = *encoded
            .entry(gid)
            .or_insert_with(|| catalog.encode_key(&gid.to_string()));
        b.add_grouped(key, &rel.raw_row(t))
            .map_err(|e| e.to_string())?;
    }
    b.build().map_err(|e| e.to_string())
}

fn prepare(shared: &Shared, id: String, plan: &PlanSpec) -> Response {
    match shared.engine.prepare(&plan.to_plan()) {
        Ok(prepared) => {
            let k = prepared.k();
            shared
                .sessions
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .insert(id.clone(), Session::new(prepared, plan));
            Response::Ok(format!("prepared {id} k={k}"))
        }
        Err(e) => Response::err(ErrorCode::Invalid, e.to_string()),
    }
}

fn lookup(shared: &Shared, id: &str) -> Option<Session> {
    shared
        .sessions
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .get(id)
        .cloned()
}

/// Execute (or cache-serve) a session's query, shaped for the session's
/// protocol version: v1 gets the whole result as one `ROWS` frame, v2
/// gets a streamable [`RunOutput`].
fn run_outcome(
    shared: &Shared,
    version: u32,
    session: &Session,
    deadline: Option<Instant>,
) -> Outcome {
    match run_session(shared, session, deadline) {
        Err(CoreError::DeadlineExceeded) => {
            shared.timeouts.fetch_add(1, Ordering::Relaxed);
            Outcome::Frame(Response::err(
                ErrorCode::Timeout,
                CoreError::DeadlineExceeded.to_string(),
            ))
        }
        Err(e) => Outcome::Frame(Response::err(ErrorCode::Invalid, e.to_string())),
        Ok(run) if version >= 2 => Outcome::Result(run),
        Ok(run) => Outcome::Frame(Response::Rows(RowSet {
            k: run.k,
            micros: run.micros,
            cached: run.cached,
            pairs: run.output.pairs.iter().map(|&(l, r)| (l.0, r.0)).collect(),
        })),
    }
}

fn run_session(
    shared: &Shared,
    session: &Session,
    deadline: Option<Instant>,
) -> CoreResult<RunOutput> {
    if let Some(hit) = shared.cache.get(&session.fingerprint) {
        return Ok(RunOutput {
            k: hit.k,
            micros: 0,
            cached: true,
            result_id: Some(hit.id),
            output: hit.output,
        });
    }
    let k = session.prepared.k();
    let epoch = shared.catalog_epoch.load(Ordering::SeqCst);
    // Roll the `panic=` execution fault: arm an injected panic a few
    // kernel checkpoints into this execution. If it fires, unwinding
    // lands in the worker pool's `catch_unwind` (the firing chaos point
    // disarms itself); if the query finishes first, disarm explicitly so
    // nothing leaks into this worker's next request.
    let armed = {
        let mut stream = shared.exec_faults.lock().unwrap_or_else(|e| e.into_inner());
        match stream.as_mut() {
            Some(s) => {
                if s.roll_panic() {
                    Some(s.panic_after())
                } else {
                    None
                }
            }
            None => None,
        }
    };
    if let Some(points) = armed {
        // Process-wide, not thread-local: the kernels tick their chaos
        // points from scoped worker threads, and the panic unwinds back
        // through the scope join into this worker's `catch_unwind`.
        ksjq_core::arm_panic_after_process(points);
    }
    let started = Instant::now();
    let executed = session.prepared.execute_within(deadline);
    if armed.is_some() {
        ksjq_core::disarm_panic_process();
    }
    let output = executed?;
    let micros = started.elapsed().as_micros() as u64;
    shared
        .dom_tests
        .fetch_add(output.stats.counts.dom_tests, Ordering::Relaxed);
    shared
        .attr_cmps
        .fetch_add(output.stats.counts.attr_cmps, Ordering::Relaxed);
    shared.domgen_us.fetch_add(
        output.stats.phases.dominator_gen.as_micros() as u64,
        Ordering::Relaxed,
    );
    let output = Arc::new(output);
    // Don't cache across a concurrent catalog change: the fingerprint is
    // name-based, and a name may since have been rebound. The re-check
    // *after* the insert closes the window where a LOAD's invalidation
    // lands between our epoch check and our insert — any such LOAD bumped
    // the epoch first, so we observe it here and drop what we inserted.
    let mut result_id = None;
    if shared.catalog_epoch.load(Ordering::SeqCst) == epoch {
        result_id = shared.cache.insert(
            session.fingerprint.clone(),
            output.clone(),
            k,
            session.relations.clone(),
            Some(session.plan.clone()),
        );
        if shared.catalog_epoch.load(Ordering::SeqCst) != epoch {
            for name in &session.relations {
                shared.cache.invalidate_relation(name);
            }
            result_id = None;
        }
    }
    Ok(RunOutput {
        k,
        micros,
        cached: false,
        result_id,
        output,
    })
}

// ---------------------------------------------- distribution handlers

/// `SYNC` / `SYNC <name>`: the catalog-replay primitive a replica pulls
/// at startup. Relations export as annotated CSV through the catalog's
/// key dictionary, so a replica's `register_csv` reconstructs identical
/// schemas, values and (crucially) row order — results are row-index
/// pairs, so row order is correctness, not cosmetics.
fn sync(shared: &Shared, name: Option<&str>) -> Response {
    let catalog = shared.engine.catalog();
    match name {
        None => Response::Catalog {
            epoch: shared.catalog_epoch.load(Ordering::SeqCst),
            names: catalog.names(),
        },
        Some(name) => {
            let Some(handle) = catalog.get(name) else {
                return Response::err(ErrorCode::Invalid, format!("unknown relation {name:?}"));
            };
            match ksjq_datagen::relation_to_annotated_csv_with(handle.relation(), "key", |gid| {
                catalog.decode_key(gid)
            }) {
                Ok(csv) => Response::Relation {
                    name: name.into(),
                    csv,
                },
                Err(e) => {
                    Response::err(ErrorCode::Internal, format!("cannot export {name:?}: {e}"))
                }
            }
        }
    }
}

/// `STAGE <name> INLINE <csv>`: parse and hold, touching no live binding.
/// All the ways a `LOAD` can fail (malformed CSV, bad header annotations,
/// non-numeric cells) fail *here*, which is what lets a router run
/// stage-everywhere / commit-everywhere and guarantee no shard ever
/// drops its old binding for a replacement that another shard rejected.
fn stage(shared: &Shared, name: &str, csv: &str, wire: Option<&str>) -> Response {
    // The cells lock serialises every catalog mutation (even ones that
    // touch no cells) so WAL record order is apply order. Lock order
    // everywhere: catalog_cells → staged/staged_deltas/live → wal.
    let _cells = shared
        .catalog_cells
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let mut staged = shared.staged.lock().unwrap_or_else(|e| e.into_inner());
    if staged.len() >= MAX_STAGED && !staged.contains_key(name) {
        return Response::err(
            ErrorCode::Busy,
            format!("too many staged relations (max {MAX_STAGED}): COMMIT or ABORT some first"),
        );
    }
    match shared.engine.catalog().parse_csv(csv) {
        Ok(rel) => {
            let (n, d) = (rel.n(), rel.schema().d());
            staged.insert(name.into(), rel);
            // Staged data is logged so a later logged COMMIT can replay;
            // anything still staged after replay is cleared (= ABORT).
            if let Err(e) = log_mutation(shared, wire) {
                return *e;
            }
            Response::Ok(format!("staged {name} n={n} d={d}"))
        }
        Err(e) => Response::err(ErrorCode::Parse, e.to_string()),
    }
}

/// `COMMIT <name>`: atomically publish staged data as an upsert. A
/// staged *delta* (from `APPEND … STAGE`) applies through the versioned
/// append path; a staged *relation* (from `STAGE`) replaces the binding.
/// A budget rejection leaves the *old* binding live — unlike a plain
/// over-budget `LOAD`, nothing is lost.
fn commit(shared: &Shared, name: &str, wire: Option<&str>) -> Response {
    // Cells lock first: all catalog mutations serialise here so WAL
    // record order is apply order.
    let mut cells = shared
        .catalog_cells
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if let Some(delta) = shared
        .staged_deltas
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(name)
    {
        return apply_append(shared, name, delta, &mut cells, wire);
    }
    let Some(rel) = shared
        .staged
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(name)
    else {
        return Response::err(ErrorCode::Invalid, format!("nothing staged under {name:?}"));
    };
    let catalog = shared.engine.catalog();
    let replaced = catalog
        .get(name)
        .map(|h| h.n().saturating_mul(h.schema().d()))
        .unwrap_or(0);
    let added = rel.n().saturating_mul(rel.schema().d());
    let budget = shared.config.max_catalog_cells;
    let after = cells.saturating_sub(replaced).saturating_add(added);
    if after > budget {
        return Response::err(
            ErrorCode::Invalid,
            format!(
                "catalog cell budget exceeded: {after} > {budget} (old binding for {name:?} kept)"
            ),
        );
    }
    let (n, d) = (rel.n(), rel.schema().d());
    let _ = catalog.deregister(name);
    match catalog.register(name, rel) {
        Ok(_) => {
            *cells = after;
            drop_live(shared, name);
            shared.catalog_epoch.fetch_add(1, Ordering::SeqCst);
            shared.cache.invalidate_relation(name);
            if let Err(e) = log_mutation(shared, wire) {
                return *e;
            }
            Response::Ok(format!("committed {name} n={n} d={d}"))
        }
        Err(e) => {
            // Unreachable with wire-validated names, but stay consistent:
            // the old binding is gone, so account and invalidate for it.
            *cells = cells.saturating_sub(replaced);
            shared.catalog_epoch.fetch_add(1, Ordering::SeqCst);
            shared.cache.invalidate_relation(name);
            Response::err(ErrorCode::Internal, e.to_string())
        }
    }
}

/// `ABORT <name>`: drop staged data — a staged relation and/or a staged
/// delta. Idempotent — aborting a name with nothing staged still answers
/// `OK`, so a router can blanket-abort.
fn abort(shared: &Shared, name: &str, wire: Option<&str>) -> Response {
    let _cells = shared
        .catalog_cells
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let removed = shared
        .staged
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(name)
        .is_some()
        | shared
            .staged_deltas
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name)
            .is_some();
    if removed {
        // Only aborts that dropped something need a durable record (a
        // logged STAGE must not replay past its abort); no-op aborts
        // would just bloat the log.
        if let Err(e) = log_mutation(shared, wire) {
            return *e;
        }
        Response::Ok(format!("aborted {name}"))
    } else {
        Response::Ok(format!("aborted {name} (nothing was staged)"))
    }
}

/// Forget the versioned chain behind `name` (the binding was replaced
/// wholesale); the next `APPEND` rebuilds it from the new relation.
fn drop_live(shared: &Shared, name: &str) {
    shared
        .live
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(name);
}

/// Parse header-less `APPEND` rows against an existing relation: first
/// cell the join key (encoded through the catalog's shared dictionary),
/// then exactly `d` finite values (raw, pre-normalisation — the same
/// convention as annotated CSV data rows).
fn parse_delta(
    catalog: &ksjq_relation::Catalog,
    d: usize,
    csv: &str,
) -> Result<StagedDelta, String> {
    let mut keys = Vec::new();
    let mut rows = Vec::new();
    for (i, line) in csv.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut cells = line.split(',');
        let key = cells.next().unwrap_or("").trim();
        if key.is_empty() {
            return Err(format!("append row {}: empty join key", i + 1));
        }
        let values: Vec<f64> = cells
            .map(|cell| {
                let v: f64 = cell
                    .trim()
                    .parse()
                    .map_err(|_| format!("append row {}: bad value {cell:?}", i + 1))?;
                if v.is_finite() {
                    Ok(v)
                } else {
                    Err(format!("append row {}: non-finite value {cell:?}", i + 1))
                }
            })
            .collect::<Result<_, String>>()?;
        if values.len() != d {
            return Err(format!(
                "append row {}: {} values, relation arity is {d}",
                i + 1,
                values.len()
            ));
        }
        keys.push(catalog.encode_key(key));
        rows.push(values);
    }
    if rows.is_empty() {
        return Err("APPEND carried no rows".into());
    }
    Ok(StagedDelta { keys, rows })
}

/// `APPEND <name> ROWS <csv>` / `APPEND <name> STAGE <csv>`: extend an
/// existing relation in place. `ROWS` applies immediately; `STAGE` parses
/// and holds the delta for a router-driven `COMMIT`/`ABORT`, so a
/// distributed append is all-shards-or-none just like a distributed load.
fn append(shared: &Shared, name: &str, csv: &str, staged: bool, wire: Option<&str>) -> Response {
    let Some(handle) = shared.engine.catalog().get(name) else {
        return Response::err(
            ErrorCode::Invalid,
            format!("unknown relation {name:?}: APPEND extends an existing relation"),
        );
    };
    let delta = match parse_delta(shared.engine.catalog(), handle.schema().d(), csv) {
        Ok(delta) => delta,
        Err(message) => return Response::err(ErrorCode::Parse, message),
    };
    let mut cells = shared
        .catalog_cells
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if staged {
        let mut deltas = shared
            .staged_deltas
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if deltas.len() >= MAX_STAGED && !deltas.contains_key(name) {
            return Response::err(
                ErrorCode::Busy,
                format!("too many staged deltas (max {MAX_STAGED}): COMMIT or ABORT some first"),
            );
        }
        let rows = delta.rows.len();
        deltas.insert(name.into(), delta);
        if let Err(e) = log_mutation(shared, wire) {
            return *e;
        }
        return Response::Ok(format!("staged delta for {name} +{rows} rows"));
    }
    apply_append(shared, name, delta, &mut cells, wire)
}

/// Apply a parsed delta: derive the next version (sharing unchanged
/// column blocks with the current one), rebind the name, bump the epoch,
/// then walk the result cache *upgrading* entries through the incremental
/// maintainer instead of evicting them.
fn apply_append(
    shared: &Shared,
    name: &str,
    delta: StagedDelta,
    cells: &mut usize,
    wire: Option<&str>,
) -> Response {
    // The caller holds the cells lock (`cells` borrows its guard), so
    // budget check, version derivation, rebind and WAL append are atomic
    // per mutation — serialised with LOAD/COMMIT/DELETE.
    let catalog = shared.engine.catalog();
    let Some(handle) = catalog.get(name) else {
        return Response::err(
            ErrorCode::Invalid,
            format!("unknown relation {name:?}: APPEND extends an existing relation"),
        );
    };
    let old = handle.relation().clone();
    let old_n = old.n();
    let d = old.schema().d();
    if delta.rows.iter().any(|row| row.len() != d) {
        // Possible only for a delta staged against a binding that was
        // since replaced with a different arity.
        return Response::err(
            ErrorCode::Invalid,
            format!("staged delta does not match {name:?} (arity changed since STAGE)"),
        );
    }
    let added = delta.rows.len().saturating_mul(d);
    let budget = shared.config.max_catalog_cells;
    let after = cells.saturating_add(added);
    if after > budget {
        return Response::err(
            ErrorCode::Invalid,
            format!(
                "catalog cell budget exceeded: {after} > {budget} (relation {name:?} unchanged)"
            ),
        );
    }
    // Reuse the live versioned chain while it still derives the bound
    // snapshot; rebuild it after a LOAD/COMMIT replaced the relation.
    let mut live = shared.live.lock().unwrap_or_else(|e| e.into_inner());
    if live
        .get(name)
        .is_none_or(|v| !Arc::ptr_eq(v.snapshot(), &old))
    {
        match VersionedRelation::from_relation(old.clone()) {
            Ok(v) => {
                live.insert(name.to_string(), v);
            }
            Err(e) => {
                return Response::err(ErrorCode::Internal, format!("cannot version {name:?}: {e}"))
            }
        }
    }
    let next = match live
        .get(name)
        .expect("chain ensured above")
        .append(&delta.keys, &delta.rows)
    {
        Ok(next) => next,
        Err(e) => return Response::err(ErrorCode::Invalid, e.to_string()),
    };
    let snapshot = next.snapshot().clone();
    live.insert(name.to_string(), next);
    drop(live);
    // Snapshot the upgrade candidates BEFORE publishing the new binding:
    // anything cached now was computed at the old epoch (the maintainer's
    // precondition). An entry some concurrent EXECUTE inserts after this
    // point either re-checks the epoch and self-evicts (old-catalog
    // result) or is already correct (new-catalog result) — in both cases
    // it must not be maintained, and it is not in this snapshot.
    let candidates = shared.cache.entries_for_relation(name);
    let _ = catalog.deregister(name);
    if let Err(e) = catalog.register_arc(name, snapshot.clone()) {
        // Unreachable with wire-validated names, but stay consistent:
        // the old binding is gone, so account and invalidate for it.
        *cells = cells.saturating_sub(old_n.saturating_mul(d));
        shared.catalog_epoch.fetch_add(1, Ordering::SeqCst);
        shared.cache.invalidate_relation(name);
        return Response::err(ErrorCode::Internal, e.to_string());
    }
    *cells = after;
    let epoch = shared.catalog_epoch.fetch_add(1, Ordering::SeqCst) + 1;
    if let Err(e) = log_mutation(shared, wire) {
        return *e;
    }
    shared
        .delta_rows
        .fetch_add(delta.rows.len() as u64, Ordering::Relaxed);
    let mut upgraded = 0u64;
    let mut dropped = 0u64;
    for candidate in candidates {
        if maintain_entry(shared, name, old_n, &candidate) {
            upgraded += 1;
        } else {
            shared.cache.remove(&candidate.key);
            dropped += 1;
        }
    }
    shared
        .delta_maintained
        .fetch_add(upgraded, Ordering::Relaxed);
    Response::Ok(format!(
        "appended {name} +{} rows n={} epoch={epoch} maintained={upgraded} invalidated={dropped}",
        delta.rows.len(),
        snapshot.n()
    ))
}

/// Try to carry one cached entry across an append via
/// [`ksjq_core::maintain_append`]. `true` means the entry now serves the
/// new epoch; `false` means the caller must drop it. Only `Exact` and
/// `SkylineJoin` goals are upgradable: a find-k plan may settle on a
/// *different* k at the new epoch, and under `SkylineJoin` the cached k
/// (= joined arity) cannot change under an append.
fn maintain_entry(
    shared: &Shared,
    name: &str,
    old_n: usize,
    candidate: &crate::cache::UpgradeCandidate,
) -> bool {
    let Some(plan) = &candidate.plan else {
        return false;
    };
    match plan.goal {
        Goal::Exact(_) | Goal::SkylineJoin => {}
        _ => return false,
    }
    let catalog = shared.engine.catalog();
    let (Some(l), Some(r)) = (catalog.get(&plan.left), catalog.get(&plan.right)) else {
        return false;
    };
    let Ok(cx) = ksjq_join::JoinContext::from_arcs(
        l.relation().clone(),
        r.relation().clone(),
        ksjq_join::JoinSpec::Equality,
        &plan.aggs,
    ) else {
        return false;
    };
    if !ksjq_core::can_maintain(&cx) {
        return false;
    }
    // The appended relation's old cardinality; an unchanged side's "old"
    // count is its current one. A self-join appends on both legs.
    let old_left_n = if plan.left == name {
        old_n
    } else {
        cx.left().n()
    };
    let old_right_n = if plan.right == name {
        old_n
    } else {
        cx.right().n()
    };
    let Ok((output, stats)) =
        ksjq_core::maintain_append(&cx, candidate.k, &candidate.output, old_left_n, old_right_n)
    else {
        return false;
    };
    shared
        .dom_tests
        .fetch_add(stats.counters.dom_tests, Ordering::Relaxed);
    shared
        .attr_cmps
        .fetch_add(stats.counters.attr_cmps, Ordering::Relaxed);
    shared
        .cache
        .upgrade(&candidate.key, candidate.id, Arc::new(output))
        .is_some()
}

/// `DELETE <name> KEYS <k1,k2,…>`: drop every row carrying one of the
/// listed join keys, rewriting only the column blocks that contain them.
/// Deletions shift surviving tuple ids, so cached (positional) results
/// cannot be maintained — entries referencing the relation are evicted
/// and recompute on next use.
fn delete(shared: &Shared, name: &str, keys: &[String], wire: Option<&str>) -> Response {
    let mut cells = shared
        .catalog_cells
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let catalog = shared.engine.catalog();
    let Some(handle) = catalog.get(name) else {
        return Response::err(ErrorCode::Invalid, format!("unknown relation {name:?}"));
    };
    let old = handle.relation().clone();
    let d = old.schema().d();
    let mut live = shared.live.lock().unwrap_or_else(|e| e.into_inner());
    if live
        .get(name)
        .is_none_or(|v| !Arc::ptr_eq(v.snapshot(), &old))
    {
        match VersionedRelation::from_relation(old.clone()) {
            Ok(v) => {
                live.insert(name.to_string(), v);
            }
            Err(e) => {
                return Response::err(ErrorCode::Internal, format!("cannot version {name:?}: {e}"))
            }
        }
    }
    let mut removed_total = 0usize;
    for key in keys {
        let gid = catalog.encode_key(key);
        let (next, removed) = match live.get(name).expect("chain ensured above").delete_key(gid) {
            Ok(result) => result,
            Err(e) => return Response::err(ErrorCode::Invalid, e.to_string()),
        };
        removed_total += removed;
        live.insert(name.to_string(), next);
    }
    let snapshot = live
        .get(name)
        .expect("chain ensured above")
        .snapshot()
        .clone();
    drop(live);
    let _ = catalog.deregister(name);
    if let Err(e) = catalog.register_arc(name, snapshot.clone()) {
        *cells = cells.saturating_sub(old.n().saturating_mul(d));
        shared.catalog_epoch.fetch_add(1, Ordering::SeqCst);
        shared.cache.invalidate_relation(name);
        return Response::err(ErrorCode::Internal, e.to_string());
    }
    *cells = cells.saturating_sub(removed_total.saturating_mul(d));
    let epoch = shared.catalog_epoch.fetch_add(1, Ordering::SeqCst) + 1;
    shared.cache.invalidate_relation(name);
    if let Err(e) = log_mutation(shared, wire) {
        return *e;
    }
    Response::Ok(format!(
        "deleted {removed_total} rows from {name} n={} epoch={epoch}",
        snapshot.n()
    ))
}

/// Resolve both relations and build an equality-join context for the
/// `FETCH` / `CHECK` primitives.
fn join_context(
    shared: &Shared,
    left: &str,
    right: &str,
    aggs: &[ksjq_join::AggFunc],
) -> Result<ksjq_join::JoinContext<'static>, String> {
    let catalog = shared.engine.catalog();
    let l = catalog
        .get(left)
        .ok_or_else(|| format!("unknown relation {left:?}"))?;
    let r = catalog
        .get(right)
        .ok_or_else(|| format!("unknown relation {right:?}"))?;
    ksjq_join::JoinContext::from_arcs(
        l.relation().clone(),
        r.relation().clone(),
        ksjq_join::JoinSpec::Equality,
        aggs,
    )
    .map_err(|e| e.to_string())
}

/// `FETCH`: materialise requested joined rows (internal normalised form)
/// so a router can ship a candidate's values to shards that do not hold
/// the candidate.
fn fetch(
    shared: &Shared,
    left: &str,
    right: &str,
    aggs: &[ksjq_join::AggFunc],
    pairs: &[(u32, u32)],
) -> Response {
    let cx = match join_context(shared, left, right, aggs) {
        Ok(cx) => cx,
        Err(msg) => return Response::err(ErrorCode::Invalid, msg),
    };
    let (ln, rn) = (cx.left().n(), cx.right().n());
    let mut rows = Vec::with_capacity(pairs.len());
    for &(u, v) in pairs {
        if u as usize >= ln || v as usize >= rn {
            return Response::err(
                ErrorCode::Invalid,
                format!("pair {u}:{v} out of range (|left| = {ln}, |right| = {rn})"),
            );
        }
        if !cx.compatible(u, v) {
            return Response::err(
                ErrorCode::Invalid,
                format!("pair {u}:{v} does not satisfy the join"),
            );
        }
        rows.push(cx.joined_row(u, v));
    }
    Response::Vals(rows)
}

/// `CHECK`: for each probe row, scan *this* shard's joined tuples for a
/// k-dominator. Soundness of the target filter for external probes: any
/// joined tuple `u ⋈ v` k-dominating the probe has, by attribute
/// counting, at least `k − l2 − a` left-local positions `≤` the probe's,
/// so its left leg survives [`ksjq_core::target_set_for_values`] and the
/// split-side scan finds the pair. Probes equal to a resident row are
/// safe: equal rows never k-dominate (a strict position is required).
fn check(
    shared: &Shared,
    left: &str,
    right: &str,
    aggs: &[ksjq_join::AggFunc],
    k: usize,
    rows: &[Vec<f64>],
) -> Response {
    let cx = match join_context(shared, left, right, aggs) {
        Ok(cx) => cx,
        Err(msg) => return Response::err(ErrorCode::Invalid, msg),
    };
    let params = match ksjq_core::validate_k(&cx, k) {
        Ok(params) => params,
        Err(e) => return Response::err(ErrorCode::Invalid, e.to_string()),
    };
    let locals = cx.left_local_attrs().to_vec();
    let mut checker = ksjq_core::ColumnarCheck::new(&cx, k);
    let mut scratch = ksjq_core::TargetScratch::default();
    let mut bits = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != cx.d_joined() {
            return Response::err(
                ErrorCode::Invalid,
                format!(
                    "probe row has {} values, joined arity is {}",
                    row.len(),
                    cx.d_joined()
                ),
            );
        }
        let targets = ksjq_core::target_set_for_values(
            cx.left(),
            &locals,
            &row[..cx.l1()],
            params.k1_pp,
            &mut scratch,
        );
        bits.push(checker.dominated_via_left(&targets, row));
    }
    let counters = checker.counters();
    shared
        .dom_tests
        .fetch_add(counters.dom_tests, Ordering::Relaxed);
    shared
        .attr_cmps
        .fetch_add(counters.attr_cmps, Ordering::Relaxed);
    Response::Checked(bits)
}

fn explain(shared: &Shared, id: &str) -> Response {
    match lookup(shared, id) {
        Some(session) => Response::Explain(session.prepared.explain().compact()),
        None => Response::err(
            ErrorCode::Invalid,
            format!("unknown query id {id:?}: PREPARE it first"),
        ),
    }
}

fn stats(shared: &Shared) -> ServerStats {
    let counters = shared.cache.counters();
    ServerStats {
        connections: shared.connections.load(Ordering::Relaxed),
        requests: shared.requests.load(Ordering::Relaxed),
        errors: shared.errors.load(Ordering::Relaxed),
        sessions: shared
            .sessions
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .len() as u64,
        relations: shared.engine.catalog().len() as u64,
        cache_hits: counters.hits(),
        cache_misses: counters.misses(),
        cache_evictions: counters.evictions(),
        cache_len: shared.cache.len() as u64,
        workers: shared.config.workers as u64,
        dom_tests: shared.dom_tests.load(Ordering::Relaxed),
        attr_cmps: shared.attr_cmps.load(Ordering::Relaxed),
        domgen_us: shared.domgen_us.load(Ordering::Relaxed),
        shed: shared.shed.load(Ordering::Relaxed),
        reaped: shared.reaped.load(Ordering::Relaxed),
        peak_buf: shared.peak_buf.load(Ordering::Relaxed),
        // Fan-out counters belong to a router front end; a plain server
        // reports zeros so STATS stays one uniform frame either way.
        fanout_queries: 0,
        merge_us: 0,
        shard_retries: 0,
        shard_errors: 0,
        catalog_epoch: shared.catalog_epoch.load(Ordering::SeqCst),
        delta_maintained: shared.delta_maintained.load(Ordering::Relaxed),
        delta_rows: shared.delta_rows.load(Ordering::Relaxed),
        timeouts: shared.timeouts.load(Ordering::Relaxed),
        wal_records: shared.wal_records.load(Ordering::Relaxed),
        wal_segments: shared.wal_segments.load(Ordering::Relaxed),
        panics: shared.panics.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MAX_ROWS_FRAME_BYTES;

    #[test]
    fn worst_case_v2_stream_holds_one_chunk() {
        // A chunk frame can never exceed MAX_ROWS_FRAME_BYTES (pinned in
        // protocol.rs); here, pin that chunk_response emits exactly the
        // ROWS_PER_CHUNK split the constant was sized for.
        let pairs: Vec<_> = (0..(ROWS_PER_CHUNK as u32 * 2 + 5))
            .map(|i| (ksjq_relation::TupleId(i), ksjq_relation::TupleId(i)))
            .collect();
        let run = RunOutput {
            k: 3,
            micros: 42,
            cached: false,
            result_id: Some(9),
            output: Arc::new(KsjqOutput {
                pairs,
                stats: Default::default(),
            }),
        };
        let parts = run.output.chunk_count(ROWS_PER_CHUNK);
        assert_eq!(parts, 3);
        let mut reassembled = Vec::new();
        for index in 0..parts {
            let response = chunk_response(&run, index, parts);
            let line = response.to_string();
            assert!(line.len() < MAX_ROWS_FRAME_BYTES, "{}", line.len());
            let Response::Chunk(chunk) = Response::parse(&line).expect("round-trips") else {
                panic!("not a chunk");
            };
            assert_eq!(chunk.part as usize, index + 1);
            assert_eq!(chunk.parts as usize, parts);
            assert_eq!(chunk.total, run.output.len());
            // Cursor on every non-final frame, pointing at the next part.
            if index + 1 < parts {
                assert_eq!(
                    chunk.cursor,
                    Some(Cursor {
                        result: 9,
                        part: index as u32 + 2
                    })
                );
            } else {
                assert_eq!(chunk.cursor, None);
            }
            reassembled.extend(chunk.pairs);
        }
        let original: Vec<_> = run.output.pairs.iter().map(|&(l, r)| (l.0, r.0)).collect();
        assert_eq!(reassembled, original);
    }

    #[test]
    fn more_rejects_v1_and_dead_cursors() {
        let shared = Shared {
            engine: Engine::new(),
            sessions: RwLock::new(HashMap::new()),
            cache: ResultCache::new(4),
            catalog_cells: Mutex::new(0),
            staged: Mutex::new(HashMap::new()),
            staged_deltas: Mutex::new(HashMap::new()),
            live: Mutex::new(HashMap::new()),
            wal: Mutex::new(None),
            recovering: AtomicBool::new(false),
            config: ServerConfig::default(),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            dom_tests: AtomicU64::new(0),
            attr_cmps: AtomicU64::new(0),
            domgen_us: AtomicU64::new(0),
            catalog_epoch: AtomicU64::new(0),
            delta_maintained: AtomicU64::new(0),
            delta_rows: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
            peak_buf: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            wal_records: AtomicU64::new(0),
            wal_segments: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            exec_faults: Mutex::new(None),
            shutdown: AtomicBool::new(false),
        };
        let cursor = Cursor { result: 1, part: 1 };
        assert!(matches!(more(&shared, 1, cursor), Response::Error { .. }));
        assert!(matches!(more(&shared, 2, cursor), Response::Error { .. }));
        let id = shared
            .cache
            .insert(
                "fp".into(),
                Arc::new(KsjqOutput {
                    pairs: vec![(ksjq_relation::TupleId(1), ksjq_relation::TupleId(2))],
                    stats: Default::default(),
                }),
                5,
                vec!["r".into()],
                None,
            )
            .expect("cache enabled");
        let ok = more(
            &shared,
            2,
            Cursor {
                result: id,
                part: 1,
            },
        );
        let Response::Chunk(chunk) = ok else {
            panic!("expected a chunk, got {ok}");
        };
        assert_eq!((chunk.k, chunk.part, chunk.parts), (5, 1, 1));
        assert!(chunk.cached && chunk.cursor.is_none());
        // Past-the-end part on a live result.
        assert!(matches!(
            more(
                &shared,
                2,
                Cursor {
                    result: id,
                    part: 7
                }
            ),
            Response::Error { .. }
        ));
    }
}
