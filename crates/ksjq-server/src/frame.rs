//! Incremental request-frame reassembly for the poll-loop front end.
//!
//! A readiness-polled connection delivers bytes in arbitrary slices — a
//! request line may arrive one byte at a time or glued to its neighbours.
//! [`FrameBuffer`] is the per-connection state machine that turns that
//! stream back into frames: bytes go in via [`push`](FrameBuffer::push),
//! complete lines come out of [`next_frame`](FrameBuffer::next_frame),
//! and a line that grows past [`MAX_LINE_BYTES`] flips the buffer into
//! *discard mode* — the flood is dropped as it arrives (never buffered)
//! and a single [`Frame::Oversized`] marker is emitted once its
//! terminating newline shows up, so the connection resynchronises on the
//! next line.
//!
//! The fuzz suite feeds identical sessions split at every byte boundary
//! and asserts the frame sequence never changes — the property the
//! poll-loop server builds on.

use crate::protocol::MAX_LINE_BYTES;

/// One reassembled request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete line, newline (and any trailing `\r`) stripped, decoded
    /// lossily from UTF-8 (invalid bytes become U+FFFD and are rejected
    /// later by `Request::parse`).
    Line(String),
    /// A line exceeded [`MAX_LINE_BYTES`]; its bytes were discarded and
    /// the stream is resynchronised after its newline.
    Oversized,
}

/// Incremental line assembler with bounded buffering.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Bytes [0, parsed) of `buf` have been consumed as frames.
    parsed: usize,
    /// In discard mode: dropping bytes until the next newline.
    discarding: bool,
    /// A discarded flood just ended; emit one `Frame::Oversized` marker
    /// before any line that followed it.
    pending_oversized: bool,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Append freshly read bytes. In discard mode the flood is consumed
    /// immediately, so buffered bytes never exceed `MAX_LINE_BYTES + 1`
    /// regardless of what a peer sends.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.discarding {
            // Everything up to (and including) the resynchronising
            // newline is dropped (no newline: still flooding, drop it
            // all); the marker is emitted by next_frame.
            if let Some(nl) = bytes.iter().position(|&b| b == b'\n') {
                self.discarding = false;
                self.pending_oversized = true;
                self.buf.extend_from_slice(&bytes[nl + 1..]);
            }
            self.spill();
            return;
        }
        self.buf.extend_from_slice(bytes);
        self.spill();
    }

    /// If the unparsed tail grew past the line cap without a newline,
    /// switch to discard mode and drop it.
    fn spill(&mut self) {
        self.compact();
        if !self.discarding && self.buf.len() > MAX_LINE_BYTES && !self.buf.contains(&b'\n') {
            self.buf.clear();
            self.discarding = true;
        }
    }

    /// Drop the already-parsed prefix so the buffer only holds the tail.
    fn compact(&mut self) {
        if self.parsed > 0 {
            self.buf.drain(..self.parsed);
            self.parsed = 0;
        }
    }

    /// The next complete frame, if any bytes form one.
    pub fn next_frame(&mut self) -> Option<Frame> {
        if self.pending_oversized {
            self.pending_oversized = false;
            return Some(Frame::Oversized);
        }
        let tail = &self.buf[self.parsed..];
        let nl = tail.iter().position(|&b| b == b'\n')?;
        let line = &tail[..nl];
        self.parsed += nl + 1;
        if line.len() > MAX_LINE_BYTES {
            self.compact();
            return Some(Frame::Oversized);
        }
        let mut line = String::from_utf8_lossy(line).into_owned();
        while line.ends_with('\r') {
            line.pop();
        }
        let frame = Frame::Line(line);
        self.compact();
        Some(frame)
    }

    /// Is a partial line sitting in the buffer (or an oversized flood in
    /// progress)? Distinguishes "stalled mid-frame" from "idle between
    /// requests" for the reaping deadlines.
    pub fn has_partial(&self) -> bool {
        self.discarding || self.parsed < self.buf.len()
    }

    /// Bytes currently buffered (discard-mode floods count as zero: they
    /// are dropped on arrival).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.parsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed `bytes` in one call and collect every frame.
    fn frames_of(bytes: &[u8]) -> Vec<Frame> {
        let mut fb = FrameBuffer::new();
        fb.push(bytes);
        let mut frames = Vec::new();
        while let Some(frame) = fb.next_frame() {
            frames.push(frame);
        }
        frames
    }

    #[test]
    fn whole_lines_come_back_out() {
        let frames = frames_of(b"HELLO 2\r\nSTATS\nCLOSE\n");
        assert_eq!(
            frames,
            vec![
                Frame::Line("HELLO 2".into()),
                Frame::Line("STATS".into()),
                Frame::Line("CLOSE".into()),
            ]
        );
    }

    #[test]
    fn partial_lines_wait_for_their_newline() {
        let mut fb = FrameBuffer::new();
        fb.push(b"STA");
        assert_eq!(fb.next_frame(), None);
        assert!(fb.has_partial());
        fb.push(b"TS\nCLO");
        assert_eq!(fb.next_frame(), Some(Frame::Line("STATS".into())));
        assert_eq!(fb.next_frame(), None);
        assert!(fb.has_partial());
        fb.push(b"SE\n");
        assert_eq!(fb.next_frame(), Some(Frame::Line("CLOSE".into())));
        assert!(!fb.has_partial());
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn oversized_lines_are_discarded_not_buffered() {
        let mut fb = FrameBuffer::new();
        // Flood in 64 KiB slabs: buffered bytes must never exceed the cap.
        let slab = vec![b'x'; 64 * 1024];
        for _ in 0..2 * (MAX_LINE_BYTES / slab.len()) {
            fb.push(&slab);
            assert!(fb.buffered() <= MAX_LINE_BYTES + 1, "{}", fb.buffered());
        }
        assert!(fb.has_partial(), "mid-flood counts as mid-frame");
        assert_eq!(fb.next_frame(), None, "no marker before resync");
        fb.push(b"tail\nSTATS\n");
        assert_eq!(fb.next_frame(), Some(Frame::Oversized));
        assert_eq!(fb.next_frame(), Some(Frame::Line("STATS".into())));
        assert_eq!(fb.next_frame(), None);
    }

    #[test]
    fn oversized_line_in_one_push_is_flagged() {
        // A single push holding an oversized line *and* its newline: the
        // line is complete, so it is flagged without entering discard mode.
        let mut bytes = vec![b'y'; MAX_LINE_BYTES + 10];
        bytes.push(b'\n');
        bytes.extend_from_slice(b"CLOSE\n");
        assert_eq!(
            frames_of(&bytes),
            vec![Frame::Oversized, Frame::Line("CLOSE".into())]
        );
    }

    #[test]
    fn invalid_utf8_is_lossily_decoded() {
        let frames = frames_of(&[0xff, 0xfe, b'\n']);
        match &frames[..] {
            [Frame::Line(line)] => assert!(line.contains('\u{fffd}')),
            other => panic!("{other:?}"),
        }
    }

    /// The reassembly invariant: a byte stream split at *every* boundary
    /// yields exactly the frames of the unsplit stream.
    #[test]
    fn every_split_point_reassembles_identically() {
        let session: &[u8] = b"HELLO 2\nLOAD t INLINE city,cost;C,448;D,456\n\
            QUERY t JOIN t K 1\nMORE 7:2\nSTATS\r\nCLOSE\n";
        let expected = frames_of(session);
        assert_eq!(expected.len(), 6);
        for split in 0..=session.len() {
            let mut fb = FrameBuffer::new();
            let mut frames = Vec::new();
            for part in [&session[..split], &session[split..]] {
                fb.push(part);
                while let Some(frame) = fb.next_frame() {
                    frames.push(frame);
                }
            }
            assert_eq!(frames, expected, "split at byte {split}");
        }
        // And byte-at-a-time, the most adversarial schedule.
        let mut fb = FrameBuffer::new();
        let mut frames = Vec::new();
        for byte in session {
            fb.push(std::slice::from_ref(byte));
            while let Some(frame) = fb.next_frame() {
                frames.push(frame);
            }
        }
        assert_eq!(frames, expected, "byte-at-a-time");
    }

    /// Same property with an oversized line in the middle of the session.
    #[test]
    fn split_oversized_sessions_reassemble_identically() {
        let mut session = b"STATS\n".to_vec();
        session.extend(std::iter::repeat_n(b'z', MAX_LINE_BYTES + 100));
        session.extend_from_slice(b"\nCLOSE\n");
        let expected = vec![
            Frame::Line("STATS".into()),
            Frame::Oversized,
            Frame::Line("CLOSE".into()),
        ];
        // Splitting a megabyte session at every byte is O(n²); step through
        // a coarse grid plus the interesting region around the cap.
        let mut splits: Vec<usize> = (0..=session.len()).step_by(65_536).collect();
        splits.extend((MAX_LINE_BYTES - 2)..(MAX_LINE_BYTES + 12));
        splits.push(session.len());
        for split in splits {
            let split = split.min(session.len());
            let mut fb = FrameBuffer::new();
            let mut frames = Vec::new();
            for part in [&session[..split], &session[split..]] {
                fb.push(part);
                while let Some(frame) = fb.next_frame() {
                    frames.push(frame);
                }
            }
            assert_eq!(frames, expected, "split at byte {split}");
        }
    }
}
