//! SS / SN / NN classification of base relations (paper Sec. 5.2).
//!
//! For each base tuple, with respect to `k′`-dominance:
//!
//! * [`Category::SS`] — not k′-dominated by *any* tuple of its relation
//!   (Def. 1: a k′-dominant skyline tuple overall);
//! * [`Category::SN`] — k′-dominated somewhere, but not by any tuple that
//!   *covers* it (Def. 2: a k′-dominant skyline of its join group only);
//! * [`Category::NN`] — k′-dominated by a coverer (Def. 3).
//!
//! "Coverers" generalise the paper's join groups uniformly across join
//! kinds: same-key tuples for equality joins, the key-order prefix/suffix
//! of Sec. 6.6 for theta joins, and the whole relation for Cartesian
//! products (which is why no tuple is ever `SN` there — exactly the
//! Sec. 6.5 special case).

use crate::params::KsjqParams;
use ksjq_join::{JoinContext, JoinSpec};
use ksjq_relation::Relation;
use ksjq_skyline::{k_dominant_skyline, k_dominated_by_any, KdomAlgo};

/// Classification of one tuple (paper Defs. 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// k′-dominant skyline of the whole relation.
    SS,
    /// k′-dominant skyline of its group only.
    SN,
    /// k′-dominated within its own group.
    NN,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::SS => write!(f, "SS"),
            Category::SN => write!(f, "SN"),
            Category::NN => write!(f, "NN"),
        }
    }
}

/// The classification of both base relations for one `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// Per-tuple category of the left relation, indexed by tuple id.
    pub left: Vec<Category>,
    /// Per-tuple category of the right relation, indexed by tuple id.
    pub right: Vec<Category>,
    /// The parameters the classification was computed under.
    pub params: KsjqParams,
}

impl Classification {
    /// `(SS, SN, NN)` tallies of one side (0 = left, 1 = right).
    pub fn tallies(&self, side: usize) -> (usize, usize, usize) {
        let v = if side == 0 { &self.left } else { &self.right };
        let mut t = (0, 0, 0);
        for c in v {
            match c {
                Category::SS => t.0 += 1,
                Category::SN => t.1 += 1,
                Category::NN => t.2 += 1,
            }
        }
        t
    }
}

fn classify_side<'c>(
    rel: &Relation,
    k_prime: usize,
    kdom: KdomAlgo,
    threads: usize,
    coverers: impl Fn(u32) -> CovererSet<'c> + Sync,
) -> Vec<Category> {
    let n = rel.n();
    let all: Vec<u32> = (0..n as u32).collect();
    // SS = the global k′-dominant skyline (Def. 1). The scan algorithms
    // are inherently sequential; only the per-tuple refinement below
    // shards.
    let global = k_dominant_skyline(rel, &all, k_prime, kdom);
    let mut out = vec![Category::NN; n];
    for &t in &global {
        out[t as usize] = Category::SS;
    }
    // Non-SS tuples: SN iff no coverer k′-dominates them. Each tuple's
    // test is independent, so with `threads > 1` the id range shards over
    // scoped workers exactly like parallel verification; indexed writes
    // into disjoint slices preserve the output order bit-for-bit.
    let refine = |lo: usize, out: &mut [Category]| {
        for (i, slot) in out.iter_mut().enumerate() {
            if *slot == Category::SS {
                continue;
            }
            let t = (lo + i) as u32;
            let row = rel.row_at(t as usize);
            let dominated_in_group = match coverers(t) {
                CovererSet::Slice(s) => k_dominated_by_any(rel, row, s, k_prime, t),
                // Whole relation: t is non-SS, so it *is* dominated globally.
                CovererSet::All => true,
            };
            if !dominated_in_group {
                *slot = Category::SN;
            }
        }
    };
    let threads = threads.min(n).max(1);
    if threads == 1 {
        refine(0, &mut out);
    } else {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (c, slice) in out.chunks_mut(chunk).enumerate() {
                let refine = &refine;
                scope.spawn(move || refine(c * chunk, slice));
            }
        });
    }
    out
}

enum CovererSet<'a> {
    Slice(&'a [u32]),
    All,
}

/// Classify both base relations of `cx` under `params`.
///
/// This is the paper's `Group` routine (Algorithms 2 and 3, lines 3–4);
/// its cost is the "grouping time" component of the figures.
pub fn classify(cx: &JoinContext<'_>, params: &KsjqParams, kdom: KdomAlgo) -> Classification {
    classify_parallel(cx, params, kdom, 1)
}

/// [`classify`] with the per-tuple SN/NN refinement sharded over
/// `threads` scoped workers. The categorisation is identical to the
/// serial routine — same output vector, same order — because every
/// tuple's test reads only immutable relation data.
pub fn classify_parallel(
    cx: &JoinContext<'_>,
    params: &KsjqParams,
    kdom: KdomAlgo,
    threads: usize,
) -> Classification {
    let left = classify_side(cx.left(), params.k1_prime, kdom, threads, |t| {
        match cx.spec() {
            JoinSpec::Cartesian => CovererSet::All,
            _ => CovererSet::Slice(cx.left_coverers(t)),
        }
    });
    let right = classify_side(cx.right(), params.k2_prime, kdom, threads, |t| {
        match cx.spec() {
            JoinSpec::Cartesian => CovererSet::All,
            _ => CovererSet::Slice(cx.right_coverers(t)),
        }
    });
    Classification {
        left,
        right,
        params: *params,
    }
}

/// Count join-compatible pairs per fate class: `(yes, likely, maybe)`
/// (Table 5: `SS⋈SS`, `SS⋈SN ∪ SN⋈SS`, `SN⋈SN`). Pairs with an `NN`
/// component are pruned and not counted.
pub fn pair_counts(cx: &JoinContext<'_>, cls: &Classification) -> (usize, usize, usize) {
    let (mut yes, mut likely, mut maybe) = (0usize, 0usize, 0usize);
    for u in 0..cls.left.len() as u32 {
        let cu = cls.left[u as usize];
        if cu == Category::NN {
            continue;
        }
        for &v in cx.right_partners(u) {
            match (cu, cls.right[v as usize]) {
                (Category::SS, Category::SS) => yes += 1,
                (Category::SS, Category::SN) | (Category::SN, Category::SS) => likely += 1,
                (Category::SN, Category::SN) => maybe += 1,
                _ => {}
            }
        }
    }
    (yes, likely, maybe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::validate_k;
    use ksjq_join::JoinSpec;
    use ksjq_relation::{Relation, Schema};

    fn rel(groups: &[u64], rows: &[Vec<f64>]) -> Relation {
        Relation::from_grouped_rows(Schema::uniform(rows[0].len()).unwrap(), groups, rows).unwrap()
    }

    /// Two groups; group 0 has a dominator pair, group 1 an isolated tuple
    /// dominated only across groups.
    #[test]
    fn three_way_classification() {
        let r1 = rel(
            &[0, 0, 1],
            &[
                vec![1.0, 1.0], // SS: dominates everything
                vec![2.0, 2.0], // NN: dominated by tuple 0 in its own group
                vec![3.0, 3.0], // SN: dominated by 0, but alone in group 1
            ],
        );
        let r2 = rel(&[0, 1], &[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let p = validate_k(&cx, 3).unwrap(); // k′1 = k − l2 = 1… wait d=2 each
        assert_eq!(p.k1_prime, 1);
        let cls = classify(&cx, &p, KdomAlgo::Naive);
        // k′ = 1: tuple 0 1-dominates 1 and 2; nothing dominates 0.
        assert_eq!(cls.left, vec![Category::SS, Category::NN, Category::SN]);
        assert_eq!(cls.tallies(0), (1, 1, 1));
    }

    #[test]
    fn cartesian_has_no_sn() {
        let mk = |rows: &[Vec<f64>]| {
            let mut b = Relation::builder(Schema::uniform(2).unwrap());
            for r in rows {
                b.add(r).unwrap();
            }
            b.build().unwrap()
        };
        let r1 = mk(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![0.5, 3.0]]);
        let r2 = mk(&[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Cartesian, &[]).unwrap();
        let p = validate_k(&cx, 3).unwrap();
        let cls = classify(&cx, &p, KdomAlgo::Tsa);
        assert!(!cls.left.contains(&Category::SN), "{:?}", cls.left);
        assert!(!cls.right.contains(&Category::SN));
    }

    #[test]
    fn all_kdom_algorithms_agree() {
        let mut state = 77u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let n = 80;
        let groups: Vec<u64> = (0..n).map(|_| next(5)).collect();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| next(12) as f64).collect())
            .collect();
        let r1 = rel(&groups, &rows);
        let groups2: Vec<u64> = (0..n).map(|_| next(5)).collect();
        let rows2: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| next(12) as f64).collect())
            .collect();
        let r2 = rel(&groups2, &rows2);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        for k in 4..=6 {
            let p = validate_k(&cx, k).unwrap();
            let a = classify(&cx, &p, KdomAlgo::Naive);
            let b = classify(&cx, &p, KdomAlgo::Osa);
            let c = classify(&cx, &p, KdomAlgo::Tsa);
            assert_eq!(a, b, "k={k}");
            assert_eq!(a, c, "k={k}");
        }
    }

    #[test]
    fn parallel_classification_matches_serial() {
        let mut state = 321u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let n = 97; // deliberately not a multiple of any worker count
        let mk = |next: &mut dyn FnMut(u64) -> u64| {
            let g: Vec<u64> = (0..n).map(|_| next(6)).collect();
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..4).map(|_| next(10) as f64).collect())
                .collect();
            rel(&g, &rows)
        };
        let r1 = mk(&mut next);
        let r2 = mk(&mut next);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        for k in 5..=8 {
            let p = validate_k(&cx, k).unwrap();
            let serial = classify(&cx, &p, KdomAlgo::Tsa);
            for threads in [2usize, 3, 7, 200] {
                let parallel = classify_parallel(&cx, &p, KdomAlgo::Tsa, threads);
                assert_eq!(serial, parallel, "k={k} threads={threads}");
            }
        }
    }

    #[test]
    fn pair_counts_match_enumeration() {
        let r1 = rel(
            &[0, 0, 1],
            &[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]],
        );
        let r2 = rel(
            &[0, 1, 1],
            &[vec![1.0, 1.0], vec![2.0, 2.0], vec![0.0, 0.0]],
        );
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let p = validate_k(&cx, 3).unwrap();
        let cls = classify(&cx, &p, KdomAlgo::Naive);
        let (yes, likely, maybe) = pair_counts(&cx, &cls);
        // Exhaustive recount.
        let (mut ey, mut el, mut em) = (0, 0, 0);
        cx.for_each_pair(|u, v| match (cls.left[u as usize], cls.right[v as usize]) {
            (Category::SS, Category::SS) => ey += 1,
            (Category::SS, Category::SN) | (Category::SN, Category::SS) => el += 1,
            (Category::SN, Category::SN) => em += 1,
            _ => {}
        });
        assert_eq!((yes, likely, maybe), (ey, el, em));
    }
}
