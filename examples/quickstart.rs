//! Quickstart: register two relations with an engine, plan a query,
//! explain it, execute it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ksjq::prelude::*;

fn main() -> CoreResult<()> {
    // A marketplace: laptops per vendor region, and shipping offers per
    // region. We join on the region and want combinations that are hard
    // to beat on at least k = 4 of the 5 criteria.
    let laptops_schema = Schema::builder()
        .local("price", Preference::Min)
        .local("weight_kg", Preference::Min)
        .local("battery_h", Preference::Max)
        .build()?;
    let shipping_schema = Schema::builder()
        .local("ship_cost", Preference::Min)
        .local("days", Preference::Min)
        .build()?;

    let mut regions = StringDictionary::new();

    let mut laptops = Relation::builder(laptops_schema);
    for (region, price, weight, battery) in [
        ("EU", 999.0, 1.3, 11.0),
        ("EU", 899.0, 1.8, 9.0),
        ("EU", 1099.0, 1.1, 14.0),
        ("US", 949.0, 1.4, 10.0),
        ("US", 1299.0, 1.0, 16.0),
        ("US", 999.0, 1.4, 9.5),
    ] {
        laptops.add_grouped(regions.encode(region), &[price, weight, battery])?;
    }

    // Note: two *incomparable* shippers in one region would annihilate
    // each other's combinations under k = 4 (each is better-or-equal in
    // 3 laptop ties + its own strong suit) — a genuine k-dominance quirk.
    // Here each region has a clearly best shipper plus a dominated one.
    let mut shipping = Relation::builder(shipping_schema);
    for (region, cost, days) in [
        ("EU", 15.0, 3.0),
        ("EU", 18.0, 3.0),
        ("US", 9.0, 5.0),
        ("US", 9.0, 8.0),
    ] {
        shipping.add_grouped(regions.encode(region), &[cost, days])?;
    }

    // Register once; the engine owns the data from here on and can serve
    // any number of (concurrent) queries over it.
    let engine = Engine::new();
    engine.register("laptops", laptops.build()?)?;
    engine.register("shipping", shipping.build()?)?;

    // d1 = 3, d2 = 2 ⇒ valid k ∈ {4, 5}; k = 5 is the ordinary skyline
    // join, k = 4 relaxes it.
    let plan = QueryPlan::new("laptops", "shipping")
        .goal(Goal::Exact(4))
        .algorithm(Algorithm::Grouping);
    let prepared = engine.prepare(&plan)?;
    println!("{}\n", prepared.explain());
    let result = prepared.execute()?;

    let laptops = engine.relation("laptops")?;
    let shipping = engine.relation("shipping")?;
    println!(
        "4-dominant skyline of laptops ⋈ shipping ({} tuples):\n",
        result.len()
    );
    println!(
        "{:>4} {:>8} {:>7} {:>8} | {:>6} {:>5} {:>5}",
        "pair", "price", "weight", "battery", "region", "ship", "days"
    );
    for &(u, v) in &result.pairs {
        let l = laptops.relation().raw_row(u);
        let s = shipping.relation().raw_row(v);
        let region = regions
            .decode(laptops.relation().group_id(u).unwrap())
            .unwrap();
        println!(
            "{:>4} {:>8.0} {:>7.1} {:>8.1} | {:>6} {:>5.0} {:>5.0}",
            format!("{u}{v}"),
            l[0],
            l[1],
            l[2],
            region,
            s[0],
            s[1]
        );
    }

    let stats = result.stats;
    println!(
        "\njoined tuples: {}, pruned without joining: {}, verified: {}",
        stats.counts.joined_pairs,
        stats.counts.pruned_pairs(),
        stats.counts.likely_pairs + stats.counts.maybe_pairs,
    );
    Ok(())
}
