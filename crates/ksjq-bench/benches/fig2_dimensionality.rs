//! Fig. 2: effect of the number of aggregate attributes `a` (2a) and the
//! dimensionality medley (2b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksjq_bench::PaperParams;
use ksjq_core::{ksjq_dominator_based, ksjq_grouping, ksjq_naive, Config};

fn bench_effect_of_a(c: &mut Criterion) {
    let cfg = Config::default();
    let mut group = c.benchmark_group("fig2a_effect_of_a");
    group.sample_size(10);
    for a in 0..=3usize {
        let params = PaperParams {
            n: 400,
            a,
            ..Default::default()
        };
        let (r1, r2) = params.relations();
        let cx = params.context(&r1, &r2);
        group.bench_with_input(BenchmarkId::new("G", a), &a, |b, _| {
            b.iter(|| ksjq_grouping(&cx, params.k, &cfg).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("D", a), &a, |b, _| {
            b.iter(|| ksjq_dominator_based(&cx, params.k, &cfg).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("N", a), &a, |b, _| {
            b.iter(|| ksjq_naive(&cx, params.k, &cfg).unwrap().len())
        });
    }
    group.finish();
}

fn bench_medley(c: &mut Criterion) {
    let cfg = Config::default();
    let mut group = c.benchmark_group("fig2b_medley");
    group.sample_size(10);
    for (d, k, a) in [
        (5usize, 7usize, 1usize),
        (5, 7, 2),
        (6, 7, 1),
        (6, 7, 2),
        (6, 8, 2),
    ] {
        let params = PaperParams {
            n: 400,
            d,
            k,
            a,
            ..Default::default()
        };
        let (r1, r2) = params.relations();
        let cx = params.context(&r1, &r2);
        let id = format!("d{d}k{k}a{a}");
        group.bench_function(BenchmarkId::new("G", &id), |b| {
            b.iter(|| ksjq_grouping(&cx, k, &cfg).unwrap().len())
        });
        group.bench_function(BenchmarkId::new("N", &id), |b| {
            b.iter(|| ksjq_naive(&cx, k, &cfg).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_effect_of_a, bench_medley);
criterion_main!(benches);
