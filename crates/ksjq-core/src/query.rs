//! The high-level query API.
//!
//! [`KsjqQuery`] wraps a [`JoinContext`], a `k` (or a δ for automatic `k`
//! selection) and an algorithm choice behind a builder:
//!
//! ```
//! use ksjq_core::{Algorithm, KsjqQuery};
//! use ksjq_datagen::paper_flights;
//!
//! let pf = paper_flights(false);
//! let query = KsjqQuery::builder(&pf.outbound, &pf.inbound)
//!     .k(7)
//!     .algorithm(Algorithm::Grouping)
//!     .build()
//!     .unwrap();
//! let result = query.execute().unwrap();
//! assert_eq!(result.len(), 4); // Table 3's final skyline
//! ```

use crate::config::Config;
use crate::dominator_based::ksjq_dominator_based;
use crate::error::CoreResult;
use crate::find_k::{find_k_at_least, find_k_at_most, FindKReport, FindKStrategy};
use crate::grouping::ksjq_grouping;
use crate::naive::ksjq_naive;
use crate::output::KsjqOutput;
use crate::params::{k_max, k_min};
use ksjq_join::{AggFunc, JoinContext, JoinSpec};
use ksjq_relation::Relation;
use ksjq_skyline::KdomAlgo;

/// Which KSJQ algorithm executes the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// Algorithm 1: join everything, then compute the skyline.
    Naive,
    /// Algorithm 2: classification + target-set verification. The paper's
    /// consistent winner and the default.
    #[default]
    Grouping,
    /// Algorithm 3: explicit dominator sets, two-sided verification.
    DominatorBased,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Naive => write!(f, "naive"),
            Algorithm::Grouping => write!(f, "grouping"),
            Algorithm::DominatorBased => write!(f, "dominator-based"),
        }
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    /// Parse an algorithm name. Round-trips with [`Display`](std::fmt::Display)
    /// (`"naive"`, `"grouping"`, `"dominator-based"`); also accepts the
    /// underscore spelling and the paper's one-letter labels N/G/D.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "naive" | "n" => Ok(Algorithm::Naive),
            "grouping" | "g" => Ok(Algorithm::Grouping),
            "dominator-based" | "dominator_based" | "d" => Ok(Algorithm::DominatorBased),
            _ => Err(format!(
                "unknown algorithm {s:?} (expected naive, grouping or dominator-based)"
            )),
        }
    }
}

/// The single algorithm-dispatch point: every public execution path —
/// [`KsjqQuery::execute`], [`KsjqQuery::execute_with`] and the engine's
/// `PreparedQuery::execute` — funnels through here.
pub(crate) fn dispatch(
    cx: &JoinContext<'_>,
    k: usize,
    algorithm: Algorithm,
    config: &Config,
) -> CoreResult<KsjqOutput> {
    crate::cancel::check_deadline(config.deadline)?;
    match algorithm {
        Algorithm::Naive => ksjq_naive(cx, k, config),
        Algorithm::Grouping => ksjq_grouping(cx, k, config),
        Algorithm::DominatorBased => ksjq_dominator_based(cx, k, config),
    }
}

/// A bound and validated KSJQ query over *borrowed* relations.
///
/// **Deprecated in spirit**: this is the legacy single-shot entry point,
/// kept as a thin shim over the same execution path the engine uses. It
/// borrows its relations, so it cannot outlive them, cannot be sent to
/// another thread while they are stack-local, and cannot name relations.
/// New code should register relations with an
/// [`Engine`](crate::engine::Engine) and describe the query as an owned
/// [`QueryPlan`](crate::plan::QueryPlan):
///
/// ```
/// use ksjq_core::{Engine, Goal, QueryPlan};
/// use ksjq_datagen::paper_flights;
///
/// let pf = paper_flights(false);
/// let engine = Engine::new();
/// engine.register("outbound", pf.outbound).unwrap();
/// engine.register("inbound", pf.inbound).unwrap();
/// let plan = QueryPlan::new("outbound", "inbound").goal(Goal::Exact(7));
/// let result = engine.prepare(&plan).unwrap().execute().unwrap();
/// assert_eq!(result.len(), 4);
/// ```
#[derive(Debug)]
pub struct KsjqQuery<'a> {
    cx: JoinContext<'a>,
    k: usize,
    algorithm: Algorithm,
    config: Config,
}

impl<'a> KsjqQuery<'a> {
    /// Start building a query over `left ⋈ right`.
    pub fn builder(left: &'a Relation, right: &'a Relation) -> KsjqQueryBuilder<'a> {
        KsjqQueryBuilder {
            left,
            right,
            spec: JoinSpec::Equality,
            funcs: Vec::new(),
            k: None,
            algorithm: Algorithm::default(),
            config: Config::default(),
        }
    }

    /// The bound join context.
    pub fn context(&self) -> &JoinContext<'a> {
        &self.cx
    }

    /// The query's `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Execute with the configured algorithm.
    pub fn execute(&self) -> CoreResult<KsjqOutput> {
        dispatch(&self.cx, self.k, self.algorithm, &self.config)
    }

    /// Execute with an explicitly chosen algorithm (ignoring the built-in
    /// choice) — convenient for comparisons.
    pub fn execute_with(&self, algorithm: Algorithm) -> CoreResult<KsjqOutput> {
        dispatch(&self.cx, self.k, algorithm, &self.config)
    }
}

/// Builder for [`KsjqQuery`].
#[derive(Debug)]
pub struct KsjqQueryBuilder<'a> {
    left: &'a Relation,
    right: &'a Relation,
    spec: JoinSpec,
    funcs: Vec<AggFunc>,
    k: Option<usize>,
    algorithm: Algorithm,
    config: Config,
}

impl<'a> KsjqQueryBuilder<'a> {
    /// Join kind (default: equality).
    pub fn join(mut self, spec: JoinSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Aggregation function for the next slot (call once per slot, in slot
    /// order), or use [`aggregates`](Self::aggregates).
    pub fn aggregate(mut self, func: AggFunc) -> Self {
        self.funcs.push(func);
        self
    }

    /// Aggregation functions for all slots at once.
    pub fn aggregates(mut self, funcs: &[AggFunc]) -> Self {
        self.funcs = funcs.to_vec();
        self
    }

    /// The number of attributes a dominator must be at least as good in.
    /// Required unless the query is executed through the find-k helpers.
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Algorithm choice (default: grouping).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Single-relation k-dominant skyline subroutine (default: TSA).
    pub fn kdom(mut self, kdom: KdomAlgo) -> Self {
        self.config.kdom = kdom;
        self
    }

    /// Full execution configuration.
    pub fn config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    fn context(&self) -> CoreResult<JoinContext<'a>> {
        Ok(JoinContext::new(
            self.left,
            self.right,
            self.spec,
            &self.funcs,
        )?)
    }

    /// Validate and build the query. `k` defaults to the maximum
    /// admissible value (the ordinary skyline join) if unset.
    pub fn build(self) -> CoreResult<KsjqQuery<'a>> {
        let cx = self.context()?;
        let k = self.k.unwrap_or_else(|| k_max(&cx));
        // Validate eagerly so errors surface at build time.
        crate::params::validate_k(&cx, k)?;
        Ok(KsjqQuery {
            cx,
            k,
            algorithm: self.algorithm,
            config: self.config,
        })
    }

    /// Problem 3: build and pick the smallest `k` with at least `delta`
    /// skyline tuples. Returns the query (bound to the found `k`) plus the
    /// find-k report.
    pub fn build_with_at_least(
        self,
        delta: usize,
        strategy: FindKStrategy,
    ) -> CoreResult<(KsjqQuery<'a>, FindKReport)> {
        let cx = self.context()?;
        let report = find_k_at_least(&cx, delta, strategy, &self.config)?;
        let query = KsjqQuery {
            cx,
            k: report.k,
            algorithm: self.algorithm,
            config: self.config,
        };
        Ok((query, report))
    }

    /// Problem 4: build and pick the largest `k` with at most `delta`
    /// skyline tuples.
    pub fn build_with_at_most(
        self,
        delta: usize,
        strategy: FindKStrategy,
    ) -> CoreResult<(KsjqQuery<'a>, FindKReport)> {
        let cx = self.context()?;
        let report = find_k_at_most(&cx, delta, strategy, &self.config)?;
        let query = KsjqQuery {
            cx,
            k: report.k,
            algorithm: self.algorithm,
            config: self.config,
        };
        Ok((query, report))
    }
}

/// The valid `k` range of a prospective query, for UIs and harnesses:
/// `(min, max)` inclusive.
pub fn k_range(cx: &JoinContext<'_>) -> (usize, usize) {
    (k_min(cx), k_max(cx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksjq_datagen::paper_flights;

    #[test]
    fn builder_default_k_is_max() {
        let pf = paper_flights(false);
        let q = KsjqQuery::builder(&pf.outbound, &pf.inbound)
            .build()
            .unwrap();
        assert_eq!(q.k(), 8); // d1 + d2 = 4 + 4
    }

    #[test]
    fn all_algorithms_same_answer() {
        let pf = paper_flights(false);
        let q = KsjqQuery::builder(&pf.outbound, &pf.inbound)
            .k(7)
            .build()
            .unwrap();
        let a = q.execute_with(Algorithm::Naive).unwrap();
        let b = q.execute_with(Algorithm::Grouping).unwrap();
        let c = q.execute_with(Algorithm::DominatorBased).unwrap();
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.pairs, c.pairs);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn invalid_k_fails_at_build() {
        let pf = paper_flights(false);
        assert!(KsjqQuery::builder(&pf.outbound, &pf.inbound)
            .k(4)
            .build()
            .is_err());
        assert!(KsjqQuery::builder(&pf.outbound, &pf.inbound)
            .k(9)
            .build()
            .is_err());
    }

    #[test]
    fn build_with_at_least_small_delta() {
        let pf = paper_flights(false);
        let (q, report) = KsjqQuery::builder(&pf.outbound, &pf.inbound)
            .build_with_at_least(1, FindKStrategy::Binary)
            .unwrap();
        assert!(report.satisfied);
        assert!(!q.execute().unwrap().is_empty());
        // Minimality.
        assert_eq!(
            report.k,
            k_range(q.context()).0.max(
                (k_range(q.context()).0..=k_range(q.context()).1)
                    .find(|&k| {
                        !KsjqQuery::builder(&pf.outbound, &pf.inbound)
                            .k(k)
                            .build()
                            .unwrap()
                            .execute()
                            .unwrap()
                            .is_empty()
                    })
                    .unwrap()
            )
        );
    }

    #[test]
    fn algorithm_from_str_roundtrips_display() {
        for algo in [
            Algorithm::Naive,
            Algorithm::Grouping,
            Algorithm::DominatorBased,
        ] {
            assert_eq!(algo.to_string().parse::<Algorithm>().unwrap(), algo);
        }
        // Paper labels and case-insensitivity.
        assert_eq!("G".parse::<Algorithm>().unwrap(), Algorithm::Grouping);
        assert_eq!("NAIVE".parse::<Algorithm>().unwrap(), Algorithm::Naive);
        assert_eq!(
            "dominator_based".parse::<Algorithm>().unwrap(),
            Algorithm::DominatorBased
        );
        assert!("bogus".parse::<Algorithm>().is_err());
    }

    #[test]
    fn k_range_reporting() {
        let pf = paper_flights(true);
        let q = KsjqQuery::builder(&pf.outbound, &pf.inbound)
            .aggregate(ksjq_join::AggFunc::Sum)
            .build()
            .unwrap();
        assert_eq!(k_range(q.context()), (5, 7));
    }
}
