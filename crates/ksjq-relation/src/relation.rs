//! Row-major tuple storage with join keys and a group index.

use crate::error::{Error, Result};
use crate::schema::Schema;
use std::ops::Range;

/// Identifier of a tuple within one relation (its row index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleId(pub u32);

impl TupleId {
    /// The row index as a `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TupleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The join-key column of a relation.
///
/// KSJQ joins never compare join keys with skyline semantics, so keys are
/// kept out of the attribute matrix entirely.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinKeys {
    /// No key: the relation can only participate in Cartesian products
    /// (paper Sec. 6.5).
    None,
    /// Dictionary-encoded equality-join keys; tuples join when ids match
    /// (paper Assumption 1). Use [`crate::StringDictionary`] to encode
    /// strings.
    Group(Vec<u64>),
    /// Numeric key for non-equality (theta) join conditions such as
    /// `f1.arrival < f2.departure` (paper Sec. 6.6).
    Numeric(Vec<f64>),
}

impl JoinKeys {
    fn len(&self) -> usize {
        match self {
            JoinKeys::None => 0,
            JoinKeys::Group(v) => v.len(),
            JoinKeys::Numeric(v) => v.len(),
        }
    }
}

/// Index over the distinct equality-join groups of a relation.
///
/// Tuple ids are stored sorted by group id, so each group is a contiguous
/// slice; this avoids hashing in the hot verification loops and gives
/// deterministic iteration order.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupIndex {
    order: Vec<u32>,
    groups: Vec<(u64, Range<usize>)>,
}

impl GroupIndex {
    fn build(keys: &[u64]) -> GroupIndex {
        let mut order: Vec<u32> = (0..keys.len() as u32).collect();
        // The id tiebreak makes the within-group order deterministic by
        // construction, so the faster unstable sort is safe here.
        order.sort_unstable_by_key(|&t| (keys[t as usize], t));
        let mut groups = Vec::new();
        let mut start = 0usize;
        while start < order.len() {
            let gid = keys[order[start] as usize];
            let mut end = start + 1;
            while end < order.len() && keys[order[end] as usize] == gid {
                end += 1;
            }
            groups.push((gid, start..end));
            start = end;
        }
        GroupIndex { order, groups }
    }

    /// Number of distinct groups (`g` in the paper).
    #[inline]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Iterate `(group_id, member tuple ids)` in ascending group-id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u32])> + '_ {
        self.groups
            .iter()
            .map(move |(gid, r)| (*gid, &self.order[r.clone()]))
    }

    /// The members of group `gid`, or an empty slice if the group does not
    /// exist in this relation.
    pub fn members(&self, gid: u64) -> &[u32] {
        match self.groups.binary_search_by_key(&gid, |(g, _)| *g) {
            Ok(i) => &self.order[self.groups[i].1.clone()],
            Err(_) => &[],
        }
    }

    /// All tuple ids sorted by `(group id, tuple id)` — the *scan order*
    /// the blocked kernels permute per-tuple data into so every group is a
    /// contiguous range of it.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// The positions of group `gid`'s members within [`order`](Self::order)
    /// (`members(gid) == &order()[range_of(gid)]`); empty for unknown
    /// groups.
    pub fn range_of(&self, gid: u64) -> Range<usize> {
        match self.groups.binary_search_by_key(&gid, |(g, _)| *g) {
            Ok(i) => self.groups[i].1.clone(),
            Err(_) => 0..0,
        }
    }
}

/// A base relation: a [`Schema`], `n` tuples of `d` normalised attribute
/// values, and an optional join-key column.
///
/// Attribute values are stored row-major in a flat `Vec<f64>` and are
/// normalised to lower-is-better orientation at build time (a `Max`
/// attribute is negated). All dominance code operates on the normalised
/// values; use [`Relation::raw_value`] / [`Relation::raw_row`] to recover the
/// user-facing numbers.
///
/// Alongside the row-major storage the relation keeps a **columnar**
/// (struct-of-arrays) copy, built once at [`RelationBuilder::build`]: each
/// attribute's `n` values are contiguous, so candidate-versus-relation
/// dominance counting ([`crate::dominance::dom_counts_block_columnar`])
/// sweeps each attribute stride-1 instead of striding across interleaved
/// rows. The duplication costs one extra `n · d` `f64` buffer per relation
/// — the price of the blocked kernels running at memory bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    data: Vec<f64>,
    /// Attribute-major copy of `data`: attribute `a`'s column occupies
    /// `columns[a * n .. (a + 1) * n]`.
    columns: Vec<f64>,
    keys: JoinKeys,
    group_index: Option<GroupIndex>,
    numeric_order: Option<Vec<u32>>,
}

impl Relation {
    /// Start building a relation with the given schema.
    pub fn builder(schema: Schema) -> RelationBuilder {
        RelationBuilder {
            schema,
            data: Vec::new(),
            keys: JoinKeys::None,
            n: 0,
        }
    }

    /// Build a relation from equality-join keys and raw rows.
    ///
    /// Convenience for the common synthetic-workload shape; equivalent to a
    /// builder loop over [`RelationBuilder::add_grouped`].
    pub fn from_grouped_rows(schema: Schema, keys: &[u64], rows: &[Vec<f64>]) -> Result<Relation> {
        if keys.len() != rows.len() {
            return Err(Error::Invalid(format!(
                "{} keys but {} rows",
                keys.len(),
                rows.len()
            )));
        }
        let mut b = Relation::builder(schema);
        for (k, row) in keys.iter().zip(rows) {
            b.add_grouped(*k, row)?;
        }
        b.build()
    }

    /// The relation's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    #[inline]
    pub fn n(&self) -> usize {
        if self.schema.d() == 0 {
            0
        } else {
            self.data.len() / self.schema.d()
        }
    }

    /// Number of skyline attributes (`d_i`).
    #[inline]
    pub fn d(&self) -> usize {
        self.schema.d()
    }

    /// Is the relation empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The normalised attribute slice of tuple `t`.
    #[inline]
    pub fn row(&self, t: TupleId) -> &[f64] {
        let d = self.schema.d();
        let i = t.idx() * d;
        &self.data[i..i + d]
    }

    /// The normalised attribute slice of row index `i`.
    #[inline]
    pub fn row_at(&self, i: usize) -> &[f64] {
        let d = self.schema.d();
        &self.data[i * d..(i + 1) * d]
    }

    /// The full normalised attribute storage, row-major (`n · d` values).
    ///
    /// Exposed for blocked kernels ([`crate::dominance::dom_counts_block`])
    /// that want to sweep a candidate against every row without per-row
    /// slice bookkeeping.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// The full normalised attribute storage, attribute-major (`n · d`
    /// values): attribute `a`'s column occupies `columns()[a·n..(a+1)·n]`.
    ///
    /// This is the layout the columnar kernels
    /// ([`crate::dominance::dom_counts_block_columnar`] and friends) sweep
    /// stride-1; it is built once at [`RelationBuilder::build`] and always
    /// holds exactly the same values as [`values`](Self::values).
    #[inline]
    pub fn columns(&self) -> &[f64] {
        &self.columns
    }

    /// The contiguous normalised column of attribute `attr` (`n` values,
    /// one per tuple in id order).
    #[inline]
    pub fn column(&self, attr: usize) -> &[f64] {
        let n = self.n();
        &self.columns[attr * n..(attr + 1) * n]
    }

    /// Iterate all `(TupleId, row)` pairs.
    pub fn rows(&self) -> impl Iterator<Item = (TupleId, &[f64])> + '_ {
        let d = self.schema.d();
        self.data
            .chunks_exact(d)
            .enumerate()
            .map(|(i, r)| (TupleId(i as u32), r))
    }

    /// The raw (denormalised) value of attribute `attr` of tuple `t`.
    pub fn raw_value(&self, t: TupleId, attr: usize) -> f64 {
        self.schema
            .attr(attr)
            .preference
            .denormalize(self.row(t)[attr])
    }

    /// The full raw row of tuple `t` (allocates).
    pub fn raw_row(&self, t: TupleId) -> Vec<f64> {
        self.row(t)
            .iter()
            .enumerate()
            .map(|(a, &v)| self.schema.attr(a).preference.denormalize(v))
            .collect()
    }

    /// The join-key column.
    #[inline]
    pub fn keys(&self) -> &JoinKeys {
        &self.keys
    }

    /// Equality-join group id of tuple `t`, if the relation has group keys.
    #[inline]
    pub fn group_id(&self, t: TupleId) -> Option<u64> {
        match &self.keys {
            JoinKeys::Group(v) => Some(v[t.idx()]),
            _ => None,
        }
    }

    /// Numeric join key of tuple `t`, if the relation has numeric keys.
    #[inline]
    pub fn numeric_key(&self, t: TupleId) -> Option<f64> {
        match &self.keys {
            JoinKeys::Numeric(v) => Some(v[t.idx()]),
            _ => None,
        }
    }

    /// The group index (present iff the relation has group keys).
    #[inline]
    pub fn group_index(&self) -> Option<&GroupIndex> {
        self.group_index.as_ref()
    }

    /// Tuple ids sorted by ascending numeric join key (present iff the
    /// relation has numeric keys). Ties keep ascending tuple-id order.
    #[inline]
    pub fn numeric_order(&self) -> Option<&[u32]> {
        self.numeric_order.as_deref()
    }

    /// Checked access to a tuple id.
    pub fn get(&self, t: TupleId) -> Result<&[f64]> {
        if t.idx() >= self.n() {
            return Err(Error::TupleOutOfBounds {
                id: t.0,
                n: self.n(),
            });
        }
        Ok(self.row(t))
    }
}

/// Incremental [`Relation`] construction.
#[derive(Debug)]
pub struct RelationBuilder {
    schema: Schema,
    data: Vec<f64>,
    keys: JoinKeys,
    n: usize,
}

impl RelationBuilder {
    /// Reserve space for `n` tuples up front.
    pub fn with_capacity(mut self, n: usize) -> Self {
        self.data.reserve(n * self.schema.d());
        match &mut self.keys {
            JoinKeys::Group(v) => v.reserve(n),
            JoinKeys::Numeric(v) => v.reserve(n),
            JoinKeys::None => {}
        }
        self
    }

    fn push_row(&mut self, row: &[f64]) -> Result<()> {
        let d = self.schema.d();
        if row.len() != d {
            return Err(Error::ArityMismatch {
                expected: d,
                got: row.len(),
            });
        }
        for (a, &v) in row.iter().enumerate() {
            if !v.is_finite() {
                return Err(Error::NonFiniteValue {
                    attr: a,
                    row: self.n,
                });
            }
            self.data.push(self.schema.attr(a).preference.normalize(v));
        }
        self.n += 1;
        Ok(())
    }

    /// Add a keyless tuple (Cartesian-product relations only).
    pub fn add(&mut self, row: &[f64]) -> Result<&mut Self> {
        if self.n > 0 && !matches!(self.keys, JoinKeys::None) {
            return Err(Error::InconsistentJoinKeys);
        }
        self.push_row(row)?;
        Ok(self)
    }

    /// Add a tuple with an equality-join group key.
    pub fn add_grouped(&mut self, group: u64, row: &[f64]) -> Result<&mut Self> {
        match &mut self.keys {
            JoinKeys::None if self.n == 0 => self.keys = JoinKeys::Group(vec![]),
            JoinKeys::Group(_) => {}
            _ => return Err(Error::InconsistentJoinKeys),
        }
        self.push_row(row)?;
        if let JoinKeys::Group(v) = &mut self.keys {
            v.push(group);
        }
        Ok(self)
    }

    /// Add a tuple with a numeric theta-join key.
    pub fn add_keyed(&mut self, key: f64, row: &[f64]) -> Result<&mut Self> {
        if !key.is_finite() {
            return Err(Error::Invalid(format!(
                "non-finite join key at row {}",
                self.n
            )));
        }
        match &mut self.keys {
            JoinKeys::None if self.n == 0 => self.keys = JoinKeys::Numeric(vec![]),
            JoinKeys::Numeric(_) => {}
            _ => return Err(Error::InconsistentJoinKeys),
        }
        self.push_row(row)?;
        if let JoinKeys::Numeric(v) = &mut self.keys {
            v.push(key);
        }
        Ok(self)
    }

    /// Validate and freeze the relation, building group / order indexes.
    pub fn build(self) -> Result<Relation> {
        debug_assert!(self.keys.len() == 0 || self.keys.len() == self.n);
        let group_index = match &self.keys {
            JoinKeys::Group(v) => Some(GroupIndex::build(v)),
            _ => None,
        };
        let numeric_order = match &self.keys {
            JoinKeys::Numeric(v) => {
                let mut order: Vec<u32> = (0..v.len() as u32).collect();
                order.sort_by(|&a, &b| {
                    v[a as usize]
                        .partial_cmp(&v[b as usize])
                        .expect("join keys validated finite")
                        .then(a.cmp(&b))
                });
                Some(order)
            }
            _ => None,
        };
        let d = self.schema.d();
        let n = self.data.len().checked_div(d).unwrap_or(0);
        // Transpose once into the attribute-major (struct-of-arrays) copy;
        // every blocked kernel reads this, never the rows.
        let mut columns = vec![0.0; self.data.len()];
        for (i, row) in self.data.chunks_exact(d.max(1)).enumerate() {
            for (a, &v) in row.iter().enumerate() {
                columns[a * n + i] = v;
            }
        }
        Ok(Relation {
            schema: self.schema,
            data: self.data,
            columns,
            keys: self.keys,
            group_index,
            numeric_order,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::Preference;

    fn schema2() -> Schema {
        Schema::builder()
            .local("cost", Preference::Min)
            .local("rating", Preference::Max)
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_access() {
        let mut b = Relation::builder(schema2());
        b.add_grouped(1, &[10.0, 4.0]).unwrap();
        b.add_grouped(2, &[20.0, 5.0]).unwrap();
        let r = b.build().unwrap();
        assert_eq!(r.n(), 2);
        assert_eq!(r.d(), 2);
        // rating is Max, so it is negated internally…
        assert_eq!(r.row(TupleId(0)), &[10.0, -4.0]);
        // …but raw access recovers the original.
        assert_eq!(r.raw_value(TupleId(0), 1), 4.0);
        assert_eq!(r.raw_row(TupleId(1)), vec![20.0, 5.0]);
        assert_eq!(r.group_id(TupleId(1)), Some(2));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = Relation::builder(schema2());
        let e = b.add_grouped(0, &[1.0]).unwrap_err();
        assert_eq!(
            e,
            Error::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn nan_rejected() {
        let mut b = Relation::builder(schema2());
        let e = b.add_grouped(0, &[1.0, f64::NAN]).unwrap_err();
        assert!(matches!(e, Error::NonFiniteValue { attr: 1, row: 0 }));
    }

    #[test]
    fn mixed_key_kinds_rejected() {
        let mut b = Relation::builder(schema2());
        b.add_grouped(0, &[1.0, 1.0]).unwrap();
        assert_eq!(
            b.add_keyed(2.0, &[1.0, 1.0]).unwrap_err(),
            Error::InconsistentJoinKeys
        );
        assert_eq!(b.add(&[1.0, 1.0]).unwrap_err(), Error::InconsistentJoinKeys);
    }

    #[test]
    fn group_index_ranges() {
        let mut b = Relation::builder(Schema::uniform(1).unwrap());
        for (g, v) in [(5u64, 0.0), (1, 1.0), (5, 2.0), (1, 3.0), (7, 4.0)] {
            b.add_grouped(g, &[v]).unwrap();
        }
        let r = b.build().unwrap();
        let gi = r.group_index().unwrap();
        assert_eq!(gi.group_count(), 3);
        let collected: Vec<(u64, Vec<u32>)> = gi.iter().map(|(g, m)| (g, m.to_vec())).collect();
        assert_eq!(
            collected,
            vec![(1, vec![1, 3]), (5, vec![0, 2]), (7, vec![4])]
        );
        assert_eq!(gi.members(5), &[0, 2]);
        assert_eq!(gi.members(99), &[] as &[u32]);
    }

    #[test]
    fn group_index_members_ascend_within_group() {
        // The (key, id) sort key makes the id tiebreak explicit; members
        // of every group must come out in ascending id order even when
        // many tuples tie on the key.
        let keys: Vec<u64> = (0..64).map(|i| (i * 7 + 3) % 4).collect();
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let r = Relation::from_grouped_rows(Schema::uniform(1).unwrap(), &keys, &rows).unwrap();
        let gi = r.group_index().unwrap();
        for (gid, members) in gi.iter() {
            assert!(
                members.windows(2).all(|w| w[0] < w[1]),
                "group {gid} not ascending: {members:?}"
            );
            for &m in members {
                assert_eq!(keys[m as usize], gid);
            }
        }
        assert_eq!(gi.iter().map(|(_, m)| m.len()).sum::<usize>(), 64);
    }

    #[test]
    fn values_exposes_row_major_storage() {
        let r = Relation::from_grouped_rows(
            Schema::uniform(2).unwrap(),
            &[1, 2],
            &[vec![1.0, 2.0], vec![3.0, 4.0]],
        )
        .unwrap();
        assert_eq!(r.values(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&r.values()[2..4], r.row_at(1));
    }

    #[test]
    fn columns_are_the_transposed_rows() {
        let r = Relation::from_grouped_rows(
            Schema::uniform(3).unwrap(),
            &[1, 2, 1],
            &[
                vec![1.0, 2.0, 3.0],
                vec![4.0, 5.0, 6.0],
                vec![7.0, 8.0, 9.0],
            ],
        )
        .unwrap();
        assert_eq!(r.column(0), &[1.0, 4.0, 7.0]);
        assert_eq!(r.column(1), &[2.0, 5.0, 8.0]);
        assert_eq!(r.column(2), &[3.0, 6.0, 9.0]);
        assert_eq!(r.columns().len(), r.values().len());
        for t in 0..r.n() {
            for a in 0..r.d() {
                assert_eq!(r.column(a)[t], r.row_at(t)[a], "tuple {t} attr {a}");
            }
        }
    }

    #[test]
    fn group_index_order_and_ranges_agree_with_members() {
        let keys: Vec<u64> = (0..40).map(|i| (i * 13 + 5) % 6).collect();
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let r = Relation::from_grouped_rows(Schema::uniform(1).unwrap(), &keys, &rows).unwrap();
        let gi = r.group_index().unwrap();
        for (gid, members) in gi.iter() {
            assert_eq!(&gi.order()[gi.range_of(gid)], members, "group {gid}");
        }
        assert_eq!(gi.range_of(999), 0..0);
    }

    #[test]
    fn numeric_order_sorted() {
        let mut b = Relation::builder(Schema::uniform(1).unwrap());
        for (k, v) in [(3.0, 0.0), (1.0, 1.0), (2.0, 2.0), (1.0, 3.0)] {
            b.add_keyed(k, &[v]).unwrap();
        }
        let r = b.build().unwrap();
        assert_eq!(r.numeric_order().unwrap(), &[1, 3, 2, 0]);
        assert_eq!(r.numeric_key(TupleId(0)), Some(3.0));
        assert!(r.group_index().is_none());
    }

    #[test]
    fn from_grouped_rows_roundtrip() {
        let r = Relation::from_grouped_rows(
            Schema::uniform(2).unwrap(),
            &[1, 1, 2],
            &[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
        )
        .unwrap();
        assert_eq!(r.n(), 3);
        assert_eq!(r.group_index().unwrap().group_count(), 2);
    }

    #[test]
    fn from_grouped_rows_length_mismatch() {
        let e = Relation::from_grouped_rows(Schema::uniform(1).unwrap(), &[1], &[]).unwrap_err();
        assert!(matches!(e, Error::Invalid(_)));
    }

    #[test]
    fn get_bounds_check() {
        let mut b = Relation::builder(Schema::uniform(1).unwrap());
        b.add(&[0.0]).unwrap();
        let r = b.build().unwrap();
        assert!(r.get(TupleId(0)).is_ok());
        assert!(matches!(
            r.get(TupleId(1)),
            Err(Error::TupleOutOfBounds { id: 1, n: 1 })
        ));
    }

    #[test]
    fn empty_relation() {
        let r = Relation::builder(Schema::uniform(3).unwrap())
            .build()
            .unwrap();
        assert!(r.is_empty());
        assert_eq!(r.n(), 0);
        assert_eq!(r.rows().count(), 0);
    }
}
