//! Scripted KSJQ protocol client: reads commands from stdin, one per
//! line, prints each response line to stdout.
//!
//! ```sh
//! printf 'PREPARE q outbound JOIN inbound K 7\nEXECUTE q\nSTATS\nCLOSE\n' \
//!   | ksjq-client 127.0.0.1:7878
//! ```
//!
//! Connecting negotiates protocol v2, so an `EXECUTE`/`QUERY` answer may
//! span several `ROWS … part=i/m` frames; every frame of the stream is
//! printed. Pass `--v1` to skip negotiation and speak v1 (one whole
//! result per `ROWS` line).
//!
//! Exits 0 when every request was answered (including `ERR` answers —
//! they are protocol-level successes; grep the output to assert on
//! content), non-zero on transport failure. Blank lines and `#` comments
//! in the script are skipped.

use ksjq_server::{KsjqClient, Response};
use std::io::{BufRead, Write};

fn main() {
    let mut addr = None;
    let mut legacy = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--v1" => legacy = true,
            other if addr.is_none() => addr = Some(other.to_owned()),
            other => {
                eprintln!("ksjq-client: unexpected argument {other}");
                std::process::exit(2);
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("usage: ksjq-client [--v1] HOST:PORT  (commands on stdin, one per line)");
        std::process::exit(2);
    };
    let connected = if legacy {
        KsjqClient::connect_legacy(&addr)
    } else {
        KsjqClient::connect(&addr)
    };
    let mut client = match connected {
        Ok(client) => client,
        Err(e) => {
            eprintln!("ksjq-client: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("ksjq-client: stdin: {e}");
                std::process::exit(1);
            }
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut response = client.raw(line);
        loop {
            let frame = match response {
                Ok(frame) => frame,
                Err(e) => {
                    eprintln!("ksjq-client: {e}");
                    std::process::exit(1);
                }
            };
            // A closed stdout (e.g. piped into `head`) ends the session
            // cleanly rather than panicking.
            if writeln!(std::io::stdout(), "{frame}").is_err() {
                return;
            }
            if frame == "BYE" {
                return;
            }
            // Keep reading a chunked v2 answer until its final part.
            match Response::parse(&frame) {
                Ok(Response::Chunk(chunk)) if !chunk.is_last() => response = client.raw_read(),
                _ => break,
            }
        }
    }
}
