//! Problems 3/4: the three find-k strategies must agree with each other
//! and with exhaustive ground truth on every workload.

mod common;

use common::*;
use ksjq::prelude::*;

/// Exhaustive ground truth: sizes of the skyline at every admissible k.
fn sizes_by_k(cx: &JoinContext<'_>, cfg: &Config) -> Vec<(usize, usize)> {
    let (lo, hi) = k_range(cx);
    (lo..=hi)
        .map(|k| (k, ksjq_grouping(cx, k, cfg).unwrap().len()))
        .collect()
}

#[test]
fn lemma_1_sizes_monotone() {
    for seed in [1u64, 5, 9] {
        let r1 = random_grouped(seed, 80, 0, 4, 4, 12);
        let r2 = random_grouped(seed + 40, 80, 0, 4, 4, 12);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let sizes = sizes_by_k(&cx, &Config::default());
        for w in sizes.windows(2) {
            assert!(
                w[0].1 <= w[1].1,
                "seed={seed}: sizes not monotone: {sizes:?}"
            );
        }
    }
}

#[test]
fn strategies_match_ground_truth() {
    let cfg = Config::default();
    for seed in [2u64, 3] {
        let r1 = random_grouped(seed, 70, 0, 4, 4, 10);
        let r2 = random_grouped(seed + 7, 70, 0, 4, 4, 10);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let sizes = sizes_by_k(&cx, &cfg);
        let (lo, hi) = k_range(&cx);
        for delta in [1usize, 3, 10, 40, 200, 5000] {
            let truth = sizes.iter().find(|(_, s)| *s >= delta).map(|(k, _)| *k);
            for strat in [
                FindKStrategy::Naive,
                FindKStrategy::Range,
                FindKStrategy::Binary,
            ] {
                let rep = find_k_at_least(&cx, delta, strat, &cfg).unwrap();
                match truth {
                    Some(k) => {
                        assert_eq!(rep.k, k, "seed={seed} delta={delta} strat={strat}");
                        assert!(rep.satisfied);
                        assert!(rep.k >= lo && rep.k <= hi);
                    }
                    None => {
                        assert_eq!(rep.k, hi, "seed={seed} delta={delta} strat={strat}");
                        assert!(!rep.satisfied);
                    }
                }
            }
        }
    }
}

#[test]
fn at_most_matches_ground_truth() {
    let cfg = Config::default();
    let r1 = random_grouped(13, 70, 0, 4, 4, 10);
    let r2 = random_grouped(14, 70, 0, 4, 4, 10);
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
    let sizes = sizes_by_k(&cx, &cfg);
    let (lo, _hi) = k_range(&cx);
    for delta in [1usize, 5, 25, 100, 10_000] {
        let truth = sizes
            .iter()
            .rev()
            .find(|(_, s)| *s <= delta)
            .map(|(k, _)| *k);
        let rep = find_k_at_most(&cx, delta, FindKStrategy::Binary, &cfg).unwrap();
        match truth {
            Some(k) => {
                assert_eq!(rep.k, k, "delta={delta}");
                assert!(rep.satisfied, "delta={delta}");
            }
            None => {
                // Even the minimum k overshoots δ; the paper's convention
                // returns the minimum, flagged unsatisfied.
                assert_eq!(rep.k, lo, "delta={delta}");
                assert!(!rep.satisfied, "delta={delta}");
            }
        }
    }
}

#[test]
fn binary_never_does_more_full_runs_than_range() {
    let cfg = Config::default();
    let r1 = random_grouped(23, 90, 0, 5, 5, 10);
    let r2 = random_grouped(24, 90, 0, 5, 5, 10);
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
    for delta in [10usize, 100, 1000] {
        let naive = find_k_at_least(&cx, delta, FindKStrategy::Naive, &cfg).unwrap();
        let range = find_k_at_least(&cx, delta, FindKStrategy::Range, &cfg).unwrap();
        let binary = find_k_at_least(&cx, delta, FindKStrategy::Binary, &cfg).unwrap();
        // The bound-based strategies never need more full computations
        // than the naive one, and binary probes at most ⌈log₂(range)⌉ + 1
        // values of k.
        assert!(
            range.full_computations <= naive.full_computations,
            "delta={delta}"
        );
        assert!(
            binary.full_computations <= naive.full_computations,
            "delta={delta}"
        );
        let (lo, hi) = k_range(&cx);
        let log2 = usize::BITS - (hi - lo + 1).leading_zeros();
        assert!(
            binary.bound_computations <= log2 as usize + 1,
            "delta={delta}: {} probes for range {lo}..={hi}",
            binary.bound_computations
        );
    }
}

#[test]
fn delta_one_finds_first_nonempty_k() {
    let pf = ksjq::datagen::paper_flights(false);
    let cx = JoinContext::new(&pf.outbound, &pf.inbound, JoinSpec::Equality, &[]).unwrap();
    let cfg = Config::default();
    let rep = find_k_at_least(&cx, 1, FindKStrategy::Binary, &cfg).unwrap();
    assert!(rep.satisfied);
    let size_at_k = ksjq_grouping(&cx, rep.k, &cfg).unwrap().len();
    assert!(size_at_k >= 1);
    if rep.k > k_range(&cx).0 {
        assert_eq!(ksjq_grouping(&cx, rep.k - 1, &cfg).unwrap().len(), 0);
    }
}

#[test]
fn huge_delta_on_paper_example() {
    let pf = ksjq::datagen::paper_flights(false);
    let cx = JoinContext::new(&pf.outbound, &pf.inbound, JoinSpec::Equality, &[]).unwrap();
    let rep = find_k_at_least(&cx, 1_000, FindKStrategy::Binary, &Config::default()).unwrap();
    // Only 13 joined tuples exist; δ = 1000 is unsatisfiable.
    assert!(!rep.satisfied);
    assert_eq!(rep.k, k_range(&cx).1);
}
