//! Execution statistics: the per-phase timing breakdown of the paper's
//! figures plus cardinality counters.

use std::time::Duration;

/// Per-phase wall-clock times, mirroring the stacked components of the
/// paper's figures (Sec. 7: "grouping time", "join time", "dominator
/// generation", "remaining").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Computing the SS/SN/NN classification of both base relations.
    /// Zero for the naïve algorithm (it never classifies).
    pub grouping: Duration,
    /// Producing joined tuples: materialising the join (naïve) or building
    /// candidate joined rows (optimized algorithms).
    pub join: Duration,
    /// Building explicit dominator/target sets (dominator-based algorithm
    /// only).
    pub dominator_gen: Duration,
    /// Everything else — chiefly the dominance verification passes.
    pub remaining: Duration,
}

impl PhaseTimes {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.grouping + self.join + self.dominator_gen + self.remaining
    }
}

/// Cardinality counters accumulated during one KSJQ execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Tuples classified `SS` in the left / right relation.
    pub ss: [usize; 2],
    /// Tuples classified `SN` in the left / right relation.
    pub sn: [usize; 2],
    /// Tuples classified `NN` in the left / right relation.
    pub nn: [usize; 2],
    /// Join-compatible pairs in the "yes" set (`SS1 ⋈ SS2`).
    pub yes_pairs: usize,
    /// Pairs in the "likely" sets (`SS1 ⋈ SN2` ∪ `SN1 ⋈ SS2`).
    pub likely_pairs: usize,
    /// Pairs in the "may be" set (`SN1 ⋈ SN2`).
    pub maybe_pairs: usize,
    /// Total joined tuples `N = |R1 ⋈ R2|`.
    pub joined_pairs: u64,
    /// Skyline tuples produced.
    pub output: usize,
    /// Joined-tuple dominance tests performed by the verification kernel
    /// (one per `(dominator, candidate)` pair actually compared).
    pub dom_tests: u64,
    /// Attribute positions compared by the verification kernel. The
    /// split-side kernel re-uses each target leg's left-half counts across
    /// all of its join partners, so this is the figure that shows the
    /// kernel's advantage over materialising joined tuples.
    pub attr_cmps: u64,
    /// Target legs pruned from the dominator scans: per verified
    /// candidate, the tuples the `k″` target filter excluded before the
    /// scan started, plus any legs abandoned after only their hoisted
    /// half-counts. Counted per verification call, so the value is
    /// thread-count invariant.
    pub targets_pruned: u64,
}

impl Counts {
    /// Pairs pruned without any joined-tuple comparison (everything with an
    /// `NN` component).
    ///
    /// Saturates at zero: the counters come from independent code paths
    /// (and, over a wire protocol, from an untrusted peer), so an
    /// inconsistent set where the surviving pairs exceed `joined_pairs`
    /// must report 0 pruned rather than underflow.
    pub fn pruned_pairs(&self) -> u64 {
        let surviving = (self.yes_pairs as u64)
            .saturating_add(self.likely_pairs as u64)
            .saturating_add(self.maybe_pairs as u64);
        self.joined_pairs.saturating_sub(surviving)
    }
}

/// Statistics of one KSJQ execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Per-phase times.
    pub phases: PhaseTimes,
    /// Cardinality counters.
    pub counts: Counts,
}

impl ExecStats {
    /// A one-paragraph human-readable account of the execution, for logs
    /// and example output.
    pub fn summary(&self) -> String {
        let p = &self.phases;
        let c = &self.counts;
        format!(
            "classified L({} SS / {} SN / {} NN) R({} SS / {} SN / {} NN); \
             of {} joined tuples: {} emitted, {} verified ({} likely + {} may-be), \
             {} pruned pre-join; {} skyline tuples; \
             kernel: {} dom tests, {} attr cmps, {} target legs pruned; \
             times: grouping {:.2?}, join {:.2?}, dominators {:.2?}, rest {:.2?}",
            c.ss[0],
            c.sn[0],
            c.nn[0],
            c.ss[1],
            c.sn[1],
            c.nn[1],
            c.joined_pairs,
            c.yes_pairs,
            c.likely_pairs + c.maybe_pairs,
            c.likely_pairs,
            c.maybe_pairs,
            c.pruned_pairs(),
            c.output,
            c.dom_tests,
            c.attr_cmps,
            c.targets_pruned,
            p.grouping,
            p.join,
            p.dominator_gen,
            p.remaining,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_total() {
        let p = PhaseTimes {
            grouping: Duration::from_millis(1),
            join: Duration::from_millis(2),
            dominator_gen: Duration::from_millis(3),
            remaining: Duration::from_millis(4),
        };
        assert_eq!(p.total(), Duration::from_millis(10));
    }

    #[test]
    fn pruned_pairs_arithmetic() {
        let c = Counts {
            yes_pairs: 5,
            likely_pairs: 10,
            maybe_pairs: 15,
            joined_pairs: 100,
            ..Default::default()
        };
        assert_eq!(c.pruned_pairs(), 70);
    }

    #[test]
    fn pruned_pairs_saturates_on_inconsistent_counters() {
        // Regression: this underflowed (panicking in debug builds) when
        // the pair counters exceeded joined_pairs.
        let c = Counts {
            yes_pairs: 5,
            likely_pairs: 10,
            maybe_pairs: 15,
            joined_pairs: 7,
            ..Default::default()
        };
        assert_eq!(c.pruned_pairs(), 0);
        let extreme = Counts {
            yes_pairs: usize::MAX,
            likely_pairs: usize::MAX,
            maybe_pairs: usize::MAX,
            joined_pairs: 1,
            ..Default::default()
        };
        assert_eq!(extreme.pruned_pairs(), 0);
    }

    #[test]
    fn defaults_are_zero() {
        let s = ExecStats::default();
        assert_eq!(s.phases.total(), Duration::ZERO);
        assert_eq!(s.counts.output, 0);
    }

    #[test]
    fn summary_mentions_all_counters() {
        let s = ExecStats {
            counts: Counts {
                ss: [3, 4],
                sn: [5, 6],
                nn: [7, 8],
                yes_pairs: 9,
                likely_pairs: 10,
                maybe_pairs: 11,
                joined_pairs: 100,
                output: 12,
                dom_tests: 13,
                attr_cmps: 14,
                targets_pruned: 15,
            },
            ..Default::default()
        };
        let text = s.summary();
        for needle in [
            "3 SS",
            "100 joined",
            "9 emitted",
            "21 verified",
            "70 pruned",
            "12 skyline",
            "13 dom tests",
            "14 attr cmps",
            "15 target legs pruned",
        ] {
            assert!(text.contains(needle), "missing '{needle}' in: {text}");
        }
    }
}
