//! Choosing k from a target result size (Problems 3 and 4).
//!
//! Users rarely know a good `k`, but they do know how many results they
//! want to review. This example sweeps δ over a synthetic workload and
//! shows what each find-k strategy does.
//!
//! ```sh
//! cargo run --release --example tune_k
//! ```

use ksjq::prelude::*;

fn main() -> CoreResult<()> {
    // A moderate two-relation workload: d = 5 each, independent data.
    let spec1 = DatasetSpec {
        n: 800,
        agg_attrs: 0,
        local_attrs: 5,
        groups: 8,
        data_type: DataType::Independent,
        seed: 7,
    };
    let spec2 = DatasetSpec { seed: 8, ..spec1 };
    let (r1, r2) = (spec1.generate(), spec2.generate());
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[])?;
    let cfg = Config::default();
    let (kmin, kmax) = k_range(&cx);
    println!(
        "n = {} per relation, {} joined tuples, valid k: {kmin}..={kmax}\n",
        spec1.n,
        cx.count_pairs()
    );

    // The skyline size at each k (Lemma 1: monotone in k).
    println!("skyline size by k:");
    for k in kmin..=kmax {
        let size = ksjq_grouping(&cx, k, &cfg)?.len();
        println!("  k = {k:>2}: {size:>7} tuples");
    }

    println!("\nfind-k (at least δ):");
    println!(
        "{:>8} {:>9} {:>10} {:>6} {:>6} {:>6}",
        "δ", "k", "satisfied", "full", "bound", "strategy"
    );
    for delta in [10usize, 100, 1_000, 10_000, 100_000] {
        for strategy in [
            FindKStrategy::Naive,
            FindKStrategy::Range,
            FindKStrategy::Binary,
        ] {
            let rep = find_k_at_least(&cx, delta, strategy, &cfg)?;
            println!(
                "{:>8} {:>9} {:>10} {:>6} {:>6} {:>6}",
                delta,
                rep.k,
                rep.satisfied,
                rep.full_computations,
                rep.bound_computations,
                strategy.to_string()
            );
        }
    }

    println!("\nfind-k (at most δ = 1000):");
    let rep = find_k_at_most(&cx, 1000, FindKStrategy::Binary, &cfg)?;
    let size = ksjq_grouping(&cx, rep.k, &cfg)?.len();
    println!(
        "  largest k with ≤ 1000 skyline tuples: k = {} ({} tuples)",
        rep.k, size
    );

    Ok(())
}
