//! The verification-kernel ablation: materialise-then-compare versus the
//! split-side kernel versus the columnar lane-blocked kernel.
//!
//! `ksjq-core`'s verifier no longer builds joined tuples in its hot loop
//! (see `ksjq_core::verify`); this module keeps a counted replica of the
//! **pre-split** kernel — `cx.fill` into scratch, then an early-abandoning
//! `k_dominates` over the full joined arity, target sets scanned in id
//! order — plus the PR-4 row-major split kernel (`JoinedCheck`, now the
//! oracle) and the production columnar kernel (`ColumnarCheck`), so the
//! harness can measure exactly what each rewrite buys on a given workload
//! and pin the numbers in a committed baseline (`BENCH_kernel.json`).
//! [`measure_domgen_scaling`] covers the other half of the PR-5 work: the
//! dominator-generation phase sharded over threads.

use crate::PaperParams;
use ksjq_core::{
    classify, precompute_target_sets, target_set, validate_k, Category, ColumnarCheck, Config,
    JoinedCheck, TargetCache,
};
use ksjq_join::JoinContext;
use std::time::{Duration, Instant};

/// Work and wall-clock of one verification sweep over all candidates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Joined-tuple dominance tests evaluated.
    pub dom_tests: u64,
    /// Attribute positions compared.
    pub attr_cmps: u64,
    /// Wall-clock of the verification sweep.
    pub wall: Duration,
    /// Candidates that survived (must agree between kernels).
    pub survivors: usize,
}

/// Both kernels measured on one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelComparison {
    /// The workload knobs.
    pub params: PaperParams,
    /// Joined pairs `N` of the workload.
    pub joined_pairs: u64,
    /// Candidate pairs that reached verification.
    pub candidates: usize,
    /// Candidates actually measured. Equal to `candidates` unless a
    /// sampling cap was set: the materialized reference is O(n²) per
    /// candidate, so full sweeps at `n ≥ 10k` would take hours for a
    /// number whose ratio a deterministic stride sample pins just as well.
    pub measured: usize,
    /// The pre-split reference: materialise each dominator, full-arity
    /// `k_dominates`.
    pub materialized: KernelCost,
    /// The PR-4 row-major split-side kernel
    /// (`ksjq_core::verify::JoinedCheck`, now the oracle).
    pub split: KernelCost,
    /// The columnar lane-blocked kernel
    /// (`ksjq_core::verify::ColumnarCheck`, the production path).
    pub columnar: KernelCost,
}

impl KernelComparison {
    /// How many times fewer attribute comparisons the split kernel does.
    pub fn attr_cmp_ratio(&self) -> f64 {
        self.materialized.attr_cmps as f64 / (self.split.attr_cmps.max(1)) as f64
    }

    /// Wall-clock speedup of the split kernel over the materialized
    /// reference.
    pub fn speedup(&self) -> f64 {
        self.materialized.wall.as_secs_f64() / self.split.wall.as_secs_f64().max(1e-9)
    }

    /// Wall-clock speedup of the columnar kernel over the split kernel —
    /// the PR-5 headline number.
    pub fn columnar_speedup(&self) -> f64 {
        self.split.wall.as_secs_f64() / self.columnar.wall.as_secs_f64().max(1e-9)
    }
}

/// `k_dominates` with an attribute-comparison counter — the pre-split hot
/// loop, early abandonment included.
#[inline]
fn k_dominates_counted(u: &[f64], v: &[f64], k: usize, cmps: &mut u64) -> bool {
    let d = u.len();
    if k > d {
        return false;
    }
    let mut le = 0usize;
    let mut lt = false;
    for i in 0..d {
        *cmps += 1;
        let (a, b) = (u[i], v[i]);
        le += (a <= b) as usize;
        lt |= a < b;
        if le + (d - i - 1) < k {
            return false;
        }
    }
    le >= k && lt
}

/// Which one-sided check a candidate takes (mirrors the grouping
/// algorithm's fate table, including the `a ≥ 2` Theorem-3 deviation).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Emit,
    Left,
    Right,
}

/// One verification candidate: the pair, its check kind, and its
/// materialised joined row (opaque — produced by
/// [`prepare_candidates`], consumed by the sweep functions).
#[derive(Debug)]
pub struct Candidate {
    u: u32,
    v: u32,
    kind: Kind,
    row: Vec<f64>,
}

/// Classify the workload and collect its verification candidates, so
/// benchmark loops can time the sweeps alone (dataset generation,
/// classification and row materialisation are identical setup for both
/// kernels and would otherwise drown the measurement).
pub fn prepare_candidates(cx: &JoinContext<'_>, k: usize, cfg: &Config) -> Vec<Candidate> {
    let params = validate_k(cx, k).expect("benchmark k in range");
    let cls = classify(cx, &params, cfg.kdom);
    let verify_yes = params.a >= 2;
    let mut out = Vec::new();
    for u in 0..cls.left.len() as u32 {
        let cu = cls.left[u as usize];
        if cu == Category::NN {
            continue;
        }
        for &v in cx.right_partners(u) {
            let kind = match (cu, cls.right[v as usize]) {
                (Category::SS, Category::SS) if !verify_yes => Kind::Emit,
                (Category::SS, Category::SS) | (Category::SS, Category::SN) => Kind::Left,
                (Category::SN, Category::SS) => Kind::Right,
                (Category::SN, Category::SN) => Kind::Left,
                _ => continue,
            };
            out.push(Candidate {
                u,
                v,
                kind,
                row: cx.joined_row(u, v),
            });
        }
    }
    out
}

/// The pre-split verification sweep: target sets in ascending id order, a
/// freshly materialised joined tuple per `(dominator, candidate)` pair.
pub fn run_materialized(cx: &JoinContext<'_>, k: usize, cands: &[Candidate]) -> KernelCost {
    let params = validate_k(cx, k).expect("benchmark k in range");
    let llocals: Vec<usize> = cx.left().schema().local_indices().collect();
    let rlocals: Vec<usize> = cx.right().schema().local_indices().collect();
    let mut lsets: Vec<Option<Vec<u32>>> = vec![None; cx.left().n()];
    let mut rsets: Vec<Option<Vec<u32>>> = vec![None; cx.right().n()];
    let mut scratch = vec![0.0; cx.d_joined()];
    let mut dom_tests = 0u64;
    let mut attr_cmps = 0u64;
    let mut survivors = 0usize;
    let t = Instant::now();
    for cand in cands {
        let dominated = match cand.kind {
            Kind::Emit => false,
            Kind::Left => {
                let set = lsets[cand.u as usize]
                    .get_or_insert_with(|| target_set(cx.left(), &llocals, cand.u, params.k1_pp));
                let mut hit = false;
                'left: for &u in set.iter() {
                    for &v in cx.right_partners(u) {
                        dom_tests += 1;
                        cx.fill(u, v, &mut scratch);
                        if k_dominates_counted(&scratch, &cand.row, k, &mut attr_cmps) {
                            hit = true;
                            break 'left;
                        }
                    }
                }
                hit
            }
            Kind::Right => {
                let set = rsets[cand.v as usize]
                    .get_or_insert_with(|| target_set(cx.right(), &rlocals, cand.v, params.k2_pp));
                let mut hit = false;
                'right: for &v in set.iter() {
                    for &u in cx.left_partners(v) {
                        dom_tests += 1;
                        cx.fill(u, v, &mut scratch);
                        if k_dominates_counted(&scratch, &cand.row, k, &mut attr_cmps) {
                            hit = true;
                            break 'right;
                        }
                    }
                }
                hit
            }
        };
        survivors += !dominated as usize;
    }
    KernelCost {
        dom_tests,
        attr_cmps,
        wall: t.elapsed(),
        survivors,
    }
}

/// The split-side sweep, exactly as the grouping algorithm's serial
/// verification phase runs it.
pub fn run_split(cx: &JoinContext<'_>, k: usize, cands: &[Candidate]) -> KernelCost {
    let params = validate_k(cx, k).expect("benchmark k in range");
    let mut ltargets = TargetCache::new(cx.left(), params.k1_pp);
    let mut rtargets = TargetCache::new(cx.right(), params.k2_pp);
    let mut chk = JoinedCheck::new(cx, k);
    let mut survivors = 0usize;
    let t = Instant::now();
    for cand in cands {
        let dominated = match cand.kind {
            Kind::Emit => false,
            Kind::Left => chk.dominated_via_left(ltargets.get(cand.u), &cand.row),
            Kind::Right => chk.dominated_via_right(rtargets.get(cand.v), &cand.row),
        };
        survivors += !dominated as usize;
    }
    let wall = t.elapsed();
    let c = chk.counters();
    KernelCost {
        dom_tests: c.dom_tests,
        attr_cmps: c.attr_cmps,
        wall,
        survivors,
    }
}

/// The columnar lane-blocked sweep (`ksjq_core::verify::ColumnarCheck`,
/// the production verification path), driven over the identical
/// candidates and SFS-ordered target sets as [`run_split`].
pub fn run_columnar(cx: &JoinContext<'_>, k: usize, cands: &[Candidate]) -> KernelCost {
    let params = validate_k(cx, k).expect("benchmark k in range");
    let mut ltargets = TargetCache::new(cx.left(), params.k1_pp);
    let mut rtargets = TargetCache::new(cx.right(), params.k2_pp);
    let mut chk = ColumnarCheck::new(cx, k);
    let mut survivors = 0usize;
    let t = Instant::now();
    for cand in cands {
        let dominated = match cand.kind {
            Kind::Emit => false,
            Kind::Left => chk.dominated_via_left(ltargets.get(cand.u), &cand.row),
            Kind::Right => chk.dominated_via_right(rtargets.get(cand.v), &cand.row),
        };
        survivors += !dominated as usize;
    }
    let wall = t.elapsed();
    let c = chk.counters();
    KernelCost {
        dom_tests: c.dom_tests,
        attr_cmps: c.attr_cmps,
        wall,
        survivors,
    }
}

/// One thread count's dominator-generation measurement: both sides'
/// target sets precomputed over the classification, exactly the
/// dominator-based algorithm's phase 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomgenRun {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock of both sides' set construction.
    pub wall: Duration,
    /// Total target-set members produced (must be identical across thread
    /// counts — checked by [`measure_domgen_scaling`]).
    pub members: u64,
}

/// Measure the dominator-generation phase of `params`' workload at each
/// thread count (classification and data generation are shared setup,
/// excluded from the timings). Panics if any thread count produces
/// different sets than the first — a scaling number for wrong answers
/// measures nothing.
pub fn measure_domgen_scaling(
    params: &PaperParams,
    cfg: &Config,
    thread_counts: &[usize],
) -> Vec<DomgenRun> {
    let (r1, r2) = params.relations();
    let cx = params.context(&r1, &r2);
    let p = validate_k(&cx, params.k).expect("benchmark k in range");
    let cls = classify(&cx, &p, cfg.kdom);
    type TargetSets = Vec<Option<Vec<u32>>>;
    let mut runs = Vec::new();
    let mut reference: Option<(TargetSets, TargetSets)> = None;
    for &threads in thread_counts {
        let t = Instant::now();
        let lt = precompute_target_sets(cx.left(), &cls.left, p.k1_pp, threads);
        let rt = precompute_target_sets(cx.right(), &cls.right, p.k2_pp, threads);
        let wall = t.elapsed();
        let members = lt
            .iter()
            .chain(rt.iter())
            .flatten()
            .map(|s| s.len() as u64)
            .sum();
        match &reference {
            None => reference = Some((lt, rt)),
            Some((rl, rr)) => {
                assert!(
                    *rl == lt && *rr == rt,
                    "dominator generation diverged at {threads} threads"
                );
            }
        }
        runs.push(DomgenRun {
            threads,
            wall,
            members,
        });
    }
    runs
}

/// Measure both kernels on `params`' workload; panics if their surviving
/// candidate counts disagree (a benchmark that measures wrong answers
/// measures nothing).
pub fn compare_verification_kernels(params: &PaperParams, cfg: &Config) -> KernelComparison {
    compare_verification_kernels_sampled(params, cfg, None)
}

/// [`compare_verification_kernels`] measuring at most `max_candidates`
/// candidates (deterministic stride over the candidate list, so both
/// kernels see the identical sample).
pub fn compare_verification_kernels_sampled(
    params: &PaperParams,
    cfg: &Config,
    max_candidates: Option<usize>,
) -> KernelComparison {
    let (r1, r2) = params.relations();
    let cx = params.context(&r1, &r2);
    let mut cands = prepare_candidates(&cx, params.k, cfg);
    let total = cands.len();
    if let Some(cap) = max_candidates {
        if cap > 0 && total > cap {
            let step = total.div_ceil(cap);
            cands = cands
                .into_iter()
                .enumerate()
                .filter_map(|(i, c)| (i % step == 0).then_some(c))
                .collect();
        }
    }
    let materialized = run_materialized(&cx, params.k, &cands);
    let split = run_split(&cx, params.k, &cands);
    let columnar = run_columnar(&cx, params.k, &cands);
    assert_eq!(
        materialized.survivors, split.survivors,
        "kernels disagree on {params:?}"
    );
    assert_eq!(
        split.survivors, columnar.survivors,
        "columnar kernel disagrees on {params:?}"
    );
    KernelComparison {
        params: *params,
        joined_pairs: cx.count_pairs(),
        candidates: total,
        measured: cands.len(),
        materialized,
        split,
        columnar,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksjq_datagen::DataType;

    #[test]
    fn kernels_agree_and_split_compares_less() {
        let params = PaperParams {
            n: 400,
            d: 7,
            a: 2,
            g: 10,
            k: 11,
            data_type: DataType::AntiCorrelated,
            seed: 7,
        };
        let cmp = compare_verification_kernels(&params, &Config::default());
        assert!(cmp.candidates > 0, "{cmp:?}");
        assert_eq!(cmp.materialized.survivors, cmp.split.survivors);
        assert_eq!(cmp.split.survivors, cmp.columnar.survivors);
        assert!(cmp.split.attr_cmps > 0);
        assert!(
            cmp.split.attr_cmps < cmp.materialized.attr_cmps,
            "split kernel should compare fewer attributes: {cmp:?}"
        );
        assert!(cmp.columnar.dom_tests > 0);
    }

    #[test]
    fn domgen_scaling_is_thread_invariant() {
        let params = PaperParams {
            n: 150,
            data_type: DataType::AntiCorrelated,
            seed: 5,
            ..Default::default()
        };
        let runs = measure_domgen_scaling(&params, &Config::default(), &[1, 2, 4]);
        assert_eq!(runs.len(), 3);
        assert!(runs[0].members > 0);
        assert!(runs.iter().all(|r| r.members == runs[0].members));
    }

    #[test]
    fn survivors_match_the_real_algorithm_output() {
        let params = PaperParams {
            n: 200,
            d: 5,
            a: 0,
            g: 4,
            k: 7,
            data_type: DataType::Independent,
            seed: 3,
        };
        let (r1, r2) = params.relations();
        let cx = params.context(&r1, &r2);
        let cfg = Config::default();
        let out = ksjq_core::ksjq_grouping(&cx, params.k, &cfg).unwrap();
        let cmp = compare_verification_kernels(&params, &cfg);
        assert_eq!(cmp.split.survivors, out.len());
    }
}
