//! Cooperative cancellation for deadline-bounded execution.
//!
//! The KSJQ kernels are tight loops over candidate pairs; a server
//! cannot abort them from outside without either killing the thread
//! (unsafe — scratch state, counters and caches would be torn) or
//! paying a clock read per iteration. [`Checkpoint`] is the middle
//! ground: a countdown that consults the wall clock only every
//! [`Checkpoint::INTERVAL`] ticks, and only when a deadline is actually
//! set — the no-deadline path is a single branch on a `None`.
//!
//! Every execution loop that can run long ticks a checkpoint once per
//! unit of work (one candidate verified, one find-k probe, one parallel
//! shard step). When the deadline passes, the tick returns
//! [`CoreError::DeadlineExceeded`] and the error propagates out through
//! the ordinary `CoreResult` plumbing, leaving all shared state intact —
//! the query can simply be retried with a later deadline.

use crate::error::{CoreError, CoreResult};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// A throttled deadline checker for hot loops.
///
/// `tick()` is designed to be called once per loop iteration; it reads
/// the clock only every [`INTERVAL`](Self::INTERVAL) calls. With no
/// deadline configured it never reads the clock at all.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    deadline: Option<Instant>,
    countdown: u32,
}

impl Checkpoint {
    /// How many ticks elapse between wall-clock reads. Small enough that
    /// even expensive per-candidate checks notice an expired deadline
    /// within a few milliseconds; large enough that `Instant::now()` is
    /// invisible in the kernels' profiles.
    pub const INTERVAL: u32 = 64;

    /// A checkpoint against `deadline` (`None` = never expires). The
    /// first tick always reads the clock — an already-expired deadline
    /// fires immediately even in loops shorter than
    /// [`INTERVAL`](Self::INTERVAL) — and subsequent reads are throttled.
    pub fn new(deadline: Option<Instant>) -> Self {
        Checkpoint {
            deadline,
            countdown: 1,
        }
    }

    /// Count one unit of work; every [`INTERVAL`](Self::INTERVAL) calls,
    /// compare the clock against the deadline.
    ///
    /// # Errors
    ///
    /// [`CoreError::DeadlineExceeded`] once the deadline has passed.
    #[inline]
    pub fn tick(&mut self) -> CoreResult<()> {
        let Some(deadline) = self.deadline else {
            return Ok(());
        };
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = Self::INTERVAL;
            if Instant::now() >= deadline {
                return Err(CoreError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Like [`tick`](Self::tick), but coordinated across sibling workers
    /// through a shared flag: the first worker to observe the expired
    /// deadline raises `cancelled`, and every other worker bails at its
    /// next clock boundary without waiting for its own clock read to
    /// agree.
    #[inline]
    pub fn tick_shared(&mut self, cancelled: &AtomicBool) -> CoreResult<()> {
        let Some(deadline) = self.deadline else {
            return Ok(());
        };
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = Self::INTERVAL;
            if cancelled.load(Ordering::Relaxed) {
                return Err(CoreError::DeadlineExceeded);
            }
            if Instant::now() >= deadline {
                cancelled.store(true, Ordering::Relaxed);
                return Err(CoreError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// One immediate (unthrottled) deadline check, for phase boundaries and
/// dispatch entry.
///
/// # Errors
///
/// [`CoreError::DeadlineExceeded`] if `deadline` is set and has passed.
#[inline]
pub fn check_deadline(deadline: Option<Instant>) -> CoreResult<()> {
    match deadline {
        Some(d) if Instant::now() >= d => Err(CoreError::DeadlineExceeded),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn no_deadline_never_expires() {
        let mut cp = Checkpoint::new(None);
        for _ in 0..10_000 {
            cp.tick().unwrap();
        }
        check_deadline(None).unwrap();
    }

    #[test]
    fn distant_deadline_passes() {
        let far = Instant::now() + Duration::from_secs(3600);
        let mut cp = Checkpoint::new(Some(far));
        for _ in 0..10_000 {
            cp.tick().unwrap();
        }
        check_deadline(Some(far)).unwrap();
    }

    #[test]
    fn expired_deadline_fires_on_first_tick() {
        let past = Instant::now() - Duration::from_millis(1);
        let mut cp = Checkpoint::new(Some(past));
        assert_eq!(cp.tick(), Err(CoreError::DeadlineExceeded));
        assert_eq!(check_deadline(Some(past)), Err(CoreError::DeadlineExceeded));
    }

    #[test]
    fn shared_flag_short_circuits_siblings() {
        let past = Instant::now() - Duration::from_millis(1);
        let cancelled = AtomicBool::new(false);
        let mut first = Checkpoint::new(Some(past));
        assert!(first.tick_shared(&cancelled).is_err());
        assert!(cancelled.load(Ordering::Relaxed));
        // A sibling with a *future* deadline still bails on the flag.
        let future = Instant::now() + Duration::from_secs(3600);
        let mut sibling = Checkpoint::new(Some(future));
        assert!(
            sibling.tick_shared(&cancelled).is_err(),
            "sibling must observe the shared cancellation"
        );
    }
}
