//! Workload generators for KSJQ experiments.
//!
//! * [`synthetic`] — the three classic skyline data distributions
//!   (independent, correlated, anti-correlated) of Börzsönyi et al., as
//!   produced by the `randdataset` generator the paper uses, plus uniform
//!   join-group assignment.
//! * [`flights`] — a synthetic two-leg flight network standing in for the
//!   paper's scraped MakeMyTrip dataset (Sec. 7.4): same cardinalities
//!   (192 outbound, 155 inbound, 13 hub cities), same attribute roles
//!   (cost and flying time aggregated; date-change fee, popularity and
//!   amenities local), and realistic price/quality anti-correlation.
//! * [`paper_tables`] — the exact flight tuples of the paper's Tables 1
//!   and 2, used as oracles by tests and the `paper_tables` example.
//!
//! All generators are deterministic given their seed.

pub mod flights;
pub mod io;
pub mod paper_tables;
pub mod synthetic;

pub use flights::{FlightNetwork, FlightNetworkSpec};
pub use io::{
    relation_from_csv, relation_to_annotated_csv, relation_to_annotated_csv_with, relation_to_csv,
};
pub use paper_tables::{paper_flights, PaperFlights};
pub use synthetic::{DataType, DatasetSpec};
