//! The KSJQ cluster router daemon.
//!
//! ```sh
//! # Two shards: shard 0 with two replicas, shard 1 with one.
//! ksjq-routerd --addr 127.0.0.1:7979 \
//!              --shard 127.0.0.1:7881,127.0.0.1:7883 \
//!              --shard 127.0.0.1:7882
//! ```
//!
//! Each `--shard` flag names one shard's replica set (comma-separated
//! `host:port` addresses of `ksjq-serverd` processes, best started with
//! `--no-demo`); flag order defines shard indices, which join-key
//! hashing targets — restart with the same shard order.

use ksjq_router::{DialPolicy, Router, RouterConfig, Topology};
use ksjq_server::{ConnectOptions, FaultPlan};
use std::time::Duration;

fn die(msg: &str) -> ! {
    eprintln!("ksjq-routerd: {msg}");
    std::process::exit(2)
}

fn parse_args() -> (RouterConfig, Topology) {
    let mut config = RouterConfig::default();
    let mut shards: Vec<Vec<String>> = Vec::new();
    let mut faults: Option<FaultPlan> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = args.next().unwrap_or_else(|| die("--addr needs host:port"));
            }
            "--shard" => {
                let replicas: Vec<String> = args
                    .next()
                    .unwrap_or_else(|| die("--shard needs host:port[,host:port…]"))
                    .split(',')
                    .map(|a| a.trim().to_owned())
                    .filter(|a| !a.is_empty())
                    .collect();
                if replicas.is_empty() {
                    die("--shard needs at least one replica address");
                }
                shards.push(replicas);
            }
            "--cache-entries" => {
                config.cache_entries = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--cache-entries needs an integer (0 disables)"));
            }
            "--fetch-batch" => {
                config.fetch_batch = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--fetch-batch needs a positive integer"));
            }
            "--check-batch" => {
                config.check_batch = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--check-batch needs a positive integer"));
            }
            "--attempts" => {
                config.policy.attempts = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--attempts needs a positive integer"));
            }
            "--timeout" => {
                let secs: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&secs| secs > 0)
                    .unwrap_or_else(|| die("--timeout needs seconds (> 0)"));
                config.policy.options = ConnectOptions::all(Duration::from_secs(secs));
            }
            "--data-dir" => {
                config.data_dir = Some(
                    args.next()
                        .unwrap_or_else(|| die("--data-dir needs a directory path"))
                        .into(),
                );
            }
            "--wal-max-bytes" => {
                config.wal_max_bytes = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .unwrap_or_else(|| die("--wal-max-bytes needs a positive byte count")),
                );
            }
            "--faults" => {
                let spec = args.next().unwrap_or_else(|| die("--faults needs a spec"));
                faults = Some(
                    spec.parse::<FaultPlan>()
                        .unwrap_or_else(|e| die(&format!("bad --faults spec: {e}"))),
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: ksjq-routerd --shard HOST:PORT[,HOST:PORT…] [--shard …] \n\
                     \x20                   [--addr HOST:PORT] [--cache-entries N]\n\
                     \x20                   [--fetch-batch N] [--check-batch N]\n\
                     \x20                   [--data-dir PATH] [--wal-max-bytes N]\n\
                     \x20                   [--attempts N] [--timeout SECS] [--faults SPEC]\n\
                     \x20 --shard          one shard's replica set; repeat per shard (order = shard index)\n\
                     \x20 --addr           listen address (default 127.0.0.1:7979; port 0 = ephemeral)\n\
                     \x20 --cache-entries  result-cache capacity (default 128; 0 disables)\n\
                     \x20 --fetch-batch    round-2 FETCH pairs per request (default 256)\n\
                     \x20 --check-batch    round-2 CHECK probe rows per request (default 64)\n\
                     \x20 --data-dir       two-phase decision WAL here: a restart replays it and\n\
                     \x20                  resolves in-doubt LOAD/APPENDs before accepting traffic\n\
                     \x20 --wal-max-bytes  seal the decision WAL into a segment past N bytes and\n\
                     \x20                  compact closed history (default: startup-only)\n\
                     \x20 --attempts       replica-set sweeps before a shard counts as down (default 3)\n\
                     \x20 --timeout        backend connect/read/write timeout in seconds (default 10)\n\
                     \x20 --faults         seeded fault injection on backend connections, e.g.\n\
                     \x20                  seed=7,drop=10,partial=10,delay=20:3 (per-mille); the\n\
                     \x20                  KSJQ_FAULTS env var is an equivalent spec\n\
                     \x20 KSJQ_CRASH_AT=N  crash-test hook: abort() at the Nth two-phase frame\n\
                     \x20                  boundary (chaos harness; requires --data-dir to matter)"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other} (try --help)")),
        }
    }
    if let Ok(v) = std::env::var("KSJQ_CRASH_AT") {
        config.crash_at = Some(
            v.parse::<u64>()
                .ok()
                .filter(|&n| n > 0)
                .unwrap_or_else(|| die("KSJQ_CRASH_AT needs a positive integer")),
        );
    }
    config.policy = DialPolicy {
        // Spread retry jitter across routers started together.
        seed: u64::from(std::process::id()),
        ..config.policy
    };
    if faults.is_none() {
        faults = FaultPlan::from_env("KSJQ_FAULTS")
            .unwrap_or_else(|e| die(&format!("bad KSJQ_FAULTS value: {e}")));
    }
    // Applied last so `--timeout` (which rebuilds the options wholesale)
    // cannot silently discard an earlier `--faults`.
    config.policy.options.faults = faults;
    let topology =
        Topology::new(shards).unwrap_or_else(|e| die(&format!("{e} (give at least one --shard)")));
    (config, topology)
}

fn main() {
    let (config, topology) = parse_args();
    let shards = topology.n_shards();
    let replicas: usize = (0..shards).map(|s| topology.replicas(s).len()).sum();
    let router = match Router::bind(topology, &config) {
        Ok(router) => router,
        Err(e) => die(&format!("cannot bind {}: {e}", config.addr)),
    };
    let addr = router.local_addr().expect("bound listener has an address");
    println!(
        "ksjq-routerd listening on {addr} ({shards} shards, {replicas} replicas, cache {} entries)",
        config.cache_entries
    );
    if let Err(e) = router.run() {
        die(&format!("router failed: {e}"));
    }
}
