//! Minimal, dependency-free CSV support.
//!
//! Only what the examples and dataset tooling need: comma separation, a
//! header row, `#` comment lines, and no quoting (none of our datasets
//! contain commas inside fields). This is intentionally *not* a general
//! CSV implementation.

use crate::error::{Error, Result};

/// A parsed CSV table: a header and string cells, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvTable {
    /// Column names from the header row.
    pub header: Vec<String>,
    /// Data rows; every row has `header.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Parse CSV text.
    ///
    /// * the first non-comment line is the header,
    /// * lines starting with `#` and blank lines are skipped,
    /// * every data row must match the header arity.
    pub fn parse(text: &str) -> Result<CsvTable> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        let header: Vec<String> = match lines.next() {
            Some(h) => h.split(',').map(|c| c.trim().to_owned()).collect(),
            None => return Err(Error::Csv("empty input".into())),
        };
        let mut rows = Vec::new();
        for (i, line) in lines.enumerate() {
            let cells: Vec<String> = line.split(',').map(|c| c.trim().to_owned()).collect();
            if cells.len() != header.len() {
                return Err(Error::Csv(format!(
                    "row {} has {} cells, header has {}",
                    i + 1,
                    cells.len(),
                    header.len()
                )));
            }
            rows.push(cells);
        }
        Ok(CsvTable { header, rows })
    }

    /// Index of a column by name.
    pub fn column(&self, name: &str) -> Result<usize> {
        self.header
            .iter()
            .position(|h| h == name)
            .ok_or_else(|| Error::Csv(format!("no column named '{name}'")))
    }

    /// Parse the cell at `(row, col)` as `f64`.
    pub fn number(&self, row: usize, col: usize) -> Result<f64> {
        let cell = &self.rows[row][col];
        cell.parse::<f64>()
            .map_err(|_| Error::Csv(format!("row {row}, column {col}: '{cell}' is not a number")))
    }

    /// Render the table back to CSV text (header + rows, newline-terminated).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let t = CsvTable::parse("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(t.header, vec!["a", "b"]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.number(1, 0).unwrap(), 3.0);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let t = CsvTable::parse("# generated\n\nx,y\n# mid comment\n5, 6\n").unwrap();
        assert_eq!(t.header, vec!["x", "y"]);
        assert_eq!(t.rows, vec![vec!["5", "6"]]);
    }

    #[test]
    fn ragged_row_rejected() {
        let e = CsvTable::parse("a,b\n1\n").unwrap_err();
        assert!(matches!(e, Error::Csv(_)));
    }

    #[test]
    fn empty_rejected() {
        assert!(CsvTable::parse("").is_err());
        assert!(CsvTable::parse("# only comments\n").is_err());
    }

    #[test]
    fn column_lookup() {
        let t = CsvTable::parse("cost,rating\n1,2\n").unwrap();
        assert_eq!(t.column("rating").unwrap(), 1);
        assert!(t.column("missing").is_err());
    }

    #[test]
    fn bad_number() {
        let t = CsvTable::parse("a\nnope\n").unwrap();
        assert!(t.number(0, 0).is_err());
    }

    #[test]
    fn roundtrip() {
        let src = "a,b\n1,2\n3,4\n";
        let t = CsvTable::parse(src).unwrap();
        assert_eq!(t.to_csv(), src);
    }
}
