//! Figs. 4 & 7: effect of the data distribution (independent, correlated,
//! anti-correlated), with (Fig 4) and without (Fig 7) aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksjq_bench::PaperParams;
use ksjq_core::{ksjq_grouping, ksjq_naive, Config};
use ksjq_datagen::DataType;

const TYPES: [(&str, DataType); 3] = [
    ("independent", DataType::Independent),
    ("correlated", DataType::Correlated),
    ("anticorrelated", DataType::AntiCorrelated),
];

fn bench_datatype_aggregate(c: &mut Criterion) {
    let cfg = Config::default();
    let mut group = c.benchmark_group("fig4_datatype_aggregate");
    group.sample_size(10);
    for (name, data_type) in TYPES {
        let params = PaperParams {
            n: 330,
            data_type,
            ..Default::default()
        };
        let (r1, r2) = params.relations();
        let cx = params.context(&r1, &r2);
        group.bench_function(BenchmarkId::new("G", name), |b| {
            b.iter(|| ksjq_grouping(&cx, params.k, &cfg).unwrap().len())
        });
        group.bench_function(BenchmarkId::new("N", name), |b| {
            b.iter(|| ksjq_naive(&cx, params.k, &cfg).unwrap().len())
        });
    }
    group.finish();
}

fn bench_datatype_no_aggregate(c: &mut Criterion) {
    let cfg = Config::default();
    let mut group = c.benchmark_group("fig7_datatype_no_aggregate");
    group.sample_size(10);
    for (name, data_type) in TYPES {
        let params = PaperParams {
            n: 330,
            d: 5,
            a: 0,
            k: 7,
            data_type,
            ..Default::default()
        };
        let (r1, r2) = params.relations();
        let cx = params.context(&r1, &r2);
        group.bench_function(BenchmarkId::new("G", name), |b| {
            b.iter(|| ksjq_grouping(&cx, params.k, &cfg).unwrap().len())
        });
        group.bench_function(BenchmarkId::new("N", name), |b| {
            b.iter(|| ksjq_naive(&cx, params.k, &cfg).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_datatype_aggregate,
    bench_datatype_no_aggregate
);
criterion_main!(benches);
