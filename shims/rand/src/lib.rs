//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of the 0.8 API its datagen, tests and examples use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! across platforms and runs, which is the only property the workspace
//! relies on (all generators are seeded; no test asserts a specific
//! sequence of the upstream `StdRng`).

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the type).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges sampleable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use crate::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
