//! # ksjq — K-Dominant Skyline Join Queries
//!
//! A complete implementation of *"K-Dominant Skyline Join Queries:
//! Extending the Join Paradigm to K-Dominant Skylines"* (Awasthi,
//! Bhattacharya, Gupta, Singh — ICDE 2017), including every substrate the
//! paper builds on: the relational core, classic skyline and k-dominant
//! skyline algorithms, equality/theta/Cartesian join machinery, monotone
//! aggregation, and the synthetic workload generators of its evaluation.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`relation`] | schemas, preferences, dominance kernel, tuple storage, [`relation::Catalog`] |
//! | [`skyline`] | BNL, SFS, and k-dominant skylines (naïve, OSA, TSA) |
//! | [`join`] | join specs, monotone aggregates, [`join::JoinContext`] |
//! | [`datagen`] | synthetic distributions, paper tables, flight networks |
//! | [`core`] | the KSJQ algorithms, find-k, and the [`core::Engine`] / [`core::QueryPlan`] serving layer |
//! | [`server`] | TCP serving: wire protocol, [`server::Server`] thread pool, result cache, [`server::KsjqClient`] |
//! | [`router`] | sharded distributed KSJQ: [`router::Topology`], two-phase `LOAD`, scatter-gather [`router::Router`] |
//!
//! ## Quickstart
//!
//! Register relations with an [`core::Engine`] once, then describe each
//! query as an owned [`core::QueryPlan`] and prepare/execute it — from any
//! thread, as often as you like:
//!
//! ```
//! use ksjq::prelude::*;
//!
//! // Two relations of flights joined on the stop-over city (the paper's
//! // running example, Tables 1–3).
//! let engine = Engine::new();
//! let flights = ksjq::datagen::paper_flights(false);
//! engine.register("outbound", flights.outbound)?;
//! engine.register("inbound", flights.inbound)?;
//!
//! let plan = QueryPlan::new("outbound", "inbound")
//!     .goal(Goal::Exact(7))
//!     .algorithm(Algorithm::Grouping);
//! let prepared = engine.prepare(&plan)?;
//! println!("{}", prepared.explain()); // what will run, human-readable
//! let result = prepared.execute()?;
//! for (u, v) in &result.pairs {
//!     println!("flight {} then flight {}", 11 + u.0, 21 + v.0);
//! }
//! assert_eq!(result.len(), 4);
//! # Ok::<(), ksjq::core::CoreError>(())
//! ```
//!
//! The borrowed, single-shot [`core::KsjqQuery`] builder still works for
//! quick in-scope queries over local relations.
//!
//! See `examples/` for aggregate queries (total cost over legs), theta
//! joins (arrival < departure), and automatic `k` selection from a target
//! result size.

pub use ksjq_core as core;
pub use ksjq_datagen as datagen;
pub use ksjq_join as join;
pub use ksjq_relation as relation;
pub use ksjq_router as router;
pub use ksjq_server as server;
pub use ksjq_skyline as skyline;

/// The most common imports in one place.
pub mod prelude {
    pub use ksjq_core::{
        find_k_at_least, find_k_at_most, k_range, ksjq_dominator_based, ksjq_grouping,
        ksjq_grouping_progressive, ksjq_naive, Algorithm, Config, CoreError, CoreResult, Engine,
        Explain, FindKReport, FindKStrategy, Goal, KsjqOutput, KsjqQuery, PreparedQuery, QueryPlan,
        RelationRef,
    };
    pub use ksjq_datagen::{DataType, DatasetSpec, FlightNetworkSpec};
    pub use ksjq_join::{AggFunc, JoinContext, JoinSpec, ThetaOp};
    pub use ksjq_relation::{
        Catalog, Preference, Relation, RelationHandle, Schema, StringDictionary, TupleId,
    };
    pub use ksjq_router::{Router, RouterConfig, Topology};
    pub use ksjq_server::{KsjqClient, PlanSpec, RowChunk, RowStream, Server, ServerConfig};
    pub use ksjq_skyline::KdomAlgo;
}
