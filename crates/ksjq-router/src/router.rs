//! The router front end: speaks the ordinary KSJQ client protocol, but
//! answers by orchestrating a cluster of shard servers.
//!
//! ## Execution model
//!
//! * `LOAD` — the relation is split by join-key hash
//!   ([`crate::partition`]) and applied to **every replica of every
//!   shard** in two phases (`STAGE` everywhere, then `COMMIT` everywhere
//!   only if every stage succeeded, else `ABORT` everywhere). A failed
//!   load therefore leaves the *old* binding live on all shards. Shard 0
//!   additionally holds a `.all.<name>` broadcast copy of the full
//!   relation, which backs `PREPARE` validation, `EXPLAIN` and the
//!   find-k goals (whose choice of `k` depends on global cardinalities).
//! * `QUERY` / `EXECUTE` with a fixed `k` — scatter-gather in two
//!   rounds. Round 1 runs the query on one replica of every
//!   *participating* shard (both slices non-empty), yielding each
//!   shard's local k-dominant skyline — a sound superset of the global
//!   answer's members on that shard, because all rows of a join group
//!   co-locate. Round 2 (only with ≥ 2 participating shards) `FETCH`es
//!   every candidate's joined values from its own shard and `CHECK`s
//!   them on every other participating shard; a candidate k-dominated
//!   anywhere is dropped. Survivors are remapped to global row ids
//!   (strictly monotone maps) and k-way merged — byte-identical to the
//!   single-node answer.
//! * Replica failure — any transport error fails over to the next
//!   replica of the shard, with bounded, jittered retries; only when a
//!   whole replica set is down does the client see `ERR unavailable`.

use crate::decision_log::{Decision, DecisionLog, Txn, TxnKind};
use crate::dialer::{DialPolicy, Dialer, FanoutCounters, ShardDialer};
use crate::merge::merge_sorted;
use crate::partition::{partition_csv, partition_delta, partition_synthetic, PartitionedLoad};
use crate::topology::{shard_of, Topology};
use ksjq_core::{ExecStats, Goal, KsjqOutput};
use ksjq_relation::TupleId;
use ksjq_server::{
    ClientError, Cursor, ErrorCode, LoadSource, PlanSpec, Request, Response, ResultCache, RowChunk,
    RowSet, ServerStats, MAX_LINE_BYTES, PROTOCOL_VERSION, ROWS_PER_CHUNK,
};
use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Default `FETCH` batch size: row-id pairs per request.
pub const DEFAULT_FETCH_BATCH: usize = 256;
/// Default `CHECK` batch size: probe rows per request (each row is
/// `d_joined` decimal floats, so this stays far below the 1 MiB request
/// cap).
pub const DEFAULT_CHECK_BATCH: usize = 64;

/// Router knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address (`host:port`; port 0 binds ephemeral).
    pub addr: String,
    /// Result-cache capacity (0 disables caching and `MORE` paging).
    pub cache_entries: usize,
    /// Backend retry/backoff/timeout policy.
    pub policy: DialPolicy,
    /// Round-2 `FETCH` batch size (`--fetch-batch`): candidate pairs per
    /// request. Larger batches mean fewer round trips but bigger frames.
    pub fetch_batch: usize,
    /// Round-2 `CHECK` batch size (`--check-batch`): probe rows per
    /// request.
    pub check_batch: usize,
    /// Decision-WAL directory (`--data-dir`): every two-phase `LOAD` /
    /// `APPEND` durably logs its begin/decision/outcome records here
    /// *before* the corresponding backend frame is sent, and a restarted
    /// router replays the log and drives every in-doubt transaction to
    /// committed-everywhere or aborted-everywhere before accepting
    /// traffic. `None` keeps the stateless-coordinator behaviour.
    pub data_dir: Option<std::path::PathBuf>,
    /// Seal the active decision WAL into a segment past this many bytes
    /// and compact the closed history into the snapshot
    /// (`--wal-max-bytes`; `None` = startup-only compaction).
    pub wal_max_bytes: Option<u64>,
    /// Crash-test hook (`KSJQ_CRASH_AT`): `abort()` the process at the
    /// Nth two-phase frame boundary. The chaos e2e sweeps N to kill the
    /// router at every edge of the commit protocol. `None` / 0 disables.
    pub crash_at: Option<u64>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:7979".into(),
            cache_entries: 128,
            policy: DialPolicy::default(),
            fetch_batch: DEFAULT_FETCH_BATCH,
            check_batch: DEFAULT_CHECK_BATCH,
            data_dir: None,
            wal_max_bytes: None,
            crash_at: None,
        }
    }
}

/// What the router remembers about a relation it loaded.
#[derive(Debug)]
struct RelMeta {
    /// `id_maps[s][local]` = global row id (strictly increasing).
    id_maps: Vec<Vec<u32>>,
    /// `keys[global]` = textual join key of every row — what lets
    /// `APPEND` extend the id maps in place and `DELETE` recompute them
    /// without refetching anything from the shards.
    keys: Vec<String>,
}

/// A prepared query: the router keeps the plan (and re-sends it as a
/// one-shot `QUERY` on every `EXECUTE`) instead of relying on
/// server-side session state, so a replica failover between `PREPARE`
/// and `EXECUTE` is invisible.
#[derive(Debug)]
struct Prepared {
    plan: PlanSpec,
    explain: String,
}

#[derive(Debug)]
struct RouterState {
    topology: Topology,
    policy: DialPolicy,
    relations: RwLock<HashMap<String, Arc<RelMeta>>>,
    cache: ResultCache,
    /// Serialises catalog mutations: interleaved two-phase loads of the
    /// same name from two sessions must not cross-commit.
    load_lock: Mutex<()>,
    fanout: Arc<FanoutCounters>,
    /// Round-2 batch sizes (`--fetch-batch` / `--check-batch`).
    fetch_batch: usize,
    check_batch: usize,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    fanout_queries: AtomicU64,
    merge_us: AtomicU64,
    /// Bumped on every catalog mutation the router drives (`LOAD`,
    /// `APPEND`, `DELETE`) — the cluster-level analogue of a shard's
    /// `catalog_epoch`.
    epoch: AtomicU64,
    /// Rows appended through this router.
    delta_rows: AtomicU64,
    /// Requests that died on a `DEADLINE` — locally between rounds or as
    /// an `ERR timeout` relayed from a shard.
    timeouts: AtomicU64,
    /// The durable two-phase decision WAL (`--data-dir`); `None` for a
    /// stateless coordinator. Mutation-path appends happen under
    /// `load_lock`, so record order is decision order.
    decision_log: Mutex<Option<DecisionLog>>,
    /// Transactions the decision WAL replayed as in-doubt; drained by
    /// the resolution thread before the gate opens.
    pending: Mutex<Vec<Txn>>,
    /// While set, everything except `HELLO` / `STATS` / `DEADLINE` /
    /// `CLOSE` answers `ERR recovering`: the router refuses traffic
    /// until every in-doubt transaction has converged.
    recovering: AtomicBool,
    /// In-doubt transactions driven to a terminal state since startup.
    in_doubt_resolved: AtomicU64,
    /// Crash-test countdown (`KSJQ_CRASH_AT`): the process aborts when
    /// this hits its Nth two-phase frame boundary; 0 = disabled.
    crash_at: AtomicU64,
    rotation: AtomicUsize,
    stop: AtomicBool,
}

/// One crash-test boundary. With `crash_at = N`, the Nth boundary calls
/// `std::process::abort()` — the closest in-process stand-in for
/// `kill -9` (no destructors, no flushes beyond what already fsynced).
/// Boundaries bracket every backend frame and every decision-WAL record
/// of the two-phase protocol, so a sweep over N crashes the router at
/// each edge exactly once.
fn crash_point(state: &RouterState) {
    if state.crash_at.load(Ordering::Relaxed) == 0 {
        return;
    }
    if state.crash_at.fetch_sub(1, Ordering::SeqCst) == 1 {
        eprintln!("ksjq-routerd: KSJQ_CRASH_AT boundary reached; aborting");
        std::process::abort();
    }
}

/// The distributed KSJQ front end. Bind, then [`run`](Router::run) (or
/// [`start`](Router::start) on a background thread for tests).
#[derive(Debug)]
pub struct Router {
    listener: TcpListener,
    state: Arc<RouterState>,
}

impl Router {
    /// Bind the listen socket (connections are accepted by `run`).
    ///
    /// With [`RouterConfig::data_dir`] set this also replays the
    /// decision WAL; transactions that never reached their `END` record
    /// come back as in-doubt, the recovering gate closes, and
    /// [`run`](Router::run) drives them to a terminal state before the
    /// router accepts traffic.
    pub fn bind(topology: Topology, config: &RouterConfig) -> io::Result<Router> {
        let listener = TcpListener::bind(&config.addr)?;
        let mut pending = Vec::new();
        let decision_log = match &config.data_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let (log, in_doubt) = DecisionLog::open(dir, config.wal_max_bytes)?;
                pending = in_doubt;
                Some(log)
            }
            None => None,
        };
        if !pending.is_empty() {
            println!(
                "ksjq-routerd: {} in-doubt transaction(s) replayed; gating traffic until resolved",
                pending.len()
            );
        }
        let recovering = !pending.is_empty();
        let state = Arc::new(RouterState {
            topology,
            policy: config.policy,
            relations: RwLock::new(HashMap::new()),
            cache: ResultCache::new(config.cache_entries),
            load_lock: Mutex::new(()),
            fanout: Arc::new(FanoutCounters::default()),
            fetch_batch: config.fetch_batch.max(1),
            check_batch: config.check_batch.max(1),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            fanout_queries: AtomicU64::new(0),
            merge_us: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            delta_rows: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            decision_log: Mutex::new(decision_log),
            pending: Mutex::new(pending),
            recovering: AtomicBool::new(recovering),
            in_doubt_resolved: AtomicU64::new(0),
            crash_at: AtomicU64::new(config.crash_at.unwrap_or(0)),
            rotation: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
        });
        Ok(Router { listener, state })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept and serve connections until stopped (thread per
    /// connection — a router session is long-lived and few in number
    /// next to the shard servers behind it).
    pub fn run(self) -> io::Result<()> {
        if self.state.recovering.load(Ordering::SeqCst) {
            // Resolve in-doubt transactions off the accept loop so STATS
            // and HELLO stay answerable (everything else gets
            // `ERR recovering` until the gate opens).
            let state = self.state.clone();
            thread::spawn(move || resolve_pending(&state));
        }
        for stream in self.listener.incoming() {
            if self.state.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let state = self.state.clone();
            thread::spawn(move || handle_conn(&state, stream));
        }
        Ok(())
    }

    /// Bind and serve on a background thread; returns a stoppable handle.
    pub fn start(topology: Topology, config: &RouterConfig) -> io::Result<RunningRouter> {
        let router = Router::bind(topology, config)?;
        let addr = router.local_addr()?;
        let state = router.state.clone();
        let handle = thread::spawn(move || router.run());
        Ok(RunningRouter {
            addr,
            state,
            handle,
        })
    }
}

/// A router serving on a background thread.
#[derive(Debug)]
pub struct RunningRouter {
    addr: SocketAddr,
    state: Arc<RouterState>,
    handle: JoinHandle<io::Result<()>>,
}

impl RunningRouter {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop (existing sessions are
    /// torn down by their own I/O failing, not waited for).
    pub fn stop(self) -> io::Result<()> {
        self.state.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // unblock accept()
        self.handle.join().unwrap_or(Ok(()))
    }
}

// -------------------------------------------------------------- session

fn handle_conn(state: &RouterState, stream: TcpStream) {
    state.connections.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let rotation = state.rotation.fetch_add(1, Ordering::Relaxed);
    let mut dialer = Dialer::new(
        &state.topology,
        rotation,
        state.policy,
        state.fanout.clone(),
    );
    let mut sessions: HashMap<String, Prepared> = HashMap::new();
    let mut version = 1u32;
    // Session deadline (`DEADLINE <ms>`): each QUERY/EXECUTE gets this
    // budget, split across the scatter-gather rounds.
    let mut deadline_ms: Option<u64> = None;
    let mut line = String::new();
    loop {
        line.clear();
        // Cap the request line; an overlong line would desync the
        // framing, so it ends the session after an ERR.
        let mut limited = Read::take(reader.by_ref(), (MAX_LINE_BYTES + 2) as u64);
        match limited.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) if !line.ends_with('\n') && line.len() > MAX_LINE_BYTES => {
                send_err(
                    &mut writer,
                    state,
                    RouterError::new(ErrorCode::Parse, "request line too long"),
                );
                return;
            }
            Ok(_) => {}
        }
        let text = line.trim_end_matches(['\r', '\n']);
        if text.len() > MAX_LINE_BYTES {
            if !send_err(
                &mut writer,
                state,
                RouterError::new(ErrorCode::Parse, "request line too long"),
            ) {
                return;
            }
            continue;
        }
        if text.is_empty() {
            continue;
        }
        state.requests.fetch_add(1, Ordering::Relaxed);
        let request = match Request::parse(text) {
            Ok(request) => request,
            Err(e) => {
                if !send_err(&mut writer, state, RouterError::new(ErrorCode::Parse, e)) {
                    return;
                }
                continue;
            }
        };
        // In-doubt resolution gate: until every replayed two-phase
        // transaction has converged, only the session-management verbs
        // answer — queries against a half-committed cluster could
        // observe a relation on some replicas and not others.
        if state.recovering.load(Ordering::SeqCst)
            && !matches!(
                request,
                Request::Hello { .. } | Request::Stats | Request::Deadline { .. } | Request::Close
            )
        {
            if !send_err(
                &mut writer,
                state,
                RouterError::new(
                    ErrorCode::Recovering,
                    "resolving in-doubt transactions from the decision WAL; retry shortly",
                ),
            ) {
                return;
            }
            continue;
        }
        let keep_going = match request {
            Request::Hello { version: v } => {
                version = v.clamp(1, PROTOCOL_VERSION);
                send(&mut writer, state, &Response::Hello { version })
            }
            Request::Close => {
                let _ = send(&mut writer, state, &Response::Bye);
                return;
            }
            Request::More { cursor } => {
                let response = more(state, version, cursor);
                send(&mut writer, state, &response)
            }
            Request::Deadline { ms } => {
                deadline_ms = (ms > 0).then_some(ms);
                let ack = match deadline_ms {
                    Some(ms) => format!("deadline {ms}ms"),
                    None => "deadline cleared".into(),
                };
                send(&mut writer, state, &Response::Ok(ack))
            }
            Request::Load { name, source } => match load(state, &mut dialer, &name, &source) {
                Ok(msg) => send(&mut writer, state, &Response::Ok(msg)),
                Err(e) => send_err(&mut writer, state, e),
            },
            Request::Prepare { id, plan } => match prepare(state, &mut dialer, &id, &plan) {
                Ok((msg, prepared)) => {
                    sessions.insert(id, prepared);
                    send(&mut writer, state, &Response::Ok(msg))
                }
                Err(e) => send_err(&mut writer, state, e),
            },
            Request::Execute { id } => match sessions.get(&id) {
                Some(prepared) => {
                    let plan = prepared.plan.clone();
                    let deadline = start_deadline(deadline_ms);
                    match run_distributed(state, &mut dialer, &plan, deadline) {
                        Ok(run) => respond_result(&mut writer, state, version, &run),
                        Err(e) => send_err(&mut writer, state, e),
                    }
                }
                None => send_err(
                    &mut writer,
                    state,
                    RouterError::new(
                        ErrorCode::Invalid,
                        format!("unknown query id {id:?}: PREPARE it first"),
                    ),
                ),
            },
            Request::Query { plan } => {
                let deadline = start_deadline(deadline_ms);
                match run_distributed(state, &mut dialer, &plan, deadline) {
                    Ok(run) => respond_result(&mut writer, state, version, &run),
                    Err(e) => send_err(&mut writer, state, e),
                }
            }
            Request::Explain { id } => match sessions.get(&id) {
                Some(prepared) => {
                    let response = Response::Explain(prepared.explain.clone());
                    send(&mut writer, state, &response)
                }
                None => send_err(
                    &mut writer,
                    state,
                    RouterError::new(
                        ErrorCode::Invalid,
                        format!("unknown query id {id:?}: PREPARE it first"),
                    ),
                ),
            },
            Request::Stats => send_raw(&mut writer, &stats_line(state, sessions.len())),
            Request::Append { name, rows, staged } => {
                if staged {
                    send_err(
                        &mut writer,
                        state,
                        RouterError::new(
                            ErrorCode::Invalid,
                            "APPEND … STAGE is backend-only: the router stages and commits \
                             per-shard slices itself — send APPEND <name> ROWS <csv>",
                        ),
                    )
                } else {
                    match append(state, &mut dialer, &name, &rows) {
                        Ok(msg) => send(&mut writer, state, &Response::Ok(msg)),
                        Err(e) => send_err(&mut writer, state, e),
                    }
                }
            }
            Request::Delete { name, keys } => match delete(state, &mut dialer, &name, &keys) {
                Ok(msg) => send(&mut writer, state, &Response::Ok(msg)),
                Err(e) => send_err(&mut writer, state, e),
            },
            Request::Sync { .. }
            | Request::Stage { .. }
            | Request::Commit { .. }
            | Request::Abort { .. }
            | Request::StagedQuery
            | Request::Fetch { .. }
            | Request::Check { .. } => send_err(
                &mut writer,
                state,
                RouterError::new(
                    ErrorCode::Invalid,
                    "backend-only command: SYNC/STAGE/COMMIT/ABORT/STAGED?/FETCH/CHECK address \
                     one shard server, not the router",
                ),
            ),
        };
        if !keep_going {
            return;
        }
    }
}

fn send(writer: &mut TcpStream, state: &RouterState, response: &Response) -> bool {
    if let Response::Error { code, .. } = response {
        state.errors.fetch_add(1, Ordering::Relaxed);
        if *code == ErrorCode::Timeout {
            state.timeouts.fetch_add(1, Ordering::Relaxed);
        }
    }
    send_raw(writer, &response.to_string())
}

fn send_err(writer: &mut TcpStream, state: &RouterState, err: RouterError) -> bool {
    send(writer, state, &Response::err(err.code, err.message))
}

fn send_raw(writer: &mut TcpStream, line: &str) -> bool {
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .is_ok()
}

// ------------------------------------------------------------ responses

/// A finished distributed execution, shaped for the response writer.
#[derive(Debug)]
struct RunResult {
    k: usize,
    micros: u64,
    cached: bool,
    result_id: Option<u64>,
    output: Arc<KsjqOutput>,
}

fn respond_result(
    writer: &mut TcpStream,
    state: &RouterState,
    version: u32,
    run: &RunResult,
) -> bool {
    if version < 2 {
        let pairs = run.output.pairs.iter().map(|&(l, r)| (l.0, r.0)).collect();
        return send(
            writer,
            state,
            &Response::Rows(RowSet {
                k: run.k,
                micros: run.micros,
                cached: run.cached,
                pairs,
            }),
        );
    }
    let parts = run.output.chunk_count(ROWS_PER_CHUNK);
    for index in 0..parts {
        let response = chunk_response(run, index, parts);
        if !send(writer, state, &response) {
            return false;
        }
    }
    true
}

/// Serialise chunk `index` of a result (0-based; `parts` total) — the
/// same framing the single-node server emits.
fn chunk_response(run: &RunResult, index: usize, parts: usize) -> Response {
    let pairs = run
        .output
        .chunk(index, ROWS_PER_CHUNK)
        .unwrap_or(&[])
        .iter()
        .map(|&(l, r)| (l.0, r.0))
        .collect();
    let part = (index + 1) as u32;
    let parts = parts as u32;
    let cursor = match run.result_id {
        Some(result) if part < parts => Some(Cursor {
            result,
            part: part + 1,
        }),
        _ => None,
    };
    Response::Chunk(RowChunk {
        k: run.k,
        micros: run.micros,
        cached: run.cached,
        total: run.output.len(),
        part,
        parts,
        cursor,
        pairs,
    })
}

/// Serve one `MORE <cursor>` page out of the router's result cache.
fn more(state: &RouterState, version: u32, cursor: Cursor) -> Response {
    if version < 2 {
        return Response::err(
            ErrorCode::Invalid,
            "MORE requires protocol v2 (send HELLO 2 first)",
        );
    }
    let Some(hit) = state.cache.by_id(cursor.result) else {
        return Response::err(
            ErrorCode::Invalid,
            format!("unknown or expired cursor {cursor} (results age out of the cache)"),
        );
    };
    let parts = hit.output.chunk_count(ROWS_PER_CHUNK);
    let index = (cursor.part - 1) as usize;
    if index >= parts {
        return Response::err(
            ErrorCode::Invalid,
            format!("cursor {cursor} is past the end ({parts} parts)"),
        );
    }
    let run = RunResult {
        k: hit.k,
        micros: 0,
        cached: true,
        result_id: Some(hit.id),
        output: hit.output,
    };
    chunk_response(&run, index, parts)
}

/// The `STATS` frame: standard counters (engine-local ones zero — the
/// router does no dominance work itself except what `merge_us` times)
/// plus per-shard `shard<i>_rows=<n>` extension tokens, which the stock
/// STATS parser skips.
fn stats_line(state: &RouterState, sessions: usize) -> String {
    let cache = state.cache.counters();
    // Catalog durability lives on the shards (`ksjq-serverd
    // --data-dir`); the router's own WAL counters describe its
    // two-phase decision log, when one is configured.
    let (wal_records, wal_segments) = {
        let log = state.decision_log.lock().unwrap_or_else(|e| e.into_inner());
        log.as_ref().map_or((0, 0), |l| (l.records(), l.seals()))
    };
    let stats = ServerStats {
        connections: state.connections.load(Ordering::Relaxed),
        requests: state.requests.load(Ordering::Relaxed),
        errors: state.errors.load(Ordering::Relaxed),
        sessions: sessions as u64,
        relations: read_lock(&state.relations).len() as u64,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        cache_evictions: cache.evictions(),
        cache_len: state.cache.len() as u64,
        workers: 0,
        dom_tests: 0,
        attr_cmps: 0,
        domgen_us: 0,
        shed: 0,
        reaped: 0,
        peak_buf: 0,
        fanout_queries: state.fanout_queries.load(Ordering::Relaxed),
        merge_us: state.merge_us.load(Ordering::Relaxed),
        shard_retries: state.fanout.shard_retries.load(Ordering::Relaxed),
        shard_errors: state.fanout.shard_errors.load(Ordering::Relaxed),
        catalog_epoch: state.epoch.load(Ordering::Relaxed),
        // The router never maintains results itself — shards do; it
        // invalidates its merged cache on every delta.
        delta_maintained: 0,
        delta_rows: state.delta_rows.load(Ordering::Relaxed),
        timeouts: state.timeouts.load(Ordering::Relaxed),
        wal_records,
        wal_segments,
        // Worker panic isolation is a shard-server concern; the router
        // has no kernel checkpoints to inject at.
        panics: 0,
    };
    let mut out = Response::Stats(stats).to_string();
    let relations = read_lock(&state.relations);
    for s in 0..state.topology.n_shards() {
        let rows: u64 = relations.values().map(|m| m.id_maps[s].len() as u64).sum();
        out.push_str(&format!(" shard{s}_rows={rows}"));
    }
    out.push_str(&format!(
        " fetch_batch={} check_batch={} in_doubt_resolved={} recovering={}",
        state.fetch_batch,
        state.check_batch,
        state.in_doubt_resolved.load(Ordering::Relaxed),
        u64::from(state.recovering.load(Ordering::SeqCst)),
    ));
    out
}

fn read_lock(
    relations: &RwLock<HashMap<String, Arc<RelMeta>>>,
) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<RelMeta>>> {
    relations.read().unwrap_or_else(|e| e.into_inner())
}

// ----------------------------------------------------------------- load

/// A failed router operation: the stable [`ErrorCode`] its `ERR` frame
/// will carry, plus the human-readable message.
#[derive(Debug)]
struct RouterError {
    code: ErrorCode,
    message: String,
}

impl RouterError {
    fn new(code: ErrorCode, message: impl Into<String>) -> RouterError {
        RouterError {
            code,
            message: message.into(),
        }
    }
}

/// Router-side validation failures (bad plans, unknown relations,
/// partitioning errors) default to `invalid`.
impl From<String> for RouterError {
    fn from(message: String) -> RouterError {
        RouterError::new(ErrorCode::Invalid, message)
    }
}

impl From<&str> for RouterError {
    fn from(message: &str) -> RouterError {
        RouterError::new(ErrorCode::Invalid, message)
    }
}

/// Map a backend failure to the error the router's client sees: a dead
/// replica set is `unavailable`, a backend `ERR` keeps its own code
/// (`timeout` from a shard's deadline stays `timeout`), and a framing
/// violation is the router's own `internal` bug surface.
fn describe(shard: usize, e: ClientError) -> RouterError {
    match e {
        ClientError::Io(e) => RouterError::new(
            ErrorCode::Unavailable,
            format!("unavailable shard {shard}: {e}"),
        ),
        ClientError::Server { code, message } => RouterError::new(code, message),
        ClientError::Protocol(msg) => RouterError::new(
            ErrorCode::Internal,
            format!("shard {shard} protocol error: {msg}"),
        ),
    }
}

/// When a `DEADLINE` is armed, the moment this request must be done by.
fn start_deadline(deadline_ms: Option<u64>) -> Option<Instant> {
    deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms))
}

/// The backend `DEADLINE` value for the *remaining* budget (≥ 1 so it
/// never reads as "clear"), or `ERR timeout` once the budget is spent —
/// checked at every round boundary so a request that burned its budget
/// in round 1 never starts round 2.
fn remaining_ms(deadline: Option<Instant>) -> Result<Option<u64>, RouterError> {
    let Some(d) = deadline else { return Ok(None) };
    let now = Instant::now();
    if now >= d {
        return Err(RouterError::new(
            ErrorCode::Timeout,
            "deadline exceeded before the cluster answered",
        ));
    }
    Ok(Some(((d - now).as_millis() as u64).max(1)))
}

// --------------------------------------------------- decision logging

/// A decision-WAL write failed. Fatal for `BEGIN`/`DECIDE` records
/// (proceeding unlogged would reopen the silent in-doubt window the log
/// exists to close); `OUTCOME`/`END` records are best-effort, because
/// losing one only makes post-crash resolution re-probe a replica that
/// already answered — the protocol is idempotent.
fn wal_failure(e: io::Error) -> RouterError {
    RouterError::new(
        ErrorCode::Internal,
        format!("decision WAL write failed: {e}"),
    )
}

/// Run `f` against the decision log, if one is configured. `Ok(None)`
/// for a stateless router.
fn with_log<T>(
    state: &RouterState,
    f: impl FnOnce(&mut DecisionLog) -> io::Result<T>,
) -> Result<Option<T>, RouterError> {
    let mut guard = state.decision_log.lock().unwrap_or_else(|e| e.into_inner());
    match guard.as_mut() {
        Some(log) => f(log).map(Some).map_err(wal_failure),
        None => Ok(None),
    }
}

/// Like [`with_log`], scoped to an already-begun transaction: a no-op
/// when no log is configured (`txid` is `None`).
fn with_txn(
    state: &RouterState,
    txid: Option<u64>,
    f: impl FnOnce(&mut DecisionLog, u64) -> io::Result<()>,
) -> Result<(), RouterError> {
    match txid {
        Some(txid) => with_log(state, |log| f(log, txid)).map(|_| ()),
        None => Ok(()),
    }
}

fn load(
    state: &RouterState,
    dialer: &mut Dialer,
    name: &str,
    source: &LoadSource,
) -> Result<String, RouterError> {
    if name.starts_with('.') {
        return Err("relation names starting with '.' are reserved for the router".into());
    }
    let n_shards = state.topology.n_shards();
    let part = match source {
        LoadSource::Inline { csv } => partition_csv(csv, n_shards)?,
        LoadSource::Synthetic(spec) => partition_synthetic(spec, n_shards)?,
    };
    let _guard = state.load_lock.lock().unwrap_or_else(|e| e.into_inner());
    let all_name = format!(".all.{name}");
    // The BEGIN record is durable before any backend sees a frame: if
    // the router dies anywhere past this point, a restart replays the
    // transaction and drives it to a terminal state.
    let txid = with_log(state, |l| l.begin(TxnKind::Load, name))?;
    crash_point(state);

    // Phase one: stage the slice on every replica of every shard (plus
    // the broadcast copy on shard 0). First failure aborts everywhere —
    // no shard has published anything yet, so the old binding survives.
    let mut failure: Option<RouterError> = None;
    'stage: for s in 0..n_shards {
        let sd = dialer.shard_mut(s);
        for r in 0..sd.n_replicas() {
            let slice = &part.shard_csvs[s];
            crash_point(state);
            if let Err(e) = sd.call_replica(r, |c| c.stage_csv(name, slice)) {
                failure = Some(describe(s, e));
                break 'stage;
            }
            if s == 0 {
                crash_point(state);
                if let Err(e) = sd.call_replica(r, |c| c.stage_csv(&all_name, &part.full_csv)) {
                    failure = Some(describe(s, e));
                    break 'stage;
                }
            }
        }
    }
    if let Some(e) = failure {
        // Presumed abort: replay of a decision-less transaction aborts
        // anyway, so the records here are advisory — best-effort.
        let _ = with_txn(state, txid, |l, t| l.decide(t, Decision::Abort));
        abort_everywhere(state, dialer, name, &all_name);
        let _ = with_txn(state, txid, |l, t| l.end(t));
        return Err(e);
    }

    // The commit decision is durable before the first COMMIT frame goes
    // out: from here a restarted router finishes the commit instead of
    // presuming abort.
    crash_point(state);
    with_txn(state, txid, |l, t| l.decide(t, Decision::Commit))?;
    crash_point(state);

    // Phase two: every stage parsed, so commit everywhere. A commit can
    // still fail (replica crashed between phases); that leaves the
    // cluster mixed for this name — the transaction stays open in the
    // decision log, so a router restart drives the stragglers to
    // committed (or the client re-issues the LOAD).
    let mut commit_errors: Vec<String> = Vec::new();
    for s in 0..n_shards {
        let sd = dialer.shard_mut(s);
        for r in 0..sd.n_replicas() {
            let mut ok = true;
            crash_point(state);
            if let Err(e) = sd.call_replica(r, |c| c.commit(name)) {
                commit_errors.push(describe(s, e).message);
                ok = false;
            } else if s == 0 {
                crash_point(state);
                if let Err(e) = sd.call_replica(r, |c| c.commit(&all_name)) {
                    commit_errors.push(describe(s, e).message);
                    ok = false;
                }
            }
            let _ = with_txn(state, txid, |l, t| l.outcome(t, s, r, ok));
        }
    }
    state.cache.invalidate_relation(name);
    if !commit_errors.is_empty() {
        return Err(RouterError::new(
            ErrorCode::Unavailable,
            format!(
                "load partially committed ({} of {} commits failed; re-issue the LOAD, or \
                 restart the router to resolve from its decision WAL): {}",
                commit_errors.len(),
                n_shards,
                commit_errors.join("; ")
            ),
        ));
    }
    crash_point(state);
    let _ = with_txn(state, txid, |l, t| l.end(t));
    let PartitionedLoad {
        id_maps,
        keys,
        n,
        d,
        ..
    } = part;
    state
        .relations
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .insert(name.into(), Arc::new(RelMeta { id_maps, keys }));
    state.epoch.fetch_add(1, Ordering::Relaxed);
    Ok(format!("loaded {name} n={n} d={d} shards={n_shards}"))
}

// ------------------------------------------------------------- mutation

/// Forward an `APPEND … ROWS` to the cluster: partition the delta by the
/// load-time placement function (so appended rows land on the shard that
/// already holds their join group), run the same two-phase STAGE/COMMIT
/// the loader uses, then extend the id maps in place — global ids
/// `old_n..old_n+r` distribute to shards in input order, keeping every
/// map strictly monotone.
fn append(
    state: &RouterState,
    dialer: &mut Dialer,
    name: &str,
    rows: &str,
) -> Result<String, RouterError> {
    if name.starts_with('.') {
        return Err("relation names starting with '.' are reserved for the router".into());
    }
    let n_shards = state.topology.n_shards();
    let delta = partition_delta(rows, n_shards)?;
    let _guard = state.load_lock.lock().unwrap_or_else(|e| e.into_inner());
    let old = meta(state, name)?;
    let all_name = format!(".all.{name}");
    // As with LOAD: the BEGIN record is durable before the first frame.
    let txid = with_log(state, |l| l.begin(TxnKind::Append, name))?;
    crash_point(state);

    // Phase one: stage each non-empty slice on every replica of its
    // shard, and the full delta on shard 0's broadcast copy. A failure
    // aborts everywhere — nothing committed, old versions survive.
    let mut failure: Option<RouterError> = None;
    'stage: for s in 0..n_shards {
        let sd = dialer.shard_mut(s);
        for r in 0..sd.n_replicas() {
            let slice = &delta.shard_csvs[s];
            if !slice.is_empty() {
                crash_point(state);
                if let Err(e) = sd.call_replica(r, |c| c.append_stage(name, slice)) {
                    failure = Some(describe(s, e));
                    break 'stage;
                }
            }
            if s == 0 {
                crash_point(state);
                if let Err(e) = sd.call_replica(r, |c| c.append_stage(&all_name, &delta.full_csv)) {
                    failure = Some(describe(s, e));
                    break 'stage;
                }
            }
        }
    }
    if let Some(e) = failure {
        let _ = with_txn(state, txid, |l, t| l.decide(t, Decision::Abort));
        abort_everywhere(state, dialer, name, &all_name);
        let _ = with_txn(state, txid, |l, t| l.end(t));
        return Err(e);
    }

    crash_point(state);
    with_txn(state, txid, |l, t| l.decide(t, Decision::Commit))?;
    crash_point(state);

    // Phase two: commit the staged deltas. As with LOAD, a commit can
    // still fail mid-flight; the cluster is then mixed for this name —
    // the open decision-log entry drives the stragglers to committed on
    // the next router restart (or re-issue the whole LOAD).
    let mut commit_errors: Vec<String> = Vec::new();
    for s in 0..n_shards {
        let sd = dialer.shard_mut(s);
        for r in 0..sd.n_replicas() {
            let mut ok = true;
            if !delta.shard_csvs[s].is_empty() {
                crash_point(state);
                if let Err(e) = sd.call_replica(r, |c| c.commit(name)) {
                    commit_errors.push(describe(s, e).message);
                    ok = false;
                }
            }
            if ok && s == 0 {
                crash_point(state);
                if let Err(e) = sd.call_replica(r, |c| c.commit(&all_name)) {
                    commit_errors.push(describe(s, e).message);
                    ok = false;
                }
            }
            let _ = with_txn(state, txid, |l, t| l.outcome(t, s, r, ok));
        }
    }
    state.cache.invalidate_relation(name);
    if !commit_errors.is_empty() {
        return Err(RouterError::new(
            ErrorCode::Unavailable,
            format!(
                "append partially committed ({} commits failed; re-issue the LOAD, or restart \
                 the router to resolve from its decision WAL): {}",
                commit_errors.len(),
                commit_errors.join("; ")
            ),
        ));
    }
    crash_point(state);
    let _ = with_txn(state, txid, |l, t| l.end(t));
    let mut id_maps = old.id_maps.clone();
    let mut keys = old.keys.clone();
    let old_n = keys.len();
    for (j, key) in delta.keys.iter().enumerate() {
        id_maps[shard_of(key, n_shards)].push((old_n + j) as u32);
        keys.push(key.clone());
    }
    let r = delta.keys.len();
    let n = keys.len();
    state
        .relations
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .insert(name.into(), Arc::new(RelMeta { id_maps, keys }));
    state.epoch.fetch_add(1, Ordering::Relaxed);
    state.delta_rows.fetch_add(r as u64, Ordering::Relaxed);
    Ok(format!("appended {name} +{r} rows n={n} shards={n_shards}"))
}

/// Forward a `DELETE … KEYS` to every replica of every shard plus the
/// broadcast copy, then rebuild the id maps from the surviving keys.
/// Backends drop *all* rows carrying a key and preserve survivor order,
/// so renumbering survivors by position and replaying the placement
/// function reproduces each shard's exact local order.
fn delete(
    state: &RouterState,
    dialer: &mut Dialer,
    name: &str,
    keys: &[String],
) -> Result<String, RouterError> {
    if name.starts_with('.') {
        return Err("relation names starting with '.' are reserved for the router".into());
    }
    let n_shards = state.topology.n_shards();
    let _guard = state.load_lock.lock().unwrap_or_else(|e| e.into_inner());
    let old = meta(state, name)?;
    let all_name = format!(".all.{name}");
    let mut errors: Vec<String> = Vec::new();
    for s in 0..n_shards {
        let sd = dialer.shard_mut(s);
        for r in 0..sd.n_replicas() {
            if let Err(e) = sd.call_replica(r, |c| c.delete_keys(name, keys)) {
                errors.push(describe(s, e).message);
                continue;
            }
            if s == 0 {
                if let Err(e) = sd.call_replica(r, |c| c.delete_keys(&all_name, keys)) {
                    errors.push(describe(s, e).message);
                }
            }
        }
    }
    state.cache.invalidate_relation(name);
    if !errors.is_empty() {
        return Err(RouterError::new(
            ErrorCode::Unavailable,
            format!(
                "delete partially applied ({} shards failed; re-issue the LOAD to recover): {}",
                errors.len(),
                errors.join("; ")
            ),
        ));
    }
    let dropset: HashSet<&str> = keys.iter().map(String::as_str).collect();
    let mut id_maps: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
    let mut survivors = Vec::with_capacity(old.keys.len());
    for key in old.keys.iter().filter(|k| !dropset.contains(k.as_str())) {
        id_maps[shard_of(key, n_shards)].push(survivors.len() as u32);
        survivors.push(key.clone());
    }
    let removed = old.keys.len() - survivors.len();
    let n = survivors.len();
    state
        .relations
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .insert(
            name.into(),
            Arc::new(RelMeta {
                id_maps,
                keys: survivors,
            }),
        );
    state.epoch.fetch_add(1, Ordering::Relaxed);
    Ok(format!("deleted {removed} rows from {name} n={n}"))
}

/// Best-effort `ABORT` of a failed load on every replica (idempotent on
/// the backend, so replicas that never staged answer OK too).
fn abort_everywhere(state: &RouterState, dialer: &mut Dialer, name: &str, all_name: &str) {
    for s in 0..state.topology.n_shards() {
        let sd = dialer.shard_mut(s);
        for r in 0..sd.n_replicas() {
            let _ = sd.call_replica(r, |c| c.abort(name));
            if s == 0 {
                let _ = sd.call_replica(r, |c| c.abort(all_name));
            }
        }
    }
}

// ---------------------------------------------------- in-doubt recovery

/// Drive one replayed in-doubt transaction to a terminal state.
///
/// Presumed abort: a transaction with no durable `DECIDE commit` record
/// is aborted on every replica (the backend treats an `ABORT` of
/// nothing-staged as a no-op, so this is idempotent). With a commit
/// decision, each replica is asked `STAGED?` — if the name (or shard
/// 0's broadcast copy) is still pending there, the replica gets the
/// `COMMIT` it missed; a replica that already committed reports nothing
/// staged and is left alone. Replica pairs with a durable `OUTCOME ok`
/// are skipped outright. Every call rides `call_replica`, so fault
/// plans apply to recovery traffic like any other.
fn resolve_txn(state: &RouterState, dialer: &mut Dialer, txn: &Txn) -> Result<(), RouterError> {
    let name = txn.name.as_str();
    let all_name = format!(".all.{name}");
    let commit = matches!(txn.decision, Some(Decision::Commit));
    for s in 0..state.topology.n_shards() {
        let sd = dialer.shard_mut(s);
        for r in 0..sd.n_replicas() {
            if txn.done.contains(&(s, r)) {
                continue;
            }
            if commit {
                let staged = sd
                    .call_replica(r, |c| c.staged_names())
                    .map_err(|e| describe(s, e))?;
                if staged.iter().any(|n| n == name) {
                    sd.call_replica(r, |c| c.commit(name))
                        .map_err(|e| describe(s, e))?;
                }
                if s == 0 && staged.iter().any(|n| n == &all_name) {
                    sd.call_replica(r, |c| c.commit(&all_name))
                        .map_err(|e| describe(s, e))?;
                }
            } else {
                sd.call_replica(r, |c| c.abort(name))
                    .map_err(|e| describe(s, e))?;
                if s == 0 {
                    sd.call_replica(r, |c| c.abort(&all_name))
                        .map_err(|e| describe(s, e))?;
                }
            }
        }
    }
    Ok(())
}

/// The restart-time resolution loop: retry every in-doubt transaction
/// with backoff until all have converged, then open the recovering
/// gate. Runs on its own thread so `HELLO` / `STATS` stay answerable
/// while shards come back up.
fn resolve_pending(state: &RouterState) {
    let mut dialer = Dialer::new(&state.topology, 0, state.policy, state.fanout.clone());
    let mut backoff = Duration::from_millis(100);
    loop {
        let pending = std::mem::take(&mut *state.pending.lock().unwrap_or_else(|e| e.into_inner()));
        let mut unresolved = Vec::new();
        for txn in pending {
            match resolve_txn(state, &mut dialer, &txn) {
                Ok(()) => {
                    let _ = with_txn(state, Some(txn.txid), |l, t| l.end(t));
                    state.in_doubt_resolved.fetch_add(1, Ordering::Relaxed);
                    let verdict = match txn.decision {
                        Some(Decision::Commit) => "committed everywhere",
                        Some(Decision::Abort) => "aborted everywhere",
                        None => "aborted everywhere (no durable decision)",
                    };
                    println!(
                        "ksjq-routerd: resolved in-doubt {} {:?} (txid {}): {verdict}",
                        txn.kind, txn.name, txn.txid
                    );
                }
                Err(e) => {
                    eprintln!(
                        "ksjq-routerd: in-doubt {} {:?} (txid {}) unresolved: {}",
                        txn.kind, txn.name, txn.txid, e.message
                    );
                    unresolved.push(txn);
                }
            }
        }
        if unresolved.is_empty() {
            state.recovering.store(false, Ordering::SeqCst);
            println!("ksjq-routerd: in-doubt resolution complete; accepting traffic");
            return;
        }
        *state.pending.lock().unwrap_or_else(|e| e.into_inner()) = unresolved;
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        thread::sleep(backoff);
        backoff = (backoff * 2).min(Duration::from_secs(5));
    }
}

// -------------------------------------------------------------- queries

fn meta(state: &RouterState, name: &str) -> Result<Arc<RelMeta>, RouterError> {
    read_lock(&state.relations)
        .get(name)
        .cloned()
        .ok_or_else(|| format!("unknown relation {name:?} (LOAD it through this router)").into())
}

/// The plan, retargeted at the shard-0 broadcast copies.
fn rewrite_all(state: &RouterState, plan: &PlanSpec) -> Result<PlanSpec, RouterError> {
    meta(state, &plan.left)?;
    meta(state, &plan.right)?;
    let mut rewritten = plan.clone();
    rewritten.left = format!(".all.{}", plan.left);
    rewritten.right = format!(".all.{}", plan.right);
    Ok(rewritten)
}

fn prepare(
    state: &RouterState,
    dialer: &mut Dialer,
    id: &str,
    plan: &PlanSpec,
) -> Result<(String, Prepared), RouterError> {
    let rewritten = rewrite_all(state, plan)?;
    // Validate against the broadcast copy and capture the plan summary
    // in the same breath (same connection, so the id resolves).
    let (msg, explain) = dialer
        .shard_mut(0)
        .call(|c| {
            let msg = c.prepare(id, &rewritten)?;
            let explain = c.explain(id)?;
            Ok((msg, explain))
        })
        .map_err(|e| describe(0, e))?;
    let explain = format!(
        "distributed shards={} {}",
        state.topology.n_shards(),
        explain
    );
    Ok((
        msg,
        Prepared {
            plan: plan.clone(),
            explain,
        },
    ))
}

/// Run every shard of `shards` through `f` concurrently, each on its own
/// dialer, and collect the results in `shards` order.
fn fan_out<T: Send>(
    dialer: &mut Dialer,
    shards: &[usize],
    f: impl Fn(&mut ShardDialer, usize) -> Result<T, RouterError> + Sync,
) -> Result<Vec<T>, RouterError> {
    let dialers = dialer.subset_mut(shards);
    let mut slots: Vec<Option<Result<T, RouterError>>> =
        std::iter::repeat_with(|| None).take(shards.len()).collect();
    thread::scope(|scope| {
        for (i, (sd, slot)) in dialers.into_iter().zip(slots.iter_mut()).enumerate() {
            let f = &f;
            scope.spawn(move || *slot = Some(f(sd, i)));
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("scoped thread fills its slot"))
        .collect()
}

fn run_distributed(
    state: &RouterState,
    dialer: &mut Dialer,
    plan: &PlanSpec,
    deadline: Option<Instant>,
) -> Result<RunResult, RouterError> {
    let key = Request::Query { plan: plan.clone() }.to_string();
    if let Some(hit) = state.cache.get(&key) {
        return Ok(RunResult {
            k: hit.k,
            micros: 0,
            cached: true,
            result_id: Some(hit.id),
            output: hit.output,
        });
    }
    let t0 = Instant::now();
    state.fanout_queries.fetch_add(1, Ordering::Relaxed);
    let (k, pairs) = match plan.goal {
        // Find-k goals resolve k from *global* skyline cardinalities, so
        // they run whole on the shard-0 broadcast copies (already in
        // global row ids).
        Goal::AtLeast(..) | Goal::AtMost(..) => {
            let rewritten = rewrite_all(state, plan)?;
            let rem = remaining_ms(deadline)?;
            let rows = dialer
                .shard_mut(0)
                .call(|c| {
                    c.set_deadline(rem.unwrap_or(0))?;
                    c.query(&rewritten)
                })
                .map_err(|e| describe(0, e))?;
            (rows.k, rows.pairs)
        }
        Goal::Exact(_) | Goal::SkylineJoin => {
            let lmeta = meta(state, &plan.left)?;
            let rmeta = meta(state, &plan.right)?;
            let participating: Vec<usize> = (0..state.topology.n_shards())
                .filter(|&s| !lmeta.id_maps[s].is_empty() && !rmeta.id_maps[s].is_empty())
                .collect();
            if participating.is_empty() {
                // No shard holds both sides: the join is empty, but the
                // broadcast copy still computes the right k (and the
                // right error for an invalid one).
                let rewritten = rewrite_all(state, plan)?;
                let rem = remaining_ms(deadline)?;
                let rows = dialer
                    .shard_mut(0)
                    .call(|c| {
                        c.set_deadline(rem.unwrap_or(0))?;
                        c.query(&rewritten)
                    })
                    .map_err(|e| describe(0, e))?;
                (rows.k, rows.pairs)
            } else {
                // Round 1: local k-dominant skylines, in parallel. Each
                // shard gets the budget left *now*; anything it spends
                // comes off round 2's share.
                let rem = remaining_ms(deadline)?;
                let local = fan_out(dialer, &participating, |sd, _| {
                    sd.call(|c| {
                        c.set_deadline(rem.unwrap_or(0))?;
                        c.query(plan)
                    })
                    .map_err(|e| describe(sd.shard(), e))
                })?;
                let k = local[0].k;
                debug_assert!(local.iter().all(|r| r.k == k), "k is schema-determined");
                let survivors: Vec<Vec<(u32, u32)>> = if participating.len() == 1 {
                    vec![local[0].pairs.clone()]
                } else {
                    verify_candidates(
                        dialer,
                        &participating,
                        plan,
                        k,
                        &local,
                        state.fetch_batch,
                        state.check_batch,
                        deadline,
                    )?
                };
                // Remap to global ids and merge — the deterministic step
                // `merge_us` times.
                let tm = Instant::now();
                let lists = survivors
                    .iter()
                    .zip(&participating)
                    .map(|(pairs, &s)| {
                        pairs
                            .iter()
                            .map(|&(u, v)| {
                                (lmeta.id_maps[s][u as usize], rmeta.id_maps[s][v as usize])
                            })
                            .collect()
                    })
                    .collect();
                let merged = merge_sorted(lists);
                state
                    .merge_us
                    .fetch_add(tm.elapsed().as_micros() as u64, Ordering::Relaxed);
                (k, merged)
            }
        }
    };
    let output = Arc::new(KsjqOutput {
        pairs: pairs
            .into_iter()
            .map(|(u, v)| (TupleId(u), TupleId(v)))
            .collect(),
        stats: ExecStats::default(),
    });
    let result_id = state.cache.insert(
        key,
        output.clone(),
        k,
        vec![plan.left.clone(), plan.right.clone()],
        None,
    );
    Ok(RunResult {
        k,
        micros: t0.elapsed().as_micros() as u64,
        cached: false,
        result_id,
        output,
    })
}

/// Round 2 of scatter-gather: cross-shard verification of the local
/// skyline candidates.
///
/// A candidate pair is in the *global* answer iff no joined tuple
/// anywhere k-dominates it. Its own shard already established that for
/// the tuples it holds (that is what a local skyline is); every other
/// participating shard holds the rest, checked here against the
/// candidate's joined values. Returns the surviving pairs per shard, in
/// `participating` order, each still sorted.
#[allow(clippy::too_many_arguments)]
fn verify_candidates(
    dialer: &mut Dialer,
    participating: &[usize],
    plan: &PlanSpec,
    k: usize,
    local: &[RowSet],
    fetch_batch: usize,
    check_batch: usize,
    deadline: Option<Instant>,
) -> Result<Vec<Vec<(u32, u32)>>, RouterError> {
    // Phase a: every shard materialises its own candidates' joined
    // values (`FETCH`), batched and in parallel. Round 2 runs on
    // whatever budget round 1 left — checked again here so an exhausted
    // deadline turns into `ERR timeout` before any fan-out.
    let rem = remaining_ms(deadline)?;
    let vals: Vec<Vec<Vec<f64>>> = fan_out(dialer, participating, |sd, i| {
        let cands = &local[i].pairs;
        let mut rows = Vec::with_capacity(cands.len());
        for batch in cands.chunks(fetch_batch) {
            let got = sd
                .call(|c| {
                    c.set_deadline(rem.unwrap_or(0))?;
                    c.fetch(&plan.left, &plan.right, &plan.aggs, batch)
                })
                .map_err(|e| describe(sd.shard(), e))?;
            if got.len() != batch.len() {
                return Err(RouterError::new(
                    ErrorCode::Internal,
                    format!(
                        "shard {} returned {} rows for a {}-pair FETCH",
                        sd.shard(),
                        got.len(),
                        batch.len()
                    ),
                ));
            }
            rows.extend(got);
        }
        Ok(rows)
    })?;

    // Phase b: every shard t checks every *other* shard's candidate
    // values (`CHECK`), in parallel over t. dominated[t][s] holds one
    // bit per candidate of shard index s (empty when s == t).
    let rem = remaining_ms(deadline)?;
    let dominated: Vec<Vec<Vec<bool>>> = fan_out(dialer, participating, |sd, t| {
        let mut per_source = Vec::with_capacity(vals.len());
        for (s, rows) in vals.iter().enumerate() {
            if s == t {
                per_source.push(Vec::new());
                continue;
            }
            let mut bits = Vec::with_capacity(rows.len());
            for batch in rows.chunks(check_batch) {
                let got = sd
                    .call(|c| {
                        c.set_deadline(rem.unwrap_or(0))?;
                        c.check(&plan.left, &plan.right, &plan.aggs, k, batch)
                    })
                    .map_err(|e| describe(sd.shard(), e))?;
                if got.len() != batch.len() {
                    return Err(RouterError::new(
                        ErrorCode::Internal,
                        format!(
                            "shard {} returned {} bits for a {}-row CHECK",
                            sd.shard(),
                            got.len(),
                            batch.len()
                        ),
                    ));
                }
                bits.extend(got);
            }
            per_source.push(bits);
        }
        Ok(per_source)
    })?;

    // A candidate survives iff no other shard dominated it.
    Ok(local
        .iter()
        .enumerate()
        .map(|(s, rows)| {
            rows.pairs
                .iter()
                .copied()
                .enumerate()
                .filter(|&(i, _)| {
                    dominated
                        .iter()
                        .enumerate()
                        .all(|(t, per_source)| t == s || !per_source[s][i])
                })
                .map(|(_, pair)| pair)
                .collect()
        })
        .collect())
}
