//! Non-equality join conditions (paper Sec. 6.6): a connection is valid
//! when the first leg *arrives before* the second leg *departs* —
//! `leg1.arrival < leg2.departure` — rather than on an equality key.
//!
//! ```sh
//! cargo run --example connecting_flights
//! ```

use ksjq::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> CoreResult<()> {
    let mut rng = StdRng::seed_from_u64(11);
    let schema = || {
        Schema::builder()
            .local("cost", Preference::Min)
            .local("comfort", Preference::Max)
            .build()
            .map_err(ksjq::join::JoinError::from)
    };

    // Leg 1: keyed by arrival time (hours since midnight).
    let mut leg1 = Relation::builder(schema()?);
    for _ in 0..80 {
        let arrival = 6.0 + 12.0 * rng.gen::<f64>();
        let comfort = (1.0 + 4.0 * rng.gen::<f64>() * 10.0).round() / 10.0;
        let cost = (80.0 + 50.0 * comfort + 40.0 * rng.gen::<f64>()).round();
        leg1.add_keyed(arrival, &[cost, comfort])
            .map_err(ksjq::join::JoinError::from)?;
    }
    let leg1 = leg1.build().map_err(ksjq::join::JoinError::from)?;

    // Leg 2: keyed by departure time.
    let mut leg2 = Relation::builder(schema()?);
    for _ in 0..80 {
        let departure = 8.0 + 14.0 * rng.gen::<f64>();
        let comfort = (1.0 + 4.0 * rng.gen::<f64>() * 10.0).round() / 10.0;
        let cost = (70.0 + 45.0 * comfort + 35.0 * rng.gen::<f64>()).round();
        leg2.add_keyed(departure, &[cost, comfort])
            .map_err(ksjq::join::JoinError::from)?;
    }
    let leg2 = leg2.build().map_err(ksjq::join::JoinError::from)?;

    // arrival < departure; 4 joined attributes. At k = 3 two connections
    // can 3-dominate *each other* and annihilate (a real k-dominance
    // phenomenon, paper Sec. 2.2) — on this continuous data that empties
    // the answer, so we query the full skyline join k = 4 and report the
    // k = 3 count alongside.
    let query = KsjqQuery::builder(&leg1, &leg2)
        .join(JoinSpec::Theta(ThetaOp::Lt))
        .k(4)
        .build()?;
    println!(
        "{} x {} legs, {} valid connections (arrival < departure)",
        80,
        80,
        query.context().count_pairs()
    );
    let at_k3 = KsjqQuery::builder(&leg1, &leg2)
        .join(JoinSpec::Theta(ThetaOp::Lt))
        .k(3)
        .build()?
        .execute()?;
    println!(
        "k = 3 annihilates everything by mutual domination: {} survivors",
        at_k3.len()
    );

    let result = query.execute()?;
    println!(
        "\n{} connections survive the (k = 4) skyline join:",
        result.len()
    );
    println!(
        "{:>7} {:>7} {:>8} | {:>6} {:>7} {:>8}",
        "arr", "cost1", "comfort1", "dep", "cost2", "comfort2"
    );
    for &(u, v) in result.pairs.iter().take(12) {
        let a = leg1.raw_row(u);
        let b = leg2.raw_row(v);
        println!(
            "{:>7.2} {:>7.0} {:>8.1} | {:>6.2} {:>7.0} {:>8.1}",
            leg1.numeric_key(u).unwrap(),
            a[0],
            a[1],
            leg2.numeric_key(v).unwrap(),
            b[0],
            b[1]
        );
    }
    if result.len() > 12 {
        println!("  … and {} more", result.len() - 12);
    }

    // Every reported connection really is feasible.
    for &(u, v) in &result.pairs {
        assert!(leg1.numeric_key(u).unwrap() < leg2.numeric_key(v).unwrap());
    }
    let c = result.stats.counts;
    println!(
        "\nclassification pruned {} of {} connections before joining",
        c.pruned_pairs(),
        c.joined_pairs
    );
    Ok(())
}
