//! Fig. 3: scalability in the number of join groups `g` (3a) and the
//! base-relation size `n` (3b), aggregate case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksjq_bench::PaperParams;
use ksjq_core::{ksjq_grouping, ksjq_naive, Config};

fn bench_groups(c: &mut Criterion) {
    let cfg = Config::default();
    let mut group = c.benchmark_group("fig3a_join_groups");
    group.sample_size(10);
    for g in [1usize, 2, 5, 10, 25, 50] {
        let params = PaperParams {
            n: 400,
            g,
            ..Default::default()
        };
        let (r1, r2) = params.relations();
        let cx = params.context(&r1, &r2);
        group.bench_with_input(BenchmarkId::new("G", g), &g, |b, _| {
            b.iter(|| ksjq_grouping(&cx, params.k, &cfg).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("N", g), &g, |b, _| {
            b.iter(|| ksjq_naive(&cx, params.k, &cfg).unwrap().len())
        });
    }
    group.finish();
}

fn bench_dataset_size(c: &mut Criterion) {
    let cfg = Config::default();
    let mut group = c.benchmark_group("fig3b_dataset_size");
    group.sample_size(10);
    for n in [100usize, 200, 400, 800] {
        let params = PaperParams {
            n,
            ..Default::default()
        };
        let (r1, r2) = params.relations();
        let cx = params.context(&r1, &r2);
        group.throughput(criterion::Throughput::Elements(cx.count_pairs()));
        group.bench_with_input(BenchmarkId::new("G", n), &n, |b, _| {
            b.iter(|| ksjq_grouping(&cx, params.k, &cfg).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("N", n), &n, |b, _| {
            b.iter(|| ksjq_naive(&cx, params.k, &cfg).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_groups, bench_dataset_size);
criterion_main!(benches);
