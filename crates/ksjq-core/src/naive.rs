//! Algorithm 1: the naïve KSJQ algorithm.
//!
//! Join first, then compute the k-dominant skyline of the joined relation
//! with a standard single-relation algorithm. Two execution modes:
//!
//! * **materialised** — faithful to the paper's `D ← R1 ⋈ R2` followed by
//!   `k-dominant-skyline(D, k)`; the join and skyline phases are timed
//!   separately (the figures' "join time" vs "remaining").
//! * **streaming** — when the joined relation would exceed
//!   [`Config::materialize_limit`] values (at the paper's `n = 33 000` the
//!   join holds ≈ 1.1 × 10⁸ tuples ≈ 10 GB), the two-scan algorithm runs
//!   directly over the join enumeration. No separate join time can be
//!   attributed in this mode; the full cost is reported as "remaining".

use crate::cancel::{check_deadline, Checkpoint};
use crate::config::Config;
use crate::error::CoreResult;
use crate::output::{finish, KsjqOutput};
use crate::params::validate_k;
use crate::stats::ExecStats;
use ksjq_join::JoinContext;
use ksjq_skyline::kdominant::StreamingTsa;
use ksjq_skyline::{k_dominant_skyline, MatrixView};
use std::time::Instant;

/// Run the naïve KSJQ algorithm (paper Algorithm 1).
///
/// Unlike the optimized algorithms, this accepts non-strictly-monotone
/// aggregates (`min`/`max`) — it never prunes through the aggregation.
pub fn ksjq_naive(cx: &JoinContext<'_>, k: usize, cfg: &Config) -> CoreResult<KsjqOutput> {
    validate_k(cx, k)?;
    let mut stats = ExecStats::default();
    let n_pairs = cx.count_pairs();
    stats.counts.joined_pairs = n_pairs;

    let values = (n_pairs as u128) * cx.d_joined() as u128;
    if values <= cfg.materialize_limit as u128 {
        naive_materialized(cx, k, cfg, stats)
    } else {
        naive_streaming(cx, k, cfg, stats)
    }
}

fn naive_materialized(
    cx: &JoinContext<'_>,
    k: usize,
    cfg: &Config,
    mut stats: ExecStats,
) -> CoreResult<KsjqOutput> {
    let t = Instant::now();
    let m = cx.materialize();
    stats.phases.join = t.elapsed();

    // The single-relation skyline subroutine is not checkpointed, so the
    // materialised path only honours the deadline at this phase boundary.
    check_deadline(cfg.deadline)?;
    let t = Instant::now();
    let view = MatrixView::new(cx.d_joined().max(1), &m.data);
    let ids = view.ids();
    let survivors = k_dominant_skyline(&view, &ids, k, cfg.kdom);
    stats.phases.remaining = t.elapsed();

    let pairs = survivors.into_iter().map(|i| m.pairs[i as usize]).collect();
    Ok(finish(pairs, stats))
}

fn naive_streaming(
    cx: &JoinContext<'_>,
    k: usize,
    cfg: &Config,
    mut stats: ExecStats,
) -> CoreResult<KsjqOutput> {
    let t = Instant::now();
    let d = cx.d_joined();
    let mut tsa = StreamingTsa::new(d, k);
    let mut row = vec![0.0; d];
    // Enumerate in `for_each_pair` order but through the split fill: the
    // left-local segment of the scratch row is written once per left
    // tuple, not once per joined pair.
    fn split_pairs(
        cx: &JoinContext<'_>,
        row: &mut [f64],
        mut f: impl FnMut(&[f64]) -> CoreResult<()>,
    ) -> CoreResult<()> {
        for u in 0..cx.left().n() as u32 {
            let partners = cx.right_partners(u);
            if partners.is_empty() {
                continue;
            }
            cx.fill_left(u, row);
            for &v in partners {
                cx.fill_rest(u, v, row);
                f(row)?;
            }
        }
        Ok(())
    }
    let mut cp = Checkpoint::new(cfg.deadline);
    split_pairs(cx, &mut row, |r| {
        tsa.offer(r);
        cp.tick()
    })?;
    tsa.begin_verify();
    split_pairs(cx, &mut row, |r| {
        tsa.verify(r);
        cp.tick()
    })?;
    let survivors = tsa.finish();

    // Third enumeration maps surviving sequence numbers back to pairs —
    // no dominance work, just counting.
    let mut pairs = Vec::with_capacity(survivors.len());
    let mut next = 0usize;
    let mut seq = 0u64;
    cx.for_each_pair(|u, v| {
        if next < survivors.len() && survivors[next].0 == seq {
            pairs.push((u, v));
            next += 1;
        }
        seq += 1;
    });
    debug_assert_eq!(next, survivors.len());
    stats.phases.remaining = t.elapsed();
    Ok(finish(pairs, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksjq_join::JoinSpec;
    use ksjq_relation::{Relation, Schema, TupleId};

    fn rel(groups: &[u64], rows: &[Vec<f64>]) -> Relation {
        Relation::from_grouped_rows(Schema::uniform(rows[0].len()).unwrap(), groups, rows).unwrap()
    }

    #[test]
    fn tiny_join_skyline() {
        // Group 0: left {good, bad}, right {good}.
        let r1 = rel(&[0, 0], &[vec![1.0, 1.0], vec![5.0, 5.0]]);
        let r2 = rel(&[0], &[vec![1.0, 1.0]]);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let out = ksjq_naive(&cx, 3, &Config::default()).unwrap();
        assert_eq!(out.pairs, vec![(TupleId(0), TupleId(0))]);
        assert_eq!(out.stats.counts.joined_pairs, 2);
    }

    #[test]
    fn invalid_k_rejected() {
        let r1 = rel(&[0], &[vec![1.0, 1.0]]);
        let r2 = rel(&[0], &[vec![1.0, 1.0]]);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        assert!(ksjq_naive(&cx, 2, &Config::default()).is_err());
        assert!(ksjq_naive(&cx, 5, &Config::default()).is_err());
        assert!(ksjq_naive(&cx, 3, &Config::default()).is_ok());
    }

    #[test]
    fn streaming_matches_materialized() {
        let mut state = 13u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let n = 60;
        let g1: Vec<u64> = (0..n).map(|_| next(4)).collect();
        let rows1: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| next(10) as f64).collect())
            .collect();
        let g2: Vec<u64> = (0..n).map(|_| next(4)).collect();
        let rows2: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| next(10) as f64).collect())
            .collect();
        let r1 = rel(&g1, &rows1);
        let r2 = rel(&g2, &rows2);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        for k in 4..=6 {
            let mat = ksjq_naive(&cx, k, &Config::default()).unwrap();
            let streamed = ksjq_naive(
                &cx,
                k,
                &Config {
                    materialize_limit: 0,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(mat.pairs, streamed.pairs, "k={k}");
        }
    }

    #[test]
    fn empty_join_is_empty_skyline() {
        // Disjoint groups: the join is empty.
        let r1 = rel(&[0], &[vec![1.0, 1.0]]);
        let r2 = rel(&[1], &[vec![1.0, 1.0]]);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let out = ksjq_naive(&cx, 3, &Config::default()).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.stats.counts.joined_pairs, 0);
    }
}
