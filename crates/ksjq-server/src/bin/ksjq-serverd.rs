//! The KSJQ serving daemon.
//!
//! ```sh
//! ksjq-serverd --addr 127.0.0.1:7878 --workers 8 --cache-entries 128 \
//!              --max-conns 2048 --max-inflight 32 --idle-timeout 300
//! ```
//!
//! Starts with a preloaded demo catalog: the paper's Tables 1–2 as
//! `outbound` / `inbound` (join on the stop-over city, k ∈ [5, 8]) and
//! the Sec. 7.4 synthetic flight network as `net_outbound` /
//! `net_inbound` (aggregate totals, join on the hub). Clients can `LOAD`
//! more relations at any time.
//!
//! A readiness-polled front end multiplexes connections (thousands of
//! idle clients cost a pollfd each, not a thread each); `--workers`
//! bounds concurrently *executing* queries, `--max-conns` bounds open
//! connections (excess connects get `ERR busy`), and `--idle-timeout`
//! reaps quiet sessions.

use ksjq_core::Engine;
use ksjq_server::{
    register_demo_catalog, ConnectOptions, FaultPlan, KsjqClient, Server, ServerConfig,
};
use std::time::Duration;

fn die(msg: &str) -> ! {
    eprintln!("ksjq-serverd: {msg}");
    std::process::exit(2)
}

/// How the catalog is seeded at startup.
#[derive(Debug, Default)]
enum Seed {
    /// The paper's demo tables (default standalone behaviour).
    #[default]
    Demo,
    /// Start empty — a shard server a router populates via `LOAD`.
    Empty,
    /// Clone a primary's catalog over `SYNC` (replica mode).
    ReplicaOf(String),
}

fn parse_args() -> (ServerConfig, Seed, Option<Duration>) {
    let mut seed = Seed::default();
    let mut resync: Option<Duration> = None;
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".into(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = args.next().unwrap_or_else(|| die("--addr needs host:port"));
            }
            "--workers" => {
                config.workers = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&w| w > 0)
                    .unwrap_or_else(|| die("--workers needs a positive integer"));
            }
            "--cache-entries" => {
                config.cache_entries = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--cache-entries needs an integer (0 disables)"));
            }
            "--max-conns" => {
                config.max_conns = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--max-conns needs a positive integer"));
            }
            "--max-inflight" => {
                config.max_inflight = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--max-inflight needs a positive integer"));
            }
            "--idle-timeout" => {
                config.idle_timeout = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&secs| secs > 0)
                    .map(Duration::from_secs)
                    .unwrap_or_else(|| die("--idle-timeout needs seconds (> 0)"));
                // The mid-frame stall deadline tracks the idle timeout
                // but never exceeds its default.
                config.stall_timeout = config.stall_timeout.min(config.idle_timeout);
            }
            "--data-dir" => {
                config.data_dir = Some(
                    args.next()
                        .unwrap_or_else(|| die("--data-dir needs a directory path"))
                        .into(),
                );
            }
            "--wal-max-bytes" => {
                config.wal_max_bytes = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .unwrap_or_else(|| die("--wal-max-bytes needs a positive byte count")),
                );
            }
            "--query-timeout" => {
                config.query_timeout = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&ms: &u64| ms > 0)
                        .map(Duration::from_millis)
                        .unwrap_or_else(|| die("--query-timeout needs milliseconds (> 0)")),
                );
            }
            "--faults" => {
                let spec = args.next().unwrap_or_else(|| die("--faults needs a spec"));
                config.faults = Some(
                    spec.parse::<FaultPlan>()
                        .unwrap_or_else(|e| die(&format!("bad --faults spec: {e}"))),
                );
            }
            "--replica-of" => {
                seed = Seed::ReplicaOf(
                    args.next()
                        .unwrap_or_else(|| die("--replica-of needs host:port of a primary")),
                );
            }
            "--resync-interval" => {
                resync = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&secs| secs > 0)
                        .map(Duration::from_secs)
                        .unwrap_or_else(|| die("--resync-interval needs seconds (> 0)")),
                );
            }
            "--no-demo" => seed = Seed::Empty,
            "--help" | "-h" => {
                eprintln!(
                    "usage: ksjq-serverd [--addr HOST:PORT] [--workers N] [--cache-entries N]\n\
                     \x20                   [--max-conns N] [--max-inflight N] [--idle-timeout SECS]\n\
                     \x20                   [--data-dir PATH] [--wal-max-bytes N] [--query-timeout MS]\n\
                     \x20                   [--faults SPEC] [--no-demo] [--replica-of HOST:PORT]\n\
                     \x20                   [--resync-interval SECS]\n\
                     \x20 --addr           listen address (default 127.0.0.1:7878; port 0 = ephemeral)\n\
                     \x20 --workers        worker threads (default 8)\n\
                     \x20 --cache-entries  result-cache capacity (default 128; 0 disables)\n\
                     \x20 --max-conns      open-connection cap; excess get ERR busy (default 2048)\n\
                     \x20 --max-inflight   per-connection pipelined-request cap (default 32)\n\
                     \x20 --idle-timeout   reap idle connections after SECS (default 300)\n\
                     \x20 --data-dir       durable catalog: WAL + snapshot here; replay on start\n\
                     \x20 --wal-max-bytes  seal the active WAL into a segment past N bytes and\n\
                     \x20                  compact live when nothing is staged (default: startup-only)\n\
                     \x20 --query-timeout  cap every query at MS milliseconds (ERR timeout)\n\
                     \x20 --faults         seeded fault injection on accepted connections, e.g.\n\
                     \x20                  seed=7,drop=10,flip=5,partial=10,delay=20:3 (per-mille);\n\
                     \x20                  the KSJQ_FAULTS env var is an equivalent spec\n\
                     \x20 --no-demo        start with an empty catalog (a router shard)\n\
                     \x20 --replica-of     clone a primary's catalog via SYNC before serving\n\
                     \x20 --resync-interval poll the primary's catalog_epoch every SECS and\n\
                     \x20                  re-clone when it drifts (replica mode only)"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other} (try --help)")),
        }
    }
    if resync.is_some() && !matches!(seed, Seed::ReplicaOf(_)) {
        die("--resync-interval only makes sense with --replica-of");
    }
    if config.data_dir.is_some() && matches!(seed, Seed::ReplicaOf(_)) {
        // A replica's source of truth is its primary: replaying a stale
        // local snapshot over a fresh SYNC would serve the past.
        die("--data-dir and --replica-of are mutually exclusive");
    }
    if config.faults.is_none() {
        match FaultPlan::from_env("KSJQ_FAULTS") {
            Ok(plan) => config.faults = plan,
            Err(e) => die(&format!("bad KSJQ_FAULTS value: {e}")),
        }
    }
    (config, seed, resync)
}

fn main() {
    let (config, seed, resync) = parse_args();
    let engine = Engine::new();
    let mut synced_epoch = 0u64;
    match &seed {
        Seed::Demo => {
            register_demo_catalog(&engine).expect("fresh engine accepts the demo catalog");
        }
        Seed::Empty => {}
        Seed::ReplicaOf(primary) => {
            // The seed SYNC rides through the same fault wrapper as every
            // other connection this daemon makes, so a chaos plan also
            // exercises replica bootstrap.
            let mut opts = ConnectOptions::all(Duration::from_secs(10));
            opts.faults = config.faults;
            // Seed the backoff jitter from the pid so replicas launched
            // together spread their retries.
            let jitter_seed = std::process::id() as u64;
            match ksjq_server::sync_from(&engine, primary, &opts, 5, jitter_seed) {
                Ok((epoch, names)) => {
                    synced_epoch = epoch;
                    println!(
                        "synced {} relations from {primary} at epoch {epoch}",
                        names.len()
                    );
                }
                Err(e) => die(&format!("cannot sync from primary {primary}: {e}")),
            }
        }
    }
    let server = match Server::bind(engine.clone(), &config) {
        Ok(server) => server,
        Err(e) => die(&format!("cannot bind {}: {e}", config.addr)),
    };
    // Read the catalog only after `bind`: with `--data-dir` it is bind
    // that replays the WAL, and the banner must reflect what recovered.
    let names = engine.catalog().names().join(", ");
    if let (Some(every), Seed::ReplicaOf(primary)) = (resync, &seed) {
        // Catch-up poller: compare the primary's catalog_epoch and
        // re-clone when this replica missed a delta (it was down, or the
        // router could not reach it). `catalog_updated` drops the local
        // result cache and versioned chains along with the old catalog.
        let handle = server.handle().expect("bound server has a handle");
        let primary = primary.clone();
        // Resync connections inherit the fault plan too — recovery-time
        // traffic must not be quietly exempt from chaos.
        let mut opts = ConnectOptions::all(Duration::from_secs(10));
        opts.faults = config.faults;
        std::thread::spawn(move || {
            let mut last = synced_epoch;
            loop {
                std::thread::sleep(every);
                let Ok(mut client) = KsjqClient::connect_with(&primary, &opts) else {
                    continue;
                };
                // Gate reads for the whole re-clone: between the first
                // deregister and the last register the local catalog is
                // half old, half new — serve `ERR recovering`, not that.
                handle.set_recovering(true);
                match ksjq_server::resync_if_stale(&engine, &mut client, last) {
                    Ok(Some((epoch, names))) => {
                        handle.catalog_updated();
                        println!(
                            "resynced {} relations from {primary}: epoch {last} -> {epoch}",
                            names.len()
                        );
                        last = epoch;
                    }
                    Ok(None) => {}
                    Err(e) => eprintln!("ksjq-serverd: resync from {primary} failed: {e}"),
                }
                handle.set_recovering(false);
                let _ = client.close();
            }
        });
    }
    let addr = server.local_addr().expect("bound listener has an address");
    println!(
        "ksjq-serverd listening on {addr} ({} workers, cache {} entries, max {} conns)",
        config.workers, config.cache_entries, config.max_conns
    );
    if names.is_empty() {
        println!("catalog empty (load via a router or LOAD)");
    } else {
        println!("preloaded catalog: {names}");
    }
    if let Err(e) = server.run() {
        die(&format!("server failed: {e}"));
    }
}
