//! Figs. 6a/6b: scalability without aggregation (g and n sweeps),
//! plus Fig. 9's find-k counterparts are in `fig8_find_k.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksjq_bench::PaperParams;
use ksjq_core::{ksjq_grouping, ksjq_naive, Config};

fn bench_noagg_groups(c: &mut Criterion) {
    let cfg = Config::default();
    let mut group = c.benchmark_group("fig6a_noagg_join_groups");
    group.sample_size(10);
    for g in [1usize, 2, 5, 10, 25, 50] {
        let params = PaperParams {
            n: 400,
            d: 4,
            a: 0,
            k: 7,
            g,
            ..Default::default()
        };
        let (r1, r2) = params.relations();
        let cx = params.context(&r1, &r2);
        group.bench_with_input(BenchmarkId::new("G", g), &g, |b, _| {
            b.iter(|| ksjq_grouping(&cx, params.k, &cfg).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("N", g), &g, |b, _| {
            b.iter(|| ksjq_naive(&cx, params.k, &cfg).unwrap().len())
        });
    }
    group.finish();
}

fn bench_noagg_size(c: &mut Criterion) {
    let cfg = Config::default();
    let mut group = c.benchmark_group("fig6b_noagg_dataset_size");
    group.sample_size(10);
    for n in [100usize, 200, 400, 800] {
        let params = PaperParams {
            n,
            d: 4,
            a: 0,
            k: 7,
            ..Default::default()
        };
        let (r1, r2) = params.relations();
        let cx = params.context(&r1, &r2);
        group.throughput(criterion::Throughput::Elements(cx.count_pairs()));
        group.bench_with_input(BenchmarkId::new("G", n), &n, |b, _| {
            b.iter(|| ksjq_grouping(&cx, params.k, &cfg).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("N", n), &n, |b, _| {
            b.iter(|| ksjq_naive(&cx, params.k, &cfg).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_noagg_groups, bench_noagg_size);
criterion_main!(benches);
