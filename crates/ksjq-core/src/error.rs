//! KSJQ-layer errors.

use std::fmt;

/// Convenience alias for KSJQ results.
pub type CoreResult<T> = std::result::Result<T, CoreError>;

/// Errors raised by the KSJQ algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// `k` outside the valid range `max{d1, d2} < k ≤ d1 + d2 − a`
    /// (paper Problems 1 and 2).
    InvalidK {
        /// The requested `k`.
        k: usize,
        /// Smallest valid value (`max{d1,d2} + 1`).
        min: usize,
        /// Largest valid value (`d1 + d2 − a`, the joined arity).
        max: usize,
    },
    /// The optimized algorithms require strictly monotone aggregation
    /// functions (Theorem 4's proof constructs a strict witness through
    /// the aggregate); `min`/`max` aggregates must use the naïve
    /// algorithm.
    NonStrictAggregate,
    /// `δ` must be at least 1 for the find-k problems.
    InvalidDelta,
    /// The k-range for find-k is empty (e.g. `d1 = d2 = d_joined`, which
    /// happens when one relation contributes no attributes beyond the
    /// aggregates of the other).
    EmptyKRange {
        /// Smallest candidate `k`.
        min: usize,
        /// Largest candidate `k`.
        max: usize,
    },
    /// The query's deadline passed before execution finished; raised by
    /// the cooperative cancellation checkpoints (see [`crate::cancel`])
    /// when [`Config::deadline`](crate::Config) is set. All shared state
    /// is left intact — the query can be retried with a later deadline.
    DeadlineExceeded,
    /// A query plan referenced a relation name the engine's catalog does
    /// not know.
    UnknownRelation {
        /// The unresolved name.
        name: String,
    },
    /// Propagated relation-layer error (catalog registration, schema or
    /// data validation).
    Relation(ksjq_relation::Error),
    /// Propagated join-layer error.
    Join(ksjq_join::JoinError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidK { k, min, max } => {
                write!(f, "k = {k} out of range: KSJQ requires {min} <= k <= {max}")
            }
            CoreError::NonStrictAggregate => write!(
                f,
                "optimized KSJQ algorithms require strictly monotone aggregates (sum / weighted sum); use the naive algorithm for min/max"
            ),
            CoreError::InvalidDelta => write!(f, "delta must be at least 1"),
            CoreError::EmptyKRange { min, max } => {
                write!(f, "no valid k exists: range [{min}, {max}] is empty")
            }
            CoreError::DeadlineExceeded => {
                write!(f, "query deadline exceeded before execution finished")
            }
            CoreError::UnknownRelation { name } => {
                write!(f, "unknown relation {name:?}: not registered in the catalog")
            }
            CoreError::Relation(e) => write!(f, "{e}"),
            CoreError::Join(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ksjq_join::JoinError> for CoreError {
    fn from(e: ksjq_join::JoinError) -> Self {
        CoreError::Join(e)
    }
}

impl From<ksjq_relation::Error> for CoreError {
    fn from(e: ksjq_relation::Error) -> Self {
        CoreError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::InvalidK {
            k: 3,
            min: 5,
            max: 8,
        };
        assert!(e.to_string().contains("k = 3"));
        assert!(CoreError::NonStrictAggregate
            .to_string()
            .contains("strictly monotone"));
    }

    #[test]
    fn from_join_error() {
        let e: CoreError = ksjq_join::JoinError::InvalidAggregate("x".into()).into();
        assert!(matches!(e, CoreError::Join(_)));
    }
}
