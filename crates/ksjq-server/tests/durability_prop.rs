//! Durability properties of the write-ahead log.
//!
//! Two layers:
//!
//! * **Byte level** — `read_records(truncate(log, i))` must be a valid
//!   parse for *every* prefix length `i` (yielding exactly the records
//!   that fit), and no single bit flip may ever surface a corrupted
//!   payload: the CRC either kills the record or the flip only touched
//!   the seq/epoch stamp it deliberately does not cover.
//! * **Catalog level** — simulate kill -9 at an arbitrary byte of the
//!   log by truncating `wal.ksjq` and restarting a server on the
//!   directory: the recovered catalog must be byte-identical to the
//!   committed state after some whole prefix of mutations — pre- or
//!   post-commit, never torn — and a `STAGE` whose `COMMIT` never made
//!   it to disk must replay to an abort.

use ksjq_datagen::{paper_flights, relation_to_csv};
use ksjq_server::durability::{encode_record, read_records};
use ksjq_server::{ErrorCode, KsjqClient, PlanSpec, Server, ServerConfig};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ksjq-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A log of `lens.len()` records whose payload bytes are derived from
/// the record index (so any cross-record smear is detectable).
fn build_log(lens: &[usize]) -> (Vec<u8>, Vec<Vec<u8>>) {
    let mut bytes = Vec::new();
    let mut payloads = Vec::new();
    for (i, &len) in lens.iter().enumerate() {
        let payload: Vec<u8> = (0..len).map(|j| (i * 37 + j) as u8).collect();
        bytes.extend_from_slice(&encode_record(i as u64 + 1, i as u64, &payload));
        payloads.push(payload);
    }
    (bytes, payloads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every truncation point — not just record boundaries — parses to
    /// exactly the records that fit whole, bit-identical.
    #[test]
    fn every_truncation_is_a_clean_record_prefix(
        a in 0usize..48, b in 0usize..48, c in 0usize..48
    ) {
        let (bytes, payloads) = build_log(&[a, b, c]);
        let mut boundaries = vec![0usize];
        for p in &payloads {
            boundaries.push(boundaries.last().unwrap() + 28 + p.len());
        }
        for cut in 0..=bytes.len() {
            let (records, valid) = read_records(&bytes[..cut]);
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            prop_assert_eq!(records.len(), whole, "cut={}", cut);
            prop_assert_eq!(valid, boundaries[whole], "cut={}", cut);
            for (r, p) in records.iter().zip(&payloads) {
                prop_assert_eq!(&r.payload, p);
            }
        }
    }

    /// A single bit flip anywhere in the log never surfaces a corrupted
    /// payload: parsing still yields a bit-identical payload prefix
    /// (possibly shorter — the flipped record and everything after it
    /// rejected; a seq/epoch-stamp flip may survive, payloads intact).
    #[test]
    fn bit_flips_never_corrupt_a_parsed_payload(
        a in 1usize..40, b in 1usize..40, at_scaled in 0u32..u32::MAX, bit in 0u8..8
    ) {
        let (bytes, payloads) = build_log(&[a, b]);
        let at = at_scaled as usize % bytes.len();
        let mut evil = bytes.clone();
        evil[at] ^= 1 << bit;
        let (records, _) = read_records(&evil);
        prop_assert!(records.len() <= payloads.len());
        for (r, p) in records.iter().zip(&payloads) {
            prop_assert_eq!(&r.payload, p, "flip at byte {} bit {}", at, bit);
        }
    }
}

/// The committed, client-visible catalog: every relation as the
/// annotated CSV `SYNC <name>` exports (staged data is invisible here,
/// exactly as it is to clients).
fn observe(client: &mut KsjqClient) -> Vec<(String, String)> {
    client
        .sync_names()
        .unwrap()
        .into_iter()
        .map(|name| {
            let csv = client.sync_relation(&name).unwrap();
            (name, csv)
        })
        .collect()
}

fn data_server(dir: &Path) -> ksjq_server::RunningServer {
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        data_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    };
    Server::start(ksjq_core::Engine::new(), &config).unwrap()
}

/// Kill -9 at any byte of the log, restart, and the catalog is
/// byte-identical to the state after some whole prefix of mutations —
/// and a `STAGE` with no `COMMIT` on disk replays to an abort.
#[test]
fn any_crash_point_recovers_a_whole_mutation_prefix() {
    let pf = paper_flights(false);
    let out_csv = relation_to_csv(&pf.outbound, "city", Some(&pf.cities)).unwrap();
    let in_csv = relation_to_csv(&pf.inbound, "city", Some(&pf.cities)).unwrap();
    let mut staged_in = in_csv.clone();
    staged_in.push_str("XXX,9,9,9,9\n");

    // Drive a mutation history through a durable server; snapshot the
    // visible catalog after every mutation record the WAL gains.
    let dir = tmpdir("history");
    let server = data_server(&dir);
    let mut client = KsjqClient::connect(server.addr()).unwrap();
    let mut states: Vec<Vec<(String, String)>> = vec![observe(&mut client)];
    let mutate = |client: &mut KsjqClient, states: &mut Vec<_>, what: &str| {
        match what {
            "load_out" => drop(client.load_csv("outbound", &out_csv).unwrap()),
            "load_in" => drop(client.load_csv("inbound", &in_csv).unwrap()),
            "append" => drop(client.append_rows("outbound", "ZRH,1,2,3,4").unwrap()),
            "stage" => drop(client.stage_csv("inbound", &staged_in).unwrap()),
            "commit" => drop(client.commit("inbound").unwrap()),
            "delete" => drop(client.delete_keys("outbound", &["ZRH".into()]).unwrap()),
            other => panic!("unknown step {other}"),
        }
        states.push(observe(client));
    };
    for step in [
        "load_out", "load_in", "append", "stage", "commit", "delete", "stage",
    ] {
        mutate(&mut client, &mut states, step);
    }
    client.close().unwrap();
    server.stop().unwrap();

    let wal = std::fs::read(dir.join("wal.ksjq")).unwrap();
    let snapshot = std::fs::read(dir.join("snapshot.ksjq")).unwrap();
    let (records, valid) = read_records(&wal);
    assert_eq!(
        records.len(),
        states.len() - 1,
        "one WAL record per mutation"
    );
    assert_eq!(valid, wal.len(), "a clean shutdown leaves no torn tail");

    // Crash points: every record boundary, every boundary neighbour
    // (first/last byte of a torn record), and a deterministic sample of
    // interior bytes.
    let mut boundaries = vec![0usize];
    for r in &records {
        boundaries.push(boundaries.last().unwrap() + 28 + r.payload.len());
    }
    let mut cuts: Vec<usize> = Vec::new();
    for &b in &boundaries {
        for c in [b.saturating_sub(1), b, b + 1, b + 15] {
            cuts.push(c.min(wal.len()));
        }
    }
    cuts.push(wal.len() / 3);
    cuts.push(wal.len() / 2);
    cuts.sort_unstable();
    cuts.dedup();

    for cut in cuts {
        let crash = tmpdir(&format!("crash-{cut}"));
        std::fs::write(crash.join("snapshot.ksjq"), &snapshot).unwrap();
        std::fs::write(crash.join("wal.ksjq"), &wal[..cut]).unwrap();
        let (kept, _) = read_records(&wal[..cut]);
        let expected = &states[kept.len()];

        let server = data_server(&crash);
        let mut client = KsjqClient::connect(server.addr()).unwrap();
        assert_eq!(
            &observe(&mut client),
            expected,
            "cut={cut} must recover exactly the first {} mutations",
            kept.len()
        );
        // Whatever the crash point, no half-applied STAGE survives: a
        // bare COMMIT finds nothing staged.
        let err = client.commit("inbound").unwrap_err();
        assert_eq!(err.code(), Some(ErrorCode::Invalid), "cut={cut}: {err}");
        // And the recovered catalog still answers queries (Table 3 once
        // both relations plus the committed replacement are in).
        if kept.len() >= 6 {
            let rows = client
                .query(&PlanSpec::new("outbound", "inbound").k(7))
                .unwrap();
            assert_eq!(
                rows.pairs,
                vec![(0, 2), (2, 0), (4, 4), (5, 5)],
                "cut={cut}"
            );
        }
        client.close().unwrap();
        server.stop().unwrap();
        let _ = std::fs::remove_dir_all(&crash);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
