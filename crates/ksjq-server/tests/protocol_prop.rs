//! Property tests for the distribution frames (`SYNC`/`STAGE`/`COMMIT`/
//! `ABORT`/`FETCH`/`CHECK` and their responses): random well-formed
//! frames must survive a `Display` → `parse` round trip bit-exactly, and
//! random junk must be rejected without a panic.

use ksjq_join::AggFunc;
use ksjq_server::{Request, Response};
use proptest::prelude::*;

/// A valid relation-name token from a packed random value.
fn name(tag: char, v: u64) -> String {
    format!("{tag}{v:x}")
}

/// A dyadic-rational `f64` — exactly representable, so `Display` and
/// `parse` are lossless by construction.
fn dyadic(mantissa: i32, shift: u8) -> f64 {
    f64::from(mantissa) / f64::from(1u32 << (shift % 16))
}

fn agg(code: u8) -> AggFunc {
    match code % 5 {
        0 => AggFunc::Sum,
        1 => AggFunc::Min,
        2 => AggFunc::Max,
        // Positive dyadic weights: always pass AggFunc::validate.
        n => AggFunc::WeightedSum {
            left: f64::from((code % 16) + 1) / 16.0,
            right: f64::from(n) / 4.0,
        },
    }
}

fn roundtrip_request(frame: &Request) -> Request {
    let wire = frame.to_string();
    Request::parse(&wire).unwrap_or_else(|e| panic!("rejected own frame {wire:?}: {e}"))
}

fn roundtrip_response(frame: &Response) -> Response {
    let wire = frame.to_string();
    Response::parse(&wire).unwrap_or_else(|e| panic!("rejected own frame {wire:?}: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn catalog_control_frames_roundtrip(v in 0u64..1 << 48, which in 0u8..4) {
        let n = name('r', v);
        let frame = match which {
            0 => Request::Sync { name: None },
            1 => Request::Sync { name: Some(n) },
            2 => Request::Commit { name: n },
            _ => Request::Abort { name: n },
        };
        prop_assert_eq!(roundtrip_request(&frame), frame);
    }

    #[test]
    fn stage_frames_roundtrip(
        v in 0u64..1 << 48,
        cells in prop::collection::vec((0u32..10_000, 0u32..10_000), 1..8),
    ) {
        // CSV body: newline row separators, no trailing whitespace —
        // the canonical form the wire encoding (';' rows) maps back to.
        let rows: Vec<String> = cells.iter().map(|(a, b)| format!("{a},{b}")).collect();
        let frame = Request::Stage {
            name: name('s', v),
            csv: format!("key,cost\n{}", rows.join("\n")),
        };
        prop_assert_eq!(roundtrip_request(&frame), frame);
    }

    #[test]
    fn fetch_frames_roundtrip(
        v in 0u64..1 << 48,
        aggs in prop::collection::vec(0u8..=255, 0..4),
        pairs in prop::collection::vec((0u32..100_000, 0u32..100_000), 1..40),
    ) {
        let frame = Request::Fetch {
            left: name('l', v),
            right: name('r', v ^ 1),
            aggs: aggs.into_iter().map(agg).collect(),
            pairs,
        };
        prop_assert_eq!(roundtrip_request(&frame), frame);
    }

    #[test]
    fn check_frames_roundtrip(
        v in 0u64..1 << 48,
        k in 1usize..64,
        aggs in prop::collection::vec(0u8..=255, 0..4),
        rows in prop::collection::vec(
            prop::collection::vec((-4096i32..4096, 0u8..16), 1..7),
            1..20,
        ),
    ) {
        let frame = Request::Check {
            left: name('l', v),
            right: name('r', v ^ 1),
            aggs: aggs.into_iter().map(agg).collect(),
            k,
            rows: rows
                .into_iter()
                .map(|row| row.into_iter().map(|(m, s)| dyadic(m, s)).collect())
                .collect(),
        };
        prop_assert_eq!(roundtrip_request(&frame), frame);
    }

    #[test]
    fn distribution_responses_roundtrip(
        v in 0u64..1 << 48,
        names in prop::collection::vec(0u64..1 << 40, 0..6),
        cells in prop::collection::vec((0u32..10_000, 0u32..10_000), 1..8),
        vals in prop::collection::vec(
            prop::collection::vec((-4096i32..4096, 0u8..16), 1..7),
            0..12,
        ),
        bits in prop::collection::vec(0u8..2, 0..40),
    ) {
        let catalog = Response::Catalog {
            epoch: v,
            names: names.iter().map(|&n| name('c', n)).collect(),
        };
        prop_assert_eq!(roundtrip_response(&catalog), catalog);

        let rows: Vec<String> = cells.iter().map(|(a, b)| format!("{a},{b}")).collect();
        let relation = Response::Relation {
            name: name('t', v),
            csv: format!("key,cost\n{}", rows.join("\n")),
        };
        prop_assert_eq!(roundtrip_response(&relation), relation);

        let vals = Response::Vals(
            vals.into_iter()
                .map(|row| row.into_iter().map(|(m, s)| dyadic(m, s)).collect())
                .collect(),
        );
        prop_assert_eq!(roundtrip_response(&vals), vals);

        let checked = Response::Checked(bits.into_iter().map(|b| b == 1).collect());
        prop_assert_eq!(roundtrip_response(&checked), checked);
    }

    /// Random junk never panics either parser — it may parse (junk can
    /// be accidentally well-formed) but must never tear anything down.
    #[test]
    fn junk_never_panics_the_parsers(bytes in prop::collection::vec(0u8..=255, 0..120)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = Request::parse(&line);
        let _ = Response::parse(&line);
    }
}
