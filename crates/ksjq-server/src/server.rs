//! The TCP server: a fixed worker-thread pool over one shared [`Engine`].
//!
//! The accept loop hands connections to `--workers` threads through an
//! mpsc channel; each worker owns a connection for its whole session (the
//! protocol is lockstep request/response, so there is nothing to
//! multiplex). All workers share:
//!
//! * the [`Engine`] — and through it the catalog — so `LOAD`ed relations
//!   are visible to every connection;
//! * a named [`PreparedQuery`] session map behind an `RwLock`, so one
//!   connection can `PREPARE` a query and another can `EXECUTE` it;
//! * the [`ResultCache`], keyed by normalised plan fingerprint and
//!   invalidated on every catalog registration.
//!
//! Shutdown is graceful: [`ServerHandle::shutdown`] flips a flag and pokes
//! the listener awake; the accept loop stops handing out connections,
//! the channel closes, and workers exit after finishing their current
//! session.
//!
//! Nothing a peer sends can panic a worker: requests parse into typed
//! [`Request`]s or an `ERR` frame, execution errors become `ERR` frames,
//! oversized lines are answered and drained without unbounded buffering.

use crate::cache::ResultCache;
use crate::protocol::{
    LoadSource, PlanSpec, ProtoResult, Request, Response, RowSet, ServerStats, MAX_LINE_BYTES,
};
use ksjq_core::{CoreResult, Engine, KsjqOutput, PreparedQuery};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Upper bound on `n · d` of one `LOAD … SYNTHETIC` request, so a single
/// wire command cannot make the server allocate arbitrarily much.
const MAX_SYNTHETIC_CELLS: usize = 50_000_000;

/// Server knobs, matching the `ksjq-serverd` flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads (= maximum concurrent sessions being served).
    pub workers: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            cache_entries: 128,
        }
    }
}

/// One named prepared query in the shared session map.
#[derive(Debug, Clone)]
struct Session {
    prepared: Arc<PreparedQuery>,
    fingerprint: String,
}

/// State shared by the accept loop and every worker.
#[derive(Debug)]
struct Shared {
    engine: Engine,
    sessions: RwLock<HashMap<String, Session>>,
    cache: ResultCache,
    workers: usize,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    /// Verification-kernel work summed over every non-cached execution:
    /// joined-tuple dominance tests and attribute comparisons (see
    /// `ksjq_core::Counts`). Surfaced through `STATS` so kernel speedups
    /// are visible over the wire.
    dom_tests: AtomicU64,
    attr_cmps: AtomicU64,
    /// Cumulative dominator-generation wall-clock (µs) across non-cached
    /// executions — non-zero only for dominator-based plans, where it is
    /// the `O(n²)` phase the parallel sharding targets.
    domgen_us: AtomicU64,
    /// Bumped on every catalog registration; guards against caching a
    /// result computed against a catalog that changed mid-execution.
    catalog_epoch: AtomicU64,
    shutdown: AtomicBool,
}

/// A bound, not-yet-running KSJQ server. [`run`](Server::run) blocks;
/// [`start`](Server::start) is the spawn-in-background convenience.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Cloneable trigger for graceful shutdown.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Ask the server to stop: no new connections are served; workers
    /// finish their current session and exit.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Poke the blocking accept() awake so it observes the flag. A
        // wildcard bind address (0.0.0.0 / ::) is not connectable on
        // every platform, so fall back to loopback on the same port.
        if TcpStream::connect(self.addr).is_err() && self.addr.ip().is_unspecified() {
            let loopback: std::net::IpAddr = if self.addr.is_ipv4() {
                std::net::Ipv4Addr::LOCALHOST.into()
            } else {
                std::net::Ipv6Addr::LOCALHOST.into()
            };
            let _ = TcpStream::connect((loopback, self.addr.port()));
        }
    }
}

/// A server running on a background thread, for tests, examples and
/// harness `--serve` mode.
#[derive(Debug)]
pub struct RunningServer {
    handle: ServerHandle,
    thread: JoinHandle<io::Result<()>>,
}

impl RunningServer {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr
    }

    /// A shutdown trigger usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Shut down gracefully and wait for the accept loop and workers.
    pub fn stop(self) -> io::Result<()> {
        self.handle.shutdown();
        self.thread
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("server thread panicked")))
    }
}

impl Server {
    /// Bind to `config.addr` serving `engine`'s catalog.
    pub fn bind(engine: Engine, config: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                engine,
                sessions: RwLock::new(HashMap::new()),
                cache: ResultCache::new(config.cache_entries),
                workers: config.workers.max(1),
                connections: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                dom_tests: AtomicU64::new(0),
                attr_cmps: AtomicU64::new(0),
                domgen_us: AtomicU64::new(0),
                catalog_epoch: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown trigger for this server.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            shared: self.shared.clone(),
            addr: self.local_addr()?,
        })
    }

    /// Bind and run on a background thread.
    pub fn start(engine: Engine, config: &ServerConfig) -> io::Result<RunningServer> {
        let server = Server::bind(engine, config)?;
        let handle = server.handle()?;
        let thread = thread::Builder::new()
            .name("ksjq-accept".into())
            .spawn(move || server.run())?;
        Ok(RunningServer { handle, thread })
    }

    /// Serve until [`ServerHandle::shutdown`] is called. Blocks.
    pub fn run(self) -> io::Result<()> {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..self.shared.workers)
            .map(|i| {
                let shared = self.shared.clone();
                let rx = rx.clone();
                thread::Builder::new()
                    .name(format!("ksjq-worker-{i}"))
                    .spawn(move || loop {
                        // Holding the lock only while receiving: the next
                        // idle worker picks up the next connection.
                        let conn = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                        match conn {
                            Ok(stream) => {
                                // Belt and braces on top of the session
                                // loop's no-panic design: a panic must cost
                                // one session, not silently shrink the pool
                                // until no worker drains the queue.
                                let caught =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        serve_connection(&shared, stream)
                                    }));
                                if caught.is_err() {
                                    shared.errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(_) => return, // channel closed: shutdown
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        for conn in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    self.shared.connections.fetch_add(1, Ordering::Relaxed);
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(_) => continue, // transient accept error
            }
        }
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

// ------------------------------------------------------------------ I/O

enum LineRead {
    /// A complete (or EOF-truncated) line, newline stripped.
    Line,
    /// Clean disconnect (or server shutdown while the peer was idle).
    Eof,
    /// The line exceeded [`MAX_LINE_BYTES`]; the rest was drained.
    TooLong,
}

/// A read error that just means "the [`READ_POLL`](read timeout) tick
/// elapsed": time to check the shutdown flag, not a failure.
fn is_poll_tick(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read one `\n`-terminated line into `buf` without ever buffering more
/// than [`MAX_LINE_BYTES`] + 1 bytes of it.
///
/// The stream carries a read timeout (see [`serve_connection`]); every
/// timeout tick re-checks `shutdown` so a worker blocked on an idle
/// session cannot stall graceful shutdown. Partial lines survive ticks —
/// `read_until` appends, and the budget is recomputed from `buf.len()`.
fn read_line_limited(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> io::Result<LineRead> {
    buf.clear();
    while buf.last() != Some(&b'\n') {
        let budget = (MAX_LINE_BYTES + 1).saturating_sub(buf.len());
        if budget == 0 {
            return drain_oversized(reader, buf, shutdown);
        }
        match reader.by_ref().take(budget as u64).read_until(b'\n', buf) {
            Ok(0) if buf.is_empty() => return Ok(LineRead::Eof),
            Ok(0) => break, // EOF mid-line: hand the truncated line up
            Ok(_) => {}
            Err(e) if is_poll_tick(&e) => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(LineRead::Eof);
                }
            }
            Err(e) => return Err(e),
        }
    }
    while buf.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
        buf.pop();
    }
    Ok(LineRead::Line)
}

/// Discard the remainder of an oversized line in bounded chunks.
fn drain_oversized(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> io::Result<LineRead> {
    loop {
        buf.clear();
        match reader.by_ref().take(64 * 1024).read_until(b'\n', buf) {
            Ok(0) => {
                buf.clear();
                return Ok(LineRead::TooLong);
            }
            Ok(_) if buf.last() == Some(&b'\n') => {
                buf.clear();
                return Ok(LineRead::TooLong);
            }
            Ok(_) => {}
            Err(e) if is_poll_tick(&e) => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(LineRead::Eof);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn write_line(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut line = response.to_string();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

/// How often an idle worker wakes to check the shutdown flag.
const READ_POLL: std::time::Duration = std::time::Duration::from_millis(200);

/// Serve one connection to completion. Never panics on peer input.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    // The timeout makes blocking reads into a poll loop so shutdown is
    // never gated on a quiet peer. Nagle off: the protocol is lockstep
    // one-liners, and batching them behind delayed ACKs costs ~40ms per
    // exchange.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut writer = stream;
    let mut reader = match writer.try_clone().map(BufReader::new) {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut buf = Vec::new();
    loop {
        let line = match read_line_limited(&mut reader, &mut buf, &shared.shutdown) {
            Ok(LineRead::Line) => String::from_utf8_lossy(&buf).into_owned(),
            Ok(LineRead::Eof) => return,
            Ok(LineRead::TooLong) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.errors.fetch_add(1, Ordering::Relaxed);
                let err = Response::Error(format!("line exceeds {MAX_LINE_BYTES} bytes"));
                if write_line(&mut writer, &err).is_err() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let response = match Request::parse(&line) {
            Ok(Request::Close) => {
                let _ = write_line(&mut writer, &Response::Bye);
                return;
            }
            Ok(request) => handle_request(shared, request),
            Err(message) => Response::Error(message),
        };
        if matches!(response, Response::Error(_)) {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        if write_line(&mut writer, &response).is_err() {
            return;
        }
    }
}

// ------------------------------------------------------------- dispatch

fn handle_request(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Load { name, source } => load(shared, &name, source),
        Request::Prepare { id, plan } => prepare(shared, id, &plan),
        Request::Execute { id } => execute(shared, &id),
        Request::Query { plan } => query(shared, &plan),
        Request::Explain { id } => explain(shared, &id),
        Request::Stats => Response::Stats(stats(shared)),
        Request::Close => Response::Bye, // handled in the session loop
    }
}

fn load(shared: &Shared, name: &str, source: LoadSource) -> Response {
    let registered = match source {
        LoadSource::Inline { csv } => shared
            .engine
            .catalog()
            .register_csv(name, &csv)
            .map_err(|e| e.to_string()),
        LoadSource::Synthetic(spec) => {
            if spec.n.saturating_mul(spec.d) > MAX_SYNTHETIC_CELLS {
                return Response::Error(format!(
                    "synthetic relation too large: n·d must stay ≤ {MAX_SYNTHETIC_CELLS}"
                ));
            }
            reencode_keys(shared.engine.catalog(), spec.dataset_spec().generate())
                .and_then(|rel| shared.engine.register(name, rel).map_err(|e| e.to_string()))
        }
    };
    match registered {
        Ok(handle) => {
            // Catalog changed: results computed against the old catalog
            // must not be served for new plans.
            shared.catalog_epoch.fetch_add(1, Ordering::SeqCst);
            shared.cache.clear();
            Response::Ok(format!(
                "loaded {name} n={} d={}",
                handle.n(),
                handle.schema().d()
            ))
        }
        Err(message) => Response::Error(message),
    }
}

/// Re-encode a generated relation's numeric group ids through the
/// catalog's shared key dictionary (as their decimal strings), so every
/// relation the server loads — synthetic or `INLINE` CSV — lives in one
/// group-id domain. Without this, a synthetic relation's generator ids
/// and a CSV relation's dictionary ids could collide numerically and an
/// equality join across them would match unrelated keys by coincidence;
/// with it, such a join correctly matches only equal key *strings*.
/// Re-numbering is a bijection on each relation's keys, so join results
/// against in-process execution are unchanged.
fn reencode_keys(
    catalog: &ksjq_relation::Catalog,
    rel: ksjq_relation::Relation,
) -> ProtoResult<ksjq_relation::Relation> {
    // Memoise per distinct gid (the group count, not the tuple count):
    // one dictionary-lock round and one string allocation per *group*,
    // not per tuple — relations can carry millions of tuples over a
    // handful of groups.
    let mut encoded: HashMap<u64, u64> = HashMap::new();
    let mut b = ksjq_relation::Relation::builder(rel.schema().clone()).with_capacity(rel.n());
    for (t, _) in rel.rows() {
        let gid = rel
            .group_id(t)
            .ok_or("synthetic relations always carry group keys")?;
        let key = *encoded
            .entry(gid)
            .or_insert_with(|| catalog.encode_key(&gid.to_string()));
        b.add_grouped(key, &rel.raw_row(t))
            .map_err(|e| e.to_string())?;
    }
    b.build().map_err(|e| e.to_string())
}

fn prepare(shared: &Shared, id: String, plan: &PlanSpec) -> Response {
    match shared.engine.prepare(&plan.to_plan()) {
        Ok(prepared) => {
            let k = prepared.k();
            let session = Session {
                prepared: Arc::new(prepared),
                fingerprint: plan.fingerprint(),
            };
            shared
                .sessions
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .insert(id.clone(), session);
            Response::Ok(format!("prepared {id} k={k}"))
        }
        Err(e) => Response::Error(e.to_string()),
    }
}

fn lookup(shared: &Shared, id: &str) -> Option<Session> {
    shared
        .sessions
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .get(id)
        .cloned()
}

fn execute(shared: &Shared, id: &str) -> Response {
    match lookup(shared, id) {
        Some(session) => run_cached(shared, &session),
        None => Response::Error(format!("unknown query id {id:?}: PREPARE it first")),
    }
}

fn query(shared: &Shared, plan: &PlanSpec) -> Response {
    match shared.engine.prepare(&plan.to_plan()) {
        Ok(prepared) => run_cached(
            shared,
            &Session {
                prepared: Arc::new(prepared),
                fingerprint: plan.fingerprint(),
            },
        ),
        Err(e) => Response::Error(e.to_string()),
    }
}

fn run_cached(shared: &Shared, session: &Session) -> Response {
    match rowset(shared, session) {
        Ok(rows) => Response::Rows(rows),
        Err(e) => Response::Error(e.to_string()),
    }
}

fn rowset(shared: &Shared, session: &Session) -> CoreResult<RowSet> {
    let k = session.prepared.k();
    if let Some(hit) = shared.cache.get(&session.fingerprint) {
        return Ok(RowSet {
            k,
            micros: 0,
            cached: true,
            pairs: pairs_of(&hit),
        });
    }
    let epoch = shared.catalog_epoch.load(Ordering::SeqCst);
    let started = Instant::now();
    let output = session.prepared.execute()?;
    let micros = started.elapsed().as_micros() as u64;
    shared
        .dom_tests
        .fetch_add(output.stats.counts.dom_tests, Ordering::Relaxed);
    shared
        .attr_cmps
        .fetch_add(output.stats.counts.attr_cmps, Ordering::Relaxed);
    shared.domgen_us.fetch_add(
        output.stats.phases.dominator_gen.as_micros() as u64,
        Ordering::Relaxed,
    );
    let output = Arc::new(output);
    // Don't cache across a concurrent catalog change: the fingerprint is
    // name-based, and a name may since have been rebound. The re-check
    // *after* the insert closes the window where a LOAD's clear() lands
    // between our epoch check and our insert — any such LOAD bumped the
    // epoch first, so we observe it here and drop the stale entry; a LOAD
    // that bumps later clears the cache itself.
    if shared.catalog_epoch.load(Ordering::SeqCst) == epoch {
        shared
            .cache
            .insert(session.fingerprint.clone(), output.clone());
        if shared.catalog_epoch.load(Ordering::SeqCst) != epoch {
            shared.cache.clear();
        }
    }
    Ok(RowSet {
        k,
        micros,
        cached: false,
        pairs: pairs_of(&output),
    })
}

fn pairs_of(output: &KsjqOutput) -> Vec<(u32, u32)> {
    output.pairs.iter().map(|&(l, r)| (l.0, r.0)).collect()
}

fn explain(shared: &Shared, id: &str) -> Response {
    match lookup(shared, id) {
        Some(session) => Response::Explain(session.prepared.explain().compact()),
        None => Response::Error(format!("unknown query id {id:?}: PREPARE it first")),
    }
}

fn stats(shared: &Shared) -> ServerStats {
    let counters = shared.cache.counters();
    ServerStats {
        connections: shared.connections.load(Ordering::Relaxed),
        requests: shared.requests.load(Ordering::Relaxed),
        errors: shared.errors.load(Ordering::Relaxed),
        sessions: shared
            .sessions
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .len() as u64,
        relations: shared.engine.catalog().len() as u64,
        cache_hits: counters.hits(),
        cache_misses: counters.misses(),
        cache_evictions: counters.evictions(),
        cache_len: shared.cache.len() as u64,
        workers: shared.workers as u64,
        dom_tests: shared.dom_tests.load(Ordering::Relaxed),
        attr_cmps: shared.attr_cmps.load(Ordering::Relaxed),
        domgen_us: shared.domgen_us.load(Ordering::Relaxed),
    }
}
