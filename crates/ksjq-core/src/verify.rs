//! Candidate verification against target-set joins — the split-side
//! dominance kernel.
//!
//! A candidate joined tuple survives iff no join of target-set members
//! k-dominates it. The three entry points mirror the check sets of the
//! paper's algorithms:
//!
//! * [`JoinedCheck::dominated_via_left`] — `τ(u′) ⋈ R2` (Algorithm 2's
//!   `CheckTarget` for `SS1 ⋈ SN2`, and — with the sound one-sided filter —
//!   for `SN1 ⋈ SN2`);
//! * [`JoinedCheck::dominated_via_right`] — `R1 ⋈ τ(v′)` (the symmetric
//!   case `SN1 ⋈ SS2`);
//! * [`JoinedCheck::dominated_via_both`] — `dom(u′) ⋈ dom(v′)`
//!   (Algorithm 3's `CheckDominators`).
//!
//! # The split-side kernel
//!
//! A joined skyline vector is laid out `[left locals…, right locals…,
//! aggregates…]`, and a `k_dominates` test over it decomposes by segment:
//! the `≤`/`<` counts of the dominator's left leg against `cand[0..l1]`
//! depend only on the leg, the right-local counts only on the partner, and
//! only the `a` aggregate positions need both. The kernel therefore never
//! materialises a joined tuple. For each target leg it computes the
//! left-half [`DomCounts`] **once**, abandons the whole leg when even a
//! perfect other half could not reach `k`, and otherwise merges per-partner
//! right-half counts (plus the tiny aggregate segment) via
//! [`DomCounts::merge`]. The merged totals are bit-identical to
//! [`ksjq_relation::dom_counts`] on the materialised row, so results are
//! byte-identical to the materialising implementation it replaces — a fact
//! the property suite checks directly.
//!
//! Callers pass target sets ordered by ascending attribute sum (SFS-style,
//! see [`crate::target`]): dominators carry small sums, so the `any`-shaped
//! scan exits early on dominated candidates. Ordering never changes the
//! verdict, only when it is reached.
//!
//! Within one candidate check the partner-side counts depend only on
//! `(partner, cand)` — and in an equality join every target leg of the
//! same group shares its partner set — so the kernel memoises them per
//! call (generation-stamped, no per-call clearing): each distinct partner
//! is counted once, after which a pair test costs one merge plus the `a`
//! aggregate positions.

use ksjq_join::JoinContext;
use ksjq_relation::{accumulate_le_lt, dom_counts, dom_counts_partial, DomCounts, Relation};
use std::borrow::Cow;
use std::ops::Range;

/// Counters of the work one verifier ([`JoinedCheck`] or
/// [`ColumnarCheck`]) has performed, merged into [`crate::ExecStats`] by
/// the algorithm drivers (and summed across parallel verification
/// workers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckCounters {
    /// Joined-tuple dominance tests: one per `(dominator, candidate)` pair
    /// whose merged counts were actually evaluated.
    pub dom_tests: u64,
    /// Attribute positions compared (split-segment counting included).
    pub attr_cmps: u64,
    /// Target legs pruned from a candidate's dominator scan: tuples the
    /// `k″` target filter excluded before the scan started, plus legs
    /// abandoned after only their hoisted half-counts. Counted per
    /// verification call, so the sum is thread-count invariant.
    pub targets_pruned: u64,
}

impl CheckCounters {
    /// Accumulate another counter set (worker merge).
    pub fn absorb(&mut self, other: CheckCounters) {
        self.dom_tests += other.dom_tests;
        self.attr_cmps += other.attr_cmps;
        self.targets_pruned += other.targets_pruned;
    }
}

/// Scratch-carrying split-side verifier for one `(cx, k)` pair.
///
/// Exposed publicly so benchmarks (and adventurous engine users) can drive
/// the kernel directly; the KSJQ algorithms construct it internally.
#[derive(Debug)]
pub struct JoinedCheck<'b, 'a> {
    cx: &'b JoinContext<'a>,
    k: usize,
    l1: usize,
    l2: usize,
    a: usize,
    /// Scratch for the `a` aggregate values of one pair (never a full row).
    aggs: Vec<f64>,
    /// Reusable membership mask over right tuple ids (two-sided checks).
    rmask: Vec<bool>,
    /// Per-call memo of partner-half counts, generation-stamped so calls
    /// never pay for clearing: `lmemo[u]` / `rmemo[v]` hold the local
    /// counts of that base tuple against the current candidate's segment.
    lmemo: Vec<DomCounts>,
    lstamp: Vec<u64>,
    rmemo: Vec<DomCounts>,
    rstamp: Vec<u64>,
    generation: u64,
    counters: CheckCounters,
}

impl<'b, 'a> JoinedCheck<'b, 'a> {
    /// A verifier for candidates of `cx`'s join under `k`-dominance.
    pub fn new(cx: &'b JoinContext<'a>, k: usize) -> Self {
        let zero = DomCounts { le: 0, lt: 0 };
        JoinedCheck {
            k,
            l1: cx.l1(),
            l2: cx.l2(),
            a: cx.a(),
            aggs: vec![0.0; cx.a()],
            rmask: vec![false; cx.right().n()],
            lmemo: vec![zero; cx.left().n()],
            lstamp: vec![0; cx.left().n()],
            rmemo: vec![zero; cx.right().n()],
            rstamp: vec![0; cx.right().n()],
            generation: 0,
            counters: CheckCounters::default(),
            cx,
        }
    }

    /// The work counters accumulated so far.
    pub fn counters(&self) -> CheckCounters {
        self.counters
    }

    /// Split `cand` into its `(left locals, right locals, aggregates)`
    /// segments.
    #[inline]
    fn segments<'c>(&self, cand: &'c [f64]) -> (&'c [f64], &'c [f64], &'c [f64]) {
        debug_assert_eq!(cand.len(), self.l1 + self.l2 + self.a);
        let (cl, rest) = cand.split_at(self.l1);
        let (cr, ca) = rest.split_at(self.l2);
        (cl, cr, ca)
    }

    /// Left-half counts of target leg `u` against `cl`, or `None` when the
    /// leg cannot reach `k` even with a perfect other half (early abandon).
    #[inline]
    fn left_half(&mut self, u: u32, cl: &[f64]) -> Option<DomCounts> {
        self.counters.attr_cmps += self.l1 as u64;
        let lc = dom_counts_partial(
            self.cx.left().row_at(u as usize),
            self.cx.left_local_attrs(),
            cl,
        );
        if lc.le as usize + self.l2 + self.a < self.k {
            self.counters.targets_pruned += 1;
            return None;
        }
        Some(lc)
    }

    /// Symmetric right-half hoist for [`dominated_via_right`].
    #[inline]
    fn right_half(&mut self, v: u32, cr: &[f64]) -> Option<DomCounts> {
        self.counters.attr_cmps += self.l2 as u64;
        let rc = dom_counts_partial(
            self.cx.right().row_at(v as usize),
            self.cx.right_local_attrs(),
            cr,
        );
        if rc.le as usize + self.l1 + self.a < self.k {
            self.counters.targets_pruned += 1;
            return None;
        }
        Some(rc)
    }

    /// Partner-half counts of right tuple `v` against `cr`, memoised for
    /// the current candidate (equality-join target legs of one group all
    /// share their partner set, so hits are the common case).
    #[inline]
    fn right_memo(&mut self, v: u32, cr: &[f64]) -> DomCounts {
        let i = v as usize;
        if self.rstamp[i] != self.generation {
            self.counters.attr_cmps += self.l2 as u64;
            self.rmemo[i] =
                dom_counts_partial(self.cx.right().row_at(i), self.cx.right_local_attrs(), cr);
            self.rstamp[i] = self.generation;
        }
        self.rmemo[i]
    }

    /// Symmetric memo over left partners for [`dominated_via_right`].
    #[inline]
    fn left_memo(&mut self, u: u32, cl: &[f64]) -> DomCounts {
        let i = u as usize;
        if self.lstamp[i] != self.generation {
            self.counters.attr_cmps += self.l1 as u64;
            self.lmemo[i] =
                dom_counts_partial(self.cx.left().row_at(i), self.cx.left_local_attrs(), cl);
            self.lstamp[i] = self.generation;
        }
        self.lmemo[i]
    }

    /// Merge `half` (one leg's hoisted counts) with the other leg's local
    /// counts and — only if still reachable — the aggregate segment; the
    /// result is the verdict of `k_dominates(joined(u, v), cand, k)`.
    #[inline]
    fn merged_dominates(
        &mut self,
        u: u32,
        v: u32,
        half: DomCounts,
        other_is_right: bool,
        cother: &[f64],
        ca: &[f64],
    ) -> bool {
        self.counters.dom_tests += 1;
        let other = if other_is_right {
            self.right_memo(v, cother)
        } else {
            self.left_memo(u, cother)
        };
        let mut merged = half.merge(other);
        // Even perfect aggregate positions could not lift `≤` to k.
        if (merged.le as usize) + self.a < self.k {
            return false;
        }
        if self.a > 0 {
            self.counters.attr_cmps += self.a as u64;
            self.cx.fill_aggs(u, v, &mut self.aggs);
            merged = merged.merge(dom_counts(&self.aggs, ca));
        }
        merged.k_dominates(self.k)
    }

    /// Is `cand` k-dominated by some `u ⋈ v` with `u ∈ targets`,
    /// `v` join-compatible with `u`?
    pub fn dominated_via_left(&mut self, targets: &[u32], cand: &[f64]) -> bool {
        self.generation += 1;
        self.counters.targets_pruned += (self.cx.left().n().saturating_sub(targets.len())) as u64;
        let (cl, cr, ca) = self.segments(cand);
        for &u in targets {
            let Some(lc) = self.left_half(u, cl) else {
                continue;
            };
            for &v in self.cx.right_partners(u) {
                if self.merged_dominates(u, v, lc, true, cr, ca) {
                    return true;
                }
            }
        }
        false
    }

    /// Is `cand` k-dominated by some `u ⋈ v` with `v ∈ targets`,
    /// `u` join-compatible with `v`?
    pub fn dominated_via_right(&mut self, targets: &[u32], cand: &[f64]) -> bool {
        self.generation += 1;
        self.counters.targets_pruned += (self.cx.right().n().saturating_sub(targets.len())) as u64;
        let (cl, cr, ca) = self.segments(cand);
        for &v in targets {
            let Some(rc) = self.right_half(v, cr) else {
                continue;
            };
            for &u in self.cx.left_partners(v) {
                if self.merged_dominates(u, v, rc, false, cl, ca) {
                    return true;
                }
            }
        }
        false
    }

    /// Is `cand` k-dominated by some `u ⋈ v` with `u ∈ left_targets` *and*
    /// `v ∈ right_targets` (the dominator-based algorithm's
    /// `dom(u) ⋈ dom(v)`)?
    pub fn dominated_via_both(
        &mut self,
        left_targets: &[u32],
        right_targets: &[u32],
        cand: &[f64],
    ) -> bool {
        self.generation += 1;
        self.counters.targets_pruned += (self.cx.left().n().saturating_sub(left_targets.len())
            + self.cx.right().n().saturating_sub(right_targets.len()))
            as u64;
        let (cl, cr, ca) = self.segments(cand);
        for &v in right_targets {
            self.rmask[v as usize] = true;
        }
        let mut found = false;
        'outer: for &u in left_targets {
            let Some(lc) = self.left_half(u, cl) else {
                continue;
            };
            for &v in self.cx.right_partners(u) {
                if self.rmask[v as usize] && self.merged_dominates(u, v, lc, true, cr, ca) {
                    found = true;
                    break 'outer;
                }
            }
        }
        for &v in right_targets {
            self.rmask[v as usize] = false;
        }
        found
    }
}

/// Gather the local-attribute columns of `rel` permuted into `order`:
/// local `j`'s values occupy `out[j·n..(j+1)·n]`, indexed by *scan
/// position* rather than tuple id, so every partner span is a contiguous
/// stretch of each column.
fn permute_local_columns(rel: &Relation, locals: &[usize], order: &[u32]) -> Vec<f64> {
    let n = rel.n();
    let mut out = vec![0.0; n * locals.len()];
    for (j, &attr) in locals.iter().enumerate() {
        let col = rel.column(attr);
        let dst = &mut out[j * n..(j + 1) * n];
        for (pos, &t) in order.iter().enumerate() {
            dst[pos] = col[t as usize];
        }
    }
    out
}

/// Zero and fill one span of the per-candidate count arrays: for each
/// segment attribute, sweep the permuted column stride-1 with the
/// lane-blocked accumulator.
fn fill_span(
    perm: &[f64],
    n: usize,
    seg: &[f64],
    span: Range<usize>,
    le: &mut [u32],
    lt: &mut [u32],
    counters: &mut CheckCounters,
) {
    le[span.clone()].fill(0);
    lt[span.clone()].fill(0);
    for (j, &b) in seg.iter().enumerate() {
        accumulate_le_lt(
            &perm[j * n + span.start..j * n + span.end],
            b,
            &mut le[span.clone()],
            &mut lt[span.clone()],
        );
    }
    counters.attr_cmps += (span.len() * seg.len()) as u64;
}

/// Scan one contiguous partner span for a pair that k-dominates the
/// candidate: a blocked threshold prescan over the partner-half `≤`
/// counts finds the rare positions whose merged counts could still reach
/// `k`; only those pay the aggregate fill. `leg_is_left` says which side
/// the hoisted `leg`/`lc` belong to (partners are on the other side).
/// Verdicts are identical to the oracle's per-pair merge — same skip
/// condition, same final formula, same scan order.
#[allow(clippy::too_many_arguments)]
fn scan_span(
    cx: &JoinContext<'_>,
    k: usize,
    a: usize,
    leg: u32,
    leg_is_left: bool,
    lc: DomCounts,
    span: Range<usize>,
    order: &[u32],
    le: &[u32],
    lt: &[u32],
    mask: Option<&[bool]>,
    aggs: &mut [f64],
    ca: &[f64],
    counters: &mut CheckCounters,
) -> bool {
    // A pair is worth the aggregate segment iff even perfect aggregates
    // could lift `≤` to k: lc.le + partner.le + a ≥ k.
    let slack = lc.le as usize + a;
    let need: u32 = k.saturating_sub(slack).min(u32::MAX as usize) as u32;
    const BLOCK: usize = 64;
    let mut p = span.start;
    while p < span.end {
        let end = (p + BLOCK).min(span.end);
        // Branch-free OR-reduction over the block; the compiler vectorises
        // the threshold compare against the contiguous u32 counts.
        let mut any = false;
        match mask {
            None => {
                for &c in &le[p..end] {
                    any |= c >= need;
                }
            }
            Some(m) => {
                for (&c, &allowed) in le[p..end].iter().zip(&m[p..end]) {
                    any |= allowed & (c >= need);
                }
            }
        }
        if any {
            for q in p..end {
                if le[q] < need || mask.is_some_and(|m| !m[q]) {
                    continue;
                }
                let partner = order[q];
                let (u, v) = if leg_is_left {
                    (leg, partner)
                } else {
                    (partner, leg)
                };
                let mut mle = lc.le + le[q];
                let mut mlt = lc.lt + lt[q];
                if a > 0 {
                    counters.attr_cmps += a as u64;
                    cx.fill_aggs(u, v, aggs);
                    let ac = dom_counts(aggs, ca);
                    mle += ac.le;
                    mlt += ac.lt;
                }
                if mle as usize >= k && mlt >= 1 {
                    counters.dom_tests += (end - span.start) as u64;
                    return true;
                }
            }
        }
        p = end;
    }
    counters.dom_tests += span.len() as u64;
    false
}

/// The columnar split-side verifier: same three entry points and the same
/// verdicts as [`JoinedCheck`] (which stays as the scalar row-major
/// oracle), but the partner-half `≤`/`<` counts are computed by stride-1
/// lane-blocked sweeps over attribute columns permuted into the join's
/// *scan order*, where every partner set is one contiguous range
/// ([`JoinContext::right_partner_span`]).
///
/// Per candidate the verifier fills the count arrays for each partner
/// block (one span per equality group, the whole side for theta/Cartesian
/// joins) at most once — generation-stamped like the oracle's memo — and
/// the per-pair test collapses to a vectorisable threshold compare over
/// contiguous `u32` counts; only pairs that could still reach `k` touch
/// the `a` aggregate positions. This trades more raw attribute
/// comparisons (the sweeps count every tuple of a block) for memory-
/// bandwidth scans, which is a large constant-factor wall-clock win on
/// the anti-correlated workloads where most pairs fail the threshold —
/// the kernel ablation (`BENCH_kernel.json`) pins the numbers.
///
/// The production algorithms construct this; benchmarks compare it
/// against the oracle, and the property suite proves the verdicts equal.
#[derive(Debug)]
pub struct ColumnarCheck<'b, 'a> {
    cx: &'b JoinContext<'a>,
    k: usize,
    l1: usize,
    l2: usize,
    a: usize,
    /// The join's immutable permuted-column layout — owned by a
    /// stand-alone verifier, borrowed when workers share one
    /// ([`with_layout`](Self::with_layout)).
    layout: Cow<'b, ColumnarLayout<'b>>,
    /// Scratch for the `a` aggregate values of one pair.
    aggs: Vec<f64>,
    /// Per-candidate partner-half counts, indexed by scan position, with
    /// generation stamps per filled block (keyed by span start — equality
    /// spans tile the order, other specs fill the whole side under key 0).
    lc_le: Vec<u32>,
    lc_lt: Vec<u32>,
    lstamp: Vec<u64>,
    rc_le: Vec<u32>,
    rc_lt: Vec<u32>,
    rstamp: Vec<u64>,
    /// Right-target membership by scan position (two-sided checks).
    rmask: Vec<bool>,
    generation: u64,
    counters: CheckCounters,
}

/// The shared immutable half of a [`ColumnarCheck`]: the join's scan
/// orders, the local-attribute columns permuted into them, and the right
/// id → position map. Building one costs an `O(n·d)` gather per side;
/// parallel verification builds it **once per call** and hands every
/// worker a borrow ([`ColumnarCheck::with_layout`]) instead of paying the
/// gather — and the memory — once per thread.
#[derive(Debug, Clone)]
pub struct ColumnarLayout<'b> {
    equality: bool,
    lorder: &'b [u32],
    rorder: &'b [u32],
    /// Local columns permuted into scan order, one side each.
    lperm: Vec<f64>,
    rperm: Vec<f64>,
    /// Right tuple id → scan position.
    rpos: Vec<u32>,
}

impl<'b> ColumnarLayout<'b> {
    /// Gather `cx`'s permuted-column layout.
    pub fn new(cx: &'b JoinContext<'_>) -> Self {
        let lorder = cx.left_scan_order();
        let rorder = cx.right_scan_order();
        let mut rpos = vec![0u32; cx.right().n()];
        for (pos, &t) in rorder.iter().enumerate() {
            rpos[t as usize] = pos as u32;
        }
        ColumnarLayout {
            equality: matches!(cx.spec(), ksjq_join::JoinSpec::Equality),
            lperm: permute_local_columns(cx.left(), cx.left_local_attrs(), lorder),
            rperm: permute_local_columns(cx.right(), cx.right_local_attrs(), rorder),
            lorder,
            rorder,
            rpos,
        }
    }
}

impl<'b, 'a> ColumnarCheck<'b, 'a> {
    /// A stand-alone columnar verifier for candidates of `cx`'s join
    /// under `k`-dominance (gathers its own [`ColumnarLayout`]).
    pub fn new(cx: &'b JoinContext<'a>, k: usize) -> Self {
        Self::build(cx, k, Cow::Owned(ColumnarLayout::new(cx)))
    }

    /// A verifier sharing a prebuilt [`ColumnarLayout`] — the parallel
    /// workers' constructor: per-worker state shrinks to the count /
    /// stamp / mask scratch.
    pub fn with_layout(cx: &'b JoinContext<'a>, k: usize, layout: &'b ColumnarLayout<'b>) -> Self {
        Self::build(cx, k, Cow::Borrowed(layout))
    }

    fn build(cx: &'b JoinContext<'a>, k: usize, layout: Cow<'b, ColumnarLayout<'b>>) -> Self {
        let (n1, n2) = (cx.left().n(), cx.right().n());
        ColumnarCheck {
            k,
            l1: cx.l1(),
            l2: cx.l2(),
            a: cx.a(),
            layout,
            aggs: vec![0.0; cx.a()],
            lc_le: vec![0; n1],
            lc_lt: vec![0; n1],
            lstamp: vec![0; n1 + 1],
            rc_le: vec![0; n2],
            rc_lt: vec![0; n2],
            rstamp: vec![0; n2 + 1],
            rmask: vec![false; n2],
            generation: 0,
            counters: CheckCounters::default(),
            cx,
        }
    }

    /// The work counters accumulated so far.
    pub fn counters(&self) -> CheckCounters {
        self.counters
    }

    /// Split `cand` into its `(left locals, right locals, aggregates)`
    /// segments.
    #[inline]
    fn segments<'c>(&self, cand: &'c [f64]) -> (&'c [f64], &'c [f64], &'c [f64]) {
        debug_assert_eq!(cand.len(), self.l1 + self.l2 + self.a);
        let (cl, rest) = cand.split_at(self.l1);
        let (cr, ca) = rest.split_at(self.l2);
        (cl, cr, ca)
    }

    /// Fill the right-side counts covering `span` for the current
    /// candidate if not already stamped (whole side for non-equality
    /// specs, whose spans overlap).
    fn ensure_right(&mut self, span: &Range<usize>, cr: &[f64]) {
        let n2 = self.cx.right().n();
        let (key, fill) = if self.layout.equality {
            (span.start, span.clone())
        } else {
            (0, 0..n2)
        };
        if self.rstamp[key] != self.generation {
            fill_span(
                &self.layout.rperm,
                n2,
                cr,
                fill,
                &mut self.rc_le,
                &mut self.rc_lt,
                &mut self.counters,
            );
            self.rstamp[key] = self.generation;
        }
    }

    /// Symmetric left-side fill for [`dominated_via_right`].
    fn ensure_left(&mut self, span: &Range<usize>, cl: &[f64]) {
        let n1 = self.cx.left().n();
        let (key, fill) = if self.layout.equality {
            (span.start, span.clone())
        } else {
            (0, 0..n1)
        };
        if self.lstamp[key] != self.generation {
            fill_span(
                &self.layout.lperm,
                n1,
                cl,
                fill,
                &mut self.lc_le,
                &mut self.lc_lt,
                &mut self.counters,
            );
            self.lstamp[key] = self.generation;
        }
    }

    /// Is `cand` k-dominated by some `u ⋈ v` with `u ∈ targets`,
    /// `v` join-compatible with `u`?
    pub fn dominated_via_left(&mut self, targets: &[u32], cand: &[f64]) -> bool {
        self.generation += 1;
        self.counters.targets_pruned += (self.cx.left().n().saturating_sub(targets.len())) as u64;
        let (cl, cr, ca) = self.segments(cand);
        for &u in targets {
            self.counters.attr_cmps += self.l1 as u64;
            let lc = dom_counts_partial(
                self.cx.left().row_at(u as usize),
                self.cx.left_local_attrs(),
                cl,
            );
            if lc.le as usize + self.l2 + self.a < self.k {
                self.counters.targets_pruned += 1;
                continue;
            }
            let span = self.cx.right_partner_span(u);
            if span.is_empty() {
                continue;
            }
            self.ensure_right(&span, cr);
            if scan_span(
                self.cx,
                self.k,
                self.a,
                u,
                true,
                lc,
                span,
                self.layout.rorder,
                &self.rc_le,
                &self.rc_lt,
                None,
                &mut self.aggs,
                ca,
                &mut self.counters,
            ) {
                return true;
            }
        }
        false
    }

    /// Is `cand` k-dominated by some `u ⋈ v` with `v ∈ targets`,
    /// `u` join-compatible with `v`?
    pub fn dominated_via_right(&mut self, targets: &[u32], cand: &[f64]) -> bool {
        self.generation += 1;
        self.counters.targets_pruned += (self.cx.right().n().saturating_sub(targets.len())) as u64;
        let (cl, cr, ca) = self.segments(cand);
        for &v in targets {
            self.counters.attr_cmps += self.l2 as u64;
            let rc = dom_counts_partial(
                self.cx.right().row_at(v as usize),
                self.cx.right_local_attrs(),
                cr,
            );
            if rc.le as usize + self.l1 + self.a < self.k {
                self.counters.targets_pruned += 1;
                continue;
            }
            let span = self.cx.left_partner_span(v);
            if span.is_empty() {
                continue;
            }
            self.ensure_left(&span, cl);
            if scan_span(
                self.cx,
                self.k,
                self.a,
                v,
                false,
                rc,
                span,
                self.layout.lorder,
                &self.lc_le,
                &self.lc_lt,
                None,
                &mut self.aggs,
                ca,
                &mut self.counters,
            ) {
                return true;
            }
        }
        false
    }

    /// Is `cand` k-dominated by some `u ⋈ v` with `u ∈ left_targets` *and*
    /// `v ∈ right_targets` (the dominator-based algorithm's
    /// `dom(u) ⋈ dom(v)`)?
    pub fn dominated_via_both(
        &mut self,
        left_targets: &[u32],
        right_targets: &[u32],
        cand: &[f64],
    ) -> bool {
        self.generation += 1;
        self.counters.targets_pruned += (self.cx.left().n().saturating_sub(left_targets.len())
            + self.cx.right().n().saturating_sub(right_targets.len()))
            as u64;
        let (cl, cr, ca) = self.segments(cand);
        for &v in right_targets {
            self.rmask[self.layout.rpos[v as usize] as usize] = true;
        }
        let mut found = false;
        'outer: for &u in left_targets {
            self.counters.attr_cmps += self.l1 as u64;
            let lc = dom_counts_partial(
                self.cx.left().row_at(u as usize),
                self.cx.left_local_attrs(),
                cl,
            );
            if lc.le as usize + self.l2 + self.a < self.k {
                self.counters.targets_pruned += 1;
                continue;
            }
            let span = self.cx.right_partner_span(u);
            if span.is_empty() {
                continue;
            }
            self.ensure_right(&span, cr);
            if scan_span(
                self.cx,
                self.k,
                self.a,
                u,
                true,
                lc,
                span,
                self.layout.rorder,
                &self.rc_le,
                &self.rc_lt,
                Some(&self.rmask),
                &mut self.aggs,
                ca,
                &mut self.counters,
            ) {
                found = true;
                break 'outer;
            }
        }
        for &v in right_targets {
            self.rmask[self.layout.rpos[v as usize] as usize] = false;
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksjq_join::{AggFunc, JoinSpec};
    use ksjq_relation::{k_dominates, Relation, Schema};

    fn rel(groups: &[u64], rows: &[Vec<f64>]) -> Relation {
        Relation::from_grouped_rows(Schema::uniform(rows[0].len()).unwrap(), groups, rows).unwrap()
    }

    #[test]
    fn left_and_right_checks_agree_with_exhaustive() {
        let r1 = rel(
            &[0, 0, 1],
            &[vec![1.0, 5.0], vec![2.0, 2.0], vec![0.0, 0.0]],
        );
        let r2 = rel(&[0, 1], &[vec![1.0, 1.0], vec![9.0, 9.0]]);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let k = 3;
        let all_left: Vec<u32> = vec![0, 1, 2];
        let all_right: Vec<u32> = vec![0, 1];
        let mut chk = JoinedCheck::new(&cx, k);

        // Exhaustive truth for each joined tuple.
        let m = cx.materialize();
        for (i, &(u, v)) in m.pairs.iter().enumerate() {
            let cand = m.row(i).to_vec();
            let exhaustive = m
                .pairs
                .iter()
                .enumerate()
                .any(|(j, _)| j != i && k_dominates(m.row(j), &cand, k));
            assert_eq!(
                chk.dominated_via_left(&all_left, &cand),
                exhaustive,
                "left check for ({u},{v})"
            );
            assert_eq!(
                chk.dominated_via_right(&all_right, &cand),
                exhaustive,
                "right check for ({u},{v})"
            );
            assert_eq!(
                chk.dominated_via_both(&all_left, &all_right, &cand),
                exhaustive,
                "both check for ({u},{v})"
            );
        }
        let c = chk.counters();
        assert!(c.dom_tests > 0);
        assert!(c.attr_cmps > 0);
    }

    #[test]
    fn restricting_targets_restricts_dominators() {
        // (2.0, 2.0) in group 0 is dominated only via u = 0.
        let r1 = rel(&[0, 0], &[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let r2 = rel(&[0], &[vec![1.0, 1.0]]);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let mut chk = JoinedCheck::new(&cx, 4);
        let cand = cx.joined_row(1, 0);
        assert!(chk.dominated_via_left(&[0], &cand));
        assert!(!chk.dominated_via_left(&[1], &cand));
        assert!(chk.dominated_via_both(&[0], &[0], &cand));
        assert!(!chk.dominated_via_both(&[1], &[0], &cand));
    }

    #[test]
    fn mask_is_cleared_between_calls() {
        let r1 = rel(&[0, 0], &[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let r2 = rel(&[0, 0], &[vec![1.0, 1.0], vec![5.0, 5.0]]);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let mut chk = JoinedCheck::new(&cx, 4);
        let cand = cx.joined_row(1, 0);
        assert!(chk.dominated_via_both(&[0], &[0], &cand));
        // Second call with a right-target set that excludes v = 0: the
        // mask from the first call must not leak (joined(0,1) = (1,1,5,5)
        // does not dominate cand = (2,2,1,1)).
        assert!(!chk.dominated_via_both(&[0], &[1], &cand));
    }

    /// The split kernel's verdicts must equal materialise-then-`k_dominates`
    /// on an aggregate join (the segment where left and right legs mix).
    #[test]
    fn split_kernel_matches_materialized_with_aggregates() {
        let schema = || Schema::uniform_agg(1, 2).unwrap();
        let mut state = 2024u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mk = |next: &mut dyn FnMut(u64) -> u64| {
            let mut b = Relation::builder(schema());
            for _ in 0..40 {
                let g = next(3);
                let row = [next(7) as f64, next(7) as f64, next(7) as f64];
                b.add_grouped(g, &row).unwrap();
            }
            b.build().unwrap()
        };
        let r1 = mk(&mut next);
        let r2 = mk(&mut next);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum]).unwrap();
        let all_left: Vec<u32> = (0..r1.n() as u32).collect();
        let all_right: Vec<u32> = (0..r2.n() as u32).collect();
        let mut scratch = vec![0.0; cx.d_joined()];
        for k in 4..=cx.d_joined() {
            let mut chk = JoinedCheck::new(&cx, k);
            let m = cx.materialize();
            for (i, _) in m.pairs.iter().enumerate() {
                let cand = m.row(i).to_vec();
                let mut expect_left = false;
                for &u in &all_left {
                    for &v in cx.right_partners(u) {
                        cx.fill(u, v, &mut scratch);
                        expect_left |= k_dominates(&scratch, &cand, k);
                    }
                }
                assert_eq!(
                    chk.dominated_via_left(&all_left, &cand),
                    expect_left,
                    "k={k} candidate {i}"
                );
                assert_eq!(
                    chk.dominated_via_right(&all_right, &cand),
                    expect_left,
                    "k={k} candidate {i}"
                );
            }
        }
    }

    /// The left-half hoist must save comparisons relative to re-comparing
    /// the full joined arity per partner pair.
    #[test]
    fn counters_reflect_the_hoist() {
        // One target with many partners: the left half is counted once.
        let r1 = rel(&[0], &[vec![5.0, 5.0]]);
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 9.0 - i as f64]).collect();
        let r2 = rel(&[0; 10], &rows);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let mut chk = JoinedCheck::new(&cx, 4);
        let cand = vec![5.0, 5.0, 4.0, 5.0];
        let _ = chk.dominated_via_left(&[0], &cand);
        let c = chk.counters();
        // 2 left-local comparisons once + 2 right-local per partner, never
        // 4 per pair.
        assert_eq!(c.dom_tests, 10);
        assert_eq!(c.attr_cmps, 2 + 10 * 2);
    }

    /// The columnar verifier must return the oracle's verdicts on all
    /// three entry points, for an aggregate join over random data and
    /// every valid k — including arbitrary (restricted) target sets.
    #[test]
    fn columnar_matches_oracle_on_aggregate_join() {
        let schema = || Schema::uniform_agg(1, 2).unwrap();
        let mut state = 555u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mk = |next: &mut dyn FnMut(u64) -> u64| {
            let mut b = Relation::builder(schema());
            for _ in 0..36 {
                let g = next(3);
                let row = [next(6) as f64, next(6) as f64, next(6) as f64];
                b.add_grouped(g, &row).unwrap();
            }
            b.build().unwrap()
        };
        let r1 = mk(&mut next);
        let r2 = mk(&mut next);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum]).unwrap();
        let m = cx.materialize();
        for k in 4..=cx.d_joined() {
            let mut oracle = JoinedCheck::new(&cx, k);
            let mut columnar = ColumnarCheck::new(&cx, k);
            for (i, &(u, v)) in m.pairs.iter().enumerate().take(24) {
                let cand = m.row(i).to_vec();
                // Restricted target sets exercise the mask / span logic.
                let lt: Vec<u32> = (0..r1.n() as u32).filter(|t| t % 2 == u % 2).collect();
                let rt: Vec<u32> = (0..r2.n() as u32).filter(|t| t % 3 == v % 3).collect();
                assert_eq!(
                    columnar.dominated_via_left(&lt, &cand),
                    oracle.dominated_via_left(&lt, &cand),
                    "via_left ({u},{v}) k={k}"
                );
                assert_eq!(
                    columnar.dominated_via_right(&rt, &cand),
                    oracle.dominated_via_right(&rt, &cand),
                    "via_right ({u},{v}) k={k}"
                );
                assert_eq!(
                    columnar.dominated_via_both(&lt, &rt, &cand),
                    oracle.dominated_via_both(&lt, &rt, &cand),
                    "via_both ({u},{v}) k={k}"
                );
            }
            let c = columnar.counters();
            assert!(c.dom_tests > 0 && c.attr_cmps > 0, "{c:?}");
        }
    }

    #[test]
    fn columnar_mask_is_cleared_between_calls() {
        let r1 = rel(&[0, 0], &[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let r2 = rel(&[0, 0], &[vec![1.0, 1.0], vec![5.0, 5.0]]);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let mut chk = ColumnarCheck::new(&cx, 4);
        let cand = cx.joined_row(1, 0);
        assert!(chk.dominated_via_both(&[0], &[0], &cand));
        assert!(!chk.dominated_via_both(&[0], &[1], &cand));
    }

    /// Per-call target pruning accounting: a restricted target set counts
    /// the excluded legs in both verifiers.
    #[test]
    fn targets_pruned_counts_excluded_legs() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let r1 = rel(&[0; 10], &rows);
        let r2 = rel(&[0], &[vec![5.0, 5.0]]);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let cand = cx.joined_row(4, 0);
        let mut oracle = JoinedCheck::new(&cx, 4);
        let _ = oracle.dominated_via_left(&[1, 2, 3], &cand);
        assert_eq!(oracle.counters().targets_pruned, 7);
        let mut columnar = ColumnarCheck::new(&cx, 4);
        let _ = columnar.dominated_via_left(&[1, 2, 3], &cand);
        assert_eq!(columnar.counters().targets_pruned, 7);
    }

    #[test]
    fn counters_absorb_accumulates() {
        let mut a = CheckCounters {
            dom_tests: 1,
            attr_cmps: 2,
            targets_pruned: 3,
        };
        a.absorb(CheckCounters {
            dom_tests: 10,
            attr_cmps: 20,
            targets_pruned: 30,
        });
        assert_eq!(
            a,
            CheckCounters {
                dom_tests: 11,
                attr_cmps: 22,
                targets_pruned: 33,
            }
        );
    }
}
