//! Non-equality (theta) join conditions, paper Sec. 6.6: the algorithms
//! must agree under `<`, `<=`, `>`, `>=` key conditions, and the
//! prefix/suffix "group" semantics must be sound.

mod common;

use common::*;
use ksjq::core::{classify, validate_k, Category};
use ksjq::prelude::*;

#[test]
fn all_theta_ops_agree_across_algorithms() {
    let cfg = Config::default();
    for op in [ThetaOp::Lt, ThetaOp::Le, ThetaOp::Gt, ThetaOp::Ge] {
        for seed in [1u64, 2] {
            let r1 = random_keyed(seed, 60, 4, 9);
            let r2 = random_keyed(seed + 10, 60, 4, 9);
            let cx = JoinContext::new(&r1, &r2, JoinSpec::Theta(op), &[]).unwrap();
            for k in 5..=7 {
                assert_all_algorithms_agree(&cx, k, &cfg, &format!("theta {op} seed={seed} k={k}"));
            }
        }
    }
}

#[test]
fn theta_with_aggregates_agree() {
    let cfg = Config::default();
    let mk = |seed: u64| {
        let mut rng_state = seed;
        let mut next = move |m: u64| {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng_state >> 33) % m
        };
        let mut b = Relation::builder(Schema::uniform_agg(1, 3).unwrap());
        for _ in 0..50 {
            let key = next(100) as f64 / 10.0;
            let row = [
                next(9) as f64,
                next(9) as f64,
                next(9) as f64,
                next(9) as f64,
            ];
            b.add_keyed(key, &row).unwrap();
        }
        b.build().unwrap()
    };
    let r1 = mk(100);
    let r2 = mk(200);
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Theta(ThetaOp::Lt), &[AggFunc::Sum]).unwrap();
    for k in 5..=7 {
        assert_all_algorithms_agree(&cx, k, &cfg, &format!("theta-agg k={k}"));
    }
}

/// The flight-connection scenario of Sec. 6.6: leg 1 must land before
/// leg 2 departs. Hand-checked miniature.
#[test]
fn arrival_before_departure_semantics() {
    let mk = |keys: &[f64], rows: &[Vec<f64>]| {
        let mut b = Relation::builder(Schema::uniform(2).unwrap());
        for (k, r) in keys.iter().zip(rows) {
            b.add_keyed(*k, r).unwrap();
        }
        b.build().unwrap()
    };
    // Leg 1: (arrival, cost, quality-ish). Leg 2: (departure, …).
    let r1 = mk(&[10.0, 12.0], &[vec![5.0, 5.0], vec![1.0, 1.0]]);
    let r2 = mk(&[11.0, 13.0], &[vec![5.0, 5.0], vec![2.0, 2.0]]);
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Theta(ThetaOp::Lt), &[]).unwrap();
    // Valid pairs: (0,0) 10<11, (0,1) 10<13, (1,1) 12<13 — not (1,0).
    assert_eq!(cx.count_pairs(), 3);
    assert!(!cx.compatible(1, 0));

    let out = assert_all_algorithms_agree(&cx, 3, &Config::default(), "arr<dep");
    // (1,1) = (1,1,2,2) dominates (0,0) = (5,5,5,5) and (0,1) = (5,5,2,2).
    assert_eq!(out.pairs, vec![(TupleId(1), TupleId(1))]);
}

/// Classification under theta joins uses prefix/suffix coverers: a tuple
/// with a *more permissive* key that k′-dominates makes its victim NN.
#[test]
fn theta_classification_uses_coverers() {
    let mk = |keys: &[f64], rows: &[Vec<f64>]| {
        let mut b = Relation::builder(Schema::uniform(2).unwrap());
        for (k, r) in keys.iter().zip(rows) {
            b.add_keyed(*k, r).unwrap();
        }
        b.build().unwrap()
    };
    // Under `<`, a smaller left key covers a larger one.
    // t0 (key 1, great) covers and dominates t1 (key 2, poor) ⇒ t1 ∈ NN.
    // t2 (key 0.5, poor) is dominated by t0 but t0 does NOT cover t2
    // (t0's key is larger) ⇒ t2 ∈ SN.
    let r1 = mk(
        &[1.0, 2.0, 0.5],
        &[vec![1.0, 1.0], vec![5.0, 5.0], vec![9.0, 9.0]],
    );
    let r2 = mk(&[3.0], &[vec![1.0, 1.0]]);
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Theta(ThetaOp::Lt), &[]).unwrap();
    let p = validate_k(&cx, 3).unwrap();
    let cls = classify(&cx, &p, KdomAlgo::Naive);
    assert_eq!(cls.left, vec![Category::SS, Category::NN, Category::SN]);

    // And the final answers still agree.
    assert_all_algorithms_agree(&cx, 3, &Config::default(), "theta-classify");
}

/// Keys with ties: tuples with equal keys cover each other; correctness
/// must hold in both directions of the condition.
#[test]
fn theta_ties_covered_both_ways() {
    let cfg = Config::default();
    let mk = |seed: u64| {
        let mut state = seed;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut b = Relation::builder(Schema::uniform(3).unwrap());
        for _ in 0..40 {
            // Only 4 distinct key values ⇒ heavy ties.
            let key = next(4) as f64;
            let row = [next(6) as f64, next(6) as f64, next(6) as f64];
            b.add_keyed(key, &row).unwrap();
        }
        b.build().unwrap()
    };
    let r1 = mk(900);
    let r2 = mk(901);
    for op in [ThetaOp::Le, ThetaOp::Ge] {
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Theta(op), &[]).unwrap();
        for k in 4..=5 {
            assert_all_algorithms_agree(&cx, k, &cfg, &format!("ties {op} k={k}"));
        }
    }
}

/// Find-k works over theta joins too.
#[test]
fn find_k_over_theta_join() {
    let r1 = random_keyed(300, 50, 4, 10);
    let r2 = random_keyed(301, 50, 4, 10);
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Theta(ThetaOp::Lt), &[]).unwrap();
    let cfg = Config::default();
    for delta in [1usize, 25, 500] {
        let a = find_k_at_least(&cx, delta, FindKStrategy::Naive, &cfg).unwrap();
        let b = find_k_at_least(&cx, delta, FindKStrategy::Binary, &cfg).unwrap();
        assert_eq!(a.k, b.k, "delta={delta}");
    }
}
