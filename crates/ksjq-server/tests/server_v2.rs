//! Protocol-v2 integration tests over live sockets: bounded streaming of
//! a 100 000-pair result, slow-reader backpressure (the server never
//! buffers more than one in-flight chunk per connection), admission
//! control (`ERR busy` shedding and recovery), slow-loris vs idle
//! reaping, socket-level write fragmentation, `MORE` cursor paging, and
//! 1000 concurrently idle connections on an 8-worker pool.

use ksjq_core::{Engine, QueryPlan};
use ksjq_datagen::{paper_flights, relation_to_csv};
use ksjq_server::{
    Cursor, KsjqClient, PlanSpec, Response, Server, ServerConfig, MAX_ROWS_FRAME_BYTES,
    ROWS_PER_CHUNK,
};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn ephemeral() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    }
}

/// Two relations whose joined tuples are all attribute-identical, so no
/// pair k-dominates any other and **every** joined pair survives:
/// `groups · per_left · per_right` result pairs of known identity.
fn all_survivors_csvs(groups: usize, per_left: usize, per_right: usize) -> (String, String) {
    let mut left = String::from("city,cost,dur\n");
    let mut right = String::from("city,fee,pop\n");
    for g in 0..groups {
        for _ in 0..per_left {
            writeln!(left, "g{g},5,5").unwrap();
        }
        for _ in 0..per_right {
            writeln!(right, "g{g},5,5").unwrap();
        }
    }
    (left, right)
}

/// Read v2 frames of one answer (first via `raw`, rest via `raw_read`)
/// until the final part; returns the raw frame strings.
fn read_stream_raw(client: &mut KsjqClient, command: &str) -> Vec<String> {
    let mut frames = vec![client.raw(command).unwrap()];
    loop {
        match Response::parse(frames.last().unwrap()).unwrap() {
            Response::Chunk(chunk) if !chunk.is_last() => {
                frames.push(client.raw_read().unwrap());
            }
            Response::Chunk(_) => return frames,
            other => panic!("expected a ROWS part frame, got {other:?}"),
        }
    }
}

/// The acceptance path: a 100k-pair result streams over v2 in bounded
/// frames, and the reassembled rows are byte-identical to in-process
/// execution.
#[test]
fn hundred_thousand_pairs_stream_in_bounded_frames() {
    let (left, right) = all_survivors_csvs(100, 10, 100); // 100 groups × 1000 pairs

    let local = Engine::new();
    local.catalog().register_csv("l", &left).unwrap();
    local.catalog().register_csv("r", &right).unwrap();
    let reference = local.execute(&QueryPlan::new("l", "r").k(4)).unwrap();
    let expected: Vec<(u32, u32)> = reference.pairs.iter().map(|&(l, r)| (l.0, r.0)).collect();
    assert_eq!(expected.len(), 100_000);

    let server = Server::start(Engine::new(), &ephemeral()).unwrap();
    let mut client = KsjqClient::connect(server.addr()).unwrap();
    assert_eq!(client.version(), 2);
    client.load_csv("l", &left).unwrap();
    client.load_csv("r", &right).unwrap();
    client
        .prepare("big", &PlanSpec::new("l", "r").k(4))
        .unwrap();

    // Raw frames so we can assert on the literal bytes the server sent.
    let frames = read_stream_raw(&mut client, "EXECUTE big");
    let mut rows: Vec<(u32, u32)> = Vec::new();
    for (i, frame) in frames.iter().enumerate() {
        assert!(
            frame.len() < MAX_ROWS_FRAME_BYTES,
            "frame {i} is {} bytes (cap {MAX_ROWS_FRAME_BYTES})",
            frame.len()
        );
        let Ok(Response::Chunk(chunk)) = Response::parse(frame) else {
            panic!("frame {i} is not a ROWS part: {frame:?}");
        };
        assert_eq!(chunk.part as usize, i + 1);
        assert_eq!(chunk.parts as usize, frames.len());
        assert_eq!(chunk.total, 100_000);
        assert!(chunk.pairs.len() <= ROWS_PER_CHUNK, "{}", chunk.pairs.len());
        rows.extend(chunk.pairs);
    }
    assert_eq!(frames.len(), 100_000usize.div_ceil(ROWS_PER_CHUNK));
    assert_eq!(rows, expected, "reassembled stream differs from in-process");

    // The one-shot convenience drains the same stream (cache hit now).
    let again = client.execute("big").unwrap();
    assert!(again.cached);
    assert_eq!(again.pairs, expected);
}

/// A long-running streamed query is pinned to the catalog epoch it
/// started at: a concurrent `APPEND` publishes a new version, but the
/// in-flight stream keeps serving the snapshot it executed against —
/// same parts, same rows, no torn result.
#[test]
fn streamed_query_is_pinned_against_concurrent_append() {
    let (left, right) = all_survivors_csvs(25, 10, 20); // 5000 pairs → 3 chunks
    let local = Engine::new();
    local.catalog().register_csv("l", &left).unwrap();
    local.catalog().register_csv("r", &right).unwrap();
    let reference = local.execute(&QueryPlan::new("l", "r").k(4)).unwrap();
    let expected: Vec<(u32, u32)> = reference.pairs.iter().map(|&(l, r)| (l.0, r.0)).collect();

    let server = Server::start(Engine::new(), &ephemeral()).unwrap();
    let mut client = KsjqClient::connect(server.addr()).unwrap();
    client.load_csv("l", &left).unwrap();
    client.load_csv("r", &right).unwrap();
    client.prepare("q", &PlanSpec::new("l", "r").k(4)).unwrap();

    // First chunk in hand, the stream is still in flight…
    let mut frames = vec![client.raw("EXECUTE q").unwrap()];
    // …when a second session appends a dominant row to the left input.
    let mut writer = KsjqClient::connect(server.addr()).unwrap();
    writer.append_rows("l", "g0,1,1").unwrap();
    writer.close().unwrap();
    // The rest of the stream is unaffected.
    loop {
        match Response::parse(frames.last().unwrap()).unwrap() {
            Response::Chunk(chunk) if !chunk.is_last() => {
                frames.push(client.raw_read().unwrap());
            }
            Response::Chunk(_) => break,
            other => panic!("expected a ROWS part frame, got {other:?}"),
        }
    }
    assert!(
        frames.len() > 1,
        "needs a multi-chunk stream to prove pinning"
    );
    let mut rows: Vec<(u32, u32)> = Vec::new();
    for frame in &frames {
        let Ok(Response::Chunk(chunk)) = Response::parse(frame) else {
            panic!("not a ROWS part: {frame:?}");
        };
        rows.extend(chunk.pairs);
    }
    assert_eq!(
        rows, expected,
        "in-flight stream must serve its pinned epoch"
    );

    // A query *started after* the append sees the new version: the
    // appended (1,1) row dominates every old g0 pair out of the result.
    let fresh = client.query(&PlanSpec::new("l", "r").k(4)).unwrap();
    assert_ne!(fresh.pairs, expected, "new queries must see the append");
    client.close().unwrap();
    server.stop().unwrap();
}

/// A reader that stalls mid-stream must not make the server buffer the
/// rest of the result: at most one in-flight chunk per connection, which
/// the `peak_buf` high-water mark proves.
#[test]
fn slow_reader_backpressure_bounds_server_memory() {
    // ~25.6k pairs → 13 chunks ≈ 4× the frame cap in total bytes.
    let (left, right) = all_survivors_csvs(40, 16, 40);
    let server = Server::start(Engine::new(), &ephemeral()).unwrap();

    let mut slow = KsjqClient::connect(server.addr()).unwrap();
    slow.load_csv("l", &left).unwrap();
    slow.load_csv("r", &right).unwrap();
    slow.prepare("big", &PlanSpec::new("l", "r").k(4)).unwrap();

    // Read exactly one frame, then stop reading while the server still
    // has a dozen chunks to ship.
    let first = slow.raw("EXECUTE big").unwrap();
    let Ok(Response::Chunk(chunk)) = Response::parse(&first) else {
        panic!("expected a ROWS part, got {first:?}");
    };
    assert!(!chunk.is_last());
    let total = chunk.total;
    std::thread::sleep(Duration::from_millis(500));

    // A second connection observes the server's buffering high-water
    // mark: bounded by one serialised chunk, not by the whole result.
    let mut observer = KsjqClient::connect(server.addr()).unwrap();
    let stats = observer.stats().unwrap();
    assert!(stats.peak_buf > 0, "{stats:?}");
    assert!(
        stats.peak_buf < (MAX_ROWS_FRAME_BYTES + 2048) as u64,
        "server buffered {} bytes for a stalled reader",
        stats.peak_buf
    );

    // The stalled stream picks up where it left off, nothing lost.
    let mut rows = chunk.pairs.len();
    loop {
        let frame = slow.raw_read().unwrap();
        let Ok(Response::Chunk(chunk)) = Response::parse(&frame) else {
            panic!("expected a ROWS part, got {frame:?}");
        };
        rows += chunk.pairs.len();
        if chunk.is_last() {
            break;
        }
    }
    assert_eq!(rows, total);
    assert_eq!(total, 40 * 16 * 40);
}

/// Past `max_conns`, new connections get `ERR busy` and are closed;
/// capacity freed by disconnects is usable again.
#[test]
fn admission_control_sheds_and_recovers() {
    let server = Server::start(
        Engine::new(),
        &ServerConfig {
            max_conns: 4,
            workers: 2,
            ..ephemeral()
        },
    )
    .unwrap();

    // Fill every admission slot; a completed HELLO round-trip per client
    // proves each one is registered, not just queued in the backlog.
    let mut admitted: Vec<KsjqClient> = (0..4)
        .map(|_| KsjqClient::connect(server.addr()).unwrap())
        .collect();

    // The 5th is shed. Connect-then-read (never write): the answer is
    // one `ERR busy` frame, then EOF.
    let mut shed = TcpStream::connect(server.addr()).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut answer = String::new();
    shed.read_to_string(&mut answer).unwrap();
    assert_eq!(answer, "ERR busy\n");

    // Dropping two admitted connections frees their slots.
    admitted.truncate(2);
    let deadline = Instant::now() + Duration::from_secs(5);
    let stats = loop {
        match KsjqClient::connect(server.addr()).and_then(|mut c| c.stats()) {
            Ok(stats) => break stats,
            Err(e) => {
                assert!(Instant::now() < deadline, "no slot freed after 5s: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    assert!(stats.shed >= 1, "{stats:?}");
    // The survivors were never disturbed.
    for client in &mut admitted {
        assert!(client.stats().is_ok());
    }
}

/// The stall deadline reaps a connection parked mid-frame (slow loris)
/// while a connection that is merely idle *between* requests lives on —
/// and a shorter idle timeout reaps true idlers too.
#[test]
fn slow_loris_is_reaped_but_idle_connections_survive() {
    let server = Server::start(
        Engine::new(),
        &ServerConfig {
            idle_timeout: Duration::from_secs(60),
            stall_timeout: Duration::from_millis(300),
            ..ephemeral()
        },
    )
    .unwrap();

    // The loris: half a request, then silence.
    let mut loris = TcpStream::connect(server.addr()).unwrap();
    loris.write_all(b"STA").unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // An idler in good standing: connected at the same time, no partial
    // frame pending.
    let mut idler = KsjqClient::connect(server.addr()).unwrap();

    let mut buf = Vec::new();
    loris.read_to_end(&mut buf).unwrap(); // EOF = reaped
    assert!(buf.is_empty(), "unexpected answer to a half frame: {buf:?}");

    let stats = idler.stats().unwrap(); // still alive after the reap pass
    assert!(stats.reaped >= 1, "{stats:?}");

    // A server with a short idle timeout reaps complete-but-quiet
    // connections from the same deadline clock.
    let server = Server::start(
        Engine::new(),
        &ServerConfig {
            idle_timeout: Duration::from_millis(300),
            stall_timeout: Duration::from_millis(200),
            ..ephemeral()
        },
    )
    .unwrap();
    let mut quiet = TcpStream::connect(server.addr()).unwrap();
    quiet.write_all(b"STATS\n").unwrap();
    quiet
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = std::io::BufReader::new(quiet.try_clone().unwrap());
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    assert!(line.starts_with("STATS "), "{line:?}");
    // No second request: the idle deadline fires and the server closes.
    line.clear();
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    assert_eq!(line, "", "expected EOF after idle timeout, got {line:?}");
}

/// A whole v2 session written in 3-byte fragments parses identically to
/// one written in whole lines — the socket-level face of the
/// frame-buffer's every-split-point property.
#[test]
fn v2_session_survives_arbitrary_write_fragmentation() {
    let server = Server::start(Engine::new(), &ephemeral()).unwrap();
    let script = "HELLO 2\n\
                  LOAD a INLINE city,cost;X,1;Y,2\n\
                  LOAD b INLINE city,fee;X,3;Y,1\n\
                  QUERY a JOIN b K 2\n\
                  STATS\n\
                  CLOSE\n";

    let mut socket = TcpStream::connect(server.addr()).unwrap();
    socket.set_nodelay(true).unwrap();
    for fragment in script.as_bytes().chunks(3) {
        socket.write_all(fragment).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }

    socket
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut answers = String::new();
    socket.read_to_string(&mut answers).unwrap();
    let frames: Vec<Response> = answers
        .lines()
        .map(|l| Response::parse(l).unwrap())
        .collect();
    assert_eq!(frames.len(), 6, "{answers:?}");
    assert!(matches!(frames[0], Response::Hello { version: 2 }));
    assert!(matches!(frames[1], Response::Ok(_)));
    assert!(matches!(frames[2], Response::Ok(_)));
    let Response::Chunk(chunk) = &frames[3] else {
        panic!("expected a ROWS part, got {:?}", frames[3]);
    };
    // Joined tuples (1,3) and (2,1): neither 2-dominates, both survive.
    assert_eq!(chunk.pairs, vec![(0, 0), (1, 1)]);
    assert!(chunk.is_last());
    assert!(matches!(frames[4], Response::Stats(_)));
    assert!(matches!(frames[5], Response::Bye));
}

/// `MORE` re-fetches any part of a cached result by cursor; bad cursors
/// and v1 sessions are rejected with a useful error.
#[test]
fn more_paging_refetches_chunks() {
    let (left, right) = all_survivors_csvs(25, 10, 20); // 5000 pairs → 3 chunks
    let server = Server::start(Engine::new(), &ephemeral()).unwrap();
    let mut client = KsjqClient::connect(server.addr()).unwrap();
    client.load_csv("l", &left).unwrap();
    client.load_csv("r", &right).unwrap();
    client.prepare("q", &PlanSpec::new("l", "r").k(4)).unwrap();

    let chunks: Vec<_> = client
        .execute_stream("q")
        .unwrap()
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(chunks.len(), 3);
    let result = chunks[0]
        .cursor
        .expect("non-final frames carry a cursor")
        .result;

    // Every non-final frame's cursor fetches exactly the next part.
    for chunk in &chunks[..chunks.len() - 1] {
        let cursor = chunk.cursor.expect("non-final frame must carry a cursor");
        let paged = client.more(cursor).unwrap();
        let next = &chunks[chunk.part as usize]; // part is 1-based
        assert_eq!(paged.part, next.part);
        assert_eq!(paged.pairs, next.pairs);
        assert!(paged.cached);
    }
    assert!(chunks.last().unwrap().cursor.is_none());

    // Cursors are random-access: the first part again, out of order.
    let first_again = client.more(Cursor { result, part: 1 }).unwrap();
    assert_eq!(first_again.pairs, chunks[0].pairs);

    // Past the end and unknown results are errors, not hangs.
    assert!(client.more(Cursor { result, part: 4 }).is_err());
    assert!(client
        .more(Cursor {
            result: result + 999,
            part: 1
        })
        .is_err());

    // A v1 session has no cursors and `MORE` says why.
    let mut legacy = KsjqClient::connect_legacy(server.addr()).unwrap();
    let answer = legacy.raw(&format!("MORE {result}:2")).unwrap();
    assert!(
        answer.starts_with("ERR") && answer.contains("HELLO 2"),
        "{answer:?}"
    );
}

/// 1000 concurrently open idle connections on an 8-worker pool, while v1
/// and v2 sessions keep answering correctly through the crowd.
#[test]
fn thousand_idle_connections_with_live_queries() {
    let server = Server::start(Engine::new(), &ephemeral()).unwrap();
    let idle: Vec<TcpStream> = (0..1000)
        .map(|i| {
            TcpStream::connect(server.addr())
                .unwrap_or_else(|e| panic!("idle connection {i} refused: {e}"))
        })
        .collect();

    // Table 3 of the paper, via both protocol versions, mid-crowd.
    let pf = paper_flights(false);
    let out_csv = relation_to_csv(&pf.outbound, "city", Some(&pf.cities)).unwrap();
    let in_csv = relation_to_csv(&pf.inbound, "city", Some(&pf.cities)).unwrap();
    let mut v2 = KsjqClient::connect(server.addr()).unwrap();
    assert_eq!(v2.version(), 2);
    v2.load_csv("outbound", &out_csv).unwrap();
    v2.load_csv("inbound", &in_csv).unwrap();
    let plan = PlanSpec::new("outbound", "inbound").k(7);
    let expected = vec![(0, 2), (2, 0), (4, 4), (5, 5)];
    assert_eq!(v2.query(&plan).unwrap().pairs, expected);

    let mut v1 = KsjqClient::connect_legacy(server.addr()).unwrap();
    assert_eq!(v1.version(), 1);
    assert_eq!(v1.query(&plan).unwrap().pairs, expected);

    let stats = v2.stats().unwrap();
    assert!(stats.connections >= 1002, "{stats:?}");
    assert_eq!(stats.workers, 8);
    assert_eq!(stats.shed, 0, "{stats:?}");

    // Mass disconnect: the server digests 1000 EOFs and keeps serving.
    drop(idle);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = v2.stats().unwrap();
        if stats.shed == 0 && KsjqClient::connect(server.addr()).is_ok() {
            break;
        }
        assert!(Instant::now() < deadline, "server unhealthy after mass EOF");
        std::thread::sleep(Duration::from_millis(20));
    }
}
