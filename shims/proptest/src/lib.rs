//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the API subset its property tests use: the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`], [`Strategy`] with `prop_map`,
//! integer-range and tuple strategies, [`collection::vec`] and
//! [`sample::subsequence`].
//!
//! Semantics: each `#[test]` inside [`proptest!`] runs
//! [`ProptestConfig::cases`] deterministic random cases (seeded per test
//! from the test body's name). There is **no shrinking** — a failing case
//! panics with the values' `Debug` output where the assertion macros
//! provide it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-`proptest!`-block configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies; re-exported so generated code can name it.
pub type TestRng = StdRng;

/// Make a deterministic per-test RNG (FNV-1a over the test name).
pub fn rng_for_test(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.new_value(rng), self.1.new_value(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.new_value(rng),
            self.1.new_value(rng),
            self.2.new_value(rng),
        )
    }
}

/// Collection-size specification: an exact size or an inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub lo: usize,
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// The result of [`vec()`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// The result of [`subsequence`].
    #[derive(Debug)]
    pub struct Subsequence<T> {
        items: Vec<T>,
        size: SizeRange,
    }

    /// An order-preserving random subsequence of `items` whose length is
    /// drawn from `size`.
    pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            items,
            size: size.into(),
        }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.items.len();
            let len = rng.gen_range(self.size.lo..=self.size.hi).min(n);
            // Partial Fisher-Yates over the index set, then restore order.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..len {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
            }
            let mut chosen = idx[..len].to_vec();
            chosen.sort_unstable();
            chosen.iter().map(|&i| self.items[i].clone()).collect()
        }
    }
}

pub mod prelude {
    //! The imports property tests start from.

    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};

    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// The test-defining macro. Supports the two shapes the workspace uses:
/// an optional leading `#![proptest_config(expr)]`, then any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items (doc comments
/// and other attributes allowed).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::new_value(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}
