//! The worked example of the paper: Tables 1 and 2.
//!
//! Nine flights out of city A (Table 1) and eight flights into city B
//! (Table 2), joined on the stopover city, with four skyline attributes
//! each (cost, duration, rating, amenities — all *lower preferred*, per the
//! paper's footnote 2).
//!
//! Two typos in the published tables are corrected here so that the worked
//! example is arithmetically consistent with the paper's own prose:
//!
//! * Flight 28's amenities value is 37 in Table 2 but 39 in Table 3 and in
//!   the Observation-3 walk-through ("(19,25) dominates (18,28) in 3+4=7
//!   attributes" requires 38 ≤ amn(28), hence 39). We use **39**.
//! * Table 1 labels flight 18 as `SS1`, but flight 16 = (452, 3.6, 20, 36)
//!   3-dominates flight 18 = (451, 3.7, 20, 37) (better-or-equal in
//!   duration/rating/amenities, strictly better in duration), so 18 is
//!   `SN1` by the paper's own Definition 2. The final skyline of Table 3 is
//!   unaffected. Tests assert the arithmetically correct labels.

use ksjq_relation::{Preference, Relation, Schema, StringDictionary};

/// Flight numbers of Table 1, index-aligned with the tuple ids of
/// [`PaperFlights::outbound`].
pub const TABLE1_FNO: [u32; 9] = [11, 12, 13, 14, 15, 16, 17, 18, 19];

/// Flight numbers of Table 2, index-aligned with the tuple ids of
/// [`PaperFlights::inbound`].
pub const TABLE2_FNO: [u32; 8] = [21, 22, 23, 24, 25, 26, 27, 28];

/// `(destination, cost, duration, rating, amenities)` rows of Table 1.
pub const TABLE1: [(&str, f64, f64, f64, f64); 9] = [
    ("C", 448.0, 3.2, 40.0, 40.0), // 11
    ("C", 468.0, 4.2, 50.0, 38.0), // 12
    ("D", 456.0, 3.8, 60.0, 34.0), // 13
    ("D", 460.0, 4.0, 70.0, 32.0), // 14
    ("E", 450.0, 3.4, 30.0, 42.0), // 15
    ("F", 452.0, 3.6, 20.0, 36.0), // 16
    ("G", 472.0, 4.6, 80.0, 46.0), // 17
    ("H", 451.0, 3.7, 20.0, 37.0), // 18
    ("E", 451.0, 3.7, 40.0, 37.0), // 19
];

/// `(source, cost, duration, rating, amenities)` rows of Table 2
/// (flight 28's amenities corrected to 39, see module docs).
pub const TABLE2: [(&str, f64, f64, f64, f64); 8] = [
    ("D", 348.0, 2.2, 40.0, 36.0), // 21
    ("D", 368.0, 3.2, 50.0, 34.0), // 22
    ("C", 356.0, 2.8, 60.0, 30.0), // 23
    ("C", 360.0, 3.0, 70.0, 28.0), // 24
    ("E", 350.0, 2.4, 30.0, 38.0), // 25
    ("F", 352.0, 2.6, 20.0, 32.0), // 26
    ("G", 372.0, 3.6, 80.0, 42.0), // 27
    ("H", 350.0, 2.4, 35.0, 39.0), // 28
];

/// The paper's example relations, ready to query.
#[derive(Debug, Clone)]
pub struct PaperFlights {
    /// Table 1: flights from city A (tuple id `i` ↔ flight `11 + i`).
    pub outbound: Relation,
    /// Table 2: flights to city B (tuple id `i` ↔ flight `21 + i`).
    pub inbound: Relation,
    /// City-name dictionary shared by both relations' join keys.
    pub cities: StringDictionary,
}

fn schema(aggregate_cost: bool) -> Schema {
    let b = Schema::builder();
    let b = if aggregate_cost {
        b.agg("cost", Preference::Min, 0)
    } else {
        b.local("cost", Preference::Min)
    };
    b.local("dur", Preference::Min)
        .local("rtg", Preference::Min)
        .local("amn", Preference::Min)
        .build()
        .expect("static schema is valid")
}

/// Build the paper's example relations.
///
/// With `aggregate_cost = false` this is the plain-KSJQ setting of
/// Tables 1–5 (d1 = d2 = 4, k = 7 in the paper's joined example); with
/// `aggregate_cost = true` it is the aggregate setting of Table 6
/// (cost summed across legs, a = 1, k = 6).
pub fn paper_flights(aggregate_cost: bool) -> PaperFlights {
    let mut cities = StringDictionary::new();
    let mut out = Relation::builder(schema(aggregate_cost));
    for (city, cost, dur, rtg, amn) in TABLE1 {
        let gid = cities.encode(city);
        out.add_grouped(gid, &[cost, dur, rtg, amn])
            .expect("static row is valid");
    }
    let mut inb = Relation::builder(schema(aggregate_cost));
    for (city, cost, dur, rtg, amn) in TABLE2 {
        let gid = cities.encode(city);
        inb.add_grouped(gid, &[cost, dur, rtg, amn])
            .expect("static row is valid");
    }
    PaperFlights {
        outbound: out.build().expect("static relation is valid"),
        inbound: inb.build().expect("static relation is valid"),
        cities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksjq_relation::TupleId;

    #[test]
    fn shapes() {
        let pf = paper_flights(false);
        assert_eq!(pf.outbound.n(), 9);
        assert_eq!(pf.inbound.n(), 8);
        assert_eq!(pf.outbound.d(), 4);
        assert_eq!(pf.outbound.schema().agg_count(), 0);
        let agg = paper_flights(true);
        assert_eq!(agg.outbound.schema().agg_count(), 1);
    }

    #[test]
    fn join_groups_match_cities() {
        let pf = paper_flights(false);
        // Flights 11 and 12 go to C; flights 23 and 24 leave from C.
        let c = pf.cities.get("C").unwrap();
        assert_eq!(pf.outbound.group_index().unwrap().members(c), &[0, 1]);
        assert_eq!(pf.inbound.group_index().unwrap().members(c), &[2, 3]);
        // Six distinct cities appear: C, D, E, F, G, H.
        assert_eq!(pf.cities.len(), 6);
    }

    #[test]
    fn values_roundtrip() {
        let pf = paper_flights(false);
        // Flight 15 = (450, 3.4, 30, 42).
        assert_eq!(
            pf.outbound.raw_row(TupleId(4)),
            vec![450.0, 3.4, 30.0, 42.0]
        );
        // Flight 28 with the corrected amenities value.
        assert_eq!(pf.inbound.raw_row(TupleId(7)), vec![350.0, 2.4, 35.0, 39.0]);
    }

    #[test]
    fn fno_tables_aligned() {
        assert_eq!(TABLE1.len(), TABLE1_FNO.len());
        assert_eq!(TABLE2.len(), TABLE2_FNO.len());
        assert_eq!(TABLE1_FNO[0], 11);
        assert_eq!(TABLE2_FNO[7], 28);
    }
}
