//! [`JoinContext`]: two base relations bound by a join spec.
//!
//! The context never materialises the joined relation. It lays out the
//! joined skyline vector as `[left locals…, right locals…, aggregates…]`,
//! answers join-compatibility queries, enumerates pairs, and exposes two
//! set families the KSJQ algorithms are built on:
//!
//! * **partners** of a tuple — the other-side tuples it joins with;
//! * **coverers** of a tuple — the same-side tuples whose join capability
//!   is a superset of its own. For an equality join these are exactly the
//!   tuples of the same group; for a theta join they are the prefix/suffix
//!   of the key order the paper constructs in Sec. 6.6; for a Cartesian
//!   product they are the whole relation (which is why the product has no
//!   `SN` class, Sec. 6.5). The SS/SN/NN classification in `ksjq-core` is
//!   one routine over coverers, uniform across join kinds.

use crate::aggregate::AggFunc;
use crate::error::{JoinError, JoinResult};
use crate::spec::{JoinSpec, ThetaOp};
use ksjq_relation::{JoinKeys, Relation};
use std::ops::Range;
use std::sync::Arc;

/// How a [`JoinContext`] holds a base relation: borrowed from the caller
/// (the classic in-scope path) or shared ownership (the engine path, where
/// a context must outlive the stack frame that prepared it).
#[derive(Debug, Clone)]
enum RelSource<'a> {
    Borrowed(&'a Relation),
    Owned(Arc<Relation>),
}

impl RelSource<'_> {
    #[inline]
    fn get(&self) -> &Relation {
        match self {
            RelSource::Borrowed(r) => r,
            RelSource::Owned(r) => r,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct SlotInfo {
    left_attr: usize,
    right_attr: usize,
    /// True when the paired attributes are `Max`-preference: stored values
    /// are negated, so aggregation round-trips through raw space.
    negate: bool,
    func: AggFunc,
}

/// A join of two base relations, ready for pair enumeration and joined
/// tuple construction.
#[derive(Debug, Clone)]
pub struct JoinContext<'a> {
    left: RelSource<'a>,
    right: RelSource<'a>,
    spec: JoinSpec,
    slots: Vec<SlotInfo>,
    left_locals: Vec<usize>,
    right_locals: Vec<usize>,
    all_left: Vec<u32>,
    all_right: Vec<u32>,
    /// Keys of the left relation in `numeric_order` (theta joins only).
    left_sorted_keys: Vec<f64>,
    /// Keys of the right relation in `numeric_order` (theta joins only).
    right_sorted_keys: Vec<f64>,
}

impl<'a> JoinContext<'a> {
    /// Bind `left ⋈ right` under `spec`, aggregating slot `s` with
    /// `funcs[s]`.
    ///
    /// # Errors
    ///
    /// * [`JoinError::AggArityMismatch`] — schemas disagree on the number
    ///   of aggregate slots, or `funcs` has the wrong length.
    /// * [`JoinError::SlotPreferenceMismatch`] — a slot pairs a `Min` with
    ///   a `Max` attribute.
    /// * [`JoinError::KeyKindMismatch`] — key columns don't fit the spec.
    /// * [`JoinError::InvalidAggregate`] — malformed function parameters.
    pub fn new(
        left: &'a Relation,
        right: &'a Relation,
        spec: JoinSpec,
        funcs: &[AggFunc],
    ) -> JoinResult<Self> {
        Self::build(
            RelSource::Borrowed(left),
            RelSource::Borrowed(right),
            spec,
            funcs,
        )
    }

    /// Bind `left ⋈ right` with shared ownership of the relations. The
    /// resulting context has no borrowed lifetime (`'static`), so it can be
    /// stored, sent across threads, and outlive the scope that created it —
    /// the engine's prepared queries are built on this.
    ///
    /// Validation is identical to [`new`](Self::new).
    pub fn from_arcs(
        left: Arc<Relation>,
        right: Arc<Relation>,
        spec: JoinSpec,
        funcs: &[AggFunc],
    ) -> JoinResult<JoinContext<'static>> {
        JoinContext::build(RelSource::Owned(left), RelSource::Owned(right), spec, funcs)
    }

    /// The single construction path behind [`new`](Self::new) and
    /// [`from_arcs`](Self::from_arcs).
    fn build(
        lsrc: RelSource<'a>,
        rsrc: RelSource<'a>,
        spec: JoinSpec,
        funcs: &[AggFunc],
    ) -> JoinResult<JoinContext<'a>> {
        let (left, right) = (lsrc.get(), rsrc.get());
        let a_left = left.schema().agg_count();
        let a_right = right.schema().agg_count();
        if a_left != a_right || funcs.len() != a_left {
            return Err(JoinError::AggArityMismatch {
                left: a_left,
                right: a_right,
                funcs: funcs.len(),
            });
        }
        let mut slots = Vec::with_capacity(a_left);
        for (slot, func) in funcs.iter().enumerate() {
            func.validate()?;
            let li = left.schema().agg_index(slot).expect("validated agg slot");
            let ri = right.schema().agg_index(slot).expect("validated agg slot");
            let lp = left.schema().attr(li).preference;
            let rp = right.schema().attr(ri).preference;
            if lp != rp {
                return Err(JoinError::SlotPreferenceMismatch { slot });
            }
            slots.push(SlotInfo {
                left_attr: li,
                right_attr: ri,
                negate: lp == ksjq_relation::Preference::Max,
                func: *func,
            });
        }

        match spec {
            JoinSpec::Equality => {
                if !matches!(left.keys(), JoinKeys::Group(_)) {
                    return Err(JoinError::KeyKindMismatch {
                        required: "group",
                        side: "left",
                    });
                }
                if !matches!(right.keys(), JoinKeys::Group(_)) {
                    return Err(JoinError::KeyKindMismatch {
                        required: "group",
                        side: "right",
                    });
                }
            }
            JoinSpec::Theta(_) => {
                if !matches!(left.keys(), JoinKeys::Numeric(_)) {
                    return Err(JoinError::KeyKindMismatch {
                        required: "numeric",
                        side: "left",
                    });
                }
                if !matches!(right.keys(), JoinKeys::Numeric(_)) {
                    return Err(JoinError::KeyKindMismatch {
                        required: "numeric",
                        side: "right",
                    });
                }
            }
            JoinSpec::Cartesian => {}
        }

        let sorted_keys = |rel: &Relation| -> Vec<f64> {
            match (rel.numeric_order(), rel.keys()) {
                (Some(order), JoinKeys::Numeric(keys)) => {
                    order.iter().map(|&t| keys[t as usize]).collect()
                }
                _ => Vec::new(),
            }
        };
        let (left_sorted_keys, right_sorted_keys) = if matches!(spec, JoinSpec::Theta(_)) {
            (sorted_keys(left), sorted_keys(right))
        } else {
            (Vec::new(), Vec::new())
        };

        Ok(JoinContext {
            left_locals: left.schema().local_indices().collect(),
            right_locals: right.schema().local_indices().collect(),
            all_left: (0..left.n() as u32).collect(),
            all_right: (0..right.n() as u32).collect(),
            left: lsrc,
            right: rsrc,
            spec,
            slots,
            left_sorted_keys,
            right_sorted_keys,
        })
    }

    /// The left base relation.
    #[inline]
    pub fn left(&self) -> &Relation {
        self.left.get()
    }

    /// The right base relation.
    #[inline]
    pub fn right(&self) -> &Relation {
        self.right.get()
    }

    /// The join spec.
    #[inline]
    pub fn spec(&self) -> JoinSpec {
        self.spec
    }

    /// The aggregation functions, slot order.
    pub fn funcs(&self) -> Vec<AggFunc> {
        self.slots.iter().map(|s| s.func).collect()
    }

    /// `d1`: skyline attributes of the left relation.
    #[inline]
    pub fn d1(&self) -> usize {
        self.left().d()
    }

    /// `d2`: skyline attributes of the right relation.
    #[inline]
    pub fn d2(&self) -> usize {
        self.right().d()
    }

    /// `a`: number of aggregate slots.
    #[inline]
    pub fn a(&self) -> usize {
        self.slots.len()
    }

    /// `l1 = d1 − a`: local attributes of the left relation.
    #[inline]
    pub fn l1(&self) -> usize {
        self.left_locals.len()
    }

    /// `l2 = d2 − a`: local attributes of the right relation.
    #[inline]
    pub fn l2(&self) -> usize {
        self.right_locals.len()
    }

    /// Arity of the joined skyline vector: `l1 + l2 + a = d1 + d2 − a`.
    #[inline]
    pub fn d_joined(&self) -> usize {
        self.l1() + self.l2() + self.a()
    }

    /// Are all aggregation functions strictly monotone (required by the
    /// optimized algorithms)?
    pub fn aggs_strictly_monotone(&self) -> bool {
        self.slots.iter().all(|s| s.func.is_strictly_monotone())
    }

    /// Do tuples `u` (left) and `v` (right) join?
    #[inline]
    pub fn compatible(&self, u: u32, v: u32) -> bool {
        match self.spec {
            JoinSpec::Equality => {
                self.left().group_id(ksjq_relation::TupleId(u))
                    == self.right().group_id(ksjq_relation::TupleId(v))
            }
            JoinSpec::Theta(op) => op.holds(
                self.left()
                    .numeric_key(ksjq_relation::TupleId(u))
                    .expect("validated"),
                self.right()
                    .numeric_key(ksjq_relation::TupleId(v))
                    .expect("validated"),
            ),
            JoinSpec::Cartesian => true,
        }
    }

    /// Write the joined skyline vector of `(u, v)` into `out`
    /// (length [`d_joined`](Self::d_joined)), normalised orientation.
    #[inline]
    pub fn fill(&self, u: u32, v: u32, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.d_joined());
        self.fill_left(u, out);
        self.fill_rest(u, v, out);
    }

    /// The normalised aggregate value of slot `slot` for the pair of base
    /// rows `(lrow, rrow)`. Kept as the single aggregation expression so
    /// every fill / split-side path produces bit-identical values.
    #[inline]
    fn agg_value(&self, slot: &SlotInfo, lrow: &[f64], rrow: &[f64]) -> f64 {
        let x = lrow[slot.left_attr];
        let y = rrow[slot.right_attr];
        // Aggregate in raw space, then restore normalised orientation.
        if slot.negate {
            -slot.func.combine(-x, -y)
        } else {
            slot.func.combine(x, y)
        }
    }

    /// Write only the left-local segment `out[0..l1]` of any `(u, ·)`
    /// joined vector. Splitting the fill lets pair-enumeration loops hoist
    /// the left half out of the partner loop — it is identical for every
    /// `v` the tuple joins with.
    #[inline]
    pub fn fill_left(&self, u: u32, out: &mut [f64]) {
        let lrow = self.left().row_at(u as usize);
        for (o, &attr) in out.iter_mut().zip(self.left_locals.iter()) {
            *o = lrow[attr];
        }
    }

    /// Write the right-local and aggregate segments `out[l1..]` of the
    /// joined vector of `(u, v)`; combined with a prior
    /// [`fill_left`](Self::fill_left) of the same `u` this reproduces
    /// [`fill`](Self::fill) exactly.
    #[inline]
    pub fn fill_rest(&self, u: u32, v: u32, out: &mut [f64]) {
        let lrow = self.left().row_at(u as usize);
        let rrow = self.right().row_at(v as usize);
        let l1 = self.l1();
        let l2 = self.l2();
        for (j, &attr) in self.right_locals.iter().enumerate() {
            out[l1 + j] = rrow[attr];
        }
        for (s, slot) in self.slots.iter().enumerate() {
            out[l1 + l2 + s] = self.agg_value(slot, lrow, rrow);
        }
    }

    /// Write only the `a` normalised aggregate values of `(u, v)` into
    /// `out[0..a]` — the one part of a joined vector that genuinely needs
    /// both legs. Split-side dominance tests compare the two local
    /// segments directly against base rows and materialise just this.
    #[inline]
    pub fn fill_aggs(&self, u: u32, v: u32, out: &mut [f64]) {
        debug_assert!(out.len() >= self.a());
        let lrow = self.left().row_at(u as usize);
        let rrow = self.right().row_at(v as usize);
        for (s, slot) in self.slots.iter().enumerate() {
            out[s] = self.agg_value(slot, lrow, rrow);
        }
    }

    /// Indices of the left relation's local attributes, joined-layout
    /// order: `cand[i]` pairs with `left_row[left_local_attrs()[i]]` for
    /// `i < l1`.
    #[inline]
    pub fn left_local_attrs(&self) -> &[usize] {
        &self.left_locals
    }

    /// Indices of the right relation's local attributes, joined-layout
    /// order: `cand[l1 + j]` pairs with
    /// `right_row[right_local_attrs()[j]]` for `j < l2`.
    #[inline]
    pub fn right_local_attrs(&self) -> &[usize] {
        &self.right_locals
    }

    /// The joined skyline vector of `(u, v)` (allocates).
    pub fn joined_row(&self, u: u32, v: u32) -> Vec<f64> {
        let mut out = vec![0.0; self.d_joined()];
        self.fill(u, v, &mut out);
        out
    }

    /// Human-readable names of the joined attributes, layout order.
    pub fn joined_attr_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.d_joined());
        for &i in &self.left_locals {
            names.push(format!("l.{}", self.left().schema().attr(i).name));
        }
        for &j in &self.right_locals {
            names.push(format!("r.{}", self.right().schema().attr(j).name));
        }
        for slot in &self.slots {
            names.push(format!(
                "{}({})",
                slot.func,
                self.left().schema().attr(slot.left_attr).name
            ));
        }
        names
    }

    /// Right-side tuples that join with left tuple `u`, as a slice of
    /// tuple ids (theta joins return them in key order, others in id
    /// order within the group).
    pub fn right_partners(&self, u: u32) -> &[u32] {
        match self.spec {
            JoinSpec::Equality => {
                let gid = self
                    .left()
                    .group_id(ksjq_relation::TupleId(u))
                    .expect("validated");
                self.right().group_index().expect("validated").members(gid)
            }
            JoinSpec::Theta(op) => {
                let key = self
                    .left()
                    .numeric_key(ksjq_relation::TupleId(u))
                    .expect("validated");
                let order = self.right().numeric_order().expect("validated");
                let ks = &self.right_sorted_keys;
                match op {
                    // u.key < v.key ⇒ suffix of ascending right keys.
                    ThetaOp::Lt => &order[ks.partition_point(|&k| k <= key)..],
                    ThetaOp::Le => &order[ks.partition_point(|&k| k < key)..],
                    // u.key > v.key ⇒ prefix.
                    ThetaOp::Gt => &order[..ks.partition_point(|&k| k < key)],
                    ThetaOp::Ge => &order[..ks.partition_point(|&k| k <= key)],
                }
            }
            JoinSpec::Cartesian => &self.all_right,
        }
    }

    /// The right relation's *scan order*: a permutation of its tuple ids in
    /// which **every left tuple's partner set is one contiguous range**
    /// ([`right_partner_span`](Self::right_partner_span)) — the group-index
    /// order for equality joins, the ascending-key order for theta joins,
    /// and the identity for Cartesian products.
    ///
    /// The columnar verifier permutes per-tuple data into this order once
    /// so its per-candidate partner scans are stride-1;
    /// `right_partners(u) == &right_scan_order()[right_partner_span(u)]`
    /// holds for every `u` (tested).
    pub fn right_scan_order(&self) -> &[u32] {
        match self.spec {
            JoinSpec::Equality => self.right().group_index().expect("validated").order(),
            JoinSpec::Theta(_) => self.right().numeric_order().expect("validated"),
            JoinSpec::Cartesian => &self.all_right,
        }
    }

    /// The positions within [`right_scan_order`](Self::right_scan_order)
    /// holding left tuple `u`'s join partners.
    pub fn right_partner_span(&self, u: u32) -> Range<usize> {
        match self.spec {
            JoinSpec::Equality => {
                let gid = self
                    .left()
                    .group_id(ksjq_relation::TupleId(u))
                    .expect("validated");
                self.right().group_index().expect("validated").range_of(gid)
            }
            JoinSpec::Theta(op) => {
                let key = self
                    .left()
                    .numeric_key(ksjq_relation::TupleId(u))
                    .expect("validated");
                let ks = &self.right_sorted_keys;
                match op {
                    ThetaOp::Lt => ks.partition_point(|&k| k <= key)..ks.len(),
                    ThetaOp::Le => ks.partition_point(|&k| k < key)..ks.len(),
                    ThetaOp::Gt => 0..ks.partition_point(|&k| k < key),
                    ThetaOp::Ge => 0..ks.partition_point(|&k| k <= key),
                }
            }
            JoinSpec::Cartesian => 0..self.all_right.len(),
        }
    }

    /// The left relation's scan order; see
    /// [`right_scan_order`](Self::right_scan_order).
    pub fn left_scan_order(&self) -> &[u32] {
        match self.spec {
            JoinSpec::Equality => self.left().group_index().expect("validated").order(),
            JoinSpec::Theta(_) => self.left().numeric_order().expect("validated"),
            JoinSpec::Cartesian => &self.all_left,
        }
    }

    /// The positions within [`left_scan_order`](Self::left_scan_order)
    /// holding right tuple `v`'s join partners.
    pub fn left_partner_span(&self, v: u32) -> Range<usize> {
        match self.spec {
            JoinSpec::Equality => {
                let gid = self
                    .right()
                    .group_id(ksjq_relation::TupleId(v))
                    .expect("validated");
                self.left().group_index().expect("validated").range_of(gid)
            }
            JoinSpec::Theta(op) => {
                let key = self
                    .right()
                    .numeric_key(ksjq_relation::TupleId(v))
                    .expect("validated");
                let ks = &self.left_sorted_keys;
                match op {
                    ThetaOp::Lt => 0..ks.partition_point(|&k| k < key),
                    ThetaOp::Le => 0..ks.partition_point(|&k| k <= key),
                    ThetaOp::Gt => ks.partition_point(|&k| k <= key)..ks.len(),
                    ThetaOp::Ge => ks.partition_point(|&k| k < key)..ks.len(),
                }
            }
            JoinSpec::Cartesian => 0..self.all_left.len(),
        }
    }

    /// Left-side tuples that join with right tuple `v`.
    pub fn left_partners(&self, v: u32) -> &[u32] {
        match self.spec {
            JoinSpec::Equality => {
                let gid = self
                    .right()
                    .group_id(ksjq_relation::TupleId(v))
                    .expect("validated");
                self.left().group_index().expect("validated").members(gid)
            }
            JoinSpec::Theta(op) => {
                let key = self
                    .right()
                    .numeric_key(ksjq_relation::TupleId(v))
                    .expect("validated");
                let order = self.left().numeric_order().expect("validated");
                let ks = &self.left_sorted_keys;
                match op {
                    // l.key < v.key ⇒ prefix of ascending left keys.
                    ThetaOp::Lt => &order[..ks.partition_point(|&k| k < key)],
                    ThetaOp::Le => &order[..ks.partition_point(|&k| k <= key)],
                    ThetaOp::Gt => &order[ks.partition_point(|&k| k <= key)..],
                    ThetaOp::Ge => &order[ks.partition_point(|&k| k < key)..],
                }
            }
            JoinSpec::Cartesian => &self.all_left,
        }
    }

    /// Left-side tuples whose join capability *covers* `u`'s: every right
    /// tuple `u` joins with, they join with too. Includes `u` itself.
    ///
    /// This is "the group of `u`" in the paper's classification, extended
    /// to theta joins per Sec. 6.6 (there: the prefix/suffix of the key
    /// order) and to Cartesian products per Sec. 6.5 (the whole relation).
    pub fn left_coverers(&self, u: u32) -> &[u32] {
        match self.spec {
            JoinSpec::Equality => {
                let gid = self
                    .left()
                    .group_id(ksjq_relation::TupleId(u))
                    .expect("validated");
                self.left().group_index().expect("validated").members(gid)
            }
            JoinSpec::Theta(op) => {
                let key = self
                    .left()
                    .numeric_key(ksjq_relation::TupleId(u))
                    .expect("validated");
                let order = self.left().numeric_order().expect("validated");
                let ks = &self.left_sorted_keys;
                match op {
                    // Smaller left key joins with at least as many right
                    // tuples under `<`/`<=` (ties included: equal keys have
                    // identical capability).
                    ThetaOp::Lt | ThetaOp::Le => &order[..ks.partition_point(|&k| k <= key)],
                    ThetaOp::Gt | ThetaOp::Ge => &order[ks.partition_point(|&k| k < key)..],
                }
            }
            JoinSpec::Cartesian => &self.all_left,
        }
    }

    /// Right-side tuples whose join capability covers `v`'s; see
    /// [`left_coverers`](Self::left_coverers).
    pub fn right_coverers(&self, v: u32) -> &[u32] {
        match self.spec {
            JoinSpec::Equality => {
                let gid = self
                    .right()
                    .group_id(ksjq_relation::TupleId(v))
                    .expect("validated");
                self.right().group_index().expect("validated").members(gid)
            }
            JoinSpec::Theta(op) => {
                let key = self
                    .right()
                    .numeric_key(ksjq_relation::TupleId(v))
                    .expect("validated");
                let order = self.right().numeric_order().expect("validated");
                let ks = &self.right_sorted_keys;
                match op {
                    // Larger right key is more permissive under `<`/`<=`.
                    ThetaOp::Lt | ThetaOp::Le => &order[ks.partition_point(|&k| k < key)..],
                    ThetaOp::Gt | ThetaOp::Ge => &order[..ks.partition_point(|&k| k <= key)],
                }
            }
            JoinSpec::Cartesian => &self.all_right,
        }
    }

    /// Number of joined tuples (`N = |R1 ⋈ R2|`), without enumerating
    /// them where avoidable.
    pub fn count_pairs(&self) -> u64 {
        match self.spec {
            JoinSpec::Equality => {
                let gl = self.left().group_index().expect("validated");
                let gr = self.right().group_index().expect("validated");
                gl.iter()
                    .map(|(gid, m)| m.len() as u64 * gr.members(gid).len() as u64)
                    .sum()
            }
            JoinSpec::Theta(_) => (0..self.left().n() as u32)
                .map(|u| self.right_partners(u).len() as u64)
                .sum(),
            JoinSpec::Cartesian => self.left().n() as u64 * self.right().n() as u64,
        }
    }

    /// Enumerate every join-compatible pair in a deterministic order
    /// (repeat calls yield the identical sequence — required by the
    /// streaming two-scan skyline).
    pub fn for_each_pair(&self, mut f: impl FnMut(u32, u32)) {
        for &u in &self.all_left {
            for &v in self.right_partners(u) {
                f(u, v);
            }
        }
    }

    /// Materialise the join: every pair plus its joined skyline vector.
    /// Intended for tests and small inputs — the KSJQ algorithms never
    /// call this.
    pub fn materialize(&self) -> MaterializedJoin {
        let d = self.d_joined();
        let mut pairs = Vec::new();
        let mut data = Vec::new();
        let mut row = vec![0.0; d];
        // Same enumeration order as `for_each_pair`, with the left-local
        // segment hoisted out of the partner loop.
        for &u in &self.all_left {
            let partners = self.right_partners(u);
            if partners.is_empty() {
                continue;
            }
            self.fill_left(u, &mut row);
            for &v in partners {
                self.fill_rest(u, v, &mut row);
                pairs.push((u, v));
                data.extend_from_slice(&row);
            }
        }
        MaterializedJoin { d, pairs, data }
    }
}

/// A fully materialised join (tests / small inputs only).
#[derive(Debug, Clone, PartialEq)]
pub struct MaterializedJoin {
    /// Arity of each joined row.
    pub d: usize,
    /// `(left id, right id)` per joined tuple, aligned with `data`.
    pub pairs: Vec<(u32, u32)>,
    /// Row-major joined skyline vectors.
    pub data: Vec<f64>,
}

impl MaterializedJoin {
    /// Number of joined tuples.
    pub fn n(&self) -> usize {
        self.pairs.len()
    }

    /// The joined row at index `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.d..(i + 1) * self.d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksjq_relation::{Preference, Relation, Schema};

    fn rel_grouped(groups: &[u64], rows: &[Vec<f64>]) -> Relation {
        Relation::from_grouped_rows(Schema::uniform(rows[0].len()).unwrap(), groups, rows).unwrap()
    }

    fn zrows(n: usize) -> Vec<Vec<f64>> {
        vec![vec![0.0]; n]
    }

    fn rel_keyed(keys: &[f64], rows: &[Vec<f64>]) -> Relation {
        let mut b = Relation::builder(Schema::uniform(rows[0].len()).unwrap());
        for (k, r) in keys.iter().zip(rows) {
            b.add_keyed(*k, r).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn equality_partners_and_counts() {
        let l = rel_grouped(&[1, 1, 2], &[vec![0.0], vec![1.0], vec![2.0]]);
        let r = rel_grouped(&[1, 2, 2, 3], &[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let cx = JoinContext::new(&l, &r, JoinSpec::Equality, &[]).unwrap();
        assert_eq!(cx.right_partners(0), &[0]);
        assert_eq!(cx.right_partners(2), &[1, 2]);
        assert_eq!(cx.left_partners(3), &[] as &[u32]);
        assert_eq!(cx.count_pairs(), 1 + 1 + 2);
        assert!(cx.compatible(0, 0));
        assert!(!cx.compatible(0, 1));
        assert_eq!(cx.left_coverers(0), &[0, 1]);
    }

    #[test]
    fn cartesian_everything_joins() {
        let mk = |vals: &[f64]| {
            let mut b = Relation::builder(Schema::uniform(1).unwrap());
            for v in vals {
                b.add(&[*v]).unwrap();
            }
            b.build().unwrap()
        };
        let l = mk(&[0.0, 1.0]);
        let r = mk(&[0.0, 1.0, 2.0]);
        let cx = JoinContext::new(&l, &r, JoinSpec::Cartesian, &[]).unwrap();
        assert_eq!(cx.count_pairs(), 6);
        assert_eq!(cx.right_partners(0), &[0, 1, 2]);
        assert_eq!(cx.left_coverers(1), &[0, 1]);
        assert!(cx.compatible(1, 2));
    }

    #[test]
    fn theta_partners_all_ops() {
        let l = rel_keyed(&[1.0, 2.0, 3.0], &[vec![0.0], vec![0.0], vec![0.0]]);
        let r = rel_keyed(&[1.0, 2.0, 2.0, 4.0], &zrows(4));
        for (op, u, expected) in [
            (ThetaOp::Lt, 1u32, vec![3u32]), // 2 < {4}
            (ThetaOp::Le, 1, vec![1, 2, 3]), // 2 <= {2,2,4}
            (ThetaOp::Gt, 1, vec![0]),       // 2 > {1}
            (ThetaOp::Ge, 1, vec![0, 1, 2]), // 2 >= {1,2,2}
        ] {
            let cx = JoinContext::new(&l, &r, JoinSpec::Theta(op), &[]).unwrap();
            let mut got = cx.right_partners(u).to_vec();
            got.sort_unstable();
            assert_eq!(got, expected, "op {op}");
            // Cross-check against the predicate.
            for v in 0..4u32 {
                assert_eq!(cx.compatible(u, v), expected.contains(&v), "op {op} v {v}");
            }
        }
    }

    #[test]
    fn theta_left_partners_match_compatible() {
        let l = rel_keyed(&[1.0, 2.0, 3.0], &zrows(3));
        let r = rel_keyed(&[0.5, 2.0, 3.5], &zrows(3));
        for op in [ThetaOp::Lt, ThetaOp::Le, ThetaOp::Gt, ThetaOp::Ge] {
            let cx = JoinContext::new(&l, &r, JoinSpec::Theta(op), &[]).unwrap();
            for v in 0..3u32 {
                let mut got = cx.left_partners(v).to_vec();
                got.sort_unstable();
                let expected: Vec<u32> = (0..3u32).filter(|&u| cx.compatible(u, v)).collect();
                assert_eq!(got, expected, "op {op} v {v}");
            }
        }
    }

    #[test]
    fn theta_coverers_imply_superset_capability() {
        let l = rel_keyed(&[1.0, 2.0, 2.0, 3.0], &zrows(4));
        let r = rel_keyed(&[0.5, 1.5, 2.5, 3.5], &zrows(4));
        for op in [ThetaOp::Lt, ThetaOp::Le, ThetaOp::Gt, ThetaOp::Ge] {
            let cx = JoinContext::new(&l, &r, JoinSpec::Theta(op), &[]).unwrap();
            for u in 0..4u32 {
                let coverers = cx.left_coverers(u);
                assert!(
                    coverers.contains(&u),
                    "op {op}: coverers of {u} must include it"
                );
                for &w in coverers {
                    for v in 0..4u32 {
                        if cx.compatible(u, v) {
                            assert!(
                                cx.compatible(w, v),
                                "op {op}: {w} claims to cover {u} but misses v={v}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// The scan-order/span pair must reproduce the partner slices exactly,
    /// for every join kind — the invariant the columnar verifier's
    /// contiguous partner scans rest on.
    #[test]
    fn partner_spans_reproduce_partner_slices() {
        // Equality.
        let l = rel_grouped(&[1, 1, 2, 9], &[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let r = rel_grouped(&[2, 1, 2, 3], &[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let cx = JoinContext::new(&l, &r, JoinSpec::Equality, &[]).unwrap();
        for u in 0..l.n() as u32 {
            assert_eq!(
                &cx.right_scan_order()[cx.right_partner_span(u)],
                cx.right_partners(u),
                "equality right u={u}"
            );
        }
        for v in 0..r.n() as u32 {
            assert_eq!(
                &cx.left_scan_order()[cx.left_partner_span(v)],
                cx.left_partners(v),
                "equality left v={v}"
            );
        }
        // Theta, all four operators.
        let lt = rel_keyed(&[1.0, 2.0, 2.0, 3.0], &zrows(4));
        let rt = rel_keyed(&[0.5, 2.0, 3.5], &zrows(3));
        for op in [ThetaOp::Lt, ThetaOp::Le, ThetaOp::Gt, ThetaOp::Ge] {
            let cx = JoinContext::new(&lt, &rt, JoinSpec::Theta(op), &[]).unwrap();
            for u in 0..lt.n() as u32 {
                assert_eq!(
                    &cx.right_scan_order()[cx.right_partner_span(u)],
                    cx.right_partners(u),
                    "theta {op} right u={u}"
                );
            }
            for v in 0..rt.n() as u32 {
                assert_eq!(
                    &cx.left_scan_order()[cx.left_partner_span(v)],
                    cx.left_partners(v),
                    "theta {op} left v={v}"
                );
            }
        }
        // Cartesian.
        let mk = |n: usize| {
            let mut b = Relation::builder(Schema::uniform(1).unwrap());
            for i in 0..n {
                b.add(&[i as f64]).unwrap();
            }
            b.build().unwrap()
        };
        let (lc, rc) = (mk(3), mk(2));
        let cx = JoinContext::new(&lc, &rc, JoinSpec::Cartesian, &[]).unwrap();
        for u in 0..3u32 {
            assert_eq!(
                &cx.right_scan_order()[cx.right_partner_span(u)],
                cx.right_partners(u)
            );
        }
        for v in 0..2u32 {
            assert_eq!(
                &cx.left_scan_order()[cx.left_partner_span(v)],
                cx.left_partners(v)
            );
        }
    }

    #[test]
    fn count_matches_enumeration() {
        let l = rel_keyed(&[1.0, 2.0, 3.0], &zrows(3));
        let r = rel_keyed(&[0.5, 2.0, 3.5], &zrows(3));
        for op in [ThetaOp::Lt, ThetaOp::Le, ThetaOp::Gt, ThetaOp::Ge] {
            let cx = JoinContext::new(&l, &r, JoinSpec::Theta(op), &[]).unwrap();
            let mut seen = 0u64;
            cx.for_each_pair(|_, _| seen += 1);
            assert_eq!(seen, cx.count_pairs(), "op {op}");
        }
    }

    fn agg_schema() -> Schema {
        Schema::builder()
            .agg("cost", Preference::Min, 0)
            .local("rtg", Preference::Max)
            .build()
            .unwrap()
    }

    #[test]
    fn fill_layout_and_aggregation() {
        let mut bl = Relation::builder(agg_schema());
        bl.add_grouped(1, &[100.0, 7.0]).unwrap();
        let l = bl.build().unwrap();
        let mut br = Relation::builder(agg_schema());
        br.add_grouped(1, &[50.0, 9.0]).unwrap();
        let r = br.build().unwrap();
        let cx = JoinContext::new(&l, &r, JoinSpec::Equality, &[AggFunc::Sum]).unwrap();
        assert_eq!(cx.d_joined(), 3); // l.rtg, r.rtg, sum(cost)
        assert_eq!((cx.l1(), cx.l2(), cx.a()), (1, 1, 1));
        // rtg is Max so normalised = negated; cost sums in raw space.
        assert_eq!(cx.joined_row(0, 0), vec![-7.0, -9.0, 150.0]);
        assert_eq!(cx.joined_attr_names(), vec!["l.rtg", "r.rtg", "sum(cost)"]);
    }

    #[test]
    fn split_fills_reproduce_fill() {
        let mut bl = Relation::builder(agg_schema());
        bl.add_grouped(1, &[100.0, 7.0]).unwrap();
        bl.add_grouped(1, &[80.0, 3.0]).unwrap();
        let l = bl.build().unwrap();
        let mut br = Relation::builder(agg_schema());
        br.add_grouped(1, &[50.0, 9.0]).unwrap();
        br.add_grouped(1, &[60.0, 1.0]).unwrap();
        let r = br.build().unwrap();
        let cx = JoinContext::new(&l, &r, JoinSpec::Equality, &[AggFunc::Sum]).unwrap();
        let d = cx.d_joined();
        for u in 0..2u32 {
            let mut split = vec![f64::NAN; d];
            cx.fill_left(u, &mut split);
            for v in 0..2u32 {
                cx.fill_rest(u, v, &mut split);
                assert_eq!(split, cx.joined_row(u, v), "({u},{v})");
                let mut aggs = vec![f64::NAN; cx.a()];
                cx.fill_aggs(u, v, &mut aggs);
                assert_eq!(aggs, split[cx.l1() + cx.l2()..], "aggs of ({u},{v})");
            }
        }
        // The local-attr accessors address base rows consistently with the
        // joined layout.
        let joined = cx.joined_row(1, 1);
        for (i, &attr) in cx.left_local_attrs().iter().enumerate() {
            assert_eq!(joined[i], l.row_at(1)[attr]);
        }
        for (j, &attr) in cx.right_local_attrs().iter().enumerate() {
            assert_eq!(joined[cx.l1() + j], r.row_at(1)[attr]);
        }
    }

    #[test]
    fn max_aggregation_on_max_preference_roundtrips() {
        // agg = max of two Max-preference values: raw max(7, 9) = 9,
        // normalised −9.
        let sch = || {
            Schema::builder()
                .agg("rating", Preference::Max, 0)
                .local("x", Preference::Min)
                .build()
                .unwrap()
        };
        let mut bl = Relation::builder(sch());
        bl.add_grouped(1, &[7.0, 0.0]).unwrap();
        let l = bl.build().unwrap();
        let mut br = Relation::builder(sch());
        br.add_grouped(1, &[9.0, 0.0]).unwrap();
        let r = br.build().unwrap();
        let cx = JoinContext::new(&l, &r, JoinSpec::Equality, &[AggFunc::Max]).unwrap();
        assert_eq!(cx.joined_row(0, 0), vec![0.0, 0.0, -9.0]);
    }

    #[test]
    fn validation_errors() {
        let l = rel_grouped(&[1], &[vec![0.0]]);
        let r = rel_grouped(&[1], &[vec![0.0]]);
        // Wrong func count for schemas without slots.
        assert!(matches!(
            JoinContext::new(&l, &r, JoinSpec::Equality, &[AggFunc::Sum]),
            Err(JoinError::AggArityMismatch { .. })
        ));
        // Theta join over group keys.
        assert!(matches!(
            JoinContext::new(&l, &r, JoinSpec::Theta(ThetaOp::Lt), &[]),
            Err(JoinError::KeyKindMismatch { .. })
        ));

        // Slot preference mismatch.
        let sl = Schema::builder()
            .agg("c", Preference::Min, 0)
            .build()
            .unwrap();
        let sr = Schema::builder()
            .agg("c", Preference::Max, 0)
            .build()
            .unwrap();
        let mut bl = Relation::builder(sl);
        bl.add_grouped(1, &[0.0]).unwrap();
        let l2 = bl.build().unwrap();
        let mut br = Relation::builder(sr);
        br.add_grouped(1, &[0.0]).unwrap();
        let r2 = br.build().unwrap();
        assert!(matches!(
            JoinContext::new(&l2, &r2, JoinSpec::Equality, &[AggFunc::Sum]),
            Err(JoinError::SlotPreferenceMismatch { slot: 0 })
        ));
    }

    #[test]
    fn from_arcs_matches_borrowed_and_has_no_lifetime() {
        let l = rel_grouped(&[1, 1, 2], &[vec![1.0], vec![2.0], vec![3.0]]);
        let r = rel_grouped(&[1, 2], &[vec![4.0], vec![5.0]]);
        let borrowed = JoinContext::new(&l, &r, JoinSpec::Equality, &[]).unwrap();
        let owned: JoinContext<'static> = JoinContext::from_arcs(
            Arc::new(l.clone()),
            Arc::new(r.clone()),
            JoinSpec::Equality,
            &[],
        )
        .unwrap();
        fn assert_send_sync_static<T: Send + Sync + 'static>(_: &T) {}
        assert_send_sync_static(&owned);
        assert_eq!(owned.materialize(), borrowed.materialize());
        assert_eq!(owned.count_pairs(), borrowed.count_pairs());
    }

    #[test]
    fn materialize_small_join() {
        let l = rel_grouped(&[1, 2], &[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let r = rel_grouped(&[1, 1], &[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let cx = JoinContext::new(&l, &r, JoinSpec::Equality, &[]).unwrap();
        let m = cx.materialize();
        assert_eq!(m.n(), 2);
        assert_eq!(m.pairs, vec![(0, 0), (0, 1)]);
        assert_eq!(m.row(0), &[1.0, 2.0, 5.0, 6.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 7.0, 8.0]);
    }
}
