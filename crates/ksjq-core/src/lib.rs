//! K-Dominant Skyline Join Queries (KSJQ).
//!
//! This crate implements the algorithms of *"K-Dominant Skyline Join
//! Queries: Extending the Join Paradigm to K-Dominant Skylines"* (Awasthi,
//! Bhattacharya, Gupta, Singh — ICDE 2017):
//!
//! * **Problem 1/2** — the k-dominant skyline of a joined relation
//!   `R1 ⋈ R2`, with optional monotone aggregation over paired attributes:
//!   [`ksjq_naive`] (Algorithm 1), [`ksjq_grouping`] (Algorithm 2) and
//!   [`ksjq_dominator_based`] (Algorithm 3).
//! * **Problem 3/4** — choosing `k` from a target skyline cardinality δ:
//!   [`find_k_at_least`] / [`find_k_at_most`] with naïve, range-based and
//!   binary-search strategies (Algorithms 4–6).
//!
//! The high-level entry point is the [`Engine`]: register relations once
//! (held as `Arc<Relation>` in a shared [`Catalog`]), describe queries as
//! owned [`QueryPlan`]s, and prepare/execute them — concurrently if you
//! like, the engine is `Clone + Send + Sync`:
//!
//! ```
//! use ksjq_core::{Algorithm, Engine, Goal, QueryPlan};
//! use ksjq_datagen::paper_flights;
//!
//! // The paper's running example: two-leg flights joined on the stopover.
//! let engine = Engine::new();
//! let flights = paper_flights(false);
//! engine.register("outbound", flights.outbound).unwrap();
//! engine.register("inbound", flights.inbound).unwrap();
//!
//! let plan = QueryPlan::new("outbound", "inbound")
//!     .goal(Goal::Exact(7))
//!     .algorithm(Algorithm::Grouping);
//! let prepared = engine.prepare(&plan).unwrap();
//! println!("{}", prepared.explain()); // join kind, k-range, thresholds, …
//! let result = prepared.execute().unwrap();
//! // Table 3's final skyline: flight combinations (11,23), (13,21),
//! // (15,25) and (16,26).
//! assert_eq!(result.len(), 4);
//! ```
//!
//! The borrowed-lifetime [`KsjqQuery`] builder remains as a thin shim over
//! the same execution path for single-shot, in-scope use.
//!
//! ## Soundness notes
//!
//! The implementation corrects three subtle issues in the paper's
//! aggregate-case claims (details in the repository's DESIGN.md §4.5 and
//! in [`target`]): classification thresholds use the Sec. 5.6 form
//! `k′ = k − l_other`; target sets filter on `≤` over local attributes
//! (the paper's equal-value `Augment` is incomplete under aggregation);
//! and the `SS ⋈ SS` fast path is verified when `a ≥ 2` (Theorem 3 fails
//! there). All algorithms return identical answers — that equivalence is
//! enforced by the cross-algorithm test suites.

pub mod cancel;
pub mod classify;
pub mod config;
pub mod dominator_based;
pub mod engine;
pub mod error;
pub mod explain;
pub mod find_k;
pub mod grouping;
pub mod maintain;
pub mod naive;
pub mod output;
pub mod parallel;
pub mod params;
pub mod plan;
pub mod query;
pub mod stats;
pub mod target;
pub mod verify;

pub use cancel::{
    arm_panic_after, arm_panic_after_process, check_deadline, disarm_panic, disarm_panic_process,
    Checkpoint,
};
pub use classify::{classify, classify_parallel, pair_counts, Category, Classification};
pub use config::Config;
pub use dominator_based::ksjq_dominator_based;
pub use engine::{Engine, PreparedQuery};
pub use error::{CoreError, CoreResult};
pub use explain::Explain;
pub use find_k::{find_k_at_least, find_k_at_most, FindKReport, FindKStrategy};
pub use grouping::{ksjq_grouping, ksjq_grouping_progressive};
pub use maintain::{can_maintain, maintain_append, MaintainStats};
pub use naive::ksjq_naive;
pub use output::KsjqOutput;
pub use params::{k_max, k_min, validate_k, KsjqParams};
pub use plan::{Goal, QueryPlan, RelationRef};
pub use query::{k_range, Algorithm, KsjqQuery, KsjqQueryBuilder};
pub use stats::{Counts, ExecStats, PhaseTimes};
pub use target::{
    attr_sums, order_by_attr_sum, precompute_target_sets, target_set, target_set_for_values,
    target_set_rowmajor, TargetCache, TargetScratch,
};
pub use verify::{CheckCounters, ColumnarCheck, ColumnarLayout, JoinedCheck};

// Re-exported so engine users don't need direct `ksjq-relation` /
// `ksjq-skyline` dependencies for the registry types and the kdom
// subroutine knob in [`Config`].
pub use ksjq_relation::{Catalog, RelationHandle};
pub use ksjq_skyline::KdomAlgo;
