//! Sort-filter-skyline (SFS).
//!
//! Chomicki, Godfrey, Gryz and Liang (ICDE 2003): presort the input by a
//! monotone scoring function (here the attribute sum), after which a tuple
//! can only be dominated by tuples that *precede* it — so one pass against
//! the already-confirmed skyline suffices and no window evictions happen.

use crate::RowAccess;
use ksjq_relation::dominates;

/// Compute the (full-dominance) skyline of `members` with presorting.
///
/// Returns surviving ids in ascending id order.
pub fn skyline_sfs<R: RowAccess>(rows: &R, members: &[u32]) -> Vec<u32> {
    let mut order: Vec<u32> = members.to_vec();
    // Sum of normalised attributes is monotone: u ≻ v ⇒ sum(u) < sum(v),
    // so a dominator always sorts strictly before its victims. total_cmp
    // keeps the sort a total order even when a caller-provided RowAccess
    // (e.g. a MatrixView over scratch data) smuggles in NaN sums, which
    // Relation's builder rejects but this function cannot assume away.
    let score = |id: u32| rows.row(id).iter().sum::<f64>();
    order.sort_by(|&a, &b| score(a).total_cmp(&score(b)).then(a.cmp(&b)));

    let mut skyline: Vec<u32> = Vec::new();
    'outer: for &p in &order {
        let prow = rows.row(p);
        for &s in &skyline {
            if dominates(rows.row(s), prow) {
                continue 'outer;
            }
        }
        skyline.push(p);
    }
    skyline.sort_unstable();
    skyline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::skyline_bnl;
    use crate::MatrixView;

    fn ids(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn empty_input() {
        let m = MatrixView::new(3, &[]);
        assert!(skyline_sfs(&m, &[]).is_empty());
    }

    #[test]
    fn matches_bnl_on_fixed_data() {
        let data = [
            1.0, 5.0, 3.0, //
            2.0, 2.0, 2.0, //
            5.0, 1.0, 4.0, //
            3.0, 3.0, 3.0, //
            1.0, 5.0, 3.0, // duplicate of row 0
        ];
        let m = MatrixView::new(3, &data);
        assert_eq!(skyline_sfs(&m, &ids(5)), skyline_bnl(&m, &ids(5)));
    }

    #[test]
    fn matches_bnl_on_pseudorandom_data() {
        // Deterministic LCG so the test needs no external RNG.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64
        };
        let d = 4;
        let data: Vec<f64> = (0..200 * d).map(|_| next()).collect();
        let m = MatrixView::new(d, &data);
        let all = ids(200);
        assert_eq!(skyline_sfs(&m, &all), skyline_bnl(&m, &all));
    }

    #[test]
    fn dominator_first_after_sort() {
        // Even when the dominator has the largest id, sorting places it first.
        let data = [9.0, 9.0, 1.0, 1.0];
        let m = MatrixView::new(2, &data);
        assert_eq!(skyline_sfs(&m, &ids(2)), vec![1]);
    }

    #[test]
    fn nan_attribute_sums_do_not_panic() {
        // Regression: the comparator used partial_cmp(..).unwrap(), which
        // panicked as soon as any row's attribute sum was NaN. MatrixView
        // does not validate values, so SFS must tolerate them.
        let data = [
            f64::NAN,
            1.0, // row 0: NaN sum
            1.0,
            1.0, // row 1: clean dominator candidate
            2.0,
            2.0, // row 2: dominated by row 1
            f64::NAN,
            f64::NAN, // row 3: all NaN
        ];
        let m = MatrixView::new(2, &data);
        let out = skyline_sfs(&m, &ids(4));
        // No panic, and NaN rows don't break dominance among clean rows:
        // row 2 is still eliminated by row 1.
        assert!(out.contains(&1));
        assert!(!out.contains(&2));
        // NaN-valued rows are incomparable (every comparison is false), so
        // they survive as skyline members.
        assert!(out.contains(&0));
        assert!(out.contains(&3));
    }

    #[test]
    fn subset_only() {
        let data = [1.0, 1.0, 2.0, 2.0, 0.5, 3.0];
        let m = MatrixView::new(2, &data);
        assert_eq!(skyline_sfs(&m, &[1, 2]), vec![1, 2]); // incomparable pair
    }
}
