//! Error handling for the relational substrate.

use std::fmt;

/// Convenience alias used across the `ksjq-*` crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while building or validating relations and schemas.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A tuple was supplied with the wrong number of attributes.
    ArityMismatch {
        /// Attributes the schema expects.
        expected: usize,
        /// Attributes the tuple provided.
        got: usize,
    },
    /// A schema was declared without any skyline attributes.
    EmptySchema,
    /// An attribute value was NaN, which has no place in a total order.
    NonFiniteValue {
        /// Index of the offending attribute.
        attr: usize,
        /// Row index of the offending tuple.
        row: usize,
    },
    /// Aggregate slots must be contiguous `0..a` and unique within a schema.
    InvalidAggSlot(String),
    /// The relation mixes join-key kinds (e.g. some tuples have group keys
    /// and others numeric keys).
    InconsistentJoinKeys,
    /// A tuple id was out of bounds for the relation.
    TupleOutOfBounds {
        /// The requested tuple index.
        id: u32,
        /// Number of tuples in the relation.
        n: usize,
    },
    /// A catalog registration reused an already-registered relation name.
    DuplicateRelation(String),
    /// A catalog registration used an empty (or all-whitespace) name.
    InvalidRelationName(String),
    /// Malformed CSV input.
    Csv(String),
    /// Anything else worth reporting with context.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity mismatch: schema has {expected} attributes, tuple has {got}"
                )
            }
            Error::EmptySchema => write!(f, "schema declares no skyline attributes"),
            Error::NonFiniteValue { attr, row } => {
                write!(
                    f,
                    "non-finite attribute value at row {row}, attribute {attr}"
                )
            }
            Error::InvalidAggSlot(msg) => write!(f, "invalid aggregate slot: {msg}"),
            Error::InconsistentJoinKeys => {
                write!(f, "tuples mix join-key kinds within one relation")
            }
            Error::TupleOutOfBounds { id, n } => {
                write!(f, "tuple id {id} out of bounds for relation of {n} tuples")
            }
            Error::DuplicateRelation(name) => {
                write!(f, "relation name {name:?} is already registered")
            }
            Error::InvalidRelationName(name) => {
                write!(f, "invalid relation name {name:?}: must be non-empty")
            }
            Error::Csv(msg) => write!(f, "csv: {msg}"),
            Error::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("arity"));
        assert!(Error::EmptySchema.to_string().contains("schema"));
        assert!(Error::Csv("bad line".into())
            .to_string()
            .contains("bad line"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<Error>();
    }
}
