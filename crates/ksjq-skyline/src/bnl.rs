//! Block-nested-loops (BNL) skyline.
//!
//! The original skyline algorithm of Börzsönyi, Kossmann and Stocker
//! (ICDE 2001), in its in-memory form: maintain a window of incomparable
//! tuples; each incoming tuple is dropped if dominated by a window member,
//! and evicts any window members it dominates. Because full dominance is
//! transitive, the window at the end *is* the skyline — no second pass is
//! needed (unlike the k-dominant case, see [`crate::kdominant::tsa`]).

use crate::RowAccess;
use ksjq_relation::dominates;

/// Compute the (full-dominance) skyline of `members`.
///
/// Returns surviving ids in ascending id order.
pub fn skyline_bnl<R: RowAccess>(rows: &R, members: &[u32]) -> Vec<u32> {
    let mut window: Vec<u32> = Vec::new();
    'outer: for &p in members {
        let prow = rows.row(p);
        let mut i = 0;
        while i < window.len() {
            let w = rows.row(window[i]);
            if dominates(w, prow) {
                continue 'outer; // p is dominated; transitivity keeps window sound
            }
            if dominates(prow, w) {
                window.swap_remove(i);
            } else {
                i += 1;
            }
        }
        window.push(p);
    }
    window.sort_unstable();
    window
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatrixView;

    fn ids(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn empty_input() {
        let m = MatrixView::new(2, &[]);
        assert!(skyline_bnl(&m, &[]).is_empty());
    }

    #[test]
    fn single_tuple_is_skyline() {
        let data = [1.0, 2.0];
        let m = MatrixView::new(2, &data);
        assert_eq!(skyline_bnl(&m, &ids(1)), vec![0]);
    }

    #[test]
    fn dominated_tuples_removed() {
        // (1,1) dominates both others.
        let data = [1.0, 1.0, 2.0, 2.0, 1.0, 3.0];
        let m = MatrixView::new(2, &data);
        assert_eq!(skyline_bnl(&m, &ids(3)), vec![0]);
    }

    #[test]
    fn incomparable_tuples_survive() {
        let data = [1.0, 3.0, 3.0, 1.0, 2.0, 2.0];
        let m = MatrixView::new(2, &data);
        assert_eq!(skyline_bnl(&m, &ids(3)), vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_both_survive() {
        // Equal tuples do not dominate each other, so both stay.
        let data = [1.0, 1.0, 1.0, 1.0];
        let m = MatrixView::new(2, &data);
        assert_eq!(skyline_bnl(&m, &ids(2)), vec![0, 1]);
    }

    #[test]
    fn late_dominator_evicts_window() {
        // The dominator arrives last and must evict earlier entries.
        let data = [5.0, 5.0, 4.0, 6.0, 1.0, 1.0];
        let m = MatrixView::new(2, &data);
        assert_eq!(skyline_bnl(&m, &ids(3)), vec![2]);
    }

    #[test]
    fn respects_member_subset() {
        let data = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let m = MatrixView::new(2, &data);
        // Without the global dominator (row 0), row 1 wins within {1, 2}.
        assert_eq!(skyline_bnl(&m, &[1, 2]), vec![1]);
    }
}
