//! CSV import/export for relations — the bridge for users bringing their
//! own data (the paper's real-data experiment started from a scraped CSV).
//!
//! The format is one header row, one column for the join key, and one
//! column per skyline attribute, matched to the [`Schema`] by name:
//!
//! ```csv
//! hub,cost,flying_time,date_change_fee,popularity,amenities
//! JAI,5400,2.1,1200,81,64
//! ```

use ksjq_relation::csv::CsvTable;
use ksjq_relation::{Error, Relation, Result, Schema, StringDictionary};

/// Parse a relation from CSV text.
///
/// `key_column` names the equality-join key column; its string values are
/// encoded through `dict` (share one dictionary across both relations of
/// a join so equal keys get equal ids). Attribute columns are located by
/// their schema names; extra CSV columns are ignored.
pub fn relation_from_csv(
    text: &str,
    schema: Schema,
    key_column: &str,
    dict: &mut StringDictionary,
) -> Result<Relation> {
    let table = CsvTable::parse(text)?;
    let key_idx = table.column(key_column)?;
    let attr_cols: Vec<usize> = schema
        .attrs()
        .iter()
        .map(|a| table.column(&a.name))
        .collect::<Result<_>>()?;
    let d = schema.d();
    let mut b = Relation::builder(schema).with_capacity(table.rows.len());
    let mut row = vec![0.0f64; d];
    for r in 0..table.rows.len() {
        let gid = dict.encode(&table.rows[r][key_idx]);
        for (j, &col) in attr_cols.iter().enumerate() {
            row[j] = table.number(r, col)?;
        }
        b.add_grouped(gid, &row)?;
    }
    b.build()
}

/// Render a relation (with group keys) back to CSV text.
///
/// Group ids are decoded through `dict` when possible, otherwise printed
/// numerically. The header carries bare attribute names, matching what
/// [`relation_from_csv`] (which takes an explicit [`Schema`]) looks up;
/// use [`relation_to_annotated_csv`] to target a schema-inferring
/// consumer like `Catalog::register_csv`.
pub fn relation_to_csv(
    rel: &Relation,
    key_column: &str,
    dict: Option<&StringDictionary>,
) -> Result<String> {
    relation_to_csv_impl(rel, key_column, dict, false)
}

/// Like [`relation_to_csv`], but the header cells carry the schema
/// annotations `Catalog::register_csv` understands (`name[:max][:aggN]`;
/// `Min` is the default and stays implicit), so preferences and
/// aggregate slots survive the round trip:
///
/// ```
/// use ksjq_datagen::{relation_to_annotated_csv, FlightNetworkSpec};
///
/// let net = FlightNetworkSpec::default().generate();
/// let csv = relation_to_annotated_csv(&net.outbound, "hub", Some(&net.hubs)).unwrap();
/// assert!(csv.starts_with(
///     "hub,cost:agg0,flying_time:agg1,date_change_fee,popularity:max,amenities:max\n"
/// ));
/// ```
pub fn relation_to_annotated_csv(
    rel: &Relation,
    key_column: &str,
    dict: Option<&StringDictionary>,
) -> Result<String> {
    relation_to_csv_impl(rel, key_column, dict, true)
}

/// Like [`relation_to_annotated_csv`], but group ids are decoded through
/// an arbitrary closure instead of a [`StringDictionary`] reference —
/// e.g. a catalog's shared dictionary behind its own lock (the serving
/// layer's `SYNC <name>` export path). Ids the closure declines fall
/// back to their decimal spelling, matching how synthetic relations key
/// themselves.
pub fn relation_to_annotated_csv_with(
    rel: &Relation,
    key_column: &str,
    decode: impl Fn(u64) -> Option<String>,
) -> Result<String> {
    export_csv(rel, key_column, &decode, true)
}

fn relation_to_csv_impl(
    rel: &Relation,
    key_column: &str,
    dict: Option<&StringDictionary>,
    annotate: bool,
) -> Result<String> {
    export_csv(
        rel,
        key_column,
        &|gid| dict.and_then(|d| d.decode(gid)).map(str::to_owned),
        annotate,
    )
}

fn export_csv(
    rel: &Relation,
    key_column: &str,
    decode: &dyn Fn(u64) -> Option<String>,
    annotate: bool,
) -> Result<String> {
    use ksjq_relation::{AttrRole, Preference};
    let mut header = vec![key_column.to_owned()];
    header.extend(rel.schema().attrs().iter().map(|a| {
        let mut cell = a.name.clone();
        if annotate {
            if a.preference == Preference::Max {
                cell.push_str(":max");
            }
            if let AttrRole::Agg(slot) = a.role {
                cell.push_str(&format!(":agg{slot}"));
            }
        }
        cell
    }));
    let mut rows = Vec::with_capacity(rel.n());
    for (t, _) in rel.rows() {
        let gid = rel
            .group_id(t)
            .ok_or_else(|| Error::Invalid("relation has no group keys".into()))?;
        let key = decode(gid).unwrap_or_else(|| gid.to_string());
        let mut cells = vec![key];
        cells.extend(rel.raw_row(t).iter().map(|v| format_number(*v)));
        rows.push(cells);
    }
    Ok(CsvTable { header, rows }.to_csv())
}

/// Compact float formatting: integers print without a trailing `.0`.
fn format_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksjq_relation::{Preference, TupleId};

    fn schema() -> Schema {
        Schema::builder()
            .local("cost", Preference::Min)
            .local("rating", Preference::Max)
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip() {
        let text = "city,cost,rating\nC,448,4.5\nD,456,3.2\nC,468,4\n";
        let mut dict = StringDictionary::new();
        let rel = relation_from_csv(text, schema(), "city", &mut dict).unwrap();
        assert_eq!(rel.n(), 3);
        assert_eq!(rel.raw_row(TupleId(0)), vec![448.0, 4.5]);
        assert_eq!(rel.group_id(TupleId(1)), dict.get("D"));

        let out = relation_to_csv(&rel, "city", Some(&dict)).unwrap();
        assert_eq!(out, "city,cost,rating\nC,448,4.5\nD,456,3.2\nC,468,4\n");
    }

    #[test]
    fn column_order_and_extras_ignored() {
        // Shuffled columns plus an ignored one.
        let text = "note,rating,city,cost\nx,4.5,C,448\n";
        let mut dict = StringDictionary::new();
        let rel = relation_from_csv(text, schema(), "city", &mut dict).unwrap();
        assert_eq!(rel.raw_row(TupleId(0)), vec![448.0, 4.5]);
    }

    #[test]
    fn missing_column_rejected() {
        let mut dict = StringDictionary::new();
        let e = relation_from_csv("city,cost\nC,448\n", schema(), "city", &mut dict);
        assert!(e.is_err());
    }

    #[test]
    fn bad_number_rejected() {
        let mut dict = StringDictionary::new();
        let e = relation_from_csv("city,cost,rating\nC,cheap,4\n", schema(), "city", &mut dict);
        assert!(e.is_err());
    }

    #[test]
    fn shared_dictionary_aligns_keys() {
        let mut dict = StringDictionary::new();
        let r1 = relation_from_csv(
            "city,cost,rating\nC,1,1\nD,2,2\n",
            schema(),
            "city",
            &mut dict,
        )
        .unwrap();
        let r2 = relation_from_csv(
            "city,cost,rating\nD,3,3\nC,4,4\n",
            schema(),
            "city",
            &mut dict,
        )
        .unwrap();
        assert_eq!(r1.group_id(TupleId(1)), r2.group_id(TupleId(0))); // both "D"
    }

    #[test]
    fn annotated_csv_preserves_schema_through_register_csv() {
        // Max preferences and aggregate slots must survive the
        // export → Catalog::register_csv round trip (the serving layer's
        // demo-catalog path); the bare exporter loses them by design.
        let net = crate::flights::FlightNetworkSpec {
            outbound: 12,
            inbound: 9,
            hubs: 3,
            seed: 5,
        }
        .generate();
        let csv = relation_to_annotated_csv(&net.outbound, "hub", Some(&net.hubs)).unwrap();
        let catalog = ksjq_relation::Catalog::new();
        let handle = catalog.register_csv("out", &csv).unwrap();
        assert_eq!(handle.schema(), net.outbound.schema());
        assert_eq!(handle.n(), net.outbound.n());
        for (t, _) in net.outbound.rows() {
            assert_eq!(handle.relation().raw_row(t), net.outbound.raw_row(t));
        }
    }

    #[test]
    fn keyless_relation_cannot_export() {
        let mut b = Relation::builder(schema());
        b.add(&[1.0, 2.0]).unwrap();
        let rel = b.build().unwrap();
        assert!(relation_to_csv(&rel, "city", None).is_err());
    }
}
