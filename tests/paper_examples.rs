//! The paper's worked example (Tables 1–6) as an end-to-end oracle.
//!
//! Two published typos are corrected in `ksjq_datagen::paper_tables` (see
//! its module docs): flight 28's amenities value (37 in Table 2 vs 39 in
//! Table 3 — 39 is what makes the paper's own Observation-3 walk-through
//! arithmetically true) and flight 18's category (Table 1 says `SS1`, but
//! flight 16 3-dominates flight 18, so Definition 2 makes it `SN1`; the
//! final skyline is unaffected).

mod common;

use ksjq::core::{classify, validate_k, Category};
use ksjq::datagen::paper_flights;
use ksjq::prelude::*;

fn cx_plain(pf: &ksjq::datagen::PaperFlights) -> JoinContext<'_> {
    JoinContext::new(&pf.outbound, &pf.inbound, JoinSpec::Equality, &[]).unwrap()
}

/// Table 1/2 categorisations at k = 7 (k′1 = k′2 = 3), with flight 18
/// corrected to SN1.
#[test]
fn table_1_and_2_categorisation() {
    let pf = paper_flights(false);
    let cx = cx_plain(&pf);
    let p = validate_k(&cx, 7).unwrap();
    assert_eq!((p.k1_prime, p.k2_prime), (3, 3));
    let cls = classify(&cx, &p, KdomAlgo::Naive);

    use Category::*;
    // Flights 11..19 (Table 1's last column; 18 corrected from SS to SN).
    let expected1 = [SS, NN, SN, NN, SN, SS, SN, SN, NN];
    assert_eq!(
        cls.left, expected1,
        "Table 1 categories (flight = 11 + index)"
    );
    // Flights 21..28 (Table 2's last column, with 28's amn = 39).
    let expected2 = [SS, NN, SN, NN, SN, SS, SN, SN];
    assert_eq!(
        cls.right, expected2,
        "Table 2 categories (flight = 21 + index)"
    );
}

/// Table 3: the full joined relation with per-pair categorisation and
/// skyline verdicts.
#[test]
fn table_3_joined_relation() {
    let pf = paper_flights(false);
    let cx = cx_plain(&pf);

    // 13 valid flight combinations.
    assert_eq!(cx.count_pairs(), 13);

    let out = ksjq_grouping(&cx, 7, &Config::default()).unwrap();
    // Table 3's "skyline" column: yes for (11,23), (13,21), (15,25), (16,26).
    let yes: Vec<(u32, u32)> = out
        .pairs
        .iter()
        .map(|(u, v)| (11 + u.0, 21 + v.0))
        .collect();
    assert_eq!(yes, vec![(11, 23), (13, 21), (15, 25), (16, 26)]);

    // Spot-check the paper's prose: (18,28) is k-dominated by (19,25)…
    let t_18_28 = cx.joined_row(7, 7);
    let t_19_25 = cx.joined_row(8, 4);
    assert!(ksjq::relation::k_dominates(&t_19_25, &t_18_28, 7));
    // …and (17,27) by (16,26), which dominates it in all 8 attributes.
    let t_17_27 = cx.joined_row(6, 6);
    let t_16_26 = cx.joined_row(5, 5);
    assert!(ksjq::relation::dominates(&t_16_26, &t_17_27));
    // (15,25) survives because its legs' dominators (11 resp. 21) are not
    // join-compatible: 11 lands in C, 21 departs from D.
    assert!(out.contains(4, 4));
}

/// Tables 4/5 (the fate table): validated empirically over the example —
/// every SS⋈SS pair is a skyline, every pair with an NN leg is not.
#[test]
fn table_5_fates_hold() {
    let pf = paper_flights(false);
    let cx = cx_plain(&pf);
    let p = validate_k(&cx, 7).unwrap();
    let cls = classify(&cx, &p, KdomAlgo::Naive);
    let out = ksjq_naive(&cx, 7, &Config::default()).unwrap();

    cx.for_each_pair(|u, v| {
        let fate = (cls.left[u as usize], cls.right[v as usize]);
        let is_skyline = out.contains(u, v);
        match fate {
            (Category::SS, Category::SS) => {
                assert!(is_skyline, "Th. 3 violated for ({u},{v})");
            }
            (Category::NN, _) | (_, Category::NN) => {
                assert!(!is_skyline, "Th. 4 violated for ({u},{v})");
            }
            _ => {} // likely / may be: either way
        }
    });
}

/// Table 6: the aggregate variant (cost summed over legs, k = 6) keeps
/// the same four winners.
#[test]
fn table_6_aggregate_skyline() {
    let pf = paper_flights(true);
    let cx = JoinContext::new(
        &pf.outbound,
        &pf.inbound,
        JoinSpec::Equality,
        &[AggFunc::Sum],
    )
    .unwrap();
    assert_eq!(cx.d_joined(), 7); // 3 + 3 + 1

    // The paper's Sec. 5.6 example: k = 6, a = 1 ⇒ k″ = 2, k′ = 3.
    let p = validate_k(&cx, 6).unwrap();
    assert_eq!((p.k1_pp, p.k1_prime), (2, 3));

    let cfg = Config::default();
    let out = common::assert_all_algorithms_agree(&cx, 6, &cfg, "table6");
    let yes: Vec<(u32, u32)> = out
        .pairs
        .iter()
        .map(|(u, v)| (11 + u.0, 21 + v.0))
        .collect();
    assert_eq!(yes, vec![(11, 23), (13, 21), (15, 25), (16, 26)]);

    // Spot-check the aggregated row of (11,23): total cost 804.
    let row = cx.joined_row(0, 2);
    let names = cx.joined_attr_names();
    let cost_idx = names.iter().position(|n| n == "sum(cost)").unwrap();
    assert_eq!(row[cost_idx], 804.0);
}

/// The join sizes and stats of the example match the prose.
#[test]
fn example_stats() {
    let pf = paper_flights(false);
    let cx = cx_plain(&pf);
    let out = ksjq_grouping(&cx, 7, &Config::default()).unwrap();
    let c = out.stats.counts;
    assert_eq!(c.joined_pairs, 13);
    assert_eq!(c.output, 4);
    // (16,26) is the only SS⋈SS pair — 18 is SN after the correction.
    assert_eq!(c.yes_pairs, 1);
    // All classifications tally up.
    assert_eq!(c.ss[0] + c.sn[0] + c.nn[0], 9);
    assert_eq!(c.ss[1] + c.sn[1] + c.nn[1], 8);
}

/// With the *published* (typo) value amn(28) = 37, the paper's own
/// walk-through fails: (19,25) would no longer 7-dominate (18,28). This
/// test documents why the correction is the consistent reading.
#[test]
fn published_typo_would_break_observation_3() {
    // Rebuild table 2 with amn(28) = 37 as printed.
    let mut cities = StringDictionary::new();
    let schema = || {
        Schema::builder()
            .local("cost", Preference::Min)
            .local("dur", Preference::Min)
            .local("rtg", Preference::Min)
            .local("amn", Preference::Min)
            .build()
            .unwrap()
    };
    let mut b1 = Relation::builder(schema());
    for (city, c, d, r, a) in ksjq::datagen::paper_tables::TABLE1 {
        b1.add_grouped(cities.encode(city), &[c, d, r, a]).unwrap();
    }
    let r1 = b1.build().unwrap();
    let mut b2 = Relation::builder(schema());
    for (city, c, d, r, a) in ksjq::datagen::paper_tables::TABLE2 {
        let a = if city == "H" { 37.0 } else { a }; // the printed value
        b2.add_grouped(cities.encode(city), &[c, d, r, a]).unwrap();
    }
    let r2 = b2.build().unwrap();
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
    let t_18_28 = cx.joined_row(7, 7);
    let t_19_25 = cx.joined_row(8, 4);
    // 6 better-or-equal positions only — not 7 as the prose requires.
    let counts = ksjq::relation::dom_counts(&t_19_25, &t_18_28);
    assert_eq!(counts.le, 6);
    assert!(!ksjq::relation::k_dominates(&t_19_25, &t_18_28, 7));
    // Worse: nothing else dominates (18,28) either, so under the printed
    // value it would *be* a skyline tuple — contradicting Table 3's "no".
    let out = ksjq_naive(&cx, 7, &Config::default()).unwrap();
    assert!(out.contains(7, 7));
}
