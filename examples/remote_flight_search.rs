//! The two-leg flight search of `flight_search.rs`, but served over TCP:
//! a `ksjq-server` runs the engine, and this process is a thin client
//! speaking the wire protocol — the deployment shape for many users
//! sharing one loaded catalog.
//!
//! The example is self-contained: it starts the server in-process on an
//! ephemeral port, then talks to it exactly as a remote client would
//! (point `KsjqClient::connect` at a running `ksjq-serverd` to do it
//! across machines).
//!
//! ```sh
//! cargo run --release --example remote_flight_search
//! ```

use ksjq::prelude::*;
use ksjq::server::ClientError;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Server side: an engine with the synthetic flight network (the
    // paper's Sec. 7.4 cardinalities), served by an 8-worker pool.
    let engine = Engine::new();
    let net = FlightNetworkSpec::default().generate();
    engine.register("outbound", net.outbound)?;
    engine.register("inbound", net.inbound)?;
    let server = Server::start(engine, &ServerConfig::default())?;
    println!("ksjq-server on {} (8 workers)", server.addr());

    // Client side: everything below happens over the socket.
    let mut client = KsjqClient::connect(server.addr())?;

    // Prepare the search: total cost and total time aggregated over both
    // legs, fees/popularity/amenities per leg, k = 6 of 8 attributes.
    let plan = PlanSpec::new("outbound", "inbound")
        .aggs(&[AggFunc::Sum, AggFunc::Sum])
        .k(6)
        .algorithm(Algorithm::Grouping);
    client.prepare("search", &plan)?;
    println!("\nEXPLAIN -> {}", client.explain("search")?);

    // Stream the result: the server ships bounded ROWS chunks (protocol
    // v2, negotiated by `connect`) and this loop processes them as they
    // arrive — neither side ever holds the whole result for us.
    let mut shown = 0usize;
    let mut chunks = 0usize;
    let mut micros = 0;
    let mut total = 0;
    println!();
    for chunk in client.execute_stream("search")? {
        let chunk = chunk?;
        (micros, total) = (chunk.micros, chunk.total);
        chunks += 1;
        for &(out, inn) in chunk.pairs.iter().take(10 - shown.min(10)) {
            println!("  outbound #{out} connecting to inbound #{inn}");
            shown += 1;
        }
    }
    println!(
        "{total} itineraries survive 6-dominance \
         ({micros}µs server-side, streamed as {chunks} chunk(s); first ten above)"
    );

    // The same query again is a cache hit — the server never recomputes.
    // `execute` is the one-shot convenience: it drains the same stream.
    let again = client.execute("search")?;
    println!(
        "\nrepeated EXECUTE: cached={} ({}µs server-side)",
        again.cached, again.micros
    );

    // A shortlist via Problem 4, still over the wire: let the server run
    // the find-k search and pin k.
    let shortlist = client.query(
        &PlanSpec::new("outbound", "inbound")
            .aggs(&[AggFunc::Sum, AggFunc::Sum])
            .goal("atmost:10".parse::<Goal>().expect("valid goal")),
    )?;
    println!(
        "\nshortlist of <= 10: server chose k={} giving {} itineraries",
        shortlist.k,
        shortlist.pairs.len()
    );

    // Server-side validation travels back as typed errors.
    match client.query(&PlanSpec::new("outbound", "nonexistent")) {
        Err(ClientError::Server { code, message }) => {
            println!("\nbad plan rejected ({code}): {message}")
        }
        other => println!("\nunexpected: {other:?}"),
    }

    let stats = client.stats()?;
    println!(
        "\nSTATS: {} requests over {} connections, cache {} hits / {} misses",
        stats.requests, stats.connections, stats.cache_hits, stats.cache_misses
    );

    client.close()?;
    server.stop()?;
    Ok(())
}
