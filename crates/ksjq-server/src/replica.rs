//! Replica bootstrap: clone a primary's catalog over the wire.
//!
//! A replica is an ordinary [`Server`](crate::Server) whose catalog was
//! seeded by replaying the primary's registrations — `SYNC` for the name
//! list, `SYNC <name>` for each relation as annotated CSV, re-registered
//! locally through the normal `register_csv` path. Row *order* is
//! preserved by the export (results are row-index pairs, so that is the
//! part that must match); group ids may differ between replicas because
//! each catalog runs its own string dictionary, which is invisible on
//! the wire.
//!
//! There is no ongoing replication stream: a router keeps replicas
//! consistent by applying every catalog mutation (`STAGE`/`COMMIT`) to
//! all of them. `SYNC` covers the cold start.

use crate::client::{retry_with_backoff, ClientError, ClientResult, ConnectOptions, KsjqClient};
use ksjq_core::Engine;
use std::time::Duration;

/// Pull every relation the primary serves into `engine`'s catalog
/// (upserting over any same-named local binding). Returns the synced
/// names, sorted.
pub fn sync_catalog(engine: &Engine, client: &mut KsjqClient) -> ClientResult<Vec<String>> {
    let names = client.sync_names()?;
    for name in &names {
        let csv = client.sync_relation(name)?;
        let catalog = engine.catalog();
        catalog.deregister(name);
        catalog.register_csv(name, &csv).map_err(|e| {
            ClientError::Protocol(format!("primary sent unloadable CSV for {name:?}: {e}"))
        })?;
    }
    Ok(names)
}

/// Connect to `primary` (with `opts` timeouts, retrying transport
/// failures up to `attempts` times under jittered backoff) and
/// [`sync_catalog`] into `engine`. The retry covers the common race of a
/// replica starting before its primary finishes binding.
pub fn sync_from(
    engine: &Engine,
    primary: &str,
    opts: &ConnectOptions,
    attempts: u32,
    seed: u64,
) -> ClientResult<Vec<String>> {
    retry_with_backoff(
        attempts,
        Duration::from_millis(100),
        Duration::from_secs(2),
        seed,
        |_| {
            let mut client = KsjqClient::connect_with(primary, opts)?;
            let names = sync_catalog(engine, &mut client)?;
            let _ = client.close();
            Ok(names)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use ksjq_datagen::paper_flights;

    fn ephemeral() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn replica_clones_catalog_and_answers_identically() {
        let primary_engine = Engine::new();
        let pf = paper_flights(false);
        let (out_n, in_n) = (pf.outbound.n(), pf.inbound.n());
        primary_engine.register("outbound", pf.outbound).unwrap();
        primary_engine.register("inbound", pf.inbound).unwrap();
        let primary = Server::start(primary_engine, &ephemeral()).unwrap();

        let replica_engine = Engine::new();
        let names = sync_from(
            &replica_engine,
            &primary.addr().to_string(),
            &ConnectOptions::all(Duration::from_secs(5)),
            3,
            7,
        )
        .unwrap();
        assert_eq!(names, vec!["inbound".to_owned(), "outbound".to_owned()]);
        let catalog = replica_engine.catalog();
        assert_eq!(catalog.get("outbound").unwrap().n(), out_n);
        assert_eq!(catalog.get("inbound").unwrap().n(), in_n);

        // Same rows in the same order: raw values match tuple by tuple.
        let oracle = paper_flights(false);
        let synced = catalog.get("outbound").unwrap();
        for (t, _) in oracle.outbound.rows() {
            assert_eq!(synced.relation().raw_row(t), oracle.outbound.raw_row(t));
        }

        // And the replica reproduces Table 3 through its own server.
        let replica = Server::start(replica_engine, &ephemeral()).unwrap();
        let mut client = KsjqClient::connect(replica.addr()).unwrap();
        let rows = client
            .query(&crate::protocol::PlanSpec::new("outbound", "inbound").k(7))
            .unwrap();
        assert_eq!(rows.pairs, vec![(0, 2), (2, 0), (4, 4), (5, 5)]);
        client.close().unwrap();
        replica.stop().unwrap();
        primary.stop().unwrap();
    }

    #[test]
    fn sync_from_retries_until_primary_appears() {
        // Nothing listens on this address: every attempt is a transport
        // failure, so all three attempts burn before the error surfaces.
        let engine = Engine::new();
        let err = sync_from(
            &engine,
            "127.0.0.1:1",
            &ConnectOptions::all(Duration::from_millis(50)),
            3,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "got {err}");
    }
}
