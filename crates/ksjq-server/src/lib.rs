//! Serving KSJQ over TCP.
//!
//! This crate turns the in-process [`Engine`](ksjq_core::Engine) into a
//! network service, std-only (no async runtime, no serialisation
//! framework — the workspace is offline):
//!
//! * [`protocol`] — the line-oriented wire format: typed [`Request`] /
//!   [`Response`] enums whose `Display` and `parse` round-trip. Two
//!   versions share the wire: v1's one-shot `ROWS`, and v2 (negotiated
//!   via `HELLO`) which streams results as bounded `ROWS … part=i/m`
//!   chunks pageable with `MORE <cursor>`.
//! * [`server`] — [`Server`]: a readiness-polled front end (non-blocking
//!   listener + poll loop, no async runtime) multiplexing thousands of
//!   connections, dispatching complete requests onto a fixed worker pool
//!   sharing one engine, with admission control (connection cap with
//!   `ERR busy` shedding, idle/stall reaping, catalog size budgets).
//! * [`frame`] — [`FrameBuffer`]: per-connection incremental line
//!   reassembly with bounded buffering and oversized-line resync.
//! * [`cache`] — [`ResultCache`]: an LRU over normalised plan
//!   fingerprints with hit/miss/eviction counters, per-relation
//!   invalidation on catalog registration, and cursor-addressable
//!   entries backing v2 `MORE` paging.
//! * [`client`] — [`KsjqClient`]: the blocking client the tests, the
//!   benchmark harness's `--remote` mode and the examples use. Streams
//!   by default ([`KsjqClient::execute_stream`]); the one-shot calls
//!   drain the stream internally.
//! * [`replica`] — catalog cloning over the wire (`SYNC`), backing
//!   `ksjq-serverd --replica-of`; together with the two-phase load
//!   (`STAGE`/`COMMIT`/`ABORT`) and scatter-gather verification
//!   primitives (`FETCH`/`CHECK`) it is the server half of the
//!   `ksjq-router` distributed deployment.
//! * [`durability`] — the checksummed write-ahead log and snapshot
//!   behind `ksjq-serverd --data-dir`: every catalog mutation is fsynced
//!   before its `OK`, and restart replays the committed state exactly,
//!   truncating any torn tail a crash left behind.
//! * [`faults`] — seeded, deterministic transport fault injection
//!   ([`FaultPlan`]): drops, delays, partial writes and bit flips,
//!   replayable from the seed, for chaos tests over real processes.
//!
//! The `ksjq-serverd` binary serves a preloaded demo catalog;
//! `ksjq-client` scripts a session from stdin (the CI smoke test drives
//! it with a here-doc).
//!
//! ```no_run
//! use ksjq_core::Engine;
//! use ksjq_datagen::paper_flights;
//! use ksjq_server::{KsjqClient, PlanSpec, Server, ServerConfig};
//!
//! let engine = Engine::new();
//! let pf = paper_flights(false);
//! engine.register("outbound", pf.outbound).unwrap();
//! engine.register("inbound", pf.inbound).unwrap();
//! let server = Server::start(engine, &ServerConfig::default()).unwrap();
//!
//! let mut client = KsjqClient::connect(server.addr()).unwrap();
//! client.prepare("q", &PlanSpec::new("outbound", "inbound").k(7)).unwrap();
//! assert_eq!(client.execute("q").unwrap().pairs.len(), 4); // Table 3
//! client.close().unwrap();
//! server.stop().unwrap();
//! ```

pub mod cache;
pub mod client;
pub mod demo;
pub mod durability;
pub mod faults;
pub mod frame;
pub mod protocol;
pub mod replica;
pub mod server;

pub use cache::{CacheCounters, ResultCache};
pub use client::{
    retry_with_backoff, ClientError, ClientResult, ConnectOptions, KsjqClient, RowStream,
};
pub use demo::register_demo_catalog;
pub use faults::{FaultAction, FaultPlan, FaultStream};
pub use frame::{Frame, FrameBuffer};
pub use protocol::{
    Cursor, ErrorCode, LoadSource, PlanSpec, ProtoResult, Request, Response, RowChunk, RowSet,
    ServerStats, SyntheticSpec, MAX_LINE_BYTES, MAX_ROWS_FRAME_BYTES, PROTOCOL_VERSION,
    ROWS_PER_CHUNK,
};
pub use replica::{resync_if_stale, sync_catalog, sync_from};
pub use server::{RunningServer, Server, ServerConfig, ServerHandle};
