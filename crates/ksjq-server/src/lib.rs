//! Serving KSJQ over TCP.
//!
//! This crate turns the in-process [`Engine`](ksjq_core::Engine) into a
//! network service, std-only (no async runtime, no serialisation
//! framework — the workspace is offline):
//!
//! * [`protocol`] — the line-oriented wire format: typed [`Request`] /
//!   [`Response`] enums whose `Display` and `parse` round-trip.
//! * [`server`] — [`Server`]: a `TcpListener` accept loop over a fixed
//!   worker thread pool, all workers sharing one engine, a named
//!   prepared-query session map and the result cache.
//! * [`cache`] — [`ResultCache`]: an LRU over normalised plan
//!   fingerprints with hit/miss/eviction counters, invalidated on every
//!   catalog registration.
//! * [`client`] — [`KsjqClient`]: the blocking client the tests, the
//!   benchmark harness's `--remote` mode and the examples use.
//!
//! The `ksjq-serverd` binary serves a preloaded demo catalog;
//! `ksjq-client` scripts a session from stdin (the CI smoke test drives
//! it with a here-doc).
//!
//! ```no_run
//! use ksjq_core::Engine;
//! use ksjq_datagen::paper_flights;
//! use ksjq_server::{KsjqClient, PlanSpec, Server, ServerConfig};
//!
//! let engine = Engine::new();
//! let pf = paper_flights(false);
//! engine.register("outbound", pf.outbound).unwrap();
//! engine.register("inbound", pf.inbound).unwrap();
//! let server = Server::start(engine, &ServerConfig::default()).unwrap();
//!
//! let mut client = KsjqClient::connect(server.addr()).unwrap();
//! client.prepare("q", &PlanSpec::new("outbound", "inbound").k(7)).unwrap();
//! assert_eq!(client.execute("q").unwrap().pairs.len(), 4); // Table 3
//! client.close().unwrap();
//! server.stop().unwrap();
//! ```

pub mod cache;
pub mod client;
pub mod demo;
pub mod protocol;
pub mod server;

pub use cache::{CacheCounters, ResultCache};
pub use client::{ClientError, ClientResult, KsjqClient};
pub use demo::register_demo_catalog;
pub use protocol::{
    LoadSource, PlanSpec, ProtoResult, Request, Response, RowSet, ServerStats, SyntheticSpec,
    MAX_LINE_BYTES,
};
pub use server::{RunningServer, Server, ServerConfig, ServerHandle};
