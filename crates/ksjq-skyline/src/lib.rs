//! Single-relation skyline and *k*-dominant skyline algorithms.
//!
//! This crate is the substrate the KSJQ paper cites as prior work:
//!
//! * [`bnl`] — block-nested-loops skyline (Börzsönyi, Kossmann, Stocker,
//!   ICDE 2001): the original skyline operator.
//! * [`sfs`] — sort-filter-skyline (Chomicki et al., ICDE 2003): presort by
//!   a monotone score, then a single verification pass.
//! * [`kdominant`] — the *k*-dominant skyline algorithms of Chan et al.
//!   (SIGMOD 2006): exhaustive [`kdominant::naive`], the One-Scan Algorithm
//!   [`kdominant::osa`] and the Two-Scan Algorithm [`kdominant::tsa`],
//!   including a streaming two-scan variant that never materialises its
//!   input (used by the naïve KSJQ join path where the joined relation can
//!   exceed 10⁸ tuples).
//! * [`grouped`] — per-join-group k-dominant skylines, the building block of
//!   the paper's SS/SN/NN classification.
//!
//! All algorithms work over any [`RowAccess`] implementor; `ksjq-relation`'s
//! [`ksjq_relation::Relation`] implements it directly.

pub mod bnl;
pub mod grouped;
pub mod kdominant;
pub mod sfs;

use ksjq_relation::Relation;

/// Read access to a set of fixed-arity rows addressed by `u32` ids.
///
/// Rows must be normalised (lower-is-better); see `ksjq-relation`.
pub trait RowAccess {
    /// Attribute count of every row.
    fn d(&self) -> usize;
    /// The attribute slice of row `id`.
    fn row(&self, id: u32) -> &[f64];
}

impl RowAccess for Relation {
    #[inline]
    fn d(&self) -> usize {
        Relation::d(self)
    }

    #[inline]
    fn row(&self, id: u32) -> &[f64] {
        self.row_at(id as usize)
    }
}

/// A flat row-major matrix view, for algorithm inputs that are not backed
/// by a [`Relation`] (scratch data, materialised joins, test fixtures).
#[derive(Debug, Clone, Copy)]
pub struct MatrixView<'a> {
    d: usize,
    data: &'a [f64],
}

impl<'a> MatrixView<'a> {
    /// View `data` as rows of `d` attributes.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` is not a multiple of `d`.
    pub fn new(d: usize, data: &'a [f64]) -> Self {
        assert!(d > 0, "MatrixView requires d > 0");
        assert_eq!(data.len() % d, 0, "data length must be a multiple of d");
        MatrixView { d, data }
    }

    /// Number of rows.
    pub fn n(&self) -> usize {
        self.data.len() / self.d
    }

    /// All row ids, `0..n`.
    pub fn ids(&self) -> Vec<u32> {
        (0..self.n() as u32).collect()
    }
}

impl RowAccess for MatrixView<'_> {
    #[inline]
    fn d(&self) -> usize {
        self.d
    }

    #[inline]
    fn row(&self, id: u32) -> &[f64] {
        let i = id as usize * self.d;
        &self.data[i..i + self.d]
    }
}

/// Which k-dominant skyline algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KdomAlgo {
    /// Exhaustive pairwise comparison; O(n²) but unbeatable on small inputs
    /// and the oracle for every other algorithm's tests.
    Naive,
    /// One-Scan Algorithm (Chan et al.).
    Osa,
    /// Two-Scan Algorithm (Chan et al.). The default: fastest when the
    /// skyline is small relative to the input.
    #[default]
    Tsa,
    /// Two-Scan Algorithm over an attribute-sum presort — often fewer
    /// scan-1 evictions; identical results (see [`kdominant::presort`]).
    TsaPresort,
}

impl std::fmt::Display for KdomAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KdomAlgo::Naive => write!(f, "naive"),
            KdomAlgo::Osa => write!(f, "osa"),
            KdomAlgo::Tsa => write!(f, "tsa"),
            KdomAlgo::TsaPresort => write!(f, "tsa-presort"),
        }
    }
}

impl std::str::FromStr for KdomAlgo {
    type Err = String;

    /// Parse a subroutine name. Round-trips with
    /// [`Display`](std::fmt::Display) (`"naive"`, `"osa"`, `"tsa"`,
    /// `"tsa-presort"`); also accepts the underscore spelling.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "naive" => Ok(KdomAlgo::Naive),
            "osa" => Ok(KdomAlgo::Osa),
            "tsa" => Ok(KdomAlgo::Tsa),
            "tsa-presort" | "tsa_presort" => Ok(KdomAlgo::TsaPresort),
            _ => Err(format!(
                "unknown k-dominant skyline algorithm {s:?} (expected naive, osa, tsa or tsa-presort)"
            )),
        }
    }
}

/// Compute the k-dominant skyline of `members` (ids into `rows`) with the
/// chosen algorithm. Returns surviving ids in ascending order.
pub fn k_dominant_skyline<R: RowAccess>(
    rows: &R,
    members: &[u32],
    k: usize,
    algo: KdomAlgo,
) -> Vec<u32> {
    match algo {
        KdomAlgo::Naive => kdominant::naive::kdom_naive(rows, members, k),
        KdomAlgo::Osa => kdominant::osa::kdom_osa(rows, members, k),
        KdomAlgo::Tsa => kdominant::tsa::kdom_tsa(rows, members, k),
        KdomAlgo::TsaPresort => kdominant::presort::kdom_tsa_presorted(rows, members, k),
    }
}

/// Is `row` k-dominated by any member of `members` (ids into `rows`),
/// skipping the member equal to `skip` (use `u32::MAX` to skip nothing)?
#[inline]
pub fn k_dominated_by_any<R: RowAccess>(
    rows: &R,
    row: &[f64],
    members: &[u32],
    k: usize,
    skip: u32,
) -> bool {
    members
        .iter()
        .any(|&m| m != skip && ksjq_relation::k_dominates(rows.row(m), row, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_view_basics() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let m = MatrixView::new(2, &data);
        assert_eq!(m.n(), 3);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.ids(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "multiple of d")]
    fn matrix_view_bad_len() {
        let data = [1.0, 2.0, 3.0];
        MatrixView::new(2, &data);
    }

    #[test]
    fn relation_implements_row_access() {
        use ksjq_relation::{Relation, Schema};
        let mut b = Relation::builder(Schema::uniform(2).unwrap());
        b.add(&[1.0, 2.0]).unwrap();
        let r = b.build().unwrap();
        assert_eq!(RowAccess::d(&r), 2);
        assert_eq!(RowAccess::row(&r, 0), &[1.0, 2.0]);
    }

    #[test]
    fn kdom_algo_from_str_roundtrips_display() {
        for algo in [
            KdomAlgo::Naive,
            KdomAlgo::Osa,
            KdomAlgo::Tsa,
            KdomAlgo::TsaPresort,
        ] {
            assert_eq!(algo.to_string().parse::<KdomAlgo>().unwrap(), algo);
        }
        assert_eq!("TSA".parse::<KdomAlgo>().unwrap(), KdomAlgo::Tsa);
        assert_eq!(
            "tsa_presort".parse::<KdomAlgo>().unwrap(),
            KdomAlgo::TsaPresort
        );
        assert!("two-scan".parse::<KdomAlgo>().is_err());
    }

    #[test]
    fn dominated_by_any() {
        let data = [1.0, 1.0, 5.0, 5.0];
        let m = MatrixView::new(2, &data);
        assert!(k_dominated_by_any(&m, &[2.0, 2.0], &[0, 1], 2, u32::MAX));
        // Skipping the only dominator flips the answer.
        assert!(!k_dominated_by_any(&m, &[2.0, 2.0], &[0, 1], 2, 0));
        assert!(!k_dominated_by_any(&m, &[0.0, 0.0], &[0, 1], 1, u32::MAX));
    }
}
