//! Fig. 1: effect of k on the three KSJQ algorithms (aggregate case).
//!
//! Criterion companion to `harness fig1a` / `harness fig1b`, on reduced n
//! so statistical sampling stays affordable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksjq_bench::{PaperParams, GDN};
use ksjq_core::{ksjq_dominator_based, ksjq_grouping, ksjq_naive, Algorithm, Config};

fn bench_effect_of_k(c: &mut Criterion) {
    let params = PaperParams {
        n: 400,
        ..Default::default()
    };
    let (r1, r2) = params.relations();
    let cx = params.context(&r1, &r2);
    let cfg = Config::default();

    let mut group = c.benchmark_group("fig1a_effect_of_k");
    group.sample_size(10);
    for k in 8..=11usize {
        for algo in GDN {
            group.bench_with_input(BenchmarkId::new(format!("{algo}"), k), &k, |b, &k| {
                b.iter(|| match algo {
                    Algorithm::Naive => ksjq_naive(&cx, k, &cfg).unwrap().len(),
                    Algorithm::Grouping => ksjq_grouping(&cx, k, &cfg).unwrap().len(),
                    Algorithm::DominatorBased => ksjq_dominator_based(&cx, k, &cfg).unwrap().len(),
                })
            });
        }
    }
    group.finish();

    // Fig 1b: d = 6, a = 1.
    let params = PaperParams {
        n: 400,
        d: 6,
        a: 1,
        ..Default::default()
    };
    let (r1, r2) = params.relations();
    let cx = params.context(&r1, &r2);
    let mut group = c.benchmark_group("fig1b_effect_of_k");
    group.sample_size(10);
    for k in 7..=10usize {
        for algo in GDN {
            group.bench_with_input(BenchmarkId::new(format!("{algo}"), k), &k, |b, &k| {
                b.iter(|| match algo {
                    Algorithm::Naive => ksjq_naive(&cx, k, &cfg).unwrap().len(),
                    Algorithm::Grouping => ksjq_grouping(&cx, k, &cfg).unwrap().len(),
                    Algorithm::DominatorBased => ksjq_dominator_based(&cx, k, &cfg).unwrap().len(),
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_effect_of_k);
criterion_main!(benches);
