//! Cooperative cancellation for deadline-bounded execution.
//!
//! The KSJQ kernels are tight loops over candidate pairs; a server
//! cannot abort them from outside without either killing the thread
//! (unsafe — scratch state, counters and caches would be torn) or
//! paying a clock read per iteration. [`Checkpoint`] is the middle
//! ground: a countdown that consults the wall clock only every
//! [`Checkpoint::INTERVAL`] ticks, and only when a deadline is actually
//! set — the no-deadline path is a decrement and a branch per tick.
//!
//! Every execution loop that can run long ticks a checkpoint once per
//! unit of work (one candidate verified, one find-k probe, one parallel
//! shard step). When the deadline passes, the tick returns
//! [`CoreError::DeadlineExceeded`] and the error propagates out through
//! the ordinary `CoreResult` plumbing, leaving all shared state intact —
//! the query can simply be retried with a later deadline.
//!
//! The same checkpoints double as *chaos points* for fault injection:
//! a server can arm a thread-local countdown with [`arm_panic_after`]
//! and the kernels will `panic!` at the chosen checkpoint, exercising
//! the worker-pool `catch_unwind` isolation without any test-only hooks
//! in the engine itself. Disarmed (the default), the hook is one
//! thread-local read every [`Checkpoint::INTERVAL`] ticks.
//!
//! The thread-local countdown never crosses into the kernels' scoped
//! worker threads, so a server injecting panics into real parallel
//! executions arms the *process-wide* variant,
//! [`arm_panic_after_process`], instead: any kernel thread can consume
//! the countdown, and the panic unwinds through `std::thread::scope`'s
//! join back into the arming worker's `catch_unwind`. It is meant for a
//! dedicated chaos process (one armed injection at a time), not for
//! test binaries whose cases run kernels concurrently.

use crate::error::{CoreError, CoreResult};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

thread_local! {
    /// Remaining chaos points until an injected panic fires; 0 = disarmed.
    static CHAOS_PANIC: Cell<u64> = const { Cell::new(0) };
}

/// Remaining chaos points, process-wide, until an injected panic fires
/// on whichever thread hits the next chaos point; 0 = disarmed.
static CHAOS_PANIC_PROCESS: AtomicU64 = AtomicU64::new(0);

/// Arm an injected panic on the current thread: the `points`-th chaos
/// point (checkpoint clock boundary or [`check_deadline`] call) observed
/// by this thread panics. `points` is clamped to at least 1. Pair with
/// [`disarm_panic`] so an armed-but-unfired panic never leaks into the
/// thread's next unit of work.
pub fn arm_panic_after(points: u64) {
    CHAOS_PANIC.with(|c| c.set(points.max(1)));
}

/// Disarm any pending injected panic on the current thread.
pub fn disarm_panic() {
    CHAOS_PANIC.with(|c| c.set(0));
}

/// Arm an injected panic process-wide: the `points`-th chaos point
/// observed by *any* thread panics. Unlike [`arm_panic_after`] this
/// reaches the kernels' scoped worker threads, whose panic unwinds
/// through the scope join back into the thread that armed it. Pair with
/// [`disarm_panic_process`].
pub fn arm_panic_after_process(points: u64) {
    CHAOS_PANIC_PROCESS.store(points.max(1), Ordering::SeqCst);
}

/// Disarm any pending process-wide injected panic.
pub fn disarm_panic_process() {
    CHAOS_PANIC_PROCESS.store(0, Ordering::SeqCst);
}

/// One chaos point: counts down an armed injection and fires it at zero.
#[inline]
fn chaos_point() {
    CHAOS_PANIC.with(|c| {
        let n = c.get();
        if n == 1 {
            c.set(0);
            panic!("injected chaos panic at kernel checkpoint");
        }
        if n > 1 {
            c.set(n - 1);
        }
    });
    // The process-wide countdown; disarmed it costs one relaxed load
    // per chaos point (i.e. every INTERVAL ticks, not every tick).
    let mut n = CHAOS_PANIC_PROCESS.load(Ordering::Relaxed);
    while n > 0 {
        match CHAOS_PANIC_PROCESS.compare_exchange_weak(
            n,
            n - 1,
            Ordering::SeqCst,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                if n == 1 {
                    panic!("injected chaos panic at kernel checkpoint");
                }
                return;
            }
            Err(current) => n = current,
        }
    }
}

/// A throttled deadline checker for hot loops.
///
/// `tick()` is designed to be called once per loop iteration; it reads
/// the clock only every [`INTERVAL`](Self::INTERVAL) calls. With no
/// deadline configured it never reads the clock at all.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    deadline: Option<Instant>,
    countdown: u32,
}

impl Checkpoint {
    /// How many ticks elapse between wall-clock reads. Small enough that
    /// even expensive per-candidate checks notice an expired deadline
    /// within a few milliseconds; large enough that `Instant::now()` is
    /// invisible in the kernels' profiles.
    pub const INTERVAL: u32 = 64;

    /// A checkpoint against `deadline` (`None` = never expires). The
    /// first tick always reads the clock — an already-expired deadline
    /// fires immediately even in loops shorter than
    /// [`INTERVAL`](Self::INTERVAL) — and subsequent reads are throttled.
    pub fn new(deadline: Option<Instant>) -> Self {
        Checkpoint {
            deadline,
            countdown: 1,
        }
    }

    /// Count one unit of work; every [`INTERVAL`](Self::INTERVAL) calls,
    /// compare the clock against the deadline.
    ///
    /// # Errors
    ///
    /// [`CoreError::DeadlineExceeded`] once the deadline has passed.
    #[inline]
    pub fn tick(&mut self) -> CoreResult<()> {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = Self::INTERVAL;
            chaos_point();
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Err(CoreError::DeadlineExceeded);
                }
            }
        }
        Ok(())
    }

    /// Like [`tick`](Self::tick), but coordinated across sibling workers
    /// through a shared flag: the first worker to observe the expired
    /// deadline raises `cancelled`, and every other worker bails at its
    /// next clock boundary without waiting for its own clock read to
    /// agree.
    #[inline]
    pub fn tick_shared(&mut self, cancelled: &AtomicBool) -> CoreResult<()> {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = Self::INTERVAL;
            chaos_point();
            let Some(deadline) = self.deadline else {
                return Ok(());
            };
            if cancelled.load(Ordering::Relaxed) {
                return Err(CoreError::DeadlineExceeded);
            }
            if Instant::now() >= deadline {
                cancelled.store(true, Ordering::Relaxed);
                return Err(CoreError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// One immediate (unthrottled) deadline check, for phase boundaries and
/// dispatch entry.
///
/// # Errors
///
/// [`CoreError::DeadlineExceeded`] if `deadline` is set and has passed.
#[inline]
pub fn check_deadline(deadline: Option<Instant>) -> CoreResult<()> {
    chaos_point();
    match deadline {
        Some(d) if Instant::now() >= d => Err(CoreError::DeadlineExceeded),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn no_deadline_never_expires() {
        let mut cp = Checkpoint::new(None);
        for _ in 0..10_000 {
            cp.tick().unwrap();
        }
        check_deadline(None).unwrap();
    }

    #[test]
    fn distant_deadline_passes() {
        let far = Instant::now() + Duration::from_secs(3600);
        let mut cp = Checkpoint::new(Some(far));
        for _ in 0..10_000 {
            cp.tick().unwrap();
        }
        check_deadline(Some(far)).unwrap();
    }

    #[test]
    fn expired_deadline_fires_on_first_tick() {
        let past = Instant::now() - Duration::from_millis(1);
        let mut cp = Checkpoint::new(Some(past));
        assert_eq!(cp.tick(), Err(CoreError::DeadlineExceeded));
        assert_eq!(check_deadline(Some(past)), Err(CoreError::DeadlineExceeded));
    }

    #[test]
    fn armed_panic_fires_at_the_chosen_chaos_point() {
        // check_deadline is one chaos point per call: arming 3 survives
        // two calls and fires on the third.
        arm_panic_after(3);
        check_deadline(None).unwrap();
        check_deadline(None).unwrap();
        let panicked = std::panic::catch_unwind(|| check_deadline(None));
        assert!(panicked.is_err(), "third chaos point must panic");
        // Firing disarms: the thread is healthy again afterwards.
        check_deadline(None).unwrap();
    }

    #[test]
    fn disarm_cancels_a_pending_panic() {
        arm_panic_after(1);
        disarm_panic();
        check_deadline(None).unwrap();
        let mut cp = Checkpoint::new(None);
        for _ in 0..10 * Checkpoint::INTERVAL {
            cp.tick().unwrap();
        }
    }

    #[test]
    fn ticks_reach_chaos_points_without_a_deadline() {
        // A no-deadline checkpoint still passes chaos points at clock
        // boundaries, so injected panics reach untimed queries too.
        arm_panic_after(1);
        let mut cp = Checkpoint::new(None);
        let panicked = std::panic::catch_unwind(move || {
            for _ in 0..2 * Checkpoint::INTERVAL {
                cp.tick()?;
            }
            Ok::<(), CoreError>(())
        });
        assert!(panicked.is_err(), "tick must hit the armed chaos point");
        disarm_panic();
    }

    #[test]
    fn shared_flag_short_circuits_siblings() {
        let past = Instant::now() - Duration::from_millis(1);
        let cancelled = AtomicBool::new(false);
        let mut first = Checkpoint::new(Some(past));
        assert!(first.tick_shared(&cancelled).is_err());
        assert!(cancelled.load(Ordering::Relaxed));
        // A sibling with a *future* deadline still bails on the flag.
        let future = Instant::now() + Duration::from_secs(3600);
        let mut sibling = Checkpoint::new(Some(future));
        assert!(
            sibling.tick_shared(&cancelled).is_err(),
            "sibling must observe the shared cancellation"
        );
    }
}
