//! Smoke test: the facade `prelude` exposes everything a caller needs to
//! run an end-to-end KSJQ query without naming member crates.

use ksjq::prelude::*;

#[test]
fn prelude_reexports_compile_and_run() {
    // Every name below comes from `ksjq::prelude` alone.
    let flights = ksjq::datagen::paper_flights(false);
    let query = KsjqQuery::builder(&flights.outbound, &flights.inbound)
        .k(7)
        .algorithm(Algorithm::Grouping)
        .build()
        .expect("valid query");
    let result: KsjqOutput = query.execute().expect("query runs");
    assert_eq!(result.len(), 4);

    // Types re-exported for query construction are nameable.
    let _config: Config = Config::default();
    let _spec: JoinSpec = JoinSpec::Equality;
    let _agg: AggFunc = AggFunc::Sum;
    let _theta: ThetaOp = ThetaOp::Lt;
    let _kdom: KdomAlgo = KdomAlgo::Tsa;
    let _strategy: FindKStrategy = FindKStrategy::Binary;
    let _pref: Preference = Preference::Min;
    let _id: TupleId = TupleId(0);
    let _dtype: DataType = DataType::Independent;
}

#[test]
fn prelude_find_k_runs() {
    let flights = ksjq::datagen::paper_flights(false);
    let cx = JoinContext::new(&flights.outbound, &flights.inbound, JoinSpec::Equality, &[])
        .expect("join context");
    let (lo, hi) = k_range(&cx);
    assert!(lo <= hi);
    let report: FindKReport =
        find_k_at_least(&cx, 1, FindKStrategy::Binary, &Config::default()).expect("find-k runs");
    assert!(report.satisfied);
    assert!((lo..=hi).contains(&report.k));
}
