//! Replica bootstrap: clone a primary's catalog over the wire.
//!
//! A replica is an ordinary [`Server`](crate::Server) whose catalog was
//! seeded by replaying the primary's registrations — `SYNC` for the name
//! list, `SYNC <name>` for each relation as annotated CSV, re-registered
//! locally through the normal `register_csv` path. Row *order* is
//! preserved by the export (results are row-index pairs, so that is the
//! part that must match); group ids may differ between replicas because
//! each catalog runs its own string dictionary, which is invisible on
//! the wire.
//!
//! There is no ongoing replication stream: a router keeps replicas
//! consistent by applying every catalog mutation (`STAGE`/`COMMIT`,
//! `APPEND`/`DELETE`) to all of them. `SYNC` covers the cold start, and
//! [`resync_if_stale`] covers catch-up — `SYNC` reports the primary's
//! `catalog_epoch`, so a lagging replica (down during a delta, say) can
//! detect drift and re-clone without a restart.

use crate::client::{retry_with_backoff, ClientError, ClientResult, ConnectOptions, KsjqClient};
use ksjq_core::Engine;
use std::time::Duration;

/// Replay the primary's relations into `engine`'s catalog, dropping any
/// local binding the primary no longer serves.
fn clone_relations(engine: &Engine, client: &mut KsjqClient, names: &[String]) -> ClientResult<()> {
    let catalog = engine.catalog();
    for stale in catalog.names().into_iter().filter(|n| !names.contains(n)) {
        catalog.deregister(&stale);
    }
    for name in names {
        let csv = client.sync_relation(name)?;
        catalog.deregister(name);
        catalog.register_csv(name, &csv).map_err(|e| {
            ClientError::Protocol(format!("primary sent unloadable CSV for {name:?}: {e}"))
        })?;
    }
    Ok(())
}

/// Clone the whole catalog and *verify* the primary's `catalog_epoch`
/// did not move while we were copying. `SYNC <name>` fetches relations
/// one at a time, so a mutation landing mid-clone would leave the
/// replica with a catalog no single epoch ever described — some
/// relations pre-delta, some post. The handshake re-reads the epoch
/// after the last relation and re-clones (bounded) until it gets a
/// clean pass, so the epoch a replica reports is one the primary
/// actually served.
fn clone_verified(engine: &Engine, client: &mut KsjqClient) -> ClientResult<(u64, Vec<String>)> {
    const ATTEMPTS: usize = 4;
    for _ in 0..ATTEMPTS {
        let (epoch, names) = client.sync_catalog()?;
        clone_relations(engine, client, &names)?;
        let (after, _) = client.sync_catalog()?;
        if after == epoch {
            return Ok((epoch, names));
        }
    }
    Err(ClientError::Protocol(format!(
        "primary catalog kept mutating during clone ({ATTEMPTS} attempts)"
    )))
}

/// Pull every relation the primary serves into `engine`'s catalog
/// (upserting over any same-named local binding), verifying the
/// primary's `catalog_epoch` was stable across the clone. Returns the
/// synced names, sorted.
pub fn sync_catalog(engine: &Engine, client: &mut KsjqClient) -> ClientResult<Vec<String>> {
    let (_, names) = clone_verified(engine, client)?;
    Ok(names)
}

/// Compare the primary's `catalog_epoch` against `last_epoch` and
/// re-clone the whole catalog if they differ. Returns `None` when the
/// replica was already current, `Some((epoch, names))` after a re-clone.
///
/// The caller owns the epoch bookkeeping *and* its own server's
/// invalidation: after a `Some`, call
/// [`ServerHandle::catalog_updated`](crate::ServerHandle::catalog_updated)
/// so the local result cache and versioned chains drop with the old
/// catalog.
pub fn resync_if_stale(
    engine: &Engine,
    client: &mut KsjqClient,
    last_epoch: u64,
) -> ClientResult<Option<(u64, Vec<String>)>> {
    let (epoch, _) = client.sync_catalog()?;
    if epoch == last_epoch {
        return Ok(None);
    }
    clone_verified(engine, client).map(Some)
}

/// Connect to `primary` (with `opts` timeouts, retrying transport
/// failures up to `attempts` times under jittered backoff) and
/// [`sync_catalog`] into `engine`. Returns the primary's `catalog_epoch`
/// at clone time (feed it to [`resync_if_stale`] later) and the synced
/// names. The retry covers the common race of a replica starting before
/// its primary finishes binding.
pub fn sync_from(
    engine: &Engine,
    primary: &str,
    opts: &ConnectOptions,
    attempts: u32,
    seed: u64,
) -> ClientResult<(u64, Vec<String>)> {
    retry_with_backoff(
        attempts,
        Duration::from_millis(100),
        Duration::from_secs(2),
        seed,
        |_| {
            let mut client = KsjqClient::connect_with(primary, opts)?;
            let cloned = clone_verified(engine, &mut client)?;
            let _ = client.close();
            Ok(cloned)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use ksjq_datagen::paper_flights;

    fn ephemeral() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn replica_clones_catalog_and_answers_identically() {
        let primary_engine = Engine::new();
        let pf = paper_flights(false);
        let (out_n, in_n) = (pf.outbound.n(), pf.inbound.n());
        primary_engine.register("outbound", pf.outbound).unwrap();
        primary_engine.register("inbound", pf.inbound).unwrap();
        let primary = Server::start(primary_engine, &ephemeral()).unwrap();

        let replica_engine = Engine::new();
        let (_, names) = sync_from(
            &replica_engine,
            &primary.addr().to_string(),
            &ConnectOptions::all(Duration::from_secs(5)),
            3,
            7,
        )
        .unwrap();
        assert_eq!(names, vec!["inbound".to_owned(), "outbound".to_owned()]);
        let catalog = replica_engine.catalog();
        assert_eq!(catalog.get("outbound").unwrap().n(), out_n);
        assert_eq!(catalog.get("inbound").unwrap().n(), in_n);

        // Same rows in the same order: raw values match tuple by tuple.
        let oracle = paper_flights(false);
        let synced = catalog.get("outbound").unwrap();
        for (t, _) in oracle.outbound.rows() {
            assert_eq!(synced.relation().raw_row(t), oracle.outbound.raw_row(t));
        }

        // And the replica reproduces Table 3 through its own server.
        let replica = Server::start(replica_engine, &ephemeral()).unwrap();
        let mut client = KsjqClient::connect(replica.addr()).unwrap();
        let rows = client
            .query(&crate::protocol::PlanSpec::new("outbound", "inbound").k(7))
            .unwrap();
        assert_eq!(rows.pairs, vec![(0, 2), (2, 0), (4, 4), (5, 5)]);
        client.close().unwrap();
        replica.stop().unwrap();
        primary.stop().unwrap();
    }

    #[test]
    fn lagging_replica_resyncs_on_epoch_drift() {
        let primary_engine = Engine::new();
        let pf = paper_flights(false);
        let out_n = pf.outbound.n();
        primary_engine.register("outbound", pf.outbound).unwrap();
        primary_engine.register("inbound", pf.inbound).unwrap();
        let primary = Server::start(primary_engine, &ephemeral()).unwrap();

        let replica_engine = Engine::new();
        let (epoch, _) = sync_from(
            &replica_engine,
            &primary.addr().to_string(),
            &ConnectOptions::all(Duration::from_secs(5)),
            3,
            11,
        )
        .unwrap();

        // In step with the primary: the epoch probe is a no-op.
        let mut client = KsjqClient::connect(primary.addr()).unwrap();
        assert!(resync_if_stale(&replica_engine, &mut client, epoch)
            .unwrap()
            .is_none());

        // The primary takes an APPEND this replica never saw; the next
        // probe notices the epoch drift and re-clones.
        client.append_rows("outbound", "ZRH,1,2,3,4").unwrap();
        let (e2, names) = resync_if_stale(&replica_engine, &mut client, epoch)
            .unwrap()
            .expect("epoch moved, so the replica must re-clone");
        assert!(e2 > epoch);
        assert_eq!(names, vec!["inbound".to_owned(), "outbound".to_owned()]);
        assert_eq!(
            replica_engine.catalog().get("outbound").unwrap().n(),
            out_n + 1
        );

        // And it settles: once caught up, probing is a no-op again.
        assert!(resync_if_stale(&replica_engine, &mut client, e2)
            .unwrap()
            .is_none());
        client.close().unwrap();
        primary.stop().unwrap();
    }

    #[test]
    fn cloned_epoch_matches_what_the_primary_serves() {
        // The epoch handshake: the epoch `sync_from` hands back must be
        // one the primary actually reports for the cloned state — a
        // replica that fed a mid-clone epoch to `resync_if_stale` would
        // either miss a delta forever or re-clone on every poll.
        let primary_engine = Engine::new();
        let pf = paper_flights(false);
        primary_engine.register("outbound", pf.outbound).unwrap();
        primary_engine.register("inbound", pf.inbound).unwrap();
        let primary = Server::start(primary_engine, &ephemeral()).unwrap();

        let replica_engine = Engine::new();
        let (epoch, _) = sync_from(
            &replica_engine,
            &primary.addr().to_string(),
            &ConnectOptions::all(Duration::from_secs(5)),
            3,
            13,
        )
        .unwrap();
        let mut client = KsjqClient::connect(primary.addr()).unwrap();
        assert_eq!(client.stats().unwrap().catalog_epoch, epoch);
        client.close().unwrap();
        primary.stop().unwrap();
    }

    #[test]
    fn recovering_server_refuses_reads_with_a_stable_code() {
        // While a replica re-clones, its front end must refuse queries
        // with `ERR recovering` — never serve the half-replaced catalog.
        let engine = Engine::new();
        let pf = paper_flights(false);
        engine.register("outbound", pf.outbound).unwrap();
        engine.register("inbound", pf.inbound).unwrap();
        let server = Server::start(engine, &ephemeral()).unwrap();
        let handle = server.handle();

        let mut client = KsjqClient::connect(server.addr()).unwrap();
        let plan = crate::protocol::PlanSpec::new("outbound", "inbound").k(7);

        handle.set_recovering(true);
        let err = client.query(&plan).unwrap_err();
        assert_eq!(err.code(), Some(crate::protocol::ErrorCode::Recovering));
        assert!(err.is_transient(), "recovering must invite a retry");
        // STATS stays reachable so operators can watch the recovery.
        assert!(client.stats().is_ok());

        handle.set_recovering(false);
        assert_eq!(
            client.query(&plan).unwrap().pairs,
            vec![(0, 2), (2, 0), (4, 4), (5, 5)]
        );
        client.close().unwrap();
        server.stop().unwrap();
    }

    #[test]
    fn sync_from_retries_until_primary_appears() {
        // Nothing listens on this address: every attempt is a transport
        // failure, so all three attempts burn before the error surfaces.
        let engine = Engine::new();
        let err = sync_from(
            &engine,
            "127.0.0.1:1",
            &ConnectOptions::all(Duration::from_millis(50)),
            3,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "got {err}");
    }
}
