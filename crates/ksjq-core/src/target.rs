//! Target sets (paper Def. 5 + `Augment`, generalised soundly to
//! aggregates).
//!
//! For a candidate joined tuple `t′ = u′ ⋈ v′`, any dominating joined
//! tuple `t = u ⋈ v` must satisfy, by attribute counting,
//!
//! ```text
//! |{local i of R1 : u_i ≤ u′_i}| ≥ k″1    (and symmetrically for v)
//! ```
//!
//! because the right leg can contribute at most `l2` local positions and
//! `a` aggregate positions to the `≥ k` better-or-equal requirement. The
//! **target set** `τ(u′)` is the set of tuples passing this filter.
//!
//! At `a = 0` this is exactly the paper's machinery: for `u′ ∈ SS`, a
//! tuple with `≥ k′1` better-or-equal positions and any strictly-better
//! position would k′1-dominate `u′` (contradiction), so τ reduces to the
//! paper's *equal-shares* `Augment` set; for `u′ ∈ SN` it is precisely
//! `dominators(u′) ∪ Augment(u′)` of Algorithm 3. With aggregates the
//! paper's equal-shares set is **incomplete** — the other leg can repair an
//! aggregate position, so a dominator's leg may share no values at all —
//! which is why this generalisation filters on `≤` over local attributes
//! only (see DESIGN.md §4.5 and `tests/aggregate_semantics.rs`).
//!
//! Verification consumers receive target sets **ordered by ascending
//! attribute sum** (the SFS presorting idea of Chomicki et al., ICDE 2003,
//! also used by `ksjq-skyline`'s [`sfs`](ksjq_skyline::sfs) module): the
//! sum of normalised attributes is a monotone score, so legs of actual
//! dominators cluster at the front and the split-side kernel's `any`-scan
//! exits early. Membership is unchanged — only the iteration order.

use ksjq_relation::{dom_counts_block, Relation};

/// Number of positions (restricted to `locals`) where `x ≤ x_prime`,
/// with early abandonment once `m` is unreachable.
#[inline]
fn local_le_at_least(x: &[f64], x_prime: &[f64], locals: &[usize], m: usize) -> bool {
    let l = locals.len();
    if m > l {
        return false;
    }
    let mut le = 0usize;
    for (i, &attr) in locals.iter().enumerate() {
        le += (x[attr] <= x_prime[attr]) as usize;
        if le + (l - i - 1) < m {
            return false;
        }
    }
    le >= m
}

/// Compute the target set `τ(x′) = {x : |{local i : x_i ≤ x′_i}| ≥ k_pp}`.
///
/// Always contains `x′` itself (`k_pp ≤ l` for every valid `k`). Returned
/// ids are ascending; callers that scan the set for dominators should
/// reorder it with [`order_by_attr_sum`].
///
/// When the locals are the full attribute range (`a = 0`) the scan runs
/// through the blocked kernel [`dom_counts_block`] over the relation's
/// contiguous storage instead of per-row early-abandon loops — the block
/// form vectorises and wins on the wide scans this function does.
pub fn target_set(rel: &Relation, locals: &[usize], x_prime: u32, k_pp: usize) -> Vec<u32> {
    let prow = rel.row_at(x_prime as usize);
    let d = rel.d();
    let mut out = Vec::new();
    if locals.len() == d && locals.iter().enumerate().all(|(i, &attr)| attr == i) && d > 0 {
        let mut counts = Vec::new();
        dom_counts_block(rel.values(), prow, &mut counts);
        for (t, c) in counts.iter().enumerate() {
            if c.le as usize >= k_pp {
                out.push(t as u32);
            }
        }
        return out;
    }
    for t in 0..rel.n() as u32 {
        if local_le_at_least(rel.row_at(t as usize), prow, locals, k_pp) {
            out.push(t);
        }
    }
    out
}

/// The attribute sums of every tuple — the SFS presort score. NaN-free
/// relations yield NaN-free scores; ordering uses [`f64::total_cmp`]
/// regardless, so hostile inputs cannot panic the sort.
pub fn attr_sums(rel: &Relation) -> Vec<f64> {
    rel.rows().map(|(_, row)| row.iter().sum()).collect()
}

/// Order `ids` so likely dominators come first: ascending score, ties
/// broken by ascending id (deterministic).
pub fn order_by_attr_sum(ids: &mut [u32], scores: &[f64]) {
    ids.sort_unstable_by(|&a, &b| {
        scores[a as usize]
            .total_cmp(&scores[b as usize])
            .then(a.cmp(&b))
    });
}

/// Lazily computed, memoised target sets for one relation, pre-ordered by
/// attribute sum for early-exit scans.
///
/// The grouping algorithm touches targets of only the tuples that actually
/// appear in "likely"/"may be" candidate pairs, so computing them on
/// demand avoids the dominator-based algorithm's up-front cost (the paper's
/// trade-off between Algorithms 2 and 3).
#[derive(Debug)]
pub struct TargetCache<'a> {
    rel: &'a Relation,
    locals: Vec<usize>,
    k_pp: usize,
    /// Attribute-sum scores, computed once per cache (`O(n·d)` — noise
    /// against the scans the ordering then accelerates).
    scores: Vec<f64>,
    sets: Vec<Option<Vec<u32>>>,
}

impl<'a> TargetCache<'a> {
    /// A cache over `rel`'s local attributes with threshold `k_pp`.
    pub fn new(rel: &'a Relation, k_pp: usize) -> Self {
        TargetCache {
            rel,
            locals: rel.schema().local_indices().collect(),
            k_pp,
            scores: attr_sums(rel),
            sets: vec![None; rel.n()],
        }
    }

    /// The target set of `x_prime` ordered by ascending attribute sum,
    /// computing (and memoising) it on first access.
    pub fn get(&mut self, x_prime: u32) -> &[u32] {
        let slot = &mut self.sets[x_prime as usize];
        if slot.is_none() {
            let mut set = target_set(self.rel, &self.locals, x_prime, self.k_pp);
            order_by_attr_sum(&mut set, &self.scores);
            *slot = Some(set);
        }
        slot.as_deref().expect("just filled")
    }

    /// How many target sets were actually computed (for stats/tests).
    pub fn computed(&self) -> usize {
        self.sets.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksjq_relation::Schema;

    fn rel(rows: &[Vec<f64>]) -> Relation {
        let mut b = Relation::builder(Schema::uniform(rows[0].len()).unwrap());
        for r in rows {
            b.add(r).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn contains_self_and_dominators_and_shares() {
        let r = rel(&[
            vec![5.0, 5.0, 5.0], // 0: the probe
            vec![4.0, 4.0, 9.0], // 1: ≤ in two positions
            vec![5.0, 5.0, 9.0], // 2: equal in two positions
            vec![9.0, 9.0, 9.0], // 3: ≤ in none
            vec![1.0, 9.0, 9.0], // 4: ≤ in one position
        ]);
        let locals: Vec<usize> = r.schema().local_indices().collect();
        assert_eq!(target_set(&r, &locals, 0, 2), vec![0, 1, 2]);
        assert_eq!(target_set(&r, &locals, 0, 1), vec![0, 1, 2, 4]);
        assert_eq!(target_set(&r, &locals, 0, 3), vec![0]);
    }

    #[test]
    fn respects_local_subset() {
        // Attribute 0 is aggregated: only attributes 1, 2 count.
        let schema = Schema::builder()
            .agg("c", ksjq_relation::Preference::Min, 0)
            .local("x", ksjq_relation::Preference::Min)
            .local("y", ksjq_relation::Preference::Min)
            .build()
            .unwrap();
        let mut b = Relation::builder(schema);
        b.add_grouped(0, &[100.0, 5.0, 5.0]).unwrap(); // probe
        b.add_grouped(0, &[0.0, 9.0, 9.0]).unwrap(); // great agg, bad locals
        b.add_grouped(0, &[999.0, 5.0, 9.0]).unwrap(); // one local ≤
        let r = b.build().unwrap();
        let locals: Vec<usize> = r.schema().local_indices().collect();
        assert_eq!(locals, vec![1, 2]);
        assert_eq!(target_set(&r, &locals, 0, 1), vec![0, 2]);
    }

    /// The blocked fast path (contiguous locals) and the indexed slow path
    /// must select identical members.
    #[test]
    fn block_fast_path_matches_slow_path() {
        let mut state = 5150u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|_| (0..4).map(|_| next(9) as f64).collect())
            .collect();
        let r = rel(&rows);
        let locals: Vec<usize> = r.schema().local_indices().collect();
        assert_eq!(locals, vec![0, 1, 2, 3], "fast-path precondition");
        for probe in [0u32, 17, 119] {
            for k_pp in 1..=4 {
                let fast = target_set(&r, &locals, probe, k_pp);
                // Slow-path oracle.
                let slow: Vec<u32> = (0..r.n() as u32)
                    .filter(|&t| {
                        local_le_at_least(
                            r.row_at(t as usize),
                            r.row_at(probe as usize),
                            &locals,
                            k_pp,
                        )
                    })
                    .collect();
                assert_eq!(fast, slow, "probe {probe} k_pp {k_pp}");
            }
        }
    }

    #[test]
    fn cache_memoises() {
        let r = rel(&[vec![1.0], vec![2.0], vec![3.0]]);
        let mut cache = TargetCache::new(&r, 1);
        assert_eq!(cache.computed(), 0);
        assert_eq!(cache.get(1), &[0, 1]);
        assert_eq!(cache.get(1), &[0, 1]);
        assert_eq!(cache.computed(), 1);
        assert_eq!(cache.get(0), &[0]);
        assert_eq!(cache.computed(), 2);
    }

    #[test]
    fn cache_orders_by_attribute_sum() {
        // Probe 3 = (5,5); targets include the heavier (6,5) and the
        // lighter (1,1): the cache must yield them sum-ascending, not
        // id-ascending.
        let r = rel(&[
            vec![6.0, 5.0], // id 0, sum 11
            vec![1.0, 1.0], // id 1, sum 2
            vec![5.0, 5.0], // id 2, sum 10 (ties the probe's values)
            vec![5.0, 5.0], // id 3, sum 10: the probe
        ]);
        let mut cache = TargetCache::new(&r, 1);
        assert_eq!(cache.get(3), &[1, 2, 3, 0]);
    }

    #[test]
    fn ordering_is_total_on_hostile_scores() {
        // total_cmp tolerates NaN scores without panicking (MatrixView-fed
        // paths can smuggle NaN past the Relation builder's checks).
        let mut ids = vec![0u32, 1, 2, 3];
        let scores = vec![f64::NAN, 1.0, f64::NAN, 0.0];
        order_by_attr_sum(&mut ids, &scores);
        assert_eq!(&ids[..2], &[3, 1], "finite scores sort first");
        assert_eq!(&ids[2..], &[0, 2], "NaN ties break by id");
    }
}
