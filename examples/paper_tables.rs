//! Reproduces the paper's worked example end to end: Tables 1–3
//! (plain KSJQ, k = 7) and Table 6 (aggregate KSJQ, k = 6).
//!
//! ```sh
//! cargo run --example paper_tables
//! ```

use ksjq::core::{classify, validate_k};
use ksjq::datagen::paper_tables::{TABLE1_FNO, TABLE2_FNO};
use ksjq::prelude::*;

fn main() -> CoreResult<()> {
    let pf = ksjq::datagen::paper_flights(false);

    // ----- Tables 1 & 2: base relations with categorisation ------------
    let cx = JoinContext::new(&pf.outbound, &pf.inbound, JoinSpec::Equality, &[])?;
    let params = validate_k(&cx, 7)?;
    let cls = classify(&cx, &params, KdomAlgo::Tsa);

    println!("Table 1: flights from city A (k'1 = {})", params.k1_prime);
    println!(
        "{:>4} {:>5} {:>6} {:>4} {:>4} {:>4}  category",
        "fno", "dest", "cost", "dur", "rtg", "amn"
    );
    for (i, fno) in TABLE1_FNO.iter().enumerate() {
        let t = TupleId(i as u32);
        let row = pf.outbound.raw_row(t);
        let city = pf.cities.decode(pf.outbound.group_id(t).unwrap()).unwrap();
        println!(
            "{:>4} {:>5} {:>6.0} {:>4.1} {:>4.0} {:>4.0}  {}1",
            fno, city, row[0], row[1], row[2], row[3], cls.left[i]
        );
    }

    println!("\nTable 2: flights to city B (k'2 = {})", params.k2_prime);
    println!(
        "{:>4} {:>5} {:>6} {:>4} {:>4} {:>4}  category",
        "fno", "src", "cost", "dur", "rtg", "amn"
    );
    for (i, fno) in TABLE2_FNO.iter().enumerate() {
        let t = TupleId(i as u32);
        let row = pf.inbound.raw_row(t);
        let city = pf.cities.decode(pf.inbound.group_id(t).unwrap()).unwrap();
        println!(
            "{:>4} {:>5} {:>6.0} {:>4.1} {:>4.0} {:>4.0}  {}2",
            fno, city, row[0], row[1], row[2], row[3], cls.right[i]
        );
    }

    // ----- Table 3: the joined relation at k = 7 ------------------------
    let out = ksjq_grouping(&cx, 7, &Config::default())?;
    println!(
        "\nTable 3: joined relation (k = 7), {} combinations",
        cx.count_pairs()
    );
    println!(
        "{:>9} {:>5}  {:>22}  skyline",
        "pair", "via", "categorisation"
    );
    cx.for_each_pair(|u, v| {
        let city = pf
            .cities
            .decode(pf.outbound.group_id(TupleId(u)).unwrap())
            .unwrap();
        let fate = format!("{}1 x {}2", cls.left[u as usize], cls.right[v as usize]);
        let sky = if out.contains(u, v) { "yes" } else { "no" };
        println!(
            "{:>9} {:>5}  {:>22}  {}",
            format!("({},{})", TABLE1_FNO[u as usize], TABLE2_FNO[v as usize]),
            city,
            fate,
            sky
        );
    });

    // ----- Table 6: aggregate variant at k = 6 ---------------------------
    let pfa = ksjq::datagen::paper_flights(true);
    let cxa = JoinContext::new(
        &pfa.outbound,
        &pfa.inbound,
        JoinSpec::Equality,
        &[AggFunc::Sum],
    )?;
    let outa = ksjq_grouping(&cxa, 6, &Config::default())?;
    println!("\nTable 6: aggregated cost (k = 6, a = 1), skyline combinations:");
    for &(u, v) in &outa.pairs {
        let row = cxa.joined_row(u.0, v.0);
        let names = cxa.joined_attr_names();
        let cost = names.iter().position(|n| n == "sum(cost)").unwrap();
        println!(
            "  ({},{})  total cost {:.0}",
            TABLE1_FNO[u.idx()],
            TABLE2_FNO[v.idx()],
            row[cost]
        );
    }

    println!("\nNote: flight 18 prints as SN1 (Table 1 of the paper says SS1, but");
    println!("flight 16 3-dominates it — see DESIGN.md); flight 28's amenities use");
    println!("the Table-3 value 39 (Table 2's 37 is a typo). The final skyline");
    println!("matches the paper exactly: (11,23), (13,21), (15,25), (16,26).");
    Ok(())
}
