//! Presorted Two-Scan Algorithm (TSA with a monotone presort).
//!
//! Chan et al. observe that processing tuples in ascending attribute-sum
//! order helps the window algorithms: small-sum tuples are statistically
//! strong dominators, so the candidate window converges early and scan-1
//! evictions become rare. Unlike the full-dominance SFS (where the sort
//! makes a *second* scan unnecessary), k-dominance is not monotone in the
//! sum — a k-dominator can have a larger sum than its victim — so the
//! verification scan is still required; the presort is purely a
//! performance heuristic and the result is identical to [`kdom_tsa`].
//!
//! The `kernel` benchmark's ablation group measures what the presort buys.

use crate::kdominant::tsa::kdom_tsa;
use crate::RowAccess;

/// Compute the k-dominant skyline of `members`, presorting by attribute
/// sum. Returns surviving ids in the order they appear in `members`.
pub fn kdom_tsa_presorted<R: RowAccess>(rows: &R, members: &[u32], k: usize) -> Vec<u32> {
    let mut order: Vec<u32> = members.to_vec();
    let score = |id: u32| rows.row(id).iter().sum::<f64>();
    order.sort_by(|&a, &b| score(a).partial_cmp(&score(b)).unwrap().then(a.cmp(&b)));
    let mut result = kdom_tsa(rows, &order, k);
    // kdom_tsa returns the survivors in `order`'s sequence; restore the
    // caller's member order.
    let pos: std::collections::HashMap<u32, usize> =
        members.iter().enumerate().map(|(i, &m)| (m, i)).collect();
    result.sort_by_key(|m| pos[m]);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdominant::naive::kdom_naive;
    use crate::MatrixView;

    fn pseudorandom(n: usize, d: usize, modulus: u64, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n * d)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % modulus) as f64
            })
            .collect()
    }

    #[test]
    fn matches_naive() {
        for seed in [5u64, 17, 23] {
            let data = pseudorandom(140, 5, 9, seed);
            let m = MatrixView::new(5, &data);
            let all: Vec<u32> = (0..140).collect();
            for k in 2..=5 {
                assert_eq!(
                    kdom_tsa_presorted(&m, &all, k),
                    kdom_naive(&m, &all, k),
                    "seed={seed} k={k}"
                );
            }
        }
    }

    #[test]
    fn preserves_member_order() {
        // Incomparable tuples, deliberately shuffled member order.
        let data = [1.0, 9.0, 9.0, 1.0, 5.0, 5.0];
        let m = MatrixView::new(2, &data);
        assert_eq!(kdom_tsa_presorted(&m, &[2, 0, 1], 2), vec![2, 0, 1]);
    }

    #[test]
    fn empty_and_duplicates() {
        let m = MatrixView::new(2, &[]);
        assert!(kdom_tsa_presorted(&m, &[], 1).is_empty());
        let data = [3.0, 3.0, 3.0, 3.0];
        let m = MatrixView::new(2, &data);
        assert_eq!(kdom_tsa_presorted(&m, &[0, 1], 1), vec![0, 1]);
    }
}
