//! Property-based tests (proptest) over the whole stack: dominance
//! algebra, Lemma 1, Theorems 1–4 as runtime invariants, classification
//! partition laws, the Unique Value Property (Theorem 5), and full
//! cross-algorithm equivalence on arbitrary inputs.

mod common;

use ksjq::core::{classify, validate_k, Category};
use ksjq::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A small grouped relation: n in 1..=24, d in 2..=4, tight value domain
/// (many ties).
fn arb_relation(d: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec((0u64..3, prop::collection::vec(0u32..6, d)), 1..=24).prop_map(
        move |tuples| {
            let mut b = Relation::builder(Schema::uniform(d).unwrap());
            for (g, row) in tuples {
                let row: Vec<f64> = row.into_iter().map(|v| v as f64).collect();
                b.add_grouped(g, &row).unwrap();
            }
            b.build().unwrap()
        },
    )
}

fn arb_agg_relation(a: usize, l: usize) -> impl Strategy<Value = Relation> {
    let d = a + l;
    prop::collection::vec((0u64..3, prop::collection::vec(0u32..6, d)), 1..=20).prop_map(
        move |tuples| {
            let mut b = Relation::builder(Schema::uniform_agg(a, l).unwrap());
            for (g, row) in tuples {
                let row: Vec<f64> = row.into_iter().map(|v| v as f64).collect();
                b.add_grouped(g, &row).unwrap();
            }
            b.build().unwrap()
        },
    )
}

fn arb_row(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0u32..8).prop_map(|v| v as f64), d)
}

// ---------------------------------------------------------------------
// Dominance kernel algebra
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn full_dominance_is_irreflexive_and_asymmetric(u in arb_row(4), v in arb_row(4)) {
        prop_assert!(!ksjq::relation::dominates(&u, &u));
        if ksjq::relation::dominates(&u, &v) {
            prop_assert!(!ksjq::relation::dominates(&v, &u));
        }
    }

    #[test]
    fn k_dominance_monotone_in_k(u in arb_row(5), v in arb_row(5)) {
        for k in 2..=5usize {
            if ksjq::relation::k_dominates(&u, &v, k) {
                prop_assert!(ksjq::relation::k_dominates(&u, &v, k - 1),
                    "{u:?} {v:?} k={k}");
            }
        }
    }

    #[test]
    fn k_dominance_agrees_with_counts(u in arb_row(4), v in arb_row(4)) {
        let c = ksjq::relation::dom_counts(&u, &v);
        for k in 1..=4usize {
            prop_assert_eq!(
                ksjq::relation::k_dominates(&u, &v, k),
                c.le as usize >= k && c.lt >= 1
            );
        }
        prop_assert_eq!(ksjq::relation::dominates(&u, &v), c.dominates(4));
    }

    #[test]
    fn full_dominance_transitive(u in arb_row(3), v in arb_row(3), w in arb_row(3)) {
        use ksjq::relation::dominates;
        if dominates(&u, &v) && dominates(&v, &w) {
            prop_assert!(dominates(&u, &w));
        }
    }
}

// ---------------------------------------------------------------------
// Single-relation skyline algorithms agree
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn skyline_algorithms_agree(rel in arb_relation(3)) {
        let all: Vec<u32> = (0..rel.n() as u32).collect();
        let bnl = ksjq::skyline::bnl::skyline_bnl(&rel, &all);
        let sfs = ksjq::skyline::sfs::skyline_sfs(&rel, &all);
        prop_assert_eq!(&bnl, &sfs);
        // Full skyline == d-dominant skyline.
        let mut kdom = ksjq::skyline::k_dominant_skyline(&rel, &all, rel.d(), KdomAlgo::Naive);
        kdom.sort_unstable();
        prop_assert_eq!(&bnl, &kdom);
    }

    #[test]
    fn kdom_algorithms_agree(rel in arb_relation(4), k in 1usize..=4) {
        let all: Vec<u32> = (0..rel.n() as u32).collect();
        let naive = ksjq::skyline::k_dominant_skyline(&rel, &all, k, KdomAlgo::Naive);
        let osa = ksjq::skyline::k_dominant_skyline(&rel, &all, k, KdomAlgo::Osa);
        let tsa = ksjq::skyline::k_dominant_skyline(&rel, &all, k, KdomAlgo::Tsa);
        prop_assert_eq!(&naive, &osa);
        prop_assert_eq!(&naive, &tsa);
    }

    #[test]
    fn lemma_1_skyline_grows_with_k(rel in arb_relation(4)) {
        let all: Vec<u32> = (0..rel.n() as u32).collect();
        let mut prev: Vec<u32> = Vec::new();
        for k in 1..=4 {
            let cur = ksjq::skyline::k_dominant_skyline(&rel, &all, k, KdomAlgo::Naive);
            for p in &prev {
                prop_assert!(cur.contains(p), "k={k} lost {p}");
            }
            prev = cur;
        }
    }
}

// ---------------------------------------------------------------------
// KSJQ invariants over random joins
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The heart of the reproduction: all three KSJQ algorithms return the
    /// identical skyline, and the skyline equals the brute-force answer on
    /// the materialised join.
    #[test]
    fn ksjq_equals_brute_force(
        r1 in arb_relation(3),
        r2 in arb_relation(3),
        k_off in 0usize..=2,
    ) {
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let (lo, hi) = k_range(&cx);
        let k = (lo + k_off).min(hi);
        let cfg = Config::default();

        let naive = ksjq_naive(&cx, k, &cfg).unwrap();
        let grouping = ksjq_grouping(&cx, k, &cfg).unwrap();
        let dom = ksjq_dominator_based(&cx, k, &cfg).unwrap();
        prop_assert_eq!(&naive.pairs, &grouping.pairs);
        prop_assert_eq!(&naive.pairs, &dom.pairs);

        // Brute force over the materialised join.
        let m = cx.materialize();
        let mut expected: Vec<(u32, u32)> = Vec::new();
        for i in 0..m.n() {
            let dominated = (0..m.n()).any(|j| {
                j != i && ksjq::relation::k_dominates(m.row(j), m.row(i), k)
            });
            if !dominated {
                expected.push(m.pairs[i]);
            }
        }
        expected.sort_unstable();
        let got: Vec<(u32, u32)> =
            naive.pairs.iter().map(|(u, v)| (u.0, v.0)).collect();
        prop_assert_eq!(got, expected);
    }

    /// Theorems 1–4 as runtime invariants (a = 0, where Theorem 3 holds).
    #[test]
    fn fate_table_invariants(r1 in arb_relation(3), r2 in arb_relation(3)) {
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let (lo, hi) = k_range(&cx);
        let k = (lo + 1).min(hi);
        let p = validate_k(&cx, k).unwrap();
        let cls = classify(&cx, &p, KdomAlgo::Naive);
        let out = ksjq_naive(&cx, k, &Config::default()).unwrap();
        let mut violation = None;
        cx.for_each_pair(|u, v| {
            let is_sky = out.contains(u, v);
            match (cls.left[u as usize], cls.right[v as usize]) {
                (Category::SS, Category::SS) if !is_sky => {
                    violation = Some(format!("Th.3: SS⋈SS ({u},{v}) not skyline"));
                }
                (Category::NN, _) | (_, Category::NN) if is_sky => {
                    violation = Some(format!("Th.4: NN pair ({u},{v}) in skyline"));
                }
                _ => {}
            }
        });
        prop_assert!(violation.is_none(), "{}", violation.unwrap());
    }

    /// Classification laws: SS tuples are exactly the global k′-dominant
    /// skyline; every NN tuple has a covering dominator.
    #[test]
    fn classification_partition_laws(r1 in arb_relation(3), r2 in arb_relation(3)) {
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let (lo, hi) = k_range(&cx);
        let k = lo.min(hi);
        let p = validate_k(&cx, k).unwrap();
        let cls = classify(&cx, &p, KdomAlgo::Tsa);
        let all: Vec<u32> = (0..r1.n() as u32).collect();
        let global = ksjq::skyline::k_dominant_skyline(&r1, &all, p.k1_prime, KdomAlgo::Naive);
        for t in 0..r1.n() as u32 {
            let in_global = global.contains(&t);
            prop_assert_eq!(cls.left[t as usize] == Category::SS, in_global, "tuple {}", t);
            if cls.left[t as usize] == Category::NN {
                let covered = cx
                    .left_coverers(t)
                    .iter()
                    .any(|&w| w != t && ksjq::relation::k_dominates(
                        r1.row_at(w as usize), r1.row_at(t as usize), p.k1_prime));
                prop_assert!(covered, "NN tuple {} lacks covering dominator", t);
            }
        }
    }

    /// Execution-mode invariants: progressive delivery and parallel
    /// verification produce exactly the batch answer on arbitrary inputs.
    #[test]
    fn execution_modes_agree(r1 in arb_relation(3), r2 in arb_relation(3)) {
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let (lo, hi) = k_range(&cx);
        let k = (lo + 1).min(hi);
        let batch = ksjq_grouping(&cx, k, &Config::default()).unwrap();
        let mut streamed: Vec<(u32, u32)> = Vec::new();
        let progressive =
            ksjq_grouping_progressive(&cx, k, &Config::default(), |u, v| streamed.push((u, v)))
                .unwrap();
        prop_assert_eq!(&progressive.pairs, &batch.pairs);
        streamed.sort_unstable();
        let streamed_pairs: Vec<_> =
            streamed.iter().map(|&(u, v)| (TupleId(u), TupleId(v))).collect();
        prop_assert_eq!(&streamed_pairs, &batch.pairs);
        let parallel = ksjq_grouping(&cx, k, &Config::with_threads(3)).unwrap();
        prop_assert_eq!(&parallel.pairs, &batch.pairs);
    }

    /// Aggregate joins: the three algorithms agree for a = 1 (where the
    /// paper's Theorem 3 still holds) on arbitrary data.
    #[test]
    fn aggregate_equivalence(r1 in arb_agg_relation(1, 2), r2 in arb_agg_relation(1, 2)) {
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum]).unwrap();
        let (lo, hi) = k_range(&cx);
        let cfg = Config::default();
        for k in lo..=hi {
            let naive = ksjq_naive(&cx, k, &cfg).unwrap();
            let grouping = ksjq_grouping(&cx, k, &cfg).unwrap();
            let dom = ksjq_dominator_based(&cx, k, &cfg).unwrap();
            prop_assert_eq!(&naive.pairs, &grouping.pairs, "k={}", k);
            prop_assert_eq!(&naive.pairs, &dom.pairs, "k={}", k);
        }
    }
}

// ---------------------------------------------------------------------
// The split-side verification kernel
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole equivalence, at the primitive level: merging the
    /// per-segment counts (left locals via `dom_counts_partial`, right
    /// locals via `dom_counts_partial`, aggregates via `fill_aggs` +
    /// `dom_counts`) must reproduce `dom_counts` on the `cx.fill`-
    /// materialised joined row, for arbitrary data and arbitrary
    /// dominator/candidate pairs.
    #[test]
    fn split_counts_equal_materialized_counts(
        r1 in arb_agg_relation(1, 2),
        r2 in arb_agg_relation(1, 2),
    ) {
        use ksjq::relation::{dom_counts, dom_counts_partial};
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum]).unwrap();
        let (l1, l2, a) = (cx.l1(), cx.l2(), cx.a());
        let m = cx.materialize();
        let mut joined = vec![0.0; cx.d_joined()];
        let mut aggs = vec![0.0; a];
        // Every joined tuple as dominator against every joined tuple as
        // candidate (bounded: the generators keep n small).
        for i in 0..m.n().min(12) {
            let (u, v) = m.pairs[i];
            for j in 0..m.n().min(12) {
                let cand = m.row(j);
                let lc = dom_counts_partial(
                    r1.row_at(u as usize), cx.left_local_attrs(), &cand[..l1]);
                let rc = dom_counts_partial(
                    r2.row_at(v as usize), cx.right_local_attrs(), &cand[l1..l1 + l2]);
                cx.fill_aggs(u, v, &mut aggs);
                let ac = dom_counts(&aggs, &cand[l1 + l2..]);
                cx.fill(u, v, &mut joined);
                prop_assert_eq!(
                    lc.merge(rc).merge(ac),
                    dom_counts(&joined, cand),
                    "dominator ({},{}) vs candidate {}", u, v, j
                );
            }
        }
    }

    /// The kernel's verdicts — with its SFS-ordered target sets, left-half
    /// early abandon and partner memo — must equal the pre-split serial
    /// path: id-ordered target sets, `cx.fill` into scratch, `k_dominates`
    /// on the materialised row.
    #[test]
    fn ordered_split_verification_equals_materialized_verification(
        r1 in arb_agg_relation(1, 2),
        r2 in arb_agg_relation(1, 2),
        k_off in 0usize..=2,
    ) {
        use ksjq::core::{target_set, JoinedCheck, TargetCache};
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum]).unwrap();
        let (lo, hi) = k_range(&cx);
        let k = (lo + k_off).min(hi);
        let p = validate_k(&cx, k).unwrap();
        let llocals: Vec<usize> = r1.schema().local_indices().collect();
        let rlocals: Vec<usize> = r2.schema().local_indices().collect();
        let mut ltargets = TargetCache::new(&r1, p.k1_pp);
        let mut rtargets = TargetCache::new(&r2, p.k2_pp);
        let mut chk = JoinedCheck::new(&cx, k);
        let mut scratch = vec![0.0; cx.d_joined()];
        let m = cx.materialize();
        for i in 0..m.n().min(16) {
            let (u, v) = m.pairs[i];
            let cand = m.row(i).to_vec();
            // Pre-split one-sided left check: τ(u) in ascending id order,
            // every partner pair materialised.
            let mut expected = false;
            for &tu in &target_set(&r1, &llocals, u, p.k1_pp) {
                for &tv in cx.right_partners(tu) {
                    cx.fill(tu, tv, &mut scratch);
                    expected |= ksjq::relation::k_dominates(&scratch, &cand, k);
                }
            }
            prop_assert_eq!(
                chk.dominated_via_left(ltargets.get(u), &cand), expected,
                "via_left candidate ({},{}) k={}", u, v, k);
            // And the symmetric right check.
            let mut expected_r = false;
            for &tv in &target_set(&r2, &rlocals, v, p.k2_pp) {
                for &tu in cx.left_partners(tv) {
                    cx.fill(tu, tv, &mut scratch);
                    expected_r |= ksjq::relation::k_dominates(&scratch, &cand, k);
                }
            }
            prop_assert_eq!(
                chk.dominated_via_right(rtargets.get(v), &cand), expected_r,
                "via_right candidate ({},{}) k={}", u, v, k);
        }
    }

    /// Parallel classification + parallel verification + the split kernel,
    /// driven end to end over synthetic generator specs (the shapes the
    /// figures and the serving layer run): every execution mode returns
    /// the naive algorithm's answer.
    #[test]
    fn synthetic_specs_all_execution_modes_agree(
        n in 10usize..50,
        d in 2usize..5,
        a in 0usize..3,
        g in 1usize..5,
        seed in 0u64..500,
        k_off in 0usize..3,
        distribution in 0usize..3,
    ) {
        use ksjq::datagen::{DataType, DatasetSpec};
        let a = a.min(d - 1);
        let data_type = match distribution {
            0 => DataType::Independent,
            1 => DataType::Correlated,
            _ => DataType::AntiCorrelated,
        };
        let spec = DatasetSpec {
            n, agg_attrs: a, local_attrs: d - a, groups: g, data_type, seed,
        };
        let r1 = spec.generate();
        let r2 = DatasetSpec { seed: seed + 1000, ..spec }.generate();
        let funcs = vec![AggFunc::Sum; a];
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &funcs).unwrap();
        let (lo, hi) = k_range(&cx);
        let k = (lo + k_off).min(hi);
        let naive = ksjq_naive(&cx, k, &Config::default()).unwrap();
        let serial = ksjq_grouping(&cx, k, &Config::default()).unwrap();
        let threaded = ksjq_grouping(&cx, k, &Config::with_threads(4)).unwrap();
        let dom = ksjq_dominator_based(&cx, k, &Config::default()).unwrap();
        prop_assert_eq!(&naive.pairs, &serial.pairs, "serial grouping, k={}", k);
        prop_assert_eq!(&naive.pairs, &threaded.pairs, "threaded grouping, k={}", k);
        prop_assert_eq!(&naive.pairs, &dom.pairs, "dominator-based, k={}", k);
        // The kernel counters are thread-count invariant: identical work,
        // different workers.
        prop_assert_eq!(
            serial.stats.counts.dom_tests, threaded.stats.counts.dom_tests, "k={}", k);
        prop_assert_eq!(
            serial.stats.counts.attr_cmps, threaded.stats.counts.attr_cmps, "k={}", k);
    }
}

// ---------------------------------------------------------------------
// The columnar kernels (PR 5)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The columnar primitives must be byte-identical to the row-major
    /// oracles: `dom_counts_block_columnar` row-for-row against
    /// `dom_counts_block` / per-row `dom_counts`, and
    /// `dom_counts_partial_block_columnar` against per-row
    /// `dom_counts_partial` over an arbitrary attribute selection.
    #[test]
    fn columnar_counts_equal_row_major_counts(
        rel in arb_relation(4),
        probe_sel in 0usize..24,
        attr_mask in 1usize..16,
    ) {
        use ksjq::relation::{
            dom_counts, dom_counts_block, dom_counts_block_columnar, dom_counts_partial,
            dom_counts_partial_block_columnar,
        };
        let n = rel.n();
        let probe = rel.row_at(probe_sel % n).to_vec();
        let mut row_major = Vec::new();
        dom_counts_block(rel.values(), &probe, &mut row_major);
        let mut columnar = Vec::new();
        dom_counts_block_columnar(rel.columns(), n, &probe, &mut columnar);
        prop_assert_eq!(&row_major, &columnar);
        for (t, c) in columnar.iter().enumerate() {
            prop_assert_eq!(*c, dom_counts(rel.row_at(t), &probe), "tuple {}", t);
        }
        // Arbitrary non-empty attribute subset for the partial form.
        let attrs: Vec<usize> = (0..4).filter(|i| attr_mask & (1 << i) != 0).collect();
        let seg: Vec<f64> = attrs.iter().map(|&a| probe[a]).collect();
        let mut partial = Vec::new();
        dom_counts_partial_block_columnar(rel.columns(), n, &attrs, &seg, &mut partial);
        prop_assert_eq!(partial.len(), n);
        for (t, c) in partial.iter().enumerate() {
            prop_assert_eq!(
                *c,
                dom_counts_partial(rel.row_at(t), &attrs, &seg),
                "tuple {} attrs {:?}", t, attrs
            );
        }
    }

    /// The columnar target-set scan must select exactly the scalar
    /// oracle's members, for aggregate schemas (interleaved locals) and
    /// every threshold.
    #[test]
    fn columnar_target_set_equals_rowmajor(rel in arb_agg_relation(1, 3), probe_sel in 0usize..20) {
        use ksjq::core::{target_set, target_set_rowmajor};
        let locals: Vec<usize> = rel.schema().local_indices().collect();
        let probe = (probe_sel % rel.n()) as u32;
        for k_pp in 0..=locals.len() + 1 {
            prop_assert_eq!(
                target_set(&rel, &locals, probe, k_pp),
                target_set_rowmajor(&rel, &locals, probe, k_pp),
                "k_pp {}", k_pp
            );
        }
    }

    /// The columnar verifier's verdicts must equal the row-major oracle's
    /// on all three entry points, over arbitrary aggregate joins and
    /// arbitrary target sets.
    #[test]
    fn columnar_check_equals_oracle(
        r1 in arb_agg_relation(1, 2),
        r2 in arb_agg_relation(1, 2),
        k_off in 0usize..=2,
        lmask in 1u32..256,
        rmask in 1u32..256,
    ) {
        use ksjq::core::{ColumnarCheck, JoinedCheck};
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum]).unwrap();
        let (lo, hi) = k_range(&cx);
        let k = (lo + k_off).min(hi);
        let lt: Vec<u32> = (0..r1.n() as u32).filter(|t| lmask & (1 << (t % 8)) != 0).collect();
        let rt: Vec<u32> = (0..r2.n() as u32).filter(|t| rmask & (1 << (t % 8)) != 0).collect();
        let mut oracle = JoinedCheck::new(&cx, k);
        let mut columnar = ColumnarCheck::new(&cx, k);
        let m = cx.materialize();
        for i in 0..m.n().min(16) {
            let cand = m.row(i).to_vec();
            prop_assert_eq!(
                columnar.dominated_via_left(&lt, &cand),
                oracle.dominated_via_left(&lt, &cand),
                "via_left candidate {} k={}", i, k
            );
            prop_assert_eq!(
                columnar.dominated_via_right(&rt, &cand),
                oracle.dominated_via_right(&rt, &cand),
                "via_right candidate {} k={}", i, k
            );
            prop_assert_eq!(
                columnar.dominated_via_both(&lt, &rt, &cand),
                oracle.dominated_via_both(&lt, &rt, &cand),
                "via_both candidate {} k={}", i, k
            );
        }
    }

    /// Dominator-based execution with sharded dominator generation must
    /// be indistinguishable from serial: identical skyline and identical
    /// summed kernel counters for every thread count.
    #[test]
    fn dominator_based_thread_invariant(
        r1 in arb_relation(3),
        r2 in arb_relation(3),
        k_off in 0usize..=2,
        threads in 2usize..=9,
    ) {
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let (lo, hi) = k_range(&cx);
        let k = (lo + k_off).min(hi);
        let serial = ksjq_dominator_based(&cx, k, &Config::default()).unwrap();
        let parallel = ksjq_dominator_based(&cx, k, &Config::with_threads(threads)).unwrap();
        prop_assert_eq!(&serial.pairs, &parallel.pairs, "threads={}", threads);
        prop_assert_eq!(
            serial.stats.counts.dom_tests, parallel.stats.counts.dom_tests);
        prop_assert_eq!(
            serial.stats.counts.attr_cmps, parallel.stats.counts.attr_cmps);
        prop_assert_eq!(
            serial.stats.counts.targets_pruned, parallel.stats.counts.targets_pruned);
    }
}

// ---------------------------------------------------------------------
// Theorem 5: the Unique Value Property
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under UVP (all values globally distinct per attribute — the
    /// strongest form), every `SS ⋈ SN` pair is a k-dominant skyline.
    #[test]
    fn theorem_5_uvp(perm in prop::sample::subsequence((0u64..40).collect::<Vec<_>>(), 8..=30)) {
        // Build relations with globally unique values by spreading the
        // sampled integers: value(v, attr) = v * 4 + attr ensures any two
        // tuples differ in every attribute.
        let d = 3usize;
        let mut b1 = Relation::builder(Schema::uniform(d).unwrap());
        let mut b2 = Relation::builder(Schema::uniform(d).unwrap());
        for (i, &v) in perm.iter().enumerate() {
            let g = v % 3;
            let row1: Vec<f64> = (0..d).map(|a| ((v * 7 + a as u64 * 3) % 97) as f64 + 0.5 / (i + 1) as f64).collect();
            let row2: Vec<f64> = (0..d).map(|a| ((v * 11 + a as u64 * 5) % 89) as f64 + 0.25 / (i + 1) as f64).collect();
            b1.add_grouped(g, &row1).unwrap();
            b2.add_grouped(g, &row2).unwrap();
        }
        let r1 = b1.build().unwrap();
        let r2 = b2.build().unwrap();
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let (lo, hi) = k_range(&cx);
        let k = (lo + 1).min(hi);
        let p = validate_k(&cx, k).unwrap();

        // Verify the UVP premise actually holds for the k″-sized subsets
        // (no two tuples share k″ attribute values).
        for rel in [&r1, &r2] {
            for i in 0..rel.n() as u32 {
                for j in 0..i {
                    let shared = ksjq::relation::dominance::equal_count(
                        rel.row_at(i as usize), rel.row_at(j as usize));
                    prop_assert!(shared < p.k1_pp.min(p.k2_pp),
                        "UVP premise violated: tuples share {} values", shared);
                }
            }
        }

        let cls = classify(&cx, &p, KdomAlgo::Naive);
        let out = ksjq_naive(&cx, k, &Config::default()).unwrap();
        let mut violation = None;
        cx.for_each_pair(|u, v| {
            let fate = (cls.left[u as usize], cls.right[v as usize]);
            if matches!(fate, (Category::SS, Category::SN) | (Category::SN, Category::SS))
                && !out.contains(u, v)
            {
                violation = Some((u, v));
            }
        });
        prop_assert!(violation.is_none(), "Th.5 violated at {:?}", violation);
    }
}
