//! Crash-safe catalogs: a write-ahead log of committed mutations plus a
//! startup snapshot, replayed on restart.
//!
//! The durable unit is one **wire request line** — every catalog
//! mutation the server applies (`LOAD`, `STAGE`, `COMMIT`, `ABORT`,
//! `APPEND`, `DELETE`) already round-trips through
//! [`Request`](crate::protocol::Request), so replay is simply re-running
//! the recorded lines through the same handlers that applied them the
//! first time. That is what makes recovery *byte-identical*: there is no
//! second, subtly different apply path to keep in sync.
//!
//! On disk a data directory holds a snapshot plus one or more log files:
//!
//! * `snapshot.ksjq` — a compacted base state: one `LOAD` record per
//!   relation, all stamped with the *seal* sequence number (the highest
//!   log sequence the snapshot includes). Written atomically
//!   (tmp + fsync + rename), so a reader either sees the old snapshot or
//!   the new one, never a torn one.
//! * `wal.ksjq` — the *active* log: records appended after the snapshot,
//!   fsynced before the client's `OK` is released. Recovery skips any
//!   record whose sequence is ≤ the snapshot's seal, so a crash between
//!   "snapshot renamed" and "log truncated" never double-applies.
//! * `wal-<seq>.ksjq` — *sealed* segments: when the active log outgrows
//!   a size cap ([`Wal::seal`], driven by `--wal-max-bytes`) it is
//!   renamed to a segment stamped with its first record's sequence and a
//!   fresh active log starts. Sealed segments are immutable; live
//!   compaction (a new snapshot mid-flight, not only at startup) deletes
//!   them once the snapshot covers their records.
//!
//! Recovery replays `snapshot → sealed segments (sequence order) →
//! active log`; only the active log can have a torn tail (segments are
//! fsynced before the rename that seals them), and that tail is
//! truncated off so the next append starts at a clean boundary.
//!
//! The record format itself lives in [`record`] — it is deliberately
//! payload-agnostic, and `ksjq-router`'s two-phase decision log reuses
//! the same codec, file layout and recovery machinery for its own
//! records. A torn or bit-flipped tail — the crash case — fails the
//! magic, length or checksum test; [`read_records`] stops at the first
//! invalid record and reports how many bytes were valid. Every *prefix*
//! of a log therefore replays to a valid committed state (proptested in
//! `tests/durability_prop.rs`): a mutation is either fully durable or it
//! never happened. Staged-but-uncommitted data is deliberately
//! volatile — recovery replays `STAGE` records (a later `COMMIT` in the
//! log may need them) and then clears whatever is still staged, which is
//! exactly the `ABORT` the coordinating router would issue.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

pub use record::{crc32, encode_record, read_records, WalRecord, HEADER_BYTES};

/// The checksummed record codec, shared by the server's mutation WAL and
/// the router's two-phase decision log.
///
/// ```text
/// magic u32 | seq u64 | epoch u64 | len u32 | crc32 u32 | payload
/// ```
///
/// (little-endian; `crc32` is CRC-32/IEEE over the payload). The codec
/// knows nothing about what a payload means — callers define that.
pub mod record {
    /// Record header marker ("KSJQ" little-endian).
    pub const MAGIC: u32 = 0x514a_534b;

    /// Header bytes before the payload: magic + seq + epoch + len + crc.
    pub const HEADER_BYTES: usize = 4 + 8 + 8 + 4 + 4;

    /// Hard cap on one record's payload, far above any real request line
    /// but small enough that a corrupt length field cannot trigger a
    /// huge allocation before the checksum gets a chance to reject it.
    pub const MAX_PAYLOAD_BYTES: usize = 256 * 1024 * 1024;

    /// CRC-32/IEEE (the zlib polynomial), table-driven; the table is
    /// built at compile time so the hot path is one lookup per byte.
    const CRC_TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };

    /// CRC-32/IEEE of `bytes`.
    pub fn crc32(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in bytes {
            crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
        }
        !crc
    }

    /// One decoded log record.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WalRecord {
        /// Monotone sequence number (1-based across the log's lifetime;
        /// compaction does not reset it).
        pub seq: u64,
        /// The server's `catalog_epoch` *after* this mutation applied —
        /// recovery restores the counter from the last replayed record.
        /// (The router's decision log leaves this slot 0.)
        pub epoch: u64,
        /// The record body (for the server, a wire request line).
        pub payload: Vec<u8>,
    }

    /// Serialise one record.
    pub fn encode_record(seq: u64, epoch: u64, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&epoch.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Decode records from `bytes`, stopping at the first invalid one
    /// (bad magic, impossible length, short tail, or checksum
    /// mismatch — all the shapes a torn or bit-flipped crash tail
    /// takes). Returns the records and the number of bytes the valid
    /// prefix spans, which is where a recovering server truncates the
    /// file.
    pub fn read_records(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
        let mut records = Vec::new();
        let mut pos = 0usize;
        while bytes.len() - pos >= HEADER_BYTES {
            let at = |o: usize, n: usize| &bytes[pos + o..pos + o + n];
            let magic = u32::from_le_bytes(at(0, 4).try_into().expect("4 bytes"));
            if magic != MAGIC {
                break;
            }
            let seq = u64::from_le_bytes(at(4, 8).try_into().expect("8 bytes"));
            let epoch = u64::from_le_bytes(at(12, 8).try_into().expect("8 bytes"));
            let len = u32::from_le_bytes(at(20, 4).try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(at(24, 4).try_into().expect("4 bytes"));
            if len > MAX_PAYLOAD_BYTES || bytes.len() - pos - HEADER_BYTES < len {
                break;
            }
            let payload = &bytes[pos + HEADER_BYTES..pos + HEADER_BYTES + len];
            if crc32(payload) != crc {
                break;
            }
            records.push(WalRecord {
                seq,
                epoch,
                payload: payload.to_vec(),
            });
            pos += HEADER_BYTES + len;
        }
        (records, pos)
    }
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.ksjq")
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.ksjq")
}

/// The name a sealed segment gets: zero-padded hex of its first record's
/// sequence, so lexical order *is* sequence order.
fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:016x}.ksjq")
}

/// Sealed segment files in `dir`, in sequence (= lexical) order.
fn segment_paths(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut names: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("wal-") && name.ends_with(".ksjq") {
            names.push(name.to_owned());
        }
    }
    names.sort_unstable();
    Ok(names.into_iter().map(|n| dir.join(n)).collect())
}

fn read_file(path: &Path) -> io::Result<Vec<u8>> {
    match File::open(path) {
        Ok(mut f) => {
            let mut bytes = Vec::new();
            f.read_to_end(&mut bytes)?;
            Ok(bytes)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

/// Flush directory metadata so a just-created or just-renamed file
/// survives a crash of the whole machine, not only of the process.
/// Best-effort off Linux (directories cannot always be `sync`ed).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Everything recovery learned from a data directory.
#[derive(Debug)]
pub struct Recovery {
    /// Mutations to replay: snapshot, then sealed segments in sequence
    /// order, then post-seal active-log records — in commit order.
    pub records: Vec<WalRecord>,
    /// Highest sequence seen (0 for a fresh directory); the reopened log
    /// continues from here.
    pub last_seq: u64,
    /// The `catalog_epoch` of the last record (0 for a fresh directory);
    /// the server restores its counter to this after replay.
    pub last_epoch: u64,
    /// Sealed segment files found on disk (they survive until the next
    /// compaction deletes them).
    pub segments: u64,
}

/// Read a data directory back: the snapshot's records, then every sealed
/// segment, then every active-log record past the snapshot's seal. The
/// active log's torn/corrupt tail (if any) is truncated off on disk so
/// the next append starts at a clean boundary. Creates the directory if
/// it does not exist.
pub fn recover(dir: &Path) -> io::Result<Recovery> {
    std::fs::create_dir_all(dir)?;
    let (snapshot, _) = read_records(&read_file(&snapshot_path(dir))?);
    let seal = snapshot.iter().map(|r| r.seq).max().unwrap_or(0);
    let mut tail: Vec<WalRecord> = Vec::new();
    let segments = segment_paths(dir)?;
    let n_segments = segments.len() as u64;
    let mut clean = true;
    for segment in segments {
        let bytes = read_file(&segment)?;
        let (records, valid) = read_records(&bytes);
        tail.extend(records);
        if valid < bytes.len() {
            // A sealed segment is fsynced before the rename that seals
            // it, so a bad tail here is outside corruption, not a crash.
            // Later records would leave a gap; stop at the valid prefix.
            clean = false;
            break;
        }
    }
    if clean {
        let wal_bytes = read_file(&wal_path(dir))?;
        let (wal, valid) = read_records(&wal_bytes);
        if valid < wal_bytes.len() {
            // Torn or corrupt tail from a crash mid-append: drop it.
            let f = OpenOptions::new().write(true).open(wal_path(dir))?;
            f.set_len(valid as u64)?;
            f.sync_all()?;
        }
        tail.extend(wal);
    }
    let mut records = snapshot;
    records.extend(tail.into_iter().filter(|r| r.seq > seal));
    let last_seq = records.iter().map(|r| r.seq).max().unwrap_or(0);
    let last_epoch = records.last().map(|r| r.epoch).unwrap_or(0);
    Ok(Recovery {
        records,
        last_seq,
        last_epoch,
        segments: n_segments,
    })
}

/// An open write-ahead log. Every [`append`](Wal::append) is written and
/// fsynced before it returns, so once the caller releases its `OK` the
/// mutation survives `kill -9`.
#[derive(Debug)]
pub struct Wal {
    file: File,
    dir: PathBuf,
    next_seq: u64,
    /// Sequence the active file's first record carries (names the
    /// segment [`seal`](Wal::seal) renames it to).
    first_seq: u64,
    /// Bytes in the active file — what `--wal-max-bytes` caps.
    bytes: u64,
}

impl Wal {
    /// Append one mutation at `epoch`; durable when this returns.
    pub fn append(&mut self, epoch: u64, payload: &[u8]) -> io::Result<u64> {
        let seq = self.next_seq;
        let record = encode_record(seq, epoch, payload);
        self.file.write_all(&record)?;
        self.file.sync_data()?;
        self.next_seq += 1;
        self.bytes += record.len() as u64;
        Ok(seq)
    }

    /// The sequence the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Bytes in the active log file.
    pub fn active_bytes(&self) -> u64 {
        self.bytes
    }

    /// Rotate: rename the active file to an immutable sealed segment
    /// (`wal-<first seq>.ksjq`) and start a fresh active log. Returns
    /// `false` (and does nothing) if the active log is empty. Appends
    /// already fsync per record, so the rename never seals a torn tail.
    pub fn seal(&mut self) -> io::Result<bool> {
        if self.bytes == 0 {
            return Ok(false);
        }
        self.file.sync_all()?;
        std::fs::rename(
            wal_path(&self.dir),
            self.dir.join(segment_name(self.first_seq)),
        )?;
        self.file = fresh_wal_file(&self.dir)?;
        sync_dir(&self.dir);
        self.first_seq = self.next_seq;
        self.bytes = 0;
        Ok(true)
    }
}

/// Create (or truncate) the active log file, fsynced.
fn fresh_wal_file(dir: &Path) -> io::Result<File> {
    let file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(wal_path(dir))?;
    file.sync_all()?;
    Ok(file)
}

/// Write a fresh snapshot (`lines`, all sealed at `seq`/`epoch`)
/// atomically, empty the active log, delete any sealed segments the
/// snapshot now covers, and return the log reopened for appending.
///
/// Crash-safe at every step: until the `rename` lands the old snapshot
/// is intact and the logs still hold the records being compacted; after
/// it, the seal makes any not-yet-deleted log records no-ops.
pub fn compact(dir: &Path, lines: &[String], seq: u64, epoch: u64) -> io::Result<Wal> {
    let tmp = dir.join("snapshot.tmp");
    {
        let mut f = File::create(&tmp)?;
        for line in lines {
            f.write_all(&encode_record(seq, epoch, line.as_bytes()))?;
        }
        f.sync_all()?;
    }
    std::fs::rename(&tmp, snapshot_path(dir))?;
    sync_dir(dir);
    let file = fresh_wal_file(dir)?;
    for segment in segment_paths(dir)? {
        std::fs::remove_file(segment)?;
    }
    sync_dir(dir);
    Ok(Wal {
        file,
        dir: dir.to_path_buf(),
        next_seq: seq + 1,
        first_seq: seq + 1,
        bytes: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ksjq-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn records_roundtrip() {
        let payloads = ["LOAD a INLINE k,v;x,1", "APPEND a ROWS y,2", ""];
        let mut bytes = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(i as u64 + 1, i as u64, p.as_bytes()));
        }
        let (records, valid) = read_records(&bytes);
        assert_eq!(valid, bytes.len());
        assert_eq!(records.len(), payloads.len());
        for (r, p) in records.iter().zip(payloads) {
            assert_eq!(r.payload, p.as_bytes());
        }
        assert_eq!(records[2].seq, 3);
    }

    #[test]
    fn torn_tail_stops_cleanly() {
        let mut bytes = encode_record(1, 1, b"LOAD a INLINE k,v;x,1");
        let whole = bytes.len();
        bytes.extend_from_slice(&encode_record(2, 2, b"APPEND a ROWS y,2"));
        // Every truncation point mid-second-record keeps exactly the
        // first record.
        for cut in whole..bytes.len() {
            let (records, valid) = read_records(&bytes[..cut]);
            assert_eq!(records.len(), 1, "cut={cut}");
            assert_eq!(valid, whole);
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let bytes = encode_record(1, 1, b"LOAD a INLINE k,v;x,1");
        for i in 0..bytes.len() {
            for bit in [0u8, 3, 7] {
                let mut evil = bytes.clone();
                evil[i] ^= 1 << bit;
                let (records, _) = read_records(&evil);
                // The record is either rejected outright or (for flips in
                // the seq/epoch fields, which the checksum does not
                // cover) still parses with an altered stamp — but the
                // payload itself can never silently change.
                if let Some(r) = records.first() {
                    assert_eq!(r.payload, b"LOAD a INLINE k,v;x,1", "byte {i} bit {bit}");
                }
            }
        }
        // A payload flip specifically must kill the record.
        let mut evil = bytes.clone();
        let last = evil.len() - 1;
        evil[last] ^= 0x10;
        assert_eq!(read_records(&evil).0.len(), 0);
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let dir = tmpdir("fresh");
        let r = recover(&dir.join("sub")).unwrap();
        assert!(r.records.is_empty());
        assert_eq!((r.last_seq, r.last_epoch, r.segments), (0, 0, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_seals_out_replayed_log_records() {
        let dir = tmpdir("seal");
        // A log with two mutations, no snapshot yet.
        let mut wal = compact(&dir, &[], 0, 0).unwrap();
        wal.append(1, b"LOAD a INLINE k,v;x,1").unwrap();
        wal.append(2, b"APPEND a ROWS y,2").unwrap();
        let r = recover(&dir).unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!((r.last_seq, r.last_epoch), (2, 2));
        // Compact to one snapshot line sealed at seq 2; simulate a crash
        // *before* the log truncate by re-writing the old records.
        let snap = vec!["LOAD a INLINE k,v;x,1;y,2".to_owned()];
        drop(compact(&dir, &snap, r.last_seq, r.last_epoch).unwrap());
        let mut stale = OpenOptions::new()
            .write(true)
            .open(dir.join("wal.ksjq"))
            .unwrap();
        stale
            .write_all(&encode_record(1, 1, b"LOAD a INLINE k,v;x,1"))
            .unwrap();
        stale
            .write_all(&encode_record(2, 2, b"APPEND a ROWS y,2"))
            .unwrap();
        drop(stale);
        // Recovery sees the snapshot only: both stale records are ≤ seal.
        let r2 = recover(&dir).unwrap();
        assert_eq!(r2.records.len(), 1);
        assert_eq!(r2.records[0].payload, snap[0].as_bytes());
        assert_eq!((r2.last_seq, r2.last_epoch), (2, 2));
        // And a post-compaction append lands past the seal.
        let mut wal = compact(&dir, &snap, r2.last_seq, r2.last_epoch).unwrap();
        assert_eq!(wal.append(3, b"APPEND a ROWS z,3").unwrap(), 3);
        let r3 = recover(&dir).unwrap();
        assert_eq!(r3.records.len(), 2);
        assert_eq!((r3.last_seq, r3.last_epoch), (3, 3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sealed_segments_recover_in_order() {
        let dir = tmpdir("segments");
        let mut wal = compact(&dir, &[], 0, 0).unwrap();
        // Three appends across two seals: every record must come back,
        // in sequence order, from segment files plus the active log.
        wal.append(1, b"LOAD a INLINE k,v;x,1").unwrap();
        assert!(wal.seal().unwrap());
        assert!(!wal.seal().unwrap(), "an empty active log never seals");
        wal.append(2, b"APPEND a ROWS y,2").unwrap();
        wal.append(3, b"APPEND a ROWS z,3").unwrap();
        assert!(wal.seal().unwrap());
        wal.append(4, b"APPEND a ROWS w,4").unwrap();
        assert!(wal.active_bytes() > 0);
        drop(wal);
        assert!(dir.join(segment_name(1)).exists());
        assert!(dir.join(segment_name(2)).exists());
        let r = recover(&dir).unwrap();
        assert_eq!(r.segments, 2);
        assert_eq!(
            r.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        assert_eq!((r.last_seq, r.last_epoch), (4, 4));
        // Live compaction covers the segments and deletes them.
        let wal = compact(&dir, &["LOAD a INLINE k,v;x,1;y,2;z,3;w,4".into()], 4, 4).unwrap();
        assert_eq!(wal.next_seq(), 5);
        assert!(!dir.join(segment_name(1)).exists());
        assert!(!dir.join(segment_name(2)).exists());
        let r2 = recover(&dir).unwrap();
        assert_eq!(r2.segments, 0);
        assert_eq!(r2.records.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
