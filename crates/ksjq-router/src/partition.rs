//! Splitting a `LOAD` into per-shard slices.
//!
//! The split is by join-key hash over the *textual* key cell, preserving
//! global row order inside every slice. That ordering is what makes the
//! distributed answer byte-identical to the single-node one: each
//! shard's local→global id map is strictly monotone, so a shard's sorted
//! result pairs remap to a sorted list of global pairs, and a k-way
//! merge of those lists reproduces the exact order a single node emits.

use crate::topology::shard_of;
use ksjq_datagen::relation_to_annotated_csv_with;
use ksjq_relation::csv::CsvTable;
use ksjq_server::SyntheticSpec;

/// Generated relations above this cell count are refused, mirroring the
/// per-request cap the server applies to `LOAD … SYNTHETIC`.
pub const MAX_SYNTHETIC_CELLS: usize = 50_000_000;

/// One relation split for a cluster: the slices, the broadcast copy, and
/// the id maps that translate shard-local row numbers back to global
/// ones.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedLoad {
    /// Per-shard CSV slice (same header as the input; possibly
    /// header-only — every shard registers every relation, empty or not,
    /// so query planning is uniform).
    pub shard_csvs: Vec<String>,
    /// The whole relation, re-rendered — the `.all.<name>` broadcast
    /// copy that find-k goals and `PREPARE` validation run against.
    pub full_csv: String,
    /// `id_maps[s][local]` = global row index of shard `s`'s row
    /// `local`. Strictly increasing in `local` by construction.
    pub id_maps: Vec<Vec<u32>>,
    /// `keys[global]` = the textual join key of each row — what `APPEND`
    /// extends and `DELETE` filters when the router recomputes id maps.
    pub keys: Vec<String>,
    /// Total rows.
    pub n: usize,
    /// Attribute count (columns minus the key).
    pub d: usize,
}

impl PartitionedLoad {
    /// Rows placed on shard `s`.
    pub fn rows_on(&self, s: usize) -> usize {
        self.id_maps[s].len()
    }
}

/// Split CSV text into `n_shards` slices by join-key hash (the key is
/// the first column, as for `LOAD … INLINE`).
pub fn partition_csv(csv: &str, n_shards: usize) -> Result<PartitionedLoad, String> {
    let table = CsvTable::parse(csv).map_err(|e| e.to_string())?;
    if table.header.len() < 2 {
        return Err("CSV needs a key column and at least one attribute".into());
    }
    let mut shard_rows: Vec<Vec<Vec<String>>> = vec![Vec::new(); n_shards];
    let mut id_maps: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
    let mut keys = Vec::with_capacity(table.rows.len());
    for (global, row) in table.rows.iter().enumerate() {
        let s = shard_of(&row[0], n_shards);
        shard_rows[s].push(row.clone());
        id_maps[s].push(global as u32);
        keys.push(row[0].clone());
    }
    let shard_csvs = shard_rows
        .into_iter()
        .map(|rows| {
            CsvTable {
                header: table.header.clone(),
                rows,
            }
            .to_csv()
        })
        .collect();
    Ok(PartitionedLoad {
        shard_csvs,
        full_csv: table.to_csv(),
        id_maps,
        keys,
        n: table.rows.len(),
        d: table.header.len() - 1,
    })
}

/// An `APPEND` delta split for a cluster. Same placement function as
/// [`partition_csv`] — appended rows land on the shard that already
/// holds their join group — but the rows are header-less (`APPEND`
/// grammar), so this is a plain line split, not a `CsvTable` parse.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedDelta {
    /// Per-shard delta rows (empty string = nothing for that shard).
    pub shard_csvs: Vec<String>,
    /// The whole delta, normalised — appended to the `.all.<name>`
    /// broadcast copy on shard 0.
    pub full_csv: String,
    /// The join key of each delta row, in input order.
    pub keys: Vec<String>,
}

/// Split header-less `APPEND` rows by join-key hash (first cell).
pub fn partition_delta(csv: &str, n_shards: usize) -> Result<PartitionedDelta, String> {
    let mut shard_rows: Vec<Vec<&str>> = vec![Vec::new(); n_shards];
    let mut keys = Vec::new();
    let mut all = Vec::new();
    for line in csv.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let key = line.split(',').next().unwrap_or("").trim();
        if key.is_empty() {
            return Err(format!("append row {}: empty join key", keys.len() + 1));
        }
        shard_rows[shard_of(key, n_shards)].push(line);
        keys.push(key.to_string());
        all.push(line);
    }
    if keys.is_empty() {
        return Err("APPEND carried no rows".into());
    }
    Ok(PartitionedDelta {
        shard_csvs: shard_rows.into_iter().map(|rows| rows.join("\n")).collect(),
        full_csv: all.join("\n"),
        keys,
    })
}

/// Generate a synthetic relation router-side and split it like CSV.
///
/// The generator is the same one the server runs for `LOAD … SYNTHETIC`
/// (deterministic in the seed), keys spelled as decimal group ids —
/// so a sharded synthetic load answers queries identically to the same
/// spec loaded on a single node.
pub fn partition_synthetic(
    spec: &SyntheticSpec,
    n_shards: usize,
) -> Result<PartitionedLoad, String> {
    if spec.n.saturating_mul(spec.d) > MAX_SYNTHETIC_CELLS {
        return Err(format!(
            "synthetic relation too large: n·d must stay ≤ {MAX_SYNTHETIC_CELLS}"
        ));
    }
    if spec.a > spec.d {
        return Err("aggregate attributes cannot exceed total attributes".into());
    }
    let rel = spec.dataset_spec().generate();
    let csv = relation_to_annotated_csv_with(&rel, "key", |_| None).map_err(|e| e.to_string())?;
    partition_csv(&csv, n_shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "city,cost,rating:max\nJAI,1,5\nDEL,2,4\nJAI,3,3\nBOM,4,2\nDEL,5,1\n";

    #[test]
    fn one_shard_takes_everything_verbatim() {
        let p = partition_csv(CSV, 1).unwrap();
        assert_eq!(p.n, 5);
        assert_eq!(p.d, 2);
        assert_eq!(p.shard_csvs[0], CSV);
        assert_eq!(p.full_csv, CSV);
        assert_eq!(p.id_maps[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn groups_colocate_and_maps_are_monotone() {
        for n_shards in [2usize, 3, 4] {
            let p = partition_csv(CSV, n_shards).unwrap();
            assert_eq!(p.id_maps.iter().map(Vec::len).sum::<usize>(), 5);
            let jai = shard_of("JAI", n_shards);
            let slice = CsvTable::parse(&p.shard_csvs[jai]).unwrap();
            assert_eq!(
                slice.rows.iter().filter(|r| r[0] == "JAI").count(),
                2,
                "both JAI rows on shard {jai} of {n_shards}"
            );
            for map in &p.id_maps {
                assert!(map.windows(2).all(|w| w[0] < w[1]), "monotone {map:?}");
            }
            // Every slice keeps the full header, even when empty.
            for csv in &p.shard_csvs {
                assert!(csv.starts_with("city,cost,rating:max\n"));
            }
        }
    }

    #[test]
    fn synthetic_split_is_deterministic_and_capped() {
        let spec = SyntheticSpec {
            data_type: ksjq_datagen::DataType::Independent,
            n: 40,
            d: 4,
            a: 1,
            g: 6,
            seed: 9,
        };
        let p1 = partition_synthetic(&spec, 3).unwrap();
        let p2 = partition_synthetic(&spec, 3).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.n, 40);

        let huge = SyntheticSpec {
            n: MAX_SYNTHETIC_CELLS,
            d: 2,
            ..spec
        };
        assert!(partition_synthetic(&huge, 3).is_err());
    }

    #[test]
    fn junk_csv_is_rejected() {
        assert!(partition_csv("", 2).is_err());
        assert!(partition_csv("lonely\nA\n", 2).is_err());
    }

    #[test]
    fn keys_follow_global_row_order() {
        let p = partition_csv(CSV, 3).unwrap();
        assert_eq!(p.keys, vec!["JAI", "DEL", "JAI", "BOM", "DEL"]);
    }

    #[test]
    fn delta_rows_land_with_their_group() {
        for n_shards in [1usize, 2, 3] {
            let d = partition_delta("JAI,9,9\nBOM,8,8\nJAI,7,7\n", n_shards).unwrap();
            assert_eq!(d.keys, vec!["JAI", "BOM", "JAI"]);
            assert_eq!(d.full_csv, "JAI,9,9\nBOM,8,8\nJAI,7,7");
            let jai = shard_of("JAI", n_shards);
            let jai_rows: Vec<&str> = d.shard_csvs[jai]
                .lines()
                .filter(|l| l.starts_with("JAI"))
                .collect();
            assert_eq!(jai_rows, vec!["JAI,9,9", "JAI,7,7"], "order preserved");
            // Row placement matches the load-time placement function.
            let load = partition_csv(CSV, n_shards).unwrap();
            let slice = CsvTable::parse(&load.shard_csvs[jai]).unwrap();
            if n_shards > 1 {
                assert!(
                    slice.rows.iter().all(|r| r[0] != "BOM") || jai == shard_of("BOM", n_shards)
                );
            }
        }
        assert!(partition_delta("", 2).is_err());
        assert!(partition_delta(",1,2", 2).is_err(), "empty key");
    }
}
