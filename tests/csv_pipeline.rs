//! End-to-end CSV pipeline: export a generated flight network, re-import
//! it, and verify queries see the identical data — the workflow a user
//! with real CSV data follows.

use ksjq::datagen::{flights::flight_schema, relation_from_csv, relation_to_csv};
use ksjq::prelude::*;

#[test]
fn flight_network_roundtrips_through_csv() {
    let net = FlightNetworkSpec {
        outbound: 60,
        inbound: 50,
        hubs: 6,
        seed: 9,
    }
    .generate();

    let out_csv = relation_to_csv(&net.outbound, "hub", Some(&net.hubs)).unwrap();
    let in_csv = relation_to_csv(&net.inbound, "hub", Some(&net.hubs)).unwrap();
    assert!(out_csv.starts_with("hub,cost,flying_time,date_change_fee,popularity,amenities\n"));

    // Re-import through a *fresh* dictionary shared by both legs.
    let mut dict = StringDictionary::new();
    let outbound = relation_from_csv(&out_csv, flight_schema(), "hub", &mut dict).unwrap();
    let inbound = relation_from_csv(&in_csv, flight_schema(), "hub", &mut dict).unwrap();
    assert_eq!(outbound.n(), 60);
    assert_eq!(inbound.n(), 50);

    // Identical queries on both versions.
    let cx_orig = JoinContext::new(
        &net.outbound,
        &net.inbound,
        JoinSpec::Equality,
        &[AggFunc::Sum, AggFunc::Sum],
    )
    .unwrap();
    let cx_csv = JoinContext::new(
        &outbound,
        &inbound,
        JoinSpec::Equality,
        &[AggFunc::Sum, AggFunc::Sum],
    )
    .unwrap();
    assert_eq!(cx_orig.count_pairs(), cx_csv.count_pairs());
    let cfg = Config::default();
    for k in 6..=8 {
        let a = ksjq_grouping(&cx_orig, k, &cfg).unwrap();
        let b = ksjq_grouping(&cx_csv, k, &cfg).unwrap();
        assert_eq!(a.pairs, b.pairs, "k={k}");
    }
}

#[test]
fn paper_tables_as_csv() {
    // Export the paper's Table 1, re-import, and re-run the k=7 query.
    let pf = ksjq::datagen::paper_flights(false);
    let t1 = relation_to_csv(&pf.outbound, "city", Some(&pf.cities)).unwrap();
    let t2 = relation_to_csv(&pf.inbound, "city", Some(&pf.cities)).unwrap();

    let schema = || {
        Schema::builder()
            .local("cost", Preference::Min)
            .local("dur", Preference::Min)
            .local("rtg", Preference::Min)
            .local("amn", Preference::Min)
            .build()
            .unwrap()
    };
    let mut dict = StringDictionary::new();
    let r1 = relation_from_csv(&t1, schema(), "city", &mut dict).unwrap();
    let r2 = relation_from_csv(&t2, schema(), "city", &mut dict).unwrap();
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
    let out = ksjq_grouping(&cx, 7, &Config::default()).unwrap();
    let fnos: Vec<(u32, u32)> = out
        .pairs
        .iter()
        .map(|(u, v)| (11 + u.0, 21 + v.0))
        .collect();
    assert_eq!(fnos, vec![(11, 23), (13, 21), (15, 25), (16, 26)]);
}
