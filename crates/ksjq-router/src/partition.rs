//! Splitting a `LOAD` into per-shard slices.
//!
//! The split is by join-key hash over the *textual* key cell, preserving
//! global row order inside every slice. That ordering is what makes the
//! distributed answer byte-identical to the single-node one: each
//! shard's local→global id map is strictly monotone, so a shard's sorted
//! result pairs remap to a sorted list of global pairs, and a k-way
//! merge of those lists reproduces the exact order a single node emits.

use crate::topology::shard_of;
use ksjq_datagen::relation_to_annotated_csv_with;
use ksjq_relation::csv::CsvTable;
use ksjq_server::SyntheticSpec;

/// Generated relations above this cell count are refused, mirroring the
/// per-request cap the server applies to `LOAD … SYNTHETIC`.
pub const MAX_SYNTHETIC_CELLS: usize = 50_000_000;

/// One relation split for a cluster: the slices, the broadcast copy, and
/// the id maps that translate shard-local row numbers back to global
/// ones.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedLoad {
    /// Per-shard CSV slice (same header as the input; possibly
    /// header-only — every shard registers every relation, empty or not,
    /// so query planning is uniform).
    pub shard_csvs: Vec<String>,
    /// The whole relation, re-rendered — the `.all.<name>` broadcast
    /// copy that find-k goals and `PREPARE` validation run against.
    pub full_csv: String,
    /// `id_maps[s][local]` = global row index of shard `s`'s row
    /// `local`. Strictly increasing in `local` by construction.
    pub id_maps: Vec<Vec<u32>>,
    /// Total rows.
    pub n: usize,
    /// Attribute count (columns minus the key).
    pub d: usize,
}

impl PartitionedLoad {
    /// Rows placed on shard `s`.
    pub fn rows_on(&self, s: usize) -> usize {
        self.id_maps[s].len()
    }
}

/// Split CSV text into `n_shards` slices by join-key hash (the key is
/// the first column, as for `LOAD … INLINE`).
pub fn partition_csv(csv: &str, n_shards: usize) -> Result<PartitionedLoad, String> {
    let table = CsvTable::parse(csv).map_err(|e| e.to_string())?;
    if table.header.len() < 2 {
        return Err("CSV needs a key column and at least one attribute".into());
    }
    let mut shard_rows: Vec<Vec<Vec<String>>> = vec![Vec::new(); n_shards];
    let mut id_maps: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
    for (global, row) in table.rows.iter().enumerate() {
        let s = shard_of(&row[0], n_shards);
        shard_rows[s].push(row.clone());
        id_maps[s].push(global as u32);
    }
    let shard_csvs = shard_rows
        .into_iter()
        .map(|rows| {
            CsvTable {
                header: table.header.clone(),
                rows,
            }
            .to_csv()
        })
        .collect();
    Ok(PartitionedLoad {
        shard_csvs,
        full_csv: table.to_csv(),
        id_maps,
        n: table.rows.len(),
        d: table.header.len() - 1,
    })
}

/// Generate a synthetic relation router-side and split it like CSV.
///
/// The generator is the same one the server runs for `LOAD … SYNTHETIC`
/// (deterministic in the seed), keys spelled as decimal group ids —
/// so a sharded synthetic load answers queries identically to the same
/// spec loaded on a single node.
pub fn partition_synthetic(
    spec: &SyntheticSpec,
    n_shards: usize,
) -> Result<PartitionedLoad, String> {
    if spec.n.saturating_mul(spec.d) > MAX_SYNTHETIC_CELLS {
        return Err(format!(
            "synthetic relation too large: n·d must stay ≤ {MAX_SYNTHETIC_CELLS}"
        ));
    }
    if spec.a > spec.d {
        return Err("aggregate attributes cannot exceed total attributes".into());
    }
    let rel = spec.dataset_spec().generate();
    let csv = relation_to_annotated_csv_with(&rel, "key", |_| None).map_err(|e| e.to_string())?;
    partition_csv(&csv, n_shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "city,cost,rating:max\nJAI,1,5\nDEL,2,4\nJAI,3,3\nBOM,4,2\nDEL,5,1\n";

    #[test]
    fn one_shard_takes_everything_verbatim() {
        let p = partition_csv(CSV, 1).unwrap();
        assert_eq!(p.n, 5);
        assert_eq!(p.d, 2);
        assert_eq!(p.shard_csvs[0], CSV);
        assert_eq!(p.full_csv, CSV);
        assert_eq!(p.id_maps[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn groups_colocate_and_maps_are_monotone() {
        for n_shards in [2usize, 3, 4] {
            let p = partition_csv(CSV, n_shards).unwrap();
            assert_eq!(p.id_maps.iter().map(Vec::len).sum::<usize>(), 5);
            let jai = shard_of("JAI", n_shards);
            let slice = CsvTable::parse(&p.shard_csvs[jai]).unwrap();
            assert_eq!(
                slice.rows.iter().filter(|r| r[0] == "JAI").count(),
                2,
                "both JAI rows on shard {jai} of {n_shards}"
            );
            for map in &p.id_maps {
                assert!(map.windows(2).all(|w| w[0] < w[1]), "monotone {map:?}");
            }
            // Every slice keeps the full header, even when empty.
            for csv in &p.shard_csvs {
                assert!(csv.starts_with("city,cost,rating:max\n"));
            }
        }
    }

    #[test]
    fn synthetic_split_is_deterministic_and_capped() {
        let spec = SyntheticSpec {
            data_type: ksjq_datagen::DataType::Independent,
            n: 40,
            d: 4,
            a: 1,
            g: 6,
            seed: 9,
        };
        let p1 = partition_synthetic(&spec, 3).unwrap();
        let p2 = partition_synthetic(&spec, 3).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.n, 40);

        let huge = SyntheticSpec {
            n: MAX_SYNTHETIC_CELLS,
            d: 2,
            ..spec
        };
        assert!(partition_synthetic(&huge, 3).is_err());
    }

    #[test]
    fn junk_csv_is_rejected() {
        assert!(partition_csv("", 2).is_err());
        assert!(partition_csv("lonely\nA\n", 2).is_err());
    }
}
