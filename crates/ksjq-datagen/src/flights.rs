//! Synthetic two-leg flight network (stand-in for the paper's real data).
//!
//! The paper's Sec. 7.4 evaluates on flights scraped from MakeMyTrip:
//! 192 flights from New Delhi to 13 hub cities and 155 flights from those
//! hubs to Mumbai, with five attributes per flight — cost and flying time
//! (aggregated across legs) plus date-change fee, popularity and amenities
//! (local). That scrape is not redistributable, so this module generates a
//! network with the same shape:
//!
//! * identical cardinalities and hub count (configurable),
//! * the same schema and aggregate slots (joined tuples have
//!   3 + 3 + 2 = 8 attributes),
//! * per-hub base fares (hub distance drives both cost and duration),
//! * anti-correlation between price and quality (better-rated flights cost
//!   more), the property that makes skylines of real marketplaces large.

use ksjq_relation::{Preference, Relation, Schema, StringDictionary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightNetworkSpec {
    /// Flights on the first leg (paper: 192, New Delhi → hub).
    pub outbound: usize,
    /// Flights on the second leg (paper: 155, hub → Mumbai).
    pub inbound: usize,
    /// Number of hub cities (paper: 13).
    pub hubs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlightNetworkSpec {
    /// The paper's cardinalities: 192 × 155 flights over 13 hubs.
    fn default() -> Self {
        FlightNetworkSpec {
            outbound: 192,
            inbound: 155,
            hubs: 13,
            seed: 0x5EED,
        }
    }
}

/// A generated two-leg flight network.
#[derive(Debug, Clone)]
pub struct FlightNetwork {
    /// First-leg flights; join key = destination hub.
    pub outbound: Relation,
    /// Second-leg flights; join key = source hub.
    pub inbound: Relation,
    /// Hub-city dictionary shared by both join-key columns.
    pub hubs: StringDictionary,
}

/// The five-attribute flight schema used by both legs.
///
/// Cost and flying time occupy aggregate slots 0 and 1 (summed over the
/// legs); date-change fee, popularity and amenities are local. Popularity
/// and amenities are `Max` attributes — unlike the didactic tables of the
/// paper, the real-data experiment uses natural directions.
pub fn flight_schema() -> Schema {
    Schema::builder()
        .agg("cost", Preference::Min, 0)
        .agg("flying_time", Preference::Min, 1)
        .local("date_change_fee", Preference::Min)
        .local("popularity", Preference::Max)
        .local("amenities", Preference::Max)
        .build()
        .expect("static schema is valid")
}

const HUB_NAMES: [&str; 16] = [
    "JAI", "AMD", "LKO", "IDR", "NAG", "BHO", "UDR", "RPR", "GOI", "HYD", "BLR", "PNQ", "PAT",
    "VNS", "IXC", "GAU",
];

impl FlightNetworkSpec {
    /// Generate the network.
    ///
    /// # Panics
    ///
    /// Panics when `hubs` is 0 or exceeds the built-in hub-name pool (16).
    pub fn generate(&self) -> FlightNetwork {
        assert!(
            self.hubs >= 1 && self.hubs <= HUB_NAMES.len(),
            "hubs must be 1..=16"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut hubs = StringDictionary::new();
        for name in HUB_NAMES.iter().take(self.hubs) {
            hubs.encode(name);
        }
        // Per-hub route length factor: drives both legs' base cost and time.
        let leg1_dist: Vec<f64> = (0..self.hubs)
            .map(|_| 0.4 + 1.2 * rng.gen::<f64>())
            .collect();
        let leg2_dist: Vec<f64> = (0..self.hubs)
            .map(|_| 0.4 + 1.2 * rng.gen::<f64>())
            .collect();

        let outbound = gen_leg(&mut rng, self.outbound, self.hubs, &leg1_dist);
        let inbound = gen_leg(&mut rng, self.inbound, self.hubs, &leg2_dist);
        FlightNetwork {
            outbound,
            inbound,
            hubs,
        }
    }
}

fn gen_leg(rng: &mut StdRng, n: usize, hubs: usize, dist: &[f64]) -> Relation {
    let mut b = Relation::builder(flight_schema()).with_capacity(n);
    for _ in 0..n {
        let hub = rng.gen_range(0..hubs);
        let d = dist[hub];
        // Quality in [0,1): drives popularity/amenities up and price up too
        // (anti-correlation between cheapness and quality).
        let quality = rng.gen::<f64>();
        let carrier_premium = 0.85 + 0.5 * quality + 0.15 * rng.gen::<f64>();
        let cost = (1800.0 * d * carrier_premium + 400.0 * rng.gen::<f64>()).round();
        let flying_time = (1.1 * d + 0.2 * d * rng.gen::<f64>() + 0.2 * rng.gen::<f64>()).max(0.5);
        let flying_time = (flying_time * 10.0).round() / 10.0;
        let fee = (800.0 + 2400.0 * (1.0 - quality) * rng.gen::<f64>()).round();
        let popularity = (5.0 + 90.0 * (0.6 * quality + 0.4 * rng.gen::<f64>())).round();
        let amenities = (10.0 + 80.0 * (0.7 * quality + 0.3 * rng.gen::<f64>())).round();
        b.add_grouped(hub as u64, &[cost, flying_time, fee, popularity, amenities])
            .expect("generated flight row is valid");
    }
    b.build().expect("generated leg is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_shape() {
        let net = FlightNetworkSpec::default().generate();
        assert_eq!(net.outbound.n(), 192);
        assert_eq!(net.inbound.n(), 155);
        assert_eq!(net.hubs.len(), 13);
        assert!(net.outbound.group_index().unwrap().group_count() <= 13);
        assert_eq!(net.outbound.d(), 5);
        assert_eq!(net.outbound.schema().agg_count(), 2);
    }

    #[test]
    fn deterministic() {
        let a = FlightNetworkSpec::default().generate();
        let b = FlightNetworkSpec::default().generate();
        assert_eq!(a.outbound, b.outbound);
        assert_eq!(a.inbound, b.inbound);
    }

    #[test]
    fn joined_size_matches_hub_fanout() {
        // |R1 ⋈ R2| = Σ_h |out_h| · |in_h|; the paper reports 2649 for its
        // real data — ours lands in the same ballpark by construction.
        let net = FlightNetworkSpec::default().generate();
        let go = net.outbound.group_index().unwrap();
        let gi = net.inbound.group_index().unwrap();
        let joined: usize = go
            .iter()
            .map(|(gid, m)| m.len() * gi.members(gid).len())
            .sum();
        assert!(joined > 1000 && joined < 5000, "joined size {joined}");
    }

    #[test]
    fn price_quality_anticorrelation() {
        let net = FlightNetworkSpec {
            outbound: 2000,
            ..Default::default()
        }
        .generate();
        // cost (attr 0, Min ⇒ stored as-is) vs amenities (attr 4, Max ⇒
        // stored negated). Positive correlation of the *stored* values
        // means cheap flights have few amenities.
        let n = net.outbound.n() as f64;
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for (_, row) in net.outbound.rows() {
            let (x, y) = (row[0], row[4]);
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
        let cov = sxy / n - (sx / n) * (sy / n);
        let r = cov / ((sxx / n - (sx / n).powi(2)) * (syy / n - (sy / n).powi(2))).sqrt();
        assert!(r < -0.15, "expected anti-correlation, got r = {r}");
    }

    #[test]
    #[should_panic(expected = "hubs must be")]
    fn too_many_hubs_panics() {
        FlightNetworkSpec {
            hubs: 17,
            ..Default::default()
        }
        .generate();
    }

    #[test]
    fn attributes_positive() {
        let net = FlightNetworkSpec::default().generate();
        for rel in [&net.outbound, &net.inbound] {
            for (t, _) in rel.rows() {
                let raw = rel.raw_row(t);
                assert!(
                    raw.iter().all(|&v| v > 0.0),
                    "non-positive attribute in {raw:?}"
                );
            }
        }
    }
}
