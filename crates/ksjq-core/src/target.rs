//! Target sets (paper Def. 5 + `Augment`, generalised soundly to
//! aggregates).
//!
//! For a candidate joined tuple `t′ = u′ ⋈ v′`, any dominating joined
//! tuple `t = u ⋈ v` must satisfy, by attribute counting,
//!
//! ```text
//! |{local i of R1 : u_i ≤ u′_i}| ≥ k″1    (and symmetrically for v)
//! ```
//!
//! because the right leg can contribute at most `l2` local positions and
//! `a` aggregate positions to the `≥ k` better-or-equal requirement. The
//! **target set** `τ(u′)` is the set of tuples passing this filter.
//!
//! At `a = 0` this is exactly the paper's machinery: for `u′ ∈ SS`, a
//! tuple with `≥ k′1` better-or-equal positions and any strictly-better
//! position would k′1-dominate `u′` (contradiction), so τ reduces to the
//! paper's *equal-shares* `Augment` set; for `u′ ∈ SN` it is precisely
//! `dominators(u′) ∪ Augment(u′)` of Algorithm 3. With aggregates the
//! paper's equal-shares set is **incomplete** — the other leg can repair an
//! aggregate position, so a dominator's leg may share no values at all —
//! which is why this generalisation filters on `≤` over local attributes
//! only (see DESIGN.md §4.5 and `tests/aggregate_semantics.rs`).

use ksjq_relation::Relation;

/// Number of positions (restricted to `locals`) where `x ≤ x_prime`,
/// with early abandonment once `m` is unreachable.
#[inline]
fn local_le_at_least(x: &[f64], x_prime: &[f64], locals: &[usize], m: usize) -> bool {
    let l = locals.len();
    if m > l {
        return false;
    }
    let mut le = 0usize;
    for (i, &attr) in locals.iter().enumerate() {
        le += (x[attr] <= x_prime[attr]) as usize;
        if le + (l - i - 1) < m {
            return false;
        }
    }
    le >= m
}

/// Compute the target set `τ(x′) = {x : |{local i : x_i ≤ x′_i}| ≥ k_pp}`.
///
/// Always contains `x′` itself (`k_pp ≤ l` for every valid `k`). Returned
/// ids are ascending.
pub fn target_set(rel: &Relation, locals: &[usize], x_prime: u32, k_pp: usize) -> Vec<u32> {
    let prow = rel.row_at(x_prime as usize);
    let mut out = Vec::new();
    for t in 0..rel.n() as u32 {
        if local_le_at_least(rel.row_at(t as usize), prow, locals, k_pp) {
            out.push(t);
        }
    }
    out
}

/// Lazily computed, memoised target sets for one relation.
///
/// The grouping algorithm touches targets of only the tuples that actually
/// appear in "likely"/"may be" candidate pairs, so computing them on
/// demand avoids the dominator-based algorithm's up-front cost (the paper's
/// trade-off between Algorithms 2 and 3).
#[derive(Debug)]
pub struct TargetCache<'a> {
    rel: &'a Relation,
    locals: Vec<usize>,
    k_pp: usize,
    sets: Vec<Option<Vec<u32>>>,
}

impl<'a> TargetCache<'a> {
    /// A cache over `rel`'s local attributes with threshold `k_pp`.
    pub fn new(rel: &'a Relation, k_pp: usize) -> Self {
        TargetCache {
            rel,
            locals: rel.schema().local_indices().collect(),
            k_pp,
            sets: vec![None; rel.n()],
        }
    }

    /// The target set of `x_prime`, computing it on first access.
    pub fn get(&mut self, x_prime: u32) -> &[u32] {
        let slot = &mut self.sets[x_prime as usize];
        if slot.is_none() {
            *slot = Some(target_set(self.rel, &self.locals, x_prime, self.k_pp));
        }
        slot.as_deref().expect("just filled")
    }

    /// How many target sets were actually computed (for stats/tests).
    pub fn computed(&self) -> usize {
        self.sets.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksjq_relation::Schema;

    fn rel(rows: &[Vec<f64>]) -> Relation {
        let mut b = Relation::builder(Schema::uniform(rows[0].len()).unwrap());
        for r in rows {
            b.add(r).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn contains_self_and_dominators_and_shares() {
        let r = rel(&[
            vec![5.0, 5.0, 5.0], // 0: the probe
            vec![4.0, 4.0, 9.0], // 1: ≤ in two positions
            vec![5.0, 5.0, 9.0], // 2: equal in two positions
            vec![9.0, 9.0, 9.0], // 3: ≤ in none
            vec![1.0, 9.0, 9.0], // 4: ≤ in one position
        ]);
        let locals: Vec<usize> = r.schema().local_indices().collect();
        assert_eq!(target_set(&r, &locals, 0, 2), vec![0, 1, 2]);
        assert_eq!(target_set(&r, &locals, 0, 1), vec![0, 1, 2, 4]);
        assert_eq!(target_set(&r, &locals, 0, 3), vec![0]);
    }

    #[test]
    fn respects_local_subset() {
        // Attribute 0 is aggregated: only attributes 1, 2 count.
        let schema = Schema::builder()
            .agg("c", ksjq_relation::Preference::Min, 0)
            .local("x", ksjq_relation::Preference::Min)
            .local("y", ksjq_relation::Preference::Min)
            .build()
            .unwrap();
        let mut b = Relation::builder(schema);
        b.add_grouped(0, &[100.0, 5.0, 5.0]).unwrap(); // probe
        b.add_grouped(0, &[0.0, 9.0, 9.0]).unwrap(); // great agg, bad locals
        b.add_grouped(0, &[999.0, 5.0, 9.0]).unwrap(); // one local ≤
        let r = b.build().unwrap();
        let locals: Vec<usize> = r.schema().local_indices().collect();
        assert_eq!(locals, vec![1, 2]);
        assert_eq!(target_set(&r, &locals, 0, 1), vec![0, 2]);
    }

    #[test]
    fn cache_memoises() {
        let r = rel(&[vec![1.0], vec![2.0], vec![3.0]]);
        let mut cache = TargetCache::new(&r, 1);
        assert_eq!(cache.computed(), 0);
        assert_eq!(cache.get(1), &[0, 1]);
        assert_eq!(cache.get(1), &[0, 1]);
        assert_eq!(cache.computed(), 1);
        assert_eq!(cache.get(0), &[0]);
        assert_eq!(cache.computed(), 2);
    }
}
