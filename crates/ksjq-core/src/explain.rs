//! Plan introspection: what a prepared query will actually run.
//!
//! [`Explain`] is produced by
//! [`PreparedQuery::explain`](crate::engine::PreparedQuery::explain). It is
//! plain owned data with a multi-line [`Display`](std::fmt::Display) for
//! humans and a [`compact`](Explain::compact) one-liner for table-style
//! harness output.

use crate::params::KsjqParams;
use crate::plan::Goal;
use crate::query::Algorithm;
use ksjq_join::JoinSpec;
use ksjq_skyline::KdomAlgo;
use std::fmt;

/// A human-readable summary of one prepared KSJQ query: the relations it
/// binds, the join shape, the derived parameters and the algorithm that
/// will run.
#[derive(Debug, Clone, PartialEq)]
pub struct Explain {
    /// Catalog name of the left relation.
    pub left_name: String,
    /// Catalog name of the right relation.
    pub right_name: String,
    /// Tuples in the left relation.
    pub left_n: usize,
    /// Tuples in the right relation.
    pub right_n: usize,
    /// The join connecting the relations.
    pub join: JoinSpec,
    /// Aggregation functions, slot order, rendered (`"sum"`, …).
    pub funcs: Vec<String>,
    /// The plan's goal (for find-k goals, the `k` below is the one the
    /// search settled on).
    pub goal: Goal,
    /// Smallest admissible `k` for this join (`max{d1, d2} + 1`).
    pub k_min: usize,
    /// Largest admissible `k` (`d1 + d2 − a`, the ordinary skyline join).
    pub k_max: usize,
    /// Every derived parameter of the bound query, including the chosen
    /// `k` and the classification/target thresholds `k′`/`k″`.
    pub params: KsjqParams,
    /// The KSJQ algorithm that will execute.
    pub algorithm: Algorithm,
    /// The single-relation k-dominant skyline subroutine in use.
    pub kdom: KdomAlgo,
    /// Worker threads (1 = serial).
    pub threads: usize,
}

impl Explain {
    /// One-line summary for harness tables and logs, e.g.
    ///
    /// ```text
    /// grouping k=11 over "r1" ⋈ "r2" [equality] d1=7 d2=7 a=2 k∈[8,12] k'=9/9 k''=7/7 kdom=tsa
    /// ```
    pub fn compact(&self) -> String {
        let p = &self.params;
        format!(
            "{} k={} over {:?} ⋈ {:?} [{}] d1={} d2={} a={} k∈[{},{}] k'={}/{} k''={}/{} kdom={}",
            self.algorithm,
            p.k,
            self.left_name,
            self.right_name,
            self.join,
            p.d1,
            p.d2,
            p.a,
            self.k_min,
            self.k_max,
            p.k1_prime,
            p.k2_prime,
            p.k1_pp,
            p.k2_pp,
            self.kdom,
        )
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = &self.params;
        writeln!(
            f,
            "KSJQ plan: {:?} ⋈ {:?} [{} join]",
            self.left_name, self.right_name, self.join
        )?;
        writeln!(f, "  goal:       {}", self.goal)?;
        writeln!(
            f,
            "  left:       {:?}: {} tuples, d1 = {} ({} local + {} aggregate)",
            self.left_name, self.left_n, p.d1, p.l1, p.a
        )?;
        writeln!(
            f,
            "  right:      {:?}: {} tuples, d2 = {} ({} local + {} aggregate)",
            self.right_name, self.right_n, p.d2, p.l2, p.a
        )?;
        if !self.funcs.is_empty() {
            writeln!(f, "  aggregates: {}", self.funcs.join(", "))?;
        }
        writeln!(
            f,
            "  joined:     {} skyline attributes (l1 + l2 + a = {} + {} + {}), valid k in [{}, {}]",
            p.d_joined, p.l1, p.l2, p.a, self.k_min, self.k_max
        )?;
        writeln!(
            f,
            "  k:          {} (classification k'1 = {}, k'2 = {}; target k''1 = {}, k''2 = {})",
            p.k, p.k1_prime, p.k2_prime, p.k1_pp, p.k2_pp
        )?;
        write!(
            f,
            "  algorithm:  {} (kdom subroutine: {}, threads: {})",
            self.algorithm, self.kdom, self.threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Explain {
        Explain {
            left_name: "r1".into(),
            right_name: "r2".into(),
            left_n: 100,
            right_n: 200,
            join: JoinSpec::Equality,
            funcs: vec!["sum".into()],
            goal: Goal::Exact(6),
            k_min: 5,
            k_max: 7,
            params: KsjqParams {
                k: 6,
                d1: 4,
                d2: 4,
                a: 1,
                l1: 3,
                l2: 3,
                d_joined: 7,
                k1_prime: 3,
                k2_prime: 3,
                k1_pp: 2,
                k2_pp: 2,
            },
            algorithm: Algorithm::Grouping,
            kdom: KdomAlgo::Tsa,
            threads: 1,
        }
    }

    #[test]
    fn display_covers_required_facts() {
        let s = sample().to_string();
        assert!(s.contains("equality join"), "{s}");
        assert!(s.contains("d1 = 4"), "{s}");
        assert!(s.contains("d2 = 4"), "{s}");
        assert!(s.contains("valid k in [5, 7]"), "{s}");
        assert!(s.contains("k'1 = 3"), "{s}");
        assert!(s.contains("k''1 = 2"), "{s}");
        assert!(s.contains("grouping"), "{s}");
        assert!(s.contains("tsa"), "{s}");
        assert!(s.contains("exact k = 6"), "{s}");
    }

    #[test]
    fn compact_is_one_line() {
        let c = sample().compact();
        assert!(!c.contains('\n'));
        assert!(c.contains("k=6"));
        assert!(c.contains("k∈[5,7]"));
        assert!(c.contains("kdom=tsa"));
    }
}
