//! Two-leg flight search with aggregated totals — the paper's motivating
//! application (and its Sec. 7.4 real-data experiment, on the synthetic
//! stand-in network), served through the engine API.
//!
//! The user flies A → hub → B. Cost and flying time matter as *totals*
//! over both legs (aggregate attributes); date-change fee, popularity and
//! amenities matter per leg (local attributes). A joined itinerary
//! therefore has 3 + 3 + 2 = 8 skyline attributes, and we ask for
//! itineraries no other itinerary beats on k = 6 of them.
//!
//! ```sh
//! cargo run --release --example flight_search
//! ```

use ksjq::prelude::*;

fn main() -> CoreResult<()> {
    // The paper's cardinalities: 192 outbound flights, 155 inbound, 13 hubs.
    let net = FlightNetworkSpec::default().generate();
    println!(
        "network: {} outbound x {} inbound flights over {} hubs",
        net.outbound.n(),
        net.inbound.n(),
        net.hubs.len()
    );

    let engine = Engine::new();
    let outbound = engine.register("outbound", net.outbound)?;
    let inbound = engine.register("inbound", net.inbound)?;

    let plan = QueryPlan::new("outbound", "inbound")
        .aggregates(&[AggFunc::Sum, AggFunc::Sum]) // total cost, total time
        .goal(Goal::Exact(6))
        .algorithm(Algorithm::Grouping);
    let prepared = engine.prepare(&plan)?;
    println!("\n{}", prepared.explain());
    println!("joined itineraries: {}", prepared.context().count_pairs());

    let result = prepared.execute()?;
    println!("\n{} itineraries survive 6-dominance:", result.len());
    println!(
        "{:>5} {:>9} {:>8} {:>9} {:>9} {:>9}",
        "hub", "total", "total", "fees", "popularity", "amenities"
    );
    println!(
        "{:>5} {:>9} {:>8} {:>9} {:>9} {:>9}",
        "", "cost", "time", "(l1/l2)", "(l1/l2)", "(l1/l2)"
    );
    for &(u, v) in result.pairs.iter().take(15) {
        let l = outbound.relation().raw_row(u);
        let r = inbound.relation().raw_row(v);
        let hub = net
            .hubs
            .decode(outbound.relation().group_id(u).unwrap())
            .unwrap();
        println!(
            "{:>5} {:>9.0} {:>8.1} {:>9} {:>9} {:>9}",
            hub,
            l[0] + r[0],
            l[1] + r[1],
            format!("{:.0}/{:.0}", l[2], r[2]),
            format!("{:.0}/{:.0}", l[3], r[3]),
            format!("{:.0}/{:.0}", l[4], r[4]),
        );
    }
    if result.len() > 15 {
        println!("  … and {} more", result.len() - 15);
    }

    // How much work did classification save?
    let c = result.stats.counts;
    println!(
        "\npruned {} of {} itineraries before joining ({}%)",
        c.pruned_pairs(),
        c.joined_pairs,
        100 * c.pruned_pairs() / c.joined_pairs.max(1)
    );

    // Too many results? Ask for at most 10 via Problem 4 — same engine,
    // just a different goal; prepare runs the find-k search and pins k.
    let shortlist_plan = QueryPlan::new("outbound", "inbound")
        .aggregates(&[AggFunc::Sum, AggFunc::Sum])
        .goal(Goal::AtMost(10, FindKStrategy::Binary));
    let prepared10 = engine.prepare(&shortlist_plan)?;
    let report = prepared10.find_k_report().expect("find-k goal");
    let shortlist = prepared10.execute()?;
    println!(
        "\nfor a shortlist of <= 10: k = {} gives {} itineraries \
         ({} full + {} bound evaluations)",
        report.k,
        shortlist.len(),
        report.full_computations,
        report.bound_computations
    );
    Ok(())
}
