//! Named relation registry: the data layer of the serving engine.
//!
//! A [`Catalog`] maps names to relations held as `Arc<Relation>`, so a
//! relation is loaded and validated **once** and then shared — by many
//! queries, across threads, for as long as anyone holds a handle. This is
//! the registry half of the engine/plan split: `ksjq-core`'s `Engine`
//! wraps a catalog and resolves plan-level relation names against it.
//!
//! The catalog itself is cheaply cloneable and thread-safe: clones share
//! the same underlying map (an `Arc<RwLock<…>>`), so registering a
//! relation through one clone makes it visible to all of them.

use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::schema::Schema;
use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A registered relation: its catalog name plus shared ownership of the
/// data. Handles are cheap to clone and keep the relation alive even if it
/// is later deregistered from the catalog.
#[derive(Debug, Clone)]
pub struct RelationHandle {
    name: Arc<str>,
    relation: Arc<Relation>,
}

impl RelationHandle {
    /// The name the relation was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation itself.
    pub fn relation(&self) -> &Arc<Relation> {
        &self.relation
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        self.relation.schema()
    }

    /// Number of tuples.
    pub fn n(&self) -> usize {
        self.relation.n()
    }
}

/// A thread-safe, name-keyed registry of relations.
///
/// # Example
///
/// ```
/// use ksjq_relation::{Catalog, Relation, Schema};
///
/// let catalog = Catalog::new();
/// let mut b = Relation::builder(Schema::uniform(2).unwrap());
/// b.add_grouped(1, &[1.0, 2.0]).unwrap();
/// let handle = catalog.register("offers", b.build().unwrap()).unwrap();
/// assert_eq!(handle.name(), "offers");
/// assert_eq!(catalog.get("offers").unwrap().n(), 1);
/// assert!(catalog.get("missing").is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    inner: Arc<RwLock<HashMap<String, RelationHandle>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    fn read(&self) -> RwLockReadGuard<'_, HashMap<String, RelationHandle>> {
        // A poisoned lock means a panic elsewhere; the map itself is
        // always in a consistent state (plain inserts/removes), so
        // recover rather than propagate the poison.
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, HashMap<String, RelationHandle>> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Register `relation` under `name`, taking ownership.
    ///
    /// Schema and data invariants are enforced eagerly by construction
    /// ([`Relation::builder`](Relation::builder) rejects empty schemas,
    /// non-finite values and mixed join-key kinds), so everything a
    /// registration still has to validate is the naming:
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidRelationName`] — empty or all-whitespace name.
    /// * [`Error::DuplicateRelation`] — the name is already taken; pick a
    ///   new name or [`deregister`](Self::deregister) first.
    pub fn register(&self, name: impl Into<String>, relation: Relation) -> Result<RelationHandle> {
        self.register_arc(name, Arc::new(relation))
    }

    /// Register an already-shared relation under `name` (no copy). Same
    /// validation as [`register`](Self::register).
    pub fn register_arc(
        &self,
        name: impl Into<String>,
        relation: Arc<Relation>,
    ) -> Result<RelationHandle> {
        let name = name.into();
        if name.trim().is_empty() {
            return Err(Error::InvalidRelationName(name));
        }
        let mut map = self.write();
        if map.contains_key(&name) {
            return Err(Error::DuplicateRelation(name));
        }
        let handle = RelationHandle {
            name: Arc::from(name.as_str()),
            relation,
        };
        map.insert(name, handle.clone());
        Ok(handle)
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Option<RelationHandle> {
        self.read().get(name).cloned()
    }

    /// Is `name` registered?
    pub fn contains(&self, name: &str) -> bool {
        self.read().contains_key(name)
    }

    /// Remove a relation from the catalog, returning its handle if it was
    /// registered. Existing handles (and queries prepared against them)
    /// keep working — they own the data via `Arc`.
    pub fn deregister(&self, name: &str) -> Option<RelationHandle> {
        self.write().remove(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read().keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn rel(n: usize) -> Relation {
        let mut b = Relation::builder(Schema::uniform(2).unwrap());
        for i in 0..n {
            b.add_grouped(1, &[i as f64, 1.0]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let c = Catalog::new();
        let h = c.register("r1", rel(3)).unwrap();
        assert_eq!(h.name(), "r1");
        assert_eq!(h.n(), 3);
        assert_eq!(h.schema().d(), 2);
        assert_eq!(c.get("r1").unwrap().n(), 3);
        assert!(c.contains("r1"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_and_invalid_names_rejected() {
        let c = Catalog::new();
        c.register("r1", rel(1)).unwrap();
        assert!(matches!(
            c.register("r1", rel(2)),
            Err(Error::DuplicateRelation(n)) if n == "r1"
        ));
        assert!(matches!(
            c.register("", rel(1)),
            Err(Error::InvalidRelationName(_))
        ));
        assert!(matches!(
            c.register("   ", rel(1)),
            Err(Error::InvalidRelationName(_))
        ));
    }

    #[test]
    fn clones_share_the_registry() {
        let c = Catalog::new();
        let c2 = c.clone();
        c.register("r1", rel(1)).unwrap();
        assert!(c2.contains("r1"));
        c2.deregister("r1").unwrap();
        assert!(!c.contains("r1"));
        assert!(c.is_empty());
    }

    #[test]
    fn deregister_keeps_existing_handles_alive() {
        let c = Catalog::new();
        let h = c.register("r1", rel(5)).unwrap();
        c.deregister("r1");
        assert!(c.get("r1").is_none());
        assert_eq!(h.n(), 5); // handle still owns the data
    }

    #[test]
    fn names_are_sorted() {
        let c = Catalog::new();
        for name in ["zeta", "alpha", "mid"] {
            c.register(name, rel(1)).unwrap();
        }
        assert_eq!(c.names(), vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn catalog_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Catalog>();
        assert_send_sync::<RelationHandle>();
    }

    #[test]
    fn concurrent_registration() {
        let c = Catalog::new();
        std::thread::scope(|s| {
            for i in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    c.register(format!("r{i}"), rel(i + 1)).unwrap();
                });
            }
        });
        assert_eq!(c.len(), 4);
        assert_eq!(c.get("r2").unwrap().n(), 3);
    }
}
