//! Join-layer errors.

use std::fmt;

/// Convenience alias for join-layer results.
pub type JoinResult<T> = std::result::Result<T, JoinError>;

/// Errors raised while constructing a [`crate::JoinContext`].
#[derive(Debug, Clone, PartialEq)]
pub enum JoinError {
    /// The two schemas declare different numbers of aggregate slots, or the
    /// number of aggregation functions does not match.
    AggArityMismatch {
        /// Slots in the left schema.
        left: usize,
        /// Slots in the right schema.
        right: usize,
        /// Aggregation functions supplied.
        funcs: usize,
    },
    /// The paired attributes of a slot disagree on preference direction, so
    /// the aggregated value would have no consistent orientation.
    SlotPreferenceMismatch {
        /// The offending slot.
        slot: usize,
    },
    /// The relations' join-key kinds do not fit the requested join spec
    /// (e.g. a theta join over group keys).
    KeyKindMismatch {
        /// What the spec requires.
        required: &'static str,
        /// Which side is wrong: "left" or "right".
        side: &'static str,
    },
    /// An aggregation function parameter is invalid (e.g. non-positive
    /// weight, which would break monotonicity).
    InvalidAggregate(String),
    /// Propagated relation-layer error.
    Relation(ksjq_relation::Error),
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::AggArityMismatch { left, right, funcs } => write!(
                f,
                "aggregate arity mismatch: left schema has {left} slots, right has {right}, {funcs} functions supplied"
            ),
            JoinError::SlotPreferenceMismatch { slot } => {
                write!(f, "aggregate slot {slot}: paired attributes disagree on preference")
            }
            JoinError::KeyKindMismatch { required, side } => {
                write!(f, "join spec requires {required} keys but the {side} relation has none")
            }
            JoinError::InvalidAggregate(msg) => write!(f, "invalid aggregate: {msg}"),
            JoinError::Relation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JoinError {}

impl From<ksjq_relation::Error> for JoinError {
    fn from(e: ksjq_relation::Error) -> Self {
        JoinError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = JoinError::AggArityMismatch {
            left: 2,
            right: 1,
            funcs: 2,
        };
        assert!(e.to_string().contains("mismatch"));
        let e = JoinError::KeyKindMismatch {
            required: "group",
            side: "left",
        };
        assert!(e.to_string().contains("group"));
    }

    #[test]
    fn from_relation_error() {
        let e: JoinError = ksjq_relation::Error::EmptySchema.into();
        assert!(matches!(e, JoinError::Relation(_)));
    }
}
