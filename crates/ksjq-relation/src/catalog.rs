//! Dictionary encoding for string join keys.

use std::collections::HashMap;

/// Maps string join keys (city names, categories, …) to dense `u64` group
/// ids and back.
///
/// Group ids are assigned in first-seen order starting from 0, so encoding
/// the same sequence of keys always yields the same ids — handy for
/// deterministic tests and for pairing two relations that share a key
/// domain.
///
/// # Example
///
/// ```
/// use ksjq_relation::StringDictionary;
///
/// let mut dict = StringDictionary::new();
/// let c = dict.encode("C");
/// let d = dict.encode("D");
/// assert_eq!(dict.encode("C"), c);
/// assert_ne!(c, d);
/// assert_eq!(dict.decode(c), Some("C"));
/// ```
#[derive(Debug, Default, Clone)]
pub struct StringDictionary {
    ids: HashMap<String, u64>,
    names: Vec<String>,
}

impl StringDictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode `key`, assigning a fresh id on first sight.
    pub fn encode(&mut self, key: &str) -> u64 {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = self.names.len() as u64;
        self.ids.insert(key.to_owned(), id);
        self.names.push(key.to_owned());
        id
    }

    /// Look up an already-assigned id without inserting.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.ids.get(key).copied()
    }

    /// Decode an id back to its string key.
    pub fn decode(&self, id: u64) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_str())
    }

    /// Number of distinct keys seen so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the dictionary empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_stable() {
        let mut d = StringDictionary::new();
        assert_eq!(d.encode("a"), 0);
        assert_eq!(d.encode("b"), 1);
        assert_eq!(d.encode("a"), 0);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_roundtrip() {
        let mut d = StringDictionary::new();
        let id = d.encode("Mumbai");
        assert_eq!(d.decode(id), Some("Mumbai"));
        assert_eq!(d.decode(99), None);
    }

    #[test]
    fn get_does_not_insert() {
        let mut d = StringDictionary::new();
        assert_eq!(d.get("x"), None);
        assert!(d.is_empty());
        d.encode("x");
        assert_eq!(d.get("x"), Some(0));
    }
}
