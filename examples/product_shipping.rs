//! Product price + shipping cost — the paper's second motivating example:
//! skyline preferences over the *sum* of product price and shipping cost,
//! joined across two independent catalogs.
//!
//! Also demonstrates the Cartesian product special case (Sec. 6.5): when
//! any product can ship with any carrier, no tuple is ever `SN` and the
//! answer needs no verification at all.
//!
//! ```sh
//! cargo run --example product_shipping
//! ```

use ksjq::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> CoreResult<()> {
    let mut rng = StdRng::seed_from_u64(42);

    // Products: price is aggregated with the carrier's cost; the rating
    // and warranty are local.
    let product_schema = Schema::builder()
        .agg("price", Preference::Min, 0)
        .local("rating", Preference::Max)
        .local("warranty_m", Preference::Max)
        .build()
        .map_err(ksjq::join::JoinError::from)?;
    // Carriers: cost aggregates with price; delivery days and insurance
    // are local.
    let carrier_schema = Schema::builder()
        .agg("ship_cost", Preference::Min, 0)
        .local("days", Preference::Min)
        .local("insured_pct", Preference::Max)
        .build()
        .map_err(ksjq::join::JoinError::from)?;

    let mut products = Relation::builder(product_schema);
    for _ in 0..120 {
        let quality = rng.gen::<f64>();
        let price = (120.0 + 500.0 * quality + 80.0 * rng.gen::<f64>()).round();
        let rating = (2.0 + 3.0 * (0.7 * quality + 0.3 * rng.gen::<f64>()) * 10.0).round() / 10.0;
        let warranty = [6.0, 12.0, 24.0, 36.0][rng.gen_range(0..4usize)];
        products
            .add(&[price, rating, warranty])
            .map_err(ksjq::join::JoinError::from)?;
    }
    let products = products.build().map_err(ksjq::join::JoinError::from)?;

    let mut carriers = Relation::builder(carrier_schema);
    for _ in 0..40 {
        let speed = rng.gen::<f64>();
        let cost = (4.0 + 40.0 * speed + 6.0 * rng.gen::<f64>()).round();
        let days = (1.0 + 9.0 * (1.0 - speed) + rng.gen::<f64>()).round();
        let insured = (50.0 + 50.0 * rng.gen::<f64>()).round();
        carriers
            .add(&[cost, days, insured])
            .map_err(ksjq::join::JoinError::from)?;
    }
    let carriers = carriers.build().map_err(ksjq::join::JoinError::from)?;

    // Joined attributes: rating, warranty, days, insured, total price — 5.
    // Valid k ∈ {4, 5}; k = 4 keeps the shortlist manageable.
    let query = KsjqQuery::builder(&products, &carriers)
        .join(JoinSpec::Cartesian)
        .aggregate(AggFunc::Sum)
        .k(4)
        .build()?;
    println!(
        "{} products x {} carriers = {} combinations, {} joined attributes",
        products.n(),
        carriers.n(),
        query.context().count_pairs(),
        query.context().d_joined()
    );

    let result = query.execute()?;
    println!("\n{} combinations are 4-dominant skylines:", result.len());
    println!(
        "{:>11} {:>7} {:>9} {:>6} {:>9}",
        "total price", "rating", "warranty", "days", "insured %"
    );
    for &(u, v) in result.pairs.iter().take(12) {
        let p = products.raw_row(u);
        let c = carriers.raw_row(v);
        println!(
            "{:>11.0} {:>7.1} {:>9.0} {:>6.0} {:>9.0}",
            p[0] + c[0],
            p[1],
            p[2],
            c[1],
            c[2]
        );
    }
    if result.len() > 12 {
        println!("  … and {} more", result.len() - 12);
    }

    // Sec. 6.5 in action: a Cartesian product has no SN tuples, so the
    // optimized algorithm did zero verification joins.
    let c = result.stats.counts;
    assert_eq!(c.likely_pairs + c.maybe_pairs, 0);
    println!(
        "\nCartesian fast path: {} 'yes' pairs emitted, {} pruned, 0 verified",
        c.yes_pairs,
        c.pruned_pairs()
    );
    Ok(())
}
