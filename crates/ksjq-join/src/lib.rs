//! Join substrate for KSJQ.
//!
//! * [`spec`] — join kinds: equality on group keys (paper Assumption 1),
//!   non-equality theta conditions on numeric keys (Sec. 6.6), and the
//!   Cartesian product (Sec. 6.5).
//! * [`aggregate`] — monotone aggregation functions applied to paired
//!   attributes of the joined relation (Sec. 5.6).
//! * [`context`] — [`JoinContext`]: the central object binding two base
//!   relations, a join spec and the aggregation functions. It lays out the
//!   joined skyline vector (`[left locals…, right locals…, aggregates…]`),
//!   enumerates join-compatible pairs without materialising anything, and
//!   exposes the *coverer* sets that the SS/SN/NN classification needs.

pub mod aggregate;
pub mod context;
pub mod error;
pub mod spec;

pub use aggregate::AggFunc;
pub use context::{JoinContext, MaterializedJoin};
pub use error::{JoinError, JoinResult};
pub use spec::{JoinSpec, ThetaOp};
