//! Per-join-group k-dominant skylines.
//!
//! The KSJQ optimizations (paper Sec. 5.2) hinge on computing, for every
//! join group of a base relation, which tuples are k′-dominant *within the
//! group*. This module provides that primitive; the SS/SN/NN classification
//! built on top of it lives in `ksjq-core`.

use crate::{k_dominant_skyline, KdomAlgo};
use ksjq_relation::Relation;

/// For every equality-join group of `rel` (ascending group-id order),
/// compute the k-dominant skyline of the group's members.
///
/// Returns `(group_id, surviving tuple ids)` pairs. Tuples in a group
/// compete only against tuples of the same group.
///
/// # Panics
///
/// Panics when `rel` has no group keys (use the theta-join machinery in
/// `ksjq-core` for numeric keys, or treat the whole relation as one group
/// for Cartesian products).
pub fn per_group_k_dominant(rel: &Relation, k: usize, algo: KdomAlgo) -> Vec<(u64, Vec<u32>)> {
    let gi = rel
        .group_index()
        .expect("per_group_k_dominant requires equality-join group keys");
    gi.iter()
        .map(|(gid, members)| (gid, k_dominant_skyline(rel, members, k, algo)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksjq_relation::{Relation, Schema};

    fn rel(groups: &[u64], rows: &[Vec<f64>]) -> Relation {
        Relation::from_grouped_rows(Schema::uniform(rows[0].len()).unwrap(), groups, rows).unwrap()
    }

    #[test]
    fn groups_are_independent() {
        // Group 1 contains a dominator; group 2's tuple is worse than
        // everything in group 1 but survives because groups are separate.
        let r = rel(
            &[1, 1, 2],
            &[vec![1.0, 1.0], vec![2.0, 2.0], vec![9.0, 9.0]],
        );
        let out = per_group_k_dominant(&r, 2, KdomAlgo::Naive);
        assert_eq!(out, vec![(1, vec![0]), (2, vec![2])]);
    }

    #[test]
    fn k_controls_pruning_within_group() {
        let r = rel(&[1, 1], &[vec![1.0, 5.0], vec![5.0, 1.0]]);
        // Full dominance: incomparable.
        let full = per_group_k_dominant(&r, 2, KdomAlgo::Tsa);
        assert_eq!(full, vec![(1, vec![0, 1])]);
        // 1-dominance: mutual annihilation.
        let one = per_group_k_dominant(&r, 1, KdomAlgo::Tsa);
        assert_eq!(one, vec![(1, vec![])]);
    }

    #[test]
    fn all_algorithms_agree_per_group() {
        let groups: Vec<u64> = (0..60).map(|i| (i % 4) as u64).collect();
        let mut state = 5u64;
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|_| {
                (0..3)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 33) % 10) as f64
                    })
                    .collect()
            })
            .collect();
        let r = rel(&groups, &rows);
        for k in 1..=3 {
            let a = per_group_k_dominant(&r, k, KdomAlgo::Naive);
            let b = per_group_k_dominant(&r, k, KdomAlgo::Osa);
            let c = per_group_k_dominant(&r, k, KdomAlgo::Tsa);
            assert_eq!(a, b, "k={k}");
            assert_eq!(a, c, "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "group keys")]
    fn panics_without_groups() {
        let mut b = Relation::builder(Schema::uniform(1).unwrap());
        b.add(&[1.0]).unwrap();
        let r = b.build().unwrap();
        per_group_k_dominant(&r, 1, KdomAlgo::Naive);
    }
}
