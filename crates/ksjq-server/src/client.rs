//! A blocking client for the KSJQ wire protocol.
//!
//! [`KsjqClient::connect`] negotiates protocol v2 (`HELLO`) and the
//! result-bearing calls stream: [`execute_stream`](KsjqClient::execute_stream)
//! / [`query_stream`](KsjqClient::query_stream) return a [`RowStream`] —
//! an iterator of bounded [`RowChunk`] frames, so a result is processed
//! chunk by chunk without the client (or the server) ever holding all of
//! it. The one-shot [`execute`](KsjqClient::execute) /
//! [`query`](KsjqClient::query) calls are convenience wrappers that drain
//! the stream into a [`RowSet`].
//!
//! Against a legacy v1-only server (or after
//! [`connect_legacy`](KsjqClient::connect_legacy)) the same calls work:
//! a v1 `ROWS` frame surfaces through a stream as one synthetic chunk.
//!
//! Protocol-level failures (`ERR` frames) are surfaced as
//! [`ClientError::Server`] so callers can distinguish "the server said
//! no" from "the wire broke".

use crate::faults::{FaultAction, FaultPlan, FaultStream};
use crate::protocol::{
    Cursor, ErrorCode, LoadSource, PlanSpec, Request, Response, RowChunk, RowSet, ServerStats,
    SyntheticSpec, PROTOCOL_VERSION,
};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Socket timeouts for [`KsjqClient::connect_with`].
///
/// The defaults (all `None`) match [`KsjqClient::connect`]: block forever.
/// A router front end talking to possibly-dead replicas wants all three
/// bounded, so a hung shard surfaces as [`ClientError::Io`] — which
/// [`retry_with_backoff`] retries and a dialer fails over on — instead of
/// wedging the session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectOptions {
    /// Bound on establishing the TCP connection (per resolved address).
    pub connect_timeout: Option<Duration>,
    /// Bound on each blocking read (one response line).
    pub read_timeout: Option<Duration>,
    /// Bound on each blocking write (one request line).
    pub write_timeout: Option<Duration>,
    /// Seeded transport fault injection applied to this client's own
    /// reads and writes — how chaos tests make a *healthy* server look
    /// flaky from the caller's side. `None` injects nothing.
    pub faults: Option<FaultPlan>,
}

impl ConnectOptions {
    /// One bound for connect, read and write alike.
    pub fn all(timeout: Duration) -> ConnectOptions {
        ConnectOptions {
            connect_timeout: Some(timeout),
            read_timeout: Some(timeout),
            write_timeout: Some(timeout),
            faults: None,
        }
    }
}

/// Run `f` up to `attempts` times, sleeping between failures with
/// exponentially growing, jittered backoff (`base`, `2·base`, … capped at
/// `cap`; each delay scaled by a deterministic factor in `[0.5, 1.0)`
/// derived from `seed` and the attempt number, so a fleet of retriers
/// with distinct seeds does not stampede in lockstep).
///
/// Only transport failures ([`ClientError::Io`]) are retried: an `ERR`
/// frame or a protocol violation means the server *answered*, and asking
/// again would repeat the same answer. `f` receives the 0-based attempt
/// number.
pub fn retry_with_backoff<T>(
    attempts: u32,
    base: Duration,
    cap: Duration,
    seed: u64,
    mut f: impl FnMut(u32) -> ClientResult<T>,
) -> ClientResult<T> {
    let attempts = attempts.max(1);
    let mut delay = base.min(cap);
    for attempt in 0..attempts {
        match f(attempt) {
            Err(ClientError::Io(e)) if attempt + 1 < attempts => {
                let _ = e; // retried; the final attempt's error is the one reported
                           // splitmix64 of (seed, attempt): cheap, deterministic,
                           // well-mixed — no RNG dependency needed for jitter.
                let mut z = seed ^ (u64::from(attempt).wrapping_mul(0x9e3779b97f4a7c15));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                // Map to [0.5, 1.0): keep at least half the nominal delay.
                let factor = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
                std::thread::sleep(delay.mul_f64(factor));
                delay = (delay * 2).min(cap);
            }
            other => return other,
        }
    }
    unreachable!("loop returns on the final attempt")
}

/// What can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, unexpected EOF).
    Io(io::Error),
    /// The server answered, but with an `ERR` frame. `code` is the
    /// machine-readable reason (see [`ErrorCode`]); match on it instead
    /// of string-matching `message`.
    Server {
        /// Machine-readable error code from the `ERR` frame.
        code: ErrorCode,
        /// The human-readable remainder of the frame.
        message: String,
    },
    /// The server answered with a frame this call did not expect (e.g.
    /// `OK` where `ROWS` was required), or one that does not parse.
    Protocol(String),
}

impl ClientError {
    /// The error code, when the server answered with an `ERR` frame.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// True for failures worth retrying (transport failures, and `ERR`
    /// codes the server marks transient: `busy`, `timeout`,
    /// `unavailable`, `recovering`).
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Server { code, .. } => code.is_transient(),
            ClientError::Protocol(_) => false,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { code, message } if message.is_empty() => {
                write!(f, "server error ({code})")
            }
            ClientError::Server { code, message } => {
                write!(f, "server error ({code}): {message}")
            }
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Convenience alias for client results.
pub type ClientResult<T> = Result<T, ClientError>;

/// Monotone client-connection counter: with single-threaded connection
/// establishment (the chaos harness's case) every run numbers its
/// connections identically, so a seeded fault plan replays exactly.
static CONN_SEQ: AtomicU64 = AtomicU64::new(1);

/// A blocking KSJQ protocol client over one TCP connection.
#[derive(Debug)]
pub struct KsjqClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    version: u32,
    /// Last `DEADLINE` value acknowledged by the server (0 = none), so
    /// [`set_deadline`](KsjqClient::set_deadline) skips the wire
    /// round-trip when the value is unchanged.
    deadline_ms: u64,
    /// Seeded fault decisions for this connection, when injecting.
    faults: Option<FaultStream>,
}

impl KsjqClient {
    /// Connect to a running server and negotiate the newest protocol
    /// version both sides speak (a server that rejects `HELLO` is taken
    /// to be v1-only and the session proceeds on v1).
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<KsjqClient> {
        KsjqClient::connect_with(addr, &ConnectOptions::default())
    }

    /// Like [`connect`](KsjqClient::connect), with socket timeouts.
    ///
    /// With a `connect_timeout`, each resolved address is tried in turn
    /// under that bound and the last failure is reported if none accepts.
    /// Read/write timeouts apply to every subsequent exchange, including
    /// the `HELLO` negotiation itself.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        opts: &ConnectOptions,
    ) -> ClientResult<KsjqClient> {
        let writer = match opts.connect_timeout {
            None => TcpStream::connect(&addr)?,
            Some(timeout) => {
                let mut last_err: Option<io::Error> = None;
                let mut stream = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                stream.ok_or_else(|| {
                    last_err.unwrap_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
                    })
                })?
            }
        };
        writer.set_read_timeout(opts.read_timeout)?;
        writer.set_write_timeout(opts.write_timeout)?;
        let _ = writer.set_nodelay(true);
        let reader = BufReader::new(writer.try_clone()?);
        let faults = opts
            .faults
            .filter(|plan| plan.is_active())
            .map(|plan| plan.stream(CONN_SEQ.fetch_add(1, Ordering::Relaxed)));
        let mut client = KsjqClient {
            reader,
            writer,
            version: 1,
            deadline_ms: 0,
            faults,
        };
        match client.request(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::Hello { version } => client.version = version.clamp(1, PROTOCOL_VERSION),
            Response::Error { .. } => {} // legacy server: stay on v1
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected HELLO, got {other}"
                )))
            }
        }
        Ok(client)
    }

    /// Connect without negotiating: the session speaks v1 (one-shot
    /// `ROWS` frames), whatever the server supports.
    pub fn connect_legacy(addr: impl ToSocketAddrs) -> ClientResult<KsjqClient> {
        let writer = TcpStream::connect(addr)?;
        // Lockstep one-line exchanges: Nagle only adds latency here.
        let _ = writer.set_nodelay(true);
        let reader = BufReader::new(writer.try_clone()?);
        Ok(KsjqClient {
            reader,
            writer,
            version: 1,
            deadline_ms: 0,
            faults: None,
        })
    }

    /// The negotiated protocol version (1 until a successful `HELLO`).
    pub fn version(&self) -> u32 {
        self.version
    }

    fn read_line(&mut self) -> ClientResult<String> {
        if let Some(faults) = &mut self.faults {
            if faults.on_read() == FaultAction::Drop {
                let _ = self.writer.shutdown(Shutdown::Both);
                return Err(ClientError::Io(io::ErrorKind::ConnectionReset.into()));
            }
        }
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(response.trim_end().to_owned())
    }

    fn read_response(&mut self) -> ClientResult<Response> {
        let line = self.read_line()?;
        Response::parse(&line).map_err(ClientError::Protocol)
    }

    fn send(&mut self, line: &str) -> ClientResult<()> {
        if let Some(faults) = &mut self.faults {
            let mut buf = Vec::with_capacity(line.len() + 1);
            buf.extend_from_slice(line.as_bytes());
            buf.push(b'\n');
            match faults.on_write() {
                FaultAction::Drop => {
                    let _ = self.writer.shutdown(Shutdown::Both);
                    return Err(ClientError::Io(io::ErrorKind::ConnectionReset.into()));
                }
                FaultAction::Partial => {
                    // A torn frame: ship a prefix, then sever, so the
                    // server sees a request cut mid-line.
                    let cut = faults.cut_point(buf.len());
                    let _ = self.writer.write_all(&buf[..cut]);
                    let _ = self.writer.flush();
                    let _ = self.writer.shutdown(Shutdown::Both);
                    return Err(ClientError::Io(io::ErrorKind::ConnectionReset.into()));
                }
                FaultAction::None => {}
            }
            faults.maybe_flip(&mut buf);
            self.writer.write_all(&buf)?;
            self.writer.flush()?;
            return Ok(());
        }
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Send a raw line and return the raw response line — the escape
    /// hatch the fuzz tests and the `ksjq-client` binary use. Note that
    /// a v2 `EXECUTE`/`QUERY` answers with *several* lines; this returns
    /// only the first — fetch the rest with
    /// [`raw_read`](KsjqClient::raw_read).
    pub fn raw(&mut self, line: &str) -> ClientResult<String> {
        self.send(line)?;
        self.read_line()
    }

    /// Read one raw response line without sending anything — for
    /// consuming the continuation frames of a chunked v2 response after
    /// [`raw`](KsjqClient::raw).
    pub fn raw_read(&mut self) -> ClientResult<String> {
        self.read_line()
    }

    /// Send a typed request, parse the typed response. `ERR` frames are
    /// *returned*, not raised — use the typed helpers below for that.
    pub fn request(&mut self, request: &Request) -> ClientResult<Response> {
        self.send(&request.to_string())?;
        self.read_response()
    }

    fn expect_ok(&mut self, request: &Request) -> ClientResult<String> {
        match self.request(request)? {
            Response::Ok(info) => Ok(info),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("expected OK, got {other}"))),
        }
    }

    /// `DEADLINE <ms>` — bound each subsequent query on this session to
    /// `ms` milliseconds of execution (0 clears the bound). The last
    /// acknowledged value is cached, so re-sending an unchanged deadline
    /// costs nothing on the wire — a router can set the remaining budget
    /// before every backend call without doubling its round-trips.
    pub fn set_deadline(&mut self, ms: u64) -> ClientResult<()> {
        if self.deadline_ms == ms {
            return Ok(());
        }
        self.expect_ok(&Request::Deadline { ms })?;
        self.deadline_ms = ms;
        Ok(())
    }

    /// `LOAD <name> INLINE <csv>` — register a CSV relation (newline row
    /// separators; the client handles the wire encoding).
    ///
    /// Rejects CSV containing `';'` up front: it is the row separator on
    /// the wire, so sending it would silently re-frame the caller's rows.
    pub fn load_csv(&mut self, name: &str, csv: &str) -> ClientResult<String> {
        if csv.contains(';') {
            return Err(ClientError::Protocol(
                "inline CSV must not contain ';' (the wire row separator)".into(),
            ));
        }
        self.expect_ok(&Request::Load {
            name: name.into(),
            source: LoadSource::Inline { csv: csv.into() },
        })
    }

    /// `LOAD <name> SYNTHETIC …` — generate server-side.
    pub fn load_synthetic(&mut self, name: &str, spec: SyntheticSpec) -> ClientResult<String> {
        self.expect_ok(&Request::Load {
            name: name.into(),
            source: LoadSource::Synthetic(spec),
        })
    }

    /// `PREPARE <id> …` — validate and name a query for later execution.
    pub fn prepare(&mut self, id: &str, plan: &PlanSpec) -> ClientResult<String> {
        self.expect_ok(&Request::Prepare {
            id: id.into(),
            plan: plan.clone(),
        })
    }

    /// `EXECUTE <id>` streaming the result: an iterator of bounded
    /// [`RowChunk`]s, the primary result API. Dropping the iterator
    /// early drains the remaining frames so the connection stays usable.
    pub fn execute_stream(&mut self, id: &str) -> ClientResult<RowStream<'_>> {
        self.start_stream(&Request::Execute { id: id.into() })
    }

    /// `QUERY …` (one-shot prepare + execute) streaming the result.
    pub fn query_stream(&mut self, plan: &PlanSpec) -> ClientResult<RowStream<'_>> {
        self.start_stream(&Request::Query { plan: plan.clone() })
    }

    fn start_stream(&mut self, request: &Request) -> ClientResult<RowStream<'_>> {
        self.send(&request.to_string())?;
        Ok(RowStream {
            client: self,
            done: false,
        })
    }

    /// `MORE <cursor>` — fetch one chunk of a cached result (v2).
    pub fn more(&mut self, cursor: Cursor) -> ClientResult<RowChunk> {
        match self.request(&Request::More { cursor })? {
            Response::Chunk(chunk) => Ok(chunk),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("expected ROWS, got {other}"))),
        }
    }

    /// `EXECUTE <id>` — run a prepared query and collect the whole
    /// result (drains the chunk stream under v2).
    pub fn execute(&mut self, id: &str) -> ClientResult<RowSet> {
        self.execute_stream(id)?.collect_rowset()
    }

    /// `QUERY …` — one-shot prepare + execute, whole result.
    pub fn query(&mut self, plan: &PlanSpec) -> ClientResult<RowSet> {
        self.query_stream(plan)?.collect_rowset()
    }

    /// `EXPLAIN <id>` — the one-line plan summary.
    pub fn explain(&mut self, id: &str) -> ClientResult<String> {
        match self.request(&Request::Explain { id: id.into() })? {
            Response::Explain(text) => Ok(text),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "expected EXPLAIN, got {other}"
            ))),
        }
    }

    /// `STATS` — server counters.
    pub fn stats(&mut self) -> ClientResult<ServerStats> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "expected STATS, got {other}"
            ))),
        }
    }

    /// `SYNC` — the names of every registered relation, sorted.
    pub fn sync_names(&mut self) -> ClientResult<Vec<String>> {
        self.sync_catalog().map(|(_, names)| names)
    }

    /// `SYNC` — the server's catalog epoch plus every registered relation
    /// name, sorted. The epoch is what a replica compares against its
    /// last-synced value to decide whether to re-clone (a pre-epoch
    /// server reports 0).
    pub fn sync_catalog(&mut self) -> ClientResult<(u64, Vec<String>)> {
        match self.request(&Request::Sync { name: None })? {
            Response::Catalog { epoch, names } => Ok((epoch, names)),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "expected CATALOG, got {other}"
            ))),
        }
    }

    /// `SYNC <name>` — one relation exported as annotated CSV (newline
    /// row separators restored; feed it straight to `register_csv` or
    /// [`load_csv`](KsjqClient::load_csv)).
    pub fn sync_relation(&mut self, name: &str) -> ClientResult<String> {
        match self.request(&Request::Sync {
            name: Some(name.into()),
        })? {
            Response::Relation { csv, .. } => Ok(csv),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "expected RELATION, got {other}"
            ))),
        }
    }

    /// `STAGE <name> INLINE <csv>` — parse and hold server-side without
    /// touching the live binding (phase one of a two-phase load).
    ///
    /// Rejects CSV containing `';'` for the same reason
    /// [`load_csv`](KsjqClient::load_csv) does.
    pub fn stage_csv(&mut self, name: &str, csv: &str) -> ClientResult<String> {
        if csv.contains(';') {
            return Err(ClientError::Protocol(
                "inline CSV must not contain ';' (the wire row separator)".into(),
            ));
        }
        self.expect_ok(&Request::Stage {
            name: name.into(),
            csv: csv.into(),
        })
    }

    /// `COMMIT <name>` — publish a staged relation (phase two).
    pub fn commit(&mut self, name: &str) -> ClientResult<String> {
        self.expect_ok(&Request::Commit { name: name.into() })
    }

    /// `ABORT <name>` — discard staged data; succeeds even if nothing
    /// was staged under that name.
    pub fn abort(&mut self, name: &str) -> ClientResult<String> {
        self.expect_ok(&Request::Abort { name: name.into() })
    }

    /// `STAGED?` — every name with a pending staged relation or delta,
    /// sorted. A recovering router probes this to decide whether an
    /// in-doubt transaction's `COMMIT` still has anything to commit on
    /// this replica.
    pub fn staged_names(&mut self) -> ClientResult<Vec<String>> {
        match self.request(&Request::StagedQuery)? {
            Response::Staged { names } => Ok(names),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "expected STAGED, got {other}"
            ))),
        }
    }

    /// `APPEND <name> ROWS <csv>` — immediately extend an existing
    /// relation with header-less CSV rows (first cell the join key, then
    /// the relation's `d` values). Rejects CSV containing `';'` for the
    /// same reason [`load_csv`](KsjqClient::load_csv) does.
    pub fn append_rows(&mut self, name: &str, csv: &str) -> ClientResult<String> {
        self.append_inner(name, csv, false)
    }

    /// `APPEND <name> STAGE <csv>` — parse and hold a delta for a later
    /// [`commit`](KsjqClient::commit) / [`abort`](KsjqClient::abort)
    /// (phase one of a router's distributed append).
    pub fn append_stage(&mut self, name: &str, csv: &str) -> ClientResult<String> {
        self.append_inner(name, csv, true)
    }

    fn append_inner(&mut self, name: &str, csv: &str, staged: bool) -> ClientResult<String> {
        if csv.contains(';') {
            return Err(ClientError::Protocol(
                "append CSV must not contain ';' (the wire row separator)".into(),
            ));
        }
        self.expect_ok(&Request::Append {
            name: name.into(),
            rows: csv.into(),
            staged,
        })
    }

    /// `DELETE <name> KEYS <k1,k2,…>` — drop every row carrying one of
    /// the listed join keys.
    pub fn delete_keys(&mut self, name: &str, keys: &[String]) -> ClientResult<String> {
        self.expect_ok(&Request::Delete {
            name: name.into(),
            keys: keys.to_vec(),
        })
    }

    /// `FETCH … PAIRS …` — joined-row values for specific result pairs,
    /// in the server's internal normalised form.
    pub fn fetch(
        &mut self,
        left: &str,
        right: &str,
        aggs: &[ksjq_join::AggFunc],
        pairs: &[(u32, u32)],
    ) -> ClientResult<Vec<Vec<f64>>> {
        match self.request(&Request::Fetch {
            left: left.into(),
            right: right.into(),
            aggs: aggs.to_vec(),
            pairs: pairs.to_vec(),
        })? {
            Response::Vals(rows) => Ok(rows),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("expected VALS, got {other}"))),
        }
    }

    /// `CHECK … K <k> ROWS …` — for each probe row, whether any joined
    /// tuple held by this server k-dominates it.
    pub fn check(
        &mut self,
        left: &str,
        right: &str,
        aggs: &[ksjq_join::AggFunc],
        k: usize,
        rows: &[Vec<f64>],
    ) -> ClientResult<Vec<bool>> {
        match self.request(&Request::Check {
            left: left.into(),
            right: right.into(),
            aggs: aggs.to_vec(),
            k,
            rows: rows.to_vec(),
        })? {
            Response::Checked(bits) => Ok(bits),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "expected CHECKED, got {other}"
            ))),
        }
    }

    /// `CLOSE` — end the session; consumes the client.
    pub fn close(mut self) -> ClientResult<()> {
        match self.request(&Request::Close)? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Protocol(format!("expected BYE, got {other}"))),
        }
    }
}

/// A streamed query result: one [`RowChunk`] per `next()`, read lazily
/// off the socket. Ends after the final part, or after the first error
/// (an `ERR` frame or a transport failure — both terminal).
///
/// Dropping the stream before the final part drains the remaining frames
/// (best-effort) so the connection's lockstep framing survives early
/// exits like `.take(1)`.
#[derive(Debug)]
pub struct RowStream<'a> {
    client: &'a mut KsjqClient,
    done: bool,
}

impl RowStream<'_> {
    /// Drain the stream into a single [`RowSet`] (the v1-shaped result):
    /// `k`/`micros`/`cached` from the first chunk, pairs concatenated.
    pub fn collect_rowset(mut self) -> ClientResult<RowSet> {
        let mut rows: Option<RowSet> = None;
        for chunk in &mut self {
            let chunk = chunk?;
            let rows = rows.get_or_insert_with(|| RowSet {
                k: chunk.k,
                micros: chunk.micros,
                cached: chunk.cached,
                pairs: Vec::with_capacity(chunk.total),
            });
            rows.pairs.extend(chunk.pairs);
        }
        rows.ok_or_else(|| ClientError::Protocol("empty result stream".into()))
    }
}

impl Iterator for RowStream<'_> {
    type Item = ClientResult<RowChunk>;

    fn next(&mut self) -> Option<ClientResult<RowChunk>> {
        if self.done {
            return None;
        }
        let response = match self.client.read_response() {
            Ok(response) => response,
            Err(e) => {
                self.done = true;
                return Some(Err(e));
            }
        };
        Some(match response {
            Response::Chunk(chunk) => {
                self.done = chunk.is_last();
                Ok(chunk)
            }
            // A v1 server (or session) answers with one whole-result
            // frame: surface it as a single synthetic chunk so the
            // streaming API works against either version.
            Response::Rows(rows) => {
                self.done = true;
                Ok(RowChunk {
                    k: rows.k,
                    micros: rows.micros,
                    cached: rows.cached,
                    total: rows.pairs.len(),
                    part: 1,
                    parts: 1,
                    cursor: None,
                    pairs: rows.pairs,
                })
            }
            Response::Error { code, message } => {
                self.done = true;
                Err(ClientError::Server { code, message })
            }
            other => {
                self.done = true;
                Err(ClientError::Protocol(format!("expected ROWS, got {other}")))
            }
        })
    }
}

impl Drop for RowStream<'_> {
    fn drop(&mut self) {
        // Abandoned mid-stream: swallow the remaining frames so the next
        // request on this connection reads its own response, not ours.
        while !self.done {
            match self.next() {
                Some(Ok(_)) => {}
                _ => break, // end of stream, or a terminal error
            }
        }
    }
}
